#!/usr/bin/env bash
# Determinism guard: reject std::collections::HashMap / HashSet in
# simulation-state crates.
#
# The engine's byte-exact golden contract (DESIGN.md §14) requires that
# every container whose iteration order or allocation pattern can leak
# into simulation output be deterministic. std's RandomState draws a
# per-process seed, so a plain HashMap/HashSet in simulation state is a
# latent nondeterminism bug even when today's code never iterates it —
# use DetHashMap/DetHashSet (semcluster_vdm::dethash) or an ordered /
# dense structure instead.
#
# Files with a *reviewed* legitimate exception (e.g. membership-only
# sets whose order provably never leaks) are listed one-per-line in
# ci/dethash_allowlist.txt, with a comment in the file explaining why.
#
# Scope: library sources of the simulation-state crates only. Tests,
# benches and the vdm crate (which defines the Det wrappers) are out of
# scope.
set -euo pipefail
cd "$(dirname "$0")/.."

allowlist="ci/dethash_allowlist.txt"
scope=(
    crates/core/src
    crates/buffer/src
    crates/clustering/src
    crates/lock/src
    crates/wal/src
    crates/storage/src
    crates/faults/src
)

# \bHash(Map|Set)\b matches the std types but not DetHashMap/DetHashSet
# (no word boundary inside an identifier).
hits=$(grep -rn --include='*.rs' -E '\bHash(Map|Set)\b' "${scope[@]}" || true)

status=0
while IFS= read -r hit; do
    [ -z "$hit" ] && continue
    file=${hit%%:*}
    if [ -f "$allowlist" ] && grep -qxF "$file" "$allowlist"; then
        continue
    fi
    if [ "$status" -eq 0 ]; then
        echo "determinism guard: nondeterministic hash container in simulation state:" >&2
    fi
    echo "  $hit" >&2
    status=1
done <<<"$hits"

if [ "$status" -ne 0 ]; then
    echo >&2
    echo "Use DetHashMap/DetHashSet (semcluster_vdm) or a Vec/BTreeMap instead;" >&2
    echo "if the use is provably order-safe, add the file to $allowlist with a" >&2
    echo "justifying comment at the use site." >&2
    exit 1
fi
echo "determinism guard: OK (no raw HashMap/HashSet in simulation state)"

# Purity guard for the serve path's deterministic layers (DESIGN.md
# §16–17): the wire protocol, the connection FSM, admission control,
# the telemetry registry + SLO tracker, and the network-chaos planner
# are replayed byte-exactly in unit tests and the chaos/stats goldens,
# so they must never read a clock or an OS RNG — time enters only as an
# argument (now_ms / microsecond stamps) and randomness only as a keyed
# hash of (seed, coordinates). The impure server/load modules own the
# real clocks and sockets; wall-clock reads on the serve path are
# confined to server.rs and load.rs.
pure=(
    crates/core/src/serve/protocol.rs
    crates/core/src/serve/session.rs
    crates/core/src/serve/admission.rs
    crates/core/src/serve/stats.rs
    crates/core/src/serve/slo.rs
    crates/faults/src/netchaos.rs
)
impure_hits=$(grep -n -E 'Instant::now|SystemTime::now|thread_rng|rand::random' "${pure[@]}" || true)
if [ -n "$impure_hits" ]; then
    echo "determinism guard: clock/RNG use in a pure serve module:" >&2
    echo "$impure_hits" >&2
    echo "pass time in as an argument (now_ms) and draw randomness from a" >&2
    echo "keyed hash of (seed, coordinates) instead." >&2
    exit 1
fi
echo "determinism guard: OK (serve FSM/protocol/admission/stats/slo/chaos are clock- and RNG-free)"
