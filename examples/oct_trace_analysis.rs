//! Reconstruct the paper's Section 3 measurement study: synthesise OCT
//! tool traces from the published per-tool statistics and run the
//! analyzer over them, printing the three figures' data side by side.
//!
//! ```sh
//! cargo run --release --example oct_trace_analysis
//! ```

use semcluster_analysis::Table;
use semcluster_sim::SimRng;
use semcluster_workload::{analyze, generate_trace, oct_tools};

fn main() {
    let tools = oct_tools();
    let mut rng = SimRng::seed_from_u64(1989);
    // ~5000 invocations, like the paper's measurement campaign.
    let per_tool = 5000 / tools.len();
    let trace = generate_trace(&tools, per_tool, &mut rng);
    let total_hours: f64 = trace.iter().map(|i| i.session.as_secs_f64()).sum::<f64>() / 3600.0;
    println!(
        "synthesised {} invocations of {} tools covering {:.0} hours of design work\n",
        trace.len(),
        tools.len(),
        total_hours
    );

    let stats = analyze(&trace);
    let mut table = Table::new(vec![
        "tool",
        "R/W ratio (fig 3.2)",
        "I/O rate /s (fig 3.3)",
        "low/med/high density (fig 3.4)",
        "role",
    ]);
    for profile in &tools {
        let s = stats.iter().find(|s| s.tool == profile.name).unwrap();
        let rw = if s.rw_ratio().is_finite() {
            format!("{:.2}", s.rw_ratio())
        } else {
            "∞".into()
        };
        table.row(vec![
            profile.name.to_string(),
            rw,
            format!("{:.1}", s.io_rate()),
            format!(
                "{:.0}% / {:.0}% / {:.0}%",
                s.density_shares[0] * 100.0,
                s.density_shares[1] * 100.0,
                s.density_shares[2] * 100.0
            ),
            profile.description.to_string(),
        ]);
    }
    table.print();

    println!("\nobservations the paper draws from this data:");
    println!(" * reads dominate writes in every interactive tool (VEM ≈ 6000:1),");
    println!("   so dynamic clustering can pay for its write-side overhead;");
    println!(" * within one application (MOSAICO's phases: atlas→mosaico) the");
    println!("   ratio swings from 0.52 to 170 — clustering must adapt at run time;");
    println!(" * most tools' structural retrievals are low-density, but wolfe and");
    println!("   VEM need the high-density path — hence density as a control factor.");
}
