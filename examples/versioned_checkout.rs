//! The Version Data Model in action: build the paper's Figure 1.1 design
//! (ALU layouts, netlists, configurations, correspondences), derive new
//! versions with instance-to-instance inheritance, and watch the
//! run-time clusterer keep the physical layout tight.
//!
//! ```sh
//! cargo run --release --example versioned_checkout
//! ```

use semcluster_clustering::{
    plan_placement, plan_recluster, AllResident, ClusteringPolicy, PlacementTarget, WeightModel,
};
use semcluster_storage::{StorageManager, DEFAULT_PAGE_BYTES};
use semcluster_vdm::{
    derive_version, validate, AttrDef, CopyVsRefModel, Database, ObjectName, RelFrequencies,
    RelKind, TypeLattice,
};

fn main() {
    // ---- 1. Schema: a small type lattice with inheritable attributes.
    let mut lattice = TypeLattice::new();
    let design_obj = lattice
        .define(
            "design-object",
            vec![],
            vec![AttrDef::new("owner", 16)],
            vec![],
            RelFrequencies::UNIFORM,
        )
        .unwrap();
    let layout = lattice
        .define(
            "layout",
            vec![design_obj],
            vec![
                // Small, read-hot: the cost model will copy it.
                AttrDef {
                    name: "technology".into(),
                    size_bytes: 8,
                    read_weight: 3.0,
                    update_weight: 0.1,
                    inheritable: true,
                },
                // Larger, update-hot: kept by reference on the parent.
                AttrDef {
                    name: "design-rules".into(),
                    size_bytes: 512,
                    read_weight: 0.2,
                    update_weight: 6.0,
                    inheritable: true,
                },
            ],
            vec![],
            RelFrequencies {
                config_down: 6.0,
                version_up: 3.0,
                ..RelFrequencies::UNIFORM
            },
        )
        .unwrap();
    let netlist = lattice
        .define(
            "netlist",
            vec![design_obj],
            vec![],
            vec![],
            RelFrequencies::UNIFORM,
        )
        .unwrap();

    // ---- 2. Populate: ALU[2].layout composed of CARRY[1].layout,
    // corresponding to ALU[3].netlist (the paper's running example).
    let mut db = Database::with_lattice(lattice);
    let alu2 = db
        .create_object(ObjectName::new("ALU", 2, "layout"), layout, 600)
        .unwrap();
    let carry = db
        .create_object(ObjectName::new("CARRY-PROPAGATE", 1, "layout"), layout, 400)
        .unwrap();
    let alu3n = db
        .create_object(ObjectName::new("ALU", 3, "netlist"), netlist, 350)
        .unwrap();
    db.relate(RelKind::Configuration, alu2, carry).unwrap();
    db.relate(RelKind::Correspondence, alu2, alu3n).unwrap();

    // ---- 3. Physical placement through the clusterer.
    let mut store = StorageManager::new(DEFAULT_PAGE_BYTES);
    let model = WeightModel::no_hints();
    for id in [alu2, carry, alu3n] {
        let size = db.get(id).unwrap().size_bytes();
        let plan = plan_placement(
            &db,
            &store,
            &AllResident,
            ClusteringPolicy::NoLimit,
            &model,
            id,
            size,
        );
        match plan.target {
            PlacementTarget::Existing(p) => store.place(id, size, p).unwrap(),
            PlacementTarget::Append => {
                store.append(id, size).unwrap();
            }
        };
    }
    println!(
        "ALU[2].layout and CARRY-PROPAGATE[1].layout co-resident: {}",
        store.co_resident(alu2, carry)
    );

    // ---- 4. Checkout-edit-checkin: derive ALU[3].layout.
    let derived = derive_version(&mut db, alu2, &CopyVsRefModel::default()).unwrap();
    let child = db.get(derived.id).unwrap();
    println!("\nderived {}:", child.name);
    println!("  copied attributes     : {:?}", derived.copied);
    println!("  by-reference via link : {:?}", derived.referenced);
    println!(
        "  inherited correspondences: {} (→ {})",
        derived.inherited_correspondences,
        db.get(alu3n).unwrap().name
    );

    // ---- 5. Place the new version; the clusterer pulls it next to its
    // inheritance provider and correspondence partners.
    let size = db.get(derived.id).unwrap().size_bytes();
    let plan = plan_placement(
        &db,
        &store,
        &AllResident,
        ClusteringPolicy::NoLimit,
        &model,
        derived.id,
        size,
    );
    let landed = match plan.target {
        PlacementTarget::Existing(p) => {
            store.place(derived.id, size, p).unwrap();
            p
        }
        PlacementTarget::Append => store.append(derived.id, size).unwrap(),
    };
    println!(
        "\nALU[3].layout placed on {landed}, with its parent: {}",
        store.co_resident(derived.id, alu2)
    );

    // ---- 6. Structure change + run-time reclustering: CARRY moves out.
    let far = store.allocate_page();
    store.move_object(carry, far).unwrap();
    if let Some(plan) = plan_recluster(
        &db,
        &store,
        &AllResident,
        ClusteringPolicy::NoLimit,
        &model,
        carry,
        0.0,
    ) {
        println!(
            "\nreclusterer proposes moving CARRY back to {} (gain {:.1})",
            plan.to, plan.gain
        );
        store.move_object(carry, plan.to).unwrap();
    }
    println!("co-resident again: {}", store.co_resident(alu2, carry));

    // ---- 7. The database still satisfies referential integrity.
    let violations = validate(&db);
    println!("\nintegrity violations: {}", violations.len());
    assert!(violations.is_empty());
}
