//! Quickstart: run the simulated OODBMS under two clustering policies and
//! compare response times.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use semcluster::{run_simulation, SimConfig};
use semcluster_clustering::ClusteringPolicy;
use semcluster_workload::StructureDensity;

fn main() {
    // A CAD-style workload: high structure density (composite retrievals
    // return ≥10 objects), 100 reads per write — the paper's `hi10-100`.
    let base = SimConfig::default().with_workload(StructureDensity::High10, 100.0);

    println!("simulating {} objects…", base.target_objects());

    let clustered = run_simulation(base.clone().with_clustering(ClusteringPolicy::NoLimit));
    let scattered = run_simulation(base.with_clustering(ClusteringPolicy::NoCluster));

    println!(
        "clustered   : {:.1} ms mean response, {:.0}% buffer hits, {} demand reads",
        clustered.mean_response_s * 1e3,
        clustered.hit_ratio * 100.0,
        clustered.io.data_reads
    );
    println!(
        "no clustering: {:.1} ms mean response, {:.0}% buffer hits, {} demand reads",
        scattered.mean_response_s * 1e3,
        scattered.hit_ratio * 100.0,
        scattered.io.data_reads
    );
    println!(
        "semantic clustering improves response time {:.1}×",
        scattered.mean_response_s / clustered.mean_response_s
    );
}
