//! Interactive policy exploration from the command line: pick a workload
//! and compare every clustering × buffering combination on it.
//!
//! ```sh
//! cargo run --release --example policy_explorer -- hi10-100
//! cargo run --release --example policy_explorer -- med5-5 --reps 3
//! ```

use semcluster::{run_replicated, workload_from_label, SimConfig};
use semcluster_analysis::Table;
use semcluster_buffer::{PrefetchScope, ReplacementPolicy};
use semcluster_clustering::{ClusteringPolicy, SplitPolicy};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let label = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "med5-10".to_string());
    let reps: u32 = args
        .iter()
        .position(|a| a == "--reps")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(2);
    let Some(workload) = workload_from_label(&label) else {
        eprintln!("unknown workload {label:?}; use low3-5 … hi10-100");
        std::process::exit(2);
    };

    println!("workload {label}, {reps} replications per cell\n");
    let mut table = Table::new(vec![
        "clustering \\ buffering",
        "LRU / none",
        "LRU / pref-DB",
        "Ctx / none",
        "Ctx / pref-DB",
    ]);
    let buffering = [
        (ReplacementPolicy::Lru, PrefetchScope::None),
        (ReplacementPolicy::Lru, PrefetchScope::WithinDatabase),
        (ReplacementPolicy::ContextSensitive, PrefetchScope::None),
        (
            ReplacementPolicy::ContextSensitive,
            PrefetchScope::WithinDatabase,
        ),
    ];
    for clustering in [
        ClusteringPolicy::NoCluster,
        ClusteringPolicy::WithinBuffer,
        ClusteringPolicy::IoLimit(2),
        ClusteringPolicy::NoLimit,
    ] {
        let mut cells = vec![clustering.to_string()];
        for (replacement, prefetch) in buffering {
            let cfg = SimConfig {
                workload: workload.clone(),
                clustering,
                split: SplitPolicy::Linear,
                replacement,
                prefetch,
                ..SimConfig::default()
            };
            let result = run_replicated(&cfg, reps);
            cells.push(format!("{:.1} ms", result.response.mean * 1e3));
        }
        table.row(cells);
    }
    table.print();
    println!("\nmean transaction response time; lower is better.");
}
