//! A design browser walking a multi-representation design: shows how the
//! context-sensitive buffer manager and relationship-directed prefetching
//! cut misses for navigation-style access.
//!
//! ```sh
//! cargo run --release --example design_browser
//! ```

use semcluster_buffer::{
    apply_prefetch, prefetch_group, AccessHint, BufferPool, PrefetchScope, ReplacementPolicy,
};
use semcluster_clustering::{plan_placement, AllResident, ClusteringPolicy, WeightModel};
use semcluster_sim::SimRng;
use semcluster_storage::{StorageManager, DEFAULT_PAGE_BYTES, PAGE_OVERHEAD_BYTES};
use semcluster_vdm::{Database, ObjectId, SyntheticDbSpec};

/// Browse: visit a composite, then all its components (one screenful),
/// hopping between modules like a designer reviewing a chip.
fn browse(
    db: &Database,
    store: &StorageManager,
    pool: &mut BufferPool,
    prefetch: PrefetchScope,
    rng: &mut SimRng,
    steps: usize,
) -> (u64, u64) {
    let composites: Vec<ObjectId> = db
        .objects()
        .filter(|o| db.graph().downward_fanout(o.id) > 0)
        .map(|o| o.id)
        .collect();
    for _ in 0..steps {
        let root = *rng.pick(&composites);
        if let Some(page) = store.page_of(root) {
            pool.access(page);
        }
        // The context-sensitive policy's defining behaviour: touching an
        // object raises the priority of its relatives' resident pages.
        if pool.policy() == ReplacementPolicy::ContextSensitive {
            for &c in db.graph().components(root) {
                if let Some(page) = store.page_of(c) {
                    pool.boost(page);
                }
            }
        }
        let group = prefetch_group(db, store, root, AccessHint::ByConfiguration);
        apply_prefetch(pool, &group, prefetch);
        for &c in db.graph().components(root) {
            if let Some(page) = store.page_of(c) {
                pool.access(page);
            }
        }
    }
    let s = pool.stats();
    (s.hits, s.misses)
}

fn main() {
    let (db, stats) = SyntheticDbSpec {
        modules: 40,
        depth: 3,
        fanout: (3, 6),
        correspondence_prob: 0.5,
        version_prob: 0.2,
        seed: 2024,
        ..SyntheticDbSpec::default()
    }
    .build();
    println!(
        "design database: {} objects, {} configuration edges",
        stats.objects, stats.configuration_edges
    );

    // Cluster it the way the paper's storage manager would.
    let mut store = StorageManager::new(DEFAULT_PAGE_BYTES);
    let model = WeightModel::with_hint(AccessHint::ByConfiguration);
    let reserve = (DEFAULT_PAGE_BYTES - PAGE_OVERHEAD_BYTES) * 3 / 10;
    for obj in db.objects() {
        let size = obj.size_bytes();
        let plan = plan_placement(
            &db,
            &store,
            &AllResident,
            ClusteringPolicy::NoLimit,
            &model,
            obj.id,
            size,
        );
        match plan.target {
            semcluster_clustering::PlacementTarget::Existing(p) => {
                store.place(obj.id, size, p).unwrap()
            }
            semcluster_clustering::PlacementTarget::Append => store
                .append_reserving(obj.id, size, reserve)
                .map(|_| ())
                .unwrap(),
        }
    }
    println!("placed on {} pages\n", store.page_count());

    let steps = 3000;
    println!("browsing {steps} composites with a 24-frame pool:");
    for (label, policy, prefetch) in [
        (
            "LRU, no prefetch           ",
            ReplacementPolicy::Lru,
            PrefetchScope::None,
        ),
        (
            "LRU, prefetch-within-DB    ",
            ReplacementPolicy::Lru,
            PrefetchScope::WithinDatabase,
        ),
        (
            "Context-sensitive, no pref ",
            ReplacementPolicy::ContextSensitive,
            PrefetchScope::None,
        ),
        (
            "Context-sensitive + pref-DB",
            ReplacementPolicy::ContextSensitive,
            PrefetchScope::WithinDatabase,
        ),
    ] {
        let mut pool = BufferPool::new(24, policy, 7);
        let mut rng = SimRng::seed_from_u64(5);
        let (hits, misses) = browse(&db, &store, &mut pool, prefetch, &mut rng, steps);
        let ratio = hits as f64 / (hits + misses) as f64;
        println!(
            "  {label}: hit ratio {:5.1}%  (prefetch reads: {})",
            ratio * 100.0,
            pool.stats().prefetch_reads
        );
    }
    println!("\nthe smart buffer manager keeps a navigation working set alive that");
    println!("plain LRU keeps evicting — §2.2's argument, reproduced.");
}
