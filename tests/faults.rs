//! Fault-injection contract (DESIGN.md §11): faults are a pure
//! function of (seed, fault config) — byte-identical at any worker
//! thread count; a zero-rate config is byte-inert; retry exhaustion
//! aborts the owning transaction without killing the run; graceful
//! degradation engages and recovers; and the crash-recovery matrix
//! finds zero ACID violations at every commit boundary and at sampled
//! intra-transaction and torn-log points.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use semcluster::{
    run_crash_matrix, run_simulation_with_obs, CrashMatrixConfig, FaultConfig, ObsConfig,
    SimConfig, SweepJob, SweepRunner,
};
use semcluster_clustering::ClusteringPolicy;
use semcluster_faults::DegradationPolicy;
use semcluster_obs::{JsonlSink, SyncBuf};

fn tiny(seed: u64) -> SimConfig {
    SimConfig {
        database_bytes: 2 * 1024 * 1024,
        buffer_pages: 24,
        warmup_txns: 40,
        measured_txns: 120,
        seed,
        ..SimConfig::default()
    }
}

fn faulty_jobs() -> Vec<SweepJob> {
    let with = |seed: u64, preset: &str| SimConfig {
        faults: FaultConfig::preset(preset).expect("known preset"),
        ..tiny(seed)
    };
    let mut clustered = with(31, "smoke");
    clustered.clustering = ClusteringPolicy::NoLimit;
    vec![
        SweepJob::new("smoke", with(30, "smoke"), 2),
        SweepJob::new("smoke-clustered", clustered, 1),
        SweepJob::new("degraded", with(32, "degraded"), 1),
        SweepJob::new("stress", with(33, "stress"), 2),
    ]
}

#[test]
fn fault_injection_is_thread_count_invariant() {
    // Reports, merged metrics AND raw event traces (which carry the
    // io_fault / io_retry / log_stall events) must be byte-identical
    // whether the sweep ran on one thread or four.
    let traced = |threads: usize| {
        let bufs = Arc::new(Mutex::new(BTreeMap::<(usize, u32), SyncBuf>::new()));
        let registry = Arc::clone(&bufs);
        let runner = SweepRunner::new(threads).with_sink_factory(move |index, rep| {
            let buf = SyncBuf::default();
            registry.lock().unwrap().insert((index, rep), buf.clone());
            Some(Box::new(JsonlSink::new(buf)))
        });
        let outcome = runner.run(faulty_jobs());
        assert_eq!(outcome.summary.failed, 0);
        let traces: BTreeMap<(usize, u32), Vec<u8>> = bufs
            .lock()
            .unwrap()
            .iter()
            .map(|(k, v)| (*k, v.bytes()))
            .collect();
        (outcome, traces)
    };
    let (serial, serial_traces) = traced(1);
    let (parallel, parallel_traces) = traced(4);
    assert_eq!(serial.metrics, parallel.metrics, "merged metrics");
    for (a, b) in serial.items.iter().zip(&parallel.items) {
        let (ra, rb) = (a.result.as_ref().unwrap(), b.result.as_ref().unwrap());
        for (pa, pb) in ra.reports.iter().zip(&rb.reports) {
            assert_eq!(pa.mean_response_s.to_bits(), pb.mean_response_s.to_bits());
            assert_eq!(pa.io, pb.io);
            assert_eq!(pa.faults, pb.faults, "{}: fault counters", a.label);
            assert_eq!(pa.abort_reasons, pb.abort_reasons);
        }
    }
    assert_eq!(serial_traces, parallel_traces, "fault traces byte-differ");
    // The faulty runs actually injected something and traced it.
    let all_bytes: Vec<u8> = serial_traces.values().flatten().copied().collect();
    let text = String::from_utf8(all_bytes).unwrap();
    assert!(text.contains("\"ev\":\"io_fault\""), "no io_fault traced");
    assert!(text.contains("\"ev\":\"io_retry\""), "no io_retry traced");
}

#[test]
fn zero_rate_faults_are_inert() {
    // An explicit all-zero fault config must not perturb the engine:
    // same seed, same bytes as the default (fault-free) configuration,
    // and the report must say faults were disabled. (CI additionally
    // pins this against the pre-fault-layer golden file.)
    let base = tiny(77);
    let explicit = SimConfig {
        faults: FaultConfig::preset("none").expect("none is a preset"),
        ..tiny(77)
    };
    assert!(explicit.faults.is_inert());
    let run = |cfg: SimConfig| {
        let buf = SyncBuf::default();
        let obs = ObsConfig::with_sink(Box::new(JsonlSink::new(buf.clone())));
        let (report, snapshot) = run_simulation_with_obs(cfg, obs);
        (report, snapshot, buf.bytes())
    };
    let (ra, sa, ta) = run(base);
    let (rb, sb, tb) = run(explicit);
    assert_eq!(ra.mean_response_s.to_bits(), rb.mean_response_s.to_bits());
    assert_eq!(ra.io, rb.io);
    assert_eq!(sa, sb, "metrics snapshots differ");
    assert_eq!(ta, tb, "traces differ");
    assert!(!ra.faults_enabled);
    assert_eq!(ra.faults, Default::default(), "inert run drew a fault");
    assert!(ra.abort_reasons.is_empty());
    // And no fault counter ever appears in the registry.
    assert!(!sa.to_json().contains("fault."));
}

#[test]
fn retry_exhaustion_aborts_transactions_but_the_run_completes() {
    // Brutal error rate with a single attempt: many page I/Os fail
    // outright, their transactions abort — and the run still finishes,
    // reporting the aborts instead of panicking.
    let mut cfg = tiny(101);
    cfg.faults = FaultConfig {
        read_error_rate: 0.30,
        write_error_rate: 0.20,
        retry: semcluster_faults::RetryPolicy {
            max_attempts: 2,
            backoff_us: 1_000,
            backoff_mult: 2,
        },
        ..FaultConfig::default()
    };
    let (report, snapshot) = run_simulation_with_obs(cfg, ObsConfig::default());
    assert!(report.faults_enabled);
    assert!(
        report.faults.txn_aborts > 0,
        "a 9% per-I/O abort rate must abort something: {:?}",
        report.faults
    );
    assert!(!report.abort_reasons.is_empty());
    assert!(
        report
            .abort_reasons
            .iter()
            .any(|r| r.contains("failed after 2 attempts")),
        "{:?}",
        report.abort_reasons
    );
    assert!(report.faults.read_errors > 0);
    assert!(report.faults.retries > 0);
    // Aborted transactions are excluded from response statistics but
    // the run still measured the surviving ones.
    assert!(report.txns > 0);
    let json = snapshot.to_json();
    assert!(json.contains("fault.txn.abort"));
    assert!(json.contains("fault.io.read_error"));
}

#[test]
fn graceful_degradation_engages_and_recovers() {
    // A clustering config with a tiny cluster-search budget: the
    // sliding window blows the budget, placement degrades to append
    // (trace + counters say so), then the hysteresis exit fires once
    // the window drains.
    let mut cfg = tiny(55);
    cfg.clustering = ClusteringPolicy::NoLimit;
    cfg.faults = FaultConfig {
        degradation: DegradationPolicy {
            window_txns: 8,
            search_budget_us: 2_000,
            exit_pct: 50,
        },
        ..FaultConfig::default()
    };
    let buf = SyncBuf::default();
    let obs = ObsConfig::with_sink(Box::new(JsonlSink::new(buf.clone())));
    let (report, snapshot) = run_simulation_with_obs(cfg, obs);
    assert!(
        report.faults.degrade_enters > 0,
        "budget was never exceeded: {:?}",
        report.faults
    );
    assert!(
        report.faults.degrade_exits > 0,
        "hysteresis never recovered: {:?}",
        report.faults
    );
    let json = snapshot.to_json();
    assert!(json.contains("fault.degrade.enter"));
    assert!(json.contains("fault.degrade.exit"));
    let trace = String::from_utf8(buf.bytes()).unwrap();
    assert!(trace.contains("\"ev\":\"degrade\""));
}

#[test]
fn crash_matrix_smoke_is_acid_clean() {
    // The CI gate in test form: every commit boundary plus >= 50
    // sampled intra-transaction points plus torn-log points, each
    // crashed, recovered and verified. Zero acknowledged commits lost,
    // zero loser effects surviving.
    let mc = CrashMatrixConfig::smoke();
    assert!(mc.event_samples >= 50, "smoke must sample >= 50 events");
    let report = run_crash_matrix(&mc);
    assert_eq!(report.violation_count(), 0, "{}", report.render());
    assert!(report.total_commits > 0);
    assert_eq!(
        report
            .points
            .iter()
            .filter(|p| matches!(p.point, semcluster::CrashPoint::Commit(_)))
            .count() as u64,
        report.total_commits,
        "every commit boundary must be crashed"
    );
    assert!(
        report
            .points
            .iter()
            .filter(|p| matches!(p.point, semcluster::CrashPoint::Event(_)))
            .count()
            >= 50.min(report.total_events as usize),
        "at least 50 intra-transaction samples"
    );
    // Torn-log points truncated at least one record somewhere.
    assert!(
        report
            .points
            .iter()
            .any(|p| matches!(p.point, semcluster::CrashPoint::MidFlush(_)) && p.truncated > 0),
        "no mid-flush crash ever tore a record"
    );
}

#[test]
fn matrix_is_thread_count_invariant() {
    let mut mc = CrashMatrixConfig::smoke();
    mc.cfg.database_bytes = 512 * 1024;
    mc.cfg.buffer_pages = 8;
    mc.cfg.warmup_txns = 4;
    mc.cfg.measured_txns = 10;
    mc.event_samples = 8;
    mc.mid_flush_samples = 4;
    mc.jobs = 1;
    let serial = run_crash_matrix(&mc);
    mc.jobs = 4;
    let parallel = run_crash_matrix(&mc);
    assert_eq!(serial.render(), parallel.render());
    assert_eq!(serial.violation_count(), 0, "{}", serial.render());
}
