//! Cross-crate accounting invariants: the engine's I/O breakdown must be
//! consistent with the buffer manager's own counters, for every policy
//! combination.

use semcluster::{run_simulation, SimConfig};
use semcluster_buffer::{PrefetchScope, ReplacementPolicy};
use semcluster_clustering::{ClusteringPolicy, SplitPolicy};
use semcluster_workload::{StructureDensity, WorkloadSpec};

fn base() -> SimConfig {
    SimConfig {
        database_bytes: 2 * 1024 * 1024,
        buffer_pages: 24,
        warmup_txns: 80,
        measured_txns: 400,
        ..SimConfig::default()
    }
}

#[test]
fn demand_plus_search_reads_equal_buffer_misses() {
    for clustering in [
        ClusteringPolicy::NoCluster,
        ClusteringPolicy::WithinBuffer,
        ClusteringPolicy::IoLimit(2),
        ClusteringPolicy::NoLimit,
        ClusteringPolicy::Adaptive,
    ] {
        for prefetch in [PrefetchScope::None, PrefetchScope::WithinDatabase] {
            let mut cfg = base();
            cfg.clustering = clustering;
            cfg.prefetch = prefetch;
            cfg.workload = WorkloadSpec::new(StructureDensity::Med5, 5.0);
            let r = run_simulation(cfg);
            assert_eq!(
                r.io.data_reads + r.io.cluster_search_ios,
                r.buffer.misses,
                "{clustering} {prefetch}: reads {} + search {} != misses {}",
                r.io.data_reads,
                r.io.cluster_search_ios,
                r.buffer.misses
            );
        }
    }
}

#[test]
fn log_report_matches_log_stats() {
    let r = run_simulation(base());
    assert_eq!(r.log_ios, r.log.total_ios());
    assert_eq!(
        r.log.total_ios(),
        r.log.buffer_flushes + r.log.before_image_ios + r.log.commit_forces
    );
    // The engine charges every log I/O it reports.
    assert_eq!(r.io.log_ios, r.log.total_ios());
}

#[test]
fn prefetch_ios_appear_only_with_database_scope() {
    let mut cfg = base();
    cfg.prefetch = PrefetchScope::WithinBuffer;
    let within = run_simulation(cfg.clone());
    assert_eq!(within.io.prefetch_ios, 0, "within-buffer never does I/O");
    cfg.prefetch = PrefetchScope::WithinDatabase;
    cfg.replacement = ReplacementPolicy::ContextSensitive;
    let db_scope = run_simulation(cfg);
    assert!(db_scope.io.prefetch_ios > 0);
    // The engine's prefetch I/O = pool-counted prefetch reads plus any
    // write-backs those prefetches forced.
    assert!(
        db_scope.io.prefetch_ios >= db_scope.buffer.prefetch_reads,
        "prefetch I/O {} < pool prefetch reads {}",
        db_scope.io.prefetch_ios,
        db_scope.buffer.prefetch_reads
    );
}

#[test]
fn splits_charge_split_ios() {
    let mut cfg = base();
    cfg.split = SplitPolicy::Linear;
    cfg.clustering = ClusteringPolicy::NoLimit;
    cfg.workload = WorkloadSpec::new(StructureDensity::High10, 2.0);
    cfg.measured_txns = 800;
    let r = run_simulation(cfg);
    assert_eq!(
        r.splits, r.io.split_ios,
        "one charged flush per split: {} splits vs {} I/Os",
        r.splits, r.io.split_ios
    );
}

#[test]
fn read_write_counts_partition_transactions() {
    let r = run_simulation(base());
    assert_eq!(r.reads + r.writes, r.txns);
    // rw=5 default: reads ≈ 5/6 of transactions.
    let frac = r.reads as f64 / r.txns as f64;
    assert!((0.70..0.95).contains(&frac), "read fraction {frac}");
}
