//! Integration tests for the live-telemetry layer: server-side
//! attribution's zero-residual invariant over a real concurrent load,
//! the STATS opcode round-trip over TCP (including while draining),
//! Prometheus exposition served over HTTP that reconciles exactly with
//! client-side counts, and jobs-invariance of the stats golden.

use std::io::{Read as _, Write as _};
use std::net::TcpStream;
use std::time::Duration;

use semcluster::serve::{
    read_frame, run_load, write_frame, LoadConfig, Request, Response, ServeConfig, Server,
    SPAN_NAMES, STATS_SCHEMA,
};
use semcluster_cli::{dispatch, Args};
use semcluster_faults::NetChaosConfig;

fn send(stream: &mut TcpStream, req: &Request) {
    write_frame(stream, &req.encode()).expect("write frame");
}

fn recv(stream: &mut TcpStream) -> Response {
    let frame = read_frame(stream)
        .expect("read frame")
        .expect("peer closed mid-conversation");
    Response::parse(&frame).expect("parse response")
}

fn connect(addr: std::net::SocketAddr, sessions: u32) -> (TcpStream, u32) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("read timeout");
    send(&mut stream, &Request::Hello { sessions });
    match recv(&mut stream) {
        Response::HelloOk { first_session } => (stream, first_session),
        other => panic!("expected HelloOk, got {other:?}"),
    }
}

/// Minimal std-only HTTP GET against the metrics endpoint; returns the
/// response body.
fn scrape(addr: std::net::SocketAddr) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect metrics");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("read timeout");
    stream
        .write_all(b"GET /metrics HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n")
        .expect("send request");
    let mut text = String::new();
    stream.read_to_string(&mut text).expect("read response");
    assert!(
        text.starts_with("HTTP/1.1 200 OK\r\n"),
        "unexpected status: {}",
        text.lines().next().unwrap_or("")
    );
    let (head, body) = text
        .split_once("\r\n\r\n")
        .expect("response has a header/body split");
    assert!(
        head.contains("Content-Type: text/plain; version=0.0.4"),
        "exposition content type missing: {head}"
    );
    body.to_string()
}

/// `metric_value("semcluster_txn_ok_total", body)` — the sample value
/// for an exact metric name (including any label set).
fn metric_value(name: &str, body: &str) -> u64 {
    body.lines()
        .find_map(|l| l.strip_prefix(name).and_then(|rest| rest.strip_prefix(' ')))
        .unwrap_or_else(|| panic!("metric {name} not found"))
        .parse()
        .unwrap_or_else(|_| panic!("metric {name} is not an integer"))
}

#[test]
fn server_side_attribution_sums_exactly_to_service_time() {
    let handle = Server::start(ServeConfig::default(), "127.0.0.1:0").expect("start server");
    let summary = run_load(&LoadConfig {
        addr: handle.addr().to_string(),
        connections: 4,
        sessions_per_conn: 16,
        txns_per_session: 4,
        pipeline: 8,
        seed: 42,
        chaos: NetChaosConfig::none(),
        ..LoadConfig::default()
    })
    .expect("run load");
    assert!(summary.acked > 0);
    handle.request_shutdown();
    let report = handle.join().expect("drain");
    assert_eq!(report.acid_violations, 0);

    // The drain-time snapshot is exact (all recorder threads joined):
    // the five span histograms must partition the total histogram with
    // ZERO residual, in both observation count and total microseconds.
    let total = report.stats.latency("total").expect("total histogram");
    assert!(total.count > 0, "load recorded no request latencies");
    let mut span_sum_us = 0u64;
    for phase in SPAN_NAMES.iter().filter(|p| **p != "total") {
        let h = report.stats.latency(phase).expect("span histogram");
        assert_eq!(
            h.count, total.count,
            "every request records every span ({phase})"
        );
        span_sum_us += h.sum_us;
    }
    assert_eq!(
        span_sum_us, total.sum_us,
        "attribution spans must sum to measured service time exactly"
    );
    // The snapshot also reconciles with the client: every TxnOk the
    // clean-network client received was counted by the server.
    assert_eq!(report.stats.counter("txn_ok"), summary.acked);
    assert_eq!(report.stats.counter("req.hello"), 4);
}

#[test]
fn stats_opcode_round_trips_and_counts_itself() {
    // The drain linger keeps our idle connection probeable after
    // request_shutdown(); without it, closing the connection races the
    // draining STATS probe below.
    let handle = Server::start(
        ServeConfig {
            drain_linger_ms: 30_000,
            ..ServeConfig::default()
        },
        "127.0.0.1:0",
    )
    .expect("start server");
    let (mut stream, session) = connect(handle.addr(), 2);
    send(
        &mut stream,
        &Request::Txn(semcluster::serve::TxnRequest {
            session,
            client_txn: 9,
            deadline_ms: 0,
            ops: vec![semcluster::serve::TxnOp {
                write: true,
                object: 3,
            }],
        }),
    );
    match recv(&mut stream) {
        Response::TxnOk { client_txn, .. } => assert_eq!(client_txn, 9),
        other => panic!("expected TxnOk, got {other:?}"),
    }
    send(&mut stream, &Request::Stats);
    let first = match recv(&mut stream) {
        Response::StatsOk { schema, json } => {
            assert_eq!(schema, STATS_SCHEMA, "frame carries the schema version");
            json
        }
        other => panic!("expected StatsOk, got {other:?}"),
    };
    assert!(first.starts_with("{\"stats_schema\":1,\n"), "json: {first}");
    assert!(first.contains("\"req.txn\":1"), "json: {first}");
    assert!(first.contains("\"req.stats\":1"), "STATS counts itself");
    assert!(first.contains("\"sessions_live\":2"), "json: {first}");
    assert!(first.contains("\"draining\":0"), "json: {first}");
    // A second probe sees strictly monotone request counters.
    send(&mut stream, &Request::Stats);
    match recv(&mut stream) {
        Response::StatsOk { json, .. } => {
            assert!(json.contains("\"req.stats\":2"), "json: {json}");
        }
        other => panic!("expected StatsOk, got {other:?}"),
    }
    // STATS keeps answering while the server drains: observability must
    // not die exactly when it is needed most.
    handle.request_shutdown();
    send(&mut stream, &Request::Stats);
    match recv(&mut stream) {
        Response::StatsOk { json, .. } => {
            assert!(json.contains("\"draining\":1"), "json: {json}");
        }
        other => panic!("expected StatsOk while draining, got {other:?}"),
    }
    send(&mut stream, &Request::Bye);
    assert!(matches!(recv(&mut stream), Response::ByeOk));
    drop(stream);
    let report = handle.join().expect("drain");
    assert_eq!(report.acid_violations, 0);
}

#[test]
fn prometheus_endpoint_reconciles_exactly_with_client_counts() {
    let handle = Server::start(
        ServeConfig {
            metrics_addr: Some("127.0.0.1:0".to_string()),
            // Lets the pinning connection below hold the drain open
            // (it BYEs as soon as the mid-drain scrape lands).
            drain_linger_ms: 30_000,
            ..ServeConfig::default()
        },
        "127.0.0.1:0",
    )
    .expect("start server");
    let metrics = handle.metrics_addr().expect("metrics endpoint bound");

    let before = scrape(metrics);
    let summary = run_load(&LoadConfig {
        addr: handle.addr().to_string(),
        connections: 4,
        sessions_per_conn: 20,
        txns_per_session: 3,
        pipeline: 8,
        seed: 1989,
        chaos: NetChaosConfig::none(),
        ..LoadConfig::default()
    })
    .expect("run load");
    assert!(summary.acked > 0);
    let after = scrape(metrics);

    // Well-formedness: every non-comment line is `name[{labels}] value`.
    for line in after.lines() {
        if line.starts_with('#') || line.is_empty() {
            continue;
        }
        let (_, value) = line.rsplit_once(' ').expect("sample has a value");
        assert!(value.parse::<f64>().is_ok(), "bad sample value: {line:?}");
    }
    assert!(after.contains("# TYPE semcluster_latency_us histogram"));
    assert!(after.contains("semcluster_latency_us_bucket{phase=\"total\",le=\"+Inf\"}"));

    // Exact reconciliation on a clean network: the scrape deltas equal
    // the client's own counts. The BYE/ByeOk exchange at the end of
    // every load connection orders these counters before run_load
    // returns, so no sleep or retry is needed.
    let delta = |name: &str| metric_value(name, &after) - metric_value(name, &before);
    assert_eq!(delta("semcluster_txn_ok_total"), summary.acked);
    assert_eq!(
        delta("semcluster_errors_total{kind=\"overloaded\"}"),
        summary.rejected_overloaded
    );
    assert_eq!(
        delta("semcluster_errors_total{kind=\"deadline\"}"),
        summary.rejected_deadline
    );
    assert_eq!(delta("semcluster_requests_total{opcode=\"hello\"}"), 4);

    // The endpoint stays up through drain (drain-aware scraping). The
    // guarantee is "up until the drain completes", so pin the drain
    // open with a live client connection — otherwise an empty server
    // finishes draining before the scrape can connect.
    let (mut stream, _) = connect(handle.addr(), 1);
    handle.request_shutdown();
    let during = scrape(metrics);
    assert!(metric_value("semcluster_txn_ok_total", &during) >= summary.acked);
    send(&mut stream, &Request::Bye);
    assert!(matches!(recv(&mut stream), Response::ByeOk));
    drop(stream);
    let report = handle.join().expect("drain");
    assert_eq!(report.acid_violations, 0);
    assert_eq!(report.stats.counter("txn_ok"), summary.acked);
}

#[test]
fn stats_golden_matches_at_any_jobs_count() {
    // The committed stats golden must verify unchanged regardless of
    // the thread count the suite is rendered with.
    for jobs in ["1", "4"] {
        let args = Args::parse(
            ["golden", "--suite", "stats", "--jobs", jobs]
                .into_iter()
                .map(String::from),
        )
        .expect("parse args");
        let out = dispatch(&args).expect("stats golden verifies");
        assert!(out.contains("golden OK"), "unexpected output: {out}");
    }
}
