//! Determinism contract of the parallel sweep executor (DESIGN.md §10):
//! a sweep's observable output — ordered reports, folded estimates,
//! merged metrics, per-run traces — is a pure function of the submitted
//! jobs, never of the worker-thread count or completion order; and one
//! panicking run surfaces as an error on its own slot without poisoning
//! the rest of the sweep.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use semcluster::{
    replication_config, run_replicated, ReplicatedResult, SimConfig, SweepJob, SweepOutcome,
    SweepRunner,
};
use semcluster_buffer::{PrefetchScope, ReplacementPolicy};
use semcluster_clustering::{ClusteringPolicy, SplitPolicy};
use semcluster_obs::{JsonlSink, SyncBuf};
use semcluster_workload::{StructureDensity, WorkloadSpec};

fn tiny(seed: u64) -> SimConfig {
    SimConfig {
        database_bytes: 2 * 1024 * 1024,
        buffer_pages: 24,
        warmup_txns: 40,
        measured_txns: 120,
        seed,
        ..SimConfig::default()
    }
}

/// A mixed bag of jobs: different policies, workloads and replication
/// counts, so scheduling differences would have somewhere to show.
fn mixed_jobs() -> Vec<SweepJob> {
    let mut clustered = tiny(7);
    clustered.clustering = ClusteringPolicy::NoLimit;
    clustered.split = SplitPolicy::Linear;
    let mut buffered = tiny(8);
    buffered.replacement = ReplacementPolicy::ContextSensitive;
    buffered.prefetch = PrefetchScope::WithinBuffer;
    let mut writey = tiny(9);
    writey.workload = WorkloadSpec::new(StructureDensity::High10, 100.0);
    vec![
        SweepJob::new("plain", tiny(6), 3),
        SweepJob::new("clustered", clustered, 2),
        SweepJob::new("buffered", buffered, 1),
        SweepJob::new("write-heavy", writey, 2),
    ]
}

fn assert_outcomes_identical(serial: &SweepOutcome, parallel: &SweepOutcome) {
    assert_eq!(serial.items.len(), parallel.items.len());
    for (a, b) in serial.items.iter().zip(&parallel.items) {
        assert_eq!(a.index, b.index);
        assert_eq!(a.label, b.label);
        let (ra, rb) = (a.result.as_ref().unwrap(), b.result.as_ref().unwrap());
        assert_eq!(
            ra.response.mean.to_bits(),
            rb.response.mean.to_bits(),
            "{}: folded estimate must be bit-identical",
            a.label
        );
        assert_eq!(ra.response.ci95.to_bits(), rb.response.ci95.to_bits());
        assert_eq!(ra.log_ios.mean.to_bits(), rb.log_ios.mean.to_bits());
        assert_eq!(ra.hit_ratio.mean.to_bits(), rb.hit_ratio.mean.to_bits());
        assert_eq!(ra.reports.len(), rb.reports.len());
        for (pa, pb) in ra.reports.iter().zip(&rb.reports) {
            assert_eq!(pa.mean_response_s.to_bits(), pb.mean_response_s.to_bits());
            assert_eq!(pa.io, pb.io);
            assert_eq!(pa.log_ios, pb.log_ios);
            assert_eq!(pa.span_totals, pb.span_totals);
        }
        assert_eq!(a.metrics, b.metrics, "{}: per-run metrics", a.label);
    }
    assert_eq!(serial.metrics, parallel.metrics, "merged metrics");
    assert_eq!(
        serial.metrics.to_json(),
        parallel.metrics.to_json(),
        "merged metrics must serialize to identical bytes"
    );
}

#[test]
fn sweep_is_thread_count_invariant() {
    let serial = SweepRunner::new(1).run(mixed_jobs());
    for threads in [2, 4, 8] {
        let parallel = SweepRunner::new(threads).run(mixed_jobs());
        assert_outcomes_identical(&serial, &parallel);
        assert_eq!(parallel.summary.threads, threads.min(mixed_jobs().len()));
    }
    assert_eq!(serial.summary.runs, 4);
    assert_eq!(serial.summary.failed, 0);
}

#[test]
fn traces_are_thread_count_invariant() {
    // Capture every replication's event trace, keyed by (job, rep),
    // via the runner's sink factory; the bytes must not depend on the
    // worker-thread count.
    let traced = |threads: usize| -> BTreeMap<(usize, u32), Vec<u8>> {
        let bufs = Arc::new(Mutex::new(BTreeMap::<(usize, u32), SyncBuf>::new()));
        let registry = Arc::clone(&bufs);
        let runner = SweepRunner::new(threads).with_sink_factory(move |index, rep| {
            let buf = SyncBuf::default();
            registry.lock().unwrap().insert((index, rep), buf.clone());
            Some(Box::new(JsonlSink::new(buf)))
        });
        let outcome = runner.run(mixed_jobs());
        assert_eq!(outcome.summary.failed, 0);
        // Each sink is dropped (and flushed) before its replication's
        // slot completes, so the buffers are final once `run` returns.
        let bufs = bufs.lock().unwrap();
        bufs.iter().map(|(k, v)| (*k, v.bytes())).collect()
    };
    let serial = traced(1);
    let parallel = traced(4);
    assert_eq!(serial.len(), 3 + 2 + 1 + 2, "one trace per replication");
    assert_eq!(serial, parallel);
    for bytes in serial.values() {
        assert!(!bytes.is_empty());
    }
}

#[test]
fn panicking_job_is_isolated() {
    // reps = 0 violates the runner's replication invariant and panics
    // inside the worker; the sweep must carry on and report it in place.
    let mut jobs = mixed_jobs();
    jobs.insert(1, SweepJob::new("poison", tiny(1), 0));
    let outcome = SweepRunner::new(4).run(jobs);
    assert_eq!(outcome.summary.runs, 5);
    assert_eq!(outcome.summary.failed, 1);
    let err = outcome.items[1].result.as_ref().unwrap_err();
    assert_eq!(err.index, 1);
    assert_eq!(err.label, "poison");
    assert!(err.message.contains("at least one replication"));
    // Every other slot completed, bit-identical to a clean sweep.
    let clean = SweepRunner::new(1).run(mixed_jobs());
    for (slot, clean_item) in [0usize, 2, 3, 4].into_iter().zip(&clean.items) {
        let got = outcome.items[slot].result.as_ref().unwrap();
        let want = clean_item.result.as_ref().unwrap();
        assert_eq!(
            got.response.mean.to_bits(),
            want.response.mean.to_bits(),
            "slot {slot} must be unaffected by the poisoned neighbour"
        );
    }
    // into_results refuses the whole sweep, naming the failed run.
    let errors = outcome.errors();
    assert_eq!(errors.len(), 1);
    assert!(outcome.into_results().is_err());
}

#[test]
fn replication_fanout_matches_serial_runner() {
    // The CLI's parallel `--reps` path: one single-replication job per
    // replication under the shared seed schedule must reproduce the
    // serial runner's reports and folded estimates exactly.
    let cfg = tiny(42);
    let serial = run_replicated(&cfg, 4);
    let jobs = (0..4)
        .map(|r| SweepJob::new(format!("rep{r}"), replication_config(&cfg, r), 1))
        .collect();
    let results = SweepRunner::new(4).run(jobs).into_results().unwrap();
    let folded =
        ReplicatedResult::from_reports(results.into_iter().flat_map(|r| r.reports).collect());
    assert_eq!(
        serial.response.mean.to_bits(),
        folded.response.mean.to_bits()
    );
    assert_eq!(
        serial.response.ci95.to_bits(),
        folded.response.ci95.to_bits()
    );
    assert_eq!(serial.log_ios.mean.to_bits(), folded.log_ios.mean.to_bits());
    assert_eq!(
        serial.hit_ratio.mean.to_bits(),
        folded.hit_ratio.mean.to_bits()
    );
    for (a, b) in serial.reports.iter().zip(&folded.reports) {
        assert_eq!(a.mean_response_s.to_bits(), b.mean_response_s.to_bits());
        assert_eq!(a.io, b.io);
    }
}
