//! Timeline sampling, placement auditing and Chrome trace export:
//! behavioural inertness of the new observers, determinism of the
//! sampled timeline under thread counts and zero-rate fault configs,
//! bounded retention of the audit and ring sinks, and structural
//! validity of the Chrome trace on a real run.

use semcluster::{
    run_simulation, run_simulation_observed, FaultConfig, ObsConfig, RunReport, SimConfig,
    SweepJob, SweepRunner,
};
use semcluster_buffer::{PrefetchScope, ReplacementPolicy};
use semcluster_clustering::{ClusteringPolicy, SplitPolicy};
use semcluster_obs::{shared, AuditKind, ChromeTraceSink, RingBufferSink, SharedBuf, SplitVerdict};
use semcluster_workload::{StructureDensity, WorkloadSpec};

fn base() -> SimConfig {
    SimConfig {
        database_bytes: 2 * 1024 * 1024,
        buffer_pages: 24,
        warmup_txns: 80,
        measured_txns: 300,
        ..SimConfig::default()
    }
}

/// A config that exercises every event source: clustering search,
/// splits, prefetch, context-sensitive replacement.
fn busy() -> SimConfig {
    let mut cfg = base();
    cfg.clustering = ClusteringPolicy::NoLimit;
    cfg.split = SplitPolicy::Linear;
    cfg.prefetch = PrefetchScope::WithinDatabase;
    cfg.replacement = ReplacementPolicy::ContextSensitive;
    cfg.workload = WorkloadSpec::new(StructureDensity::Med5, 2.0);
    cfg
}

fn assert_reports_equal(plain: &RunReport, observed: &RunReport) {
    assert_eq!(plain.mean_response_s, observed.mean_response_s);
    assert_eq!(plain.p95_response_s, observed.p95_response_s);
    assert_eq!(plain.response_us_total, observed.response_us_total);
    assert_eq!(plain.span_totals, observed.span_totals);
    assert_eq!(plain.io, observed.io);
    assert_eq!(plain.txns, observed.txns);
    assert_eq!(plain.lock_waits, observed.lock_waits);
    assert_eq!(plain.splits, observed.splits);
    assert_eq!(plain.recluster_moves, observed.recluster_moves);
}

/// Timeline sampling and placement auditing are pure observation: every
/// reported number is identical to the unobserved run.
#[test]
fn timeline_and_audit_are_inert() {
    let plain = run_simulation(busy());
    let (observed, obs) =
        run_simulation_observed(busy(), ObsConfig::default().timeline(500_000).audit(32));
    assert_reports_equal(&plain, &observed);
    let timeline = obs.timeline.expect("timeline sampling was on");
    assert!(!timeline.is_empty(), "a 300-txn run crosses sample points");
    assert!(!obs.audits.is_empty(), "a clustered run places objects");
}

/// The all-zero `none` fault preset is the inert default: the sampled
/// timeline is byte-identical with and without it.
#[test]
fn zero_rate_faults_leave_timeline_byte_identical() {
    let none = FaultConfig::preset("none").expect("none preset exists");
    assert_eq!(none, FaultConfig::default());
    let with_preset = SimConfig {
        faults: none,
        ..busy()
    };
    let obs = || ObsConfig::default().timeline(500_000);
    let (ra, oa) = run_simulation_observed(busy(), obs());
    let (rb, ob) = run_simulation_observed(with_preset, obs());
    assert_reports_equal(&ra, &rb);
    assert_eq!(
        oa.timeline.expect("sampled").to_json(),
        ob.timeline.expect("sampled").to_json()
    );
}

/// Sweep-level timelines are byte-identical at any worker-thread count.
#[test]
fn sweep_timeline_json_matches_across_jobs() {
    let jobs = || {
        vec![
            SweepJob::new("a", busy(), 2),
            SweepJob::new("b", SimConfig { seed: 77, ..busy() }, 2),
        ]
    };
    let serial = SweepRunner::new(1).with_timeline(1_000_000).run(jobs());
    let parallel = SweepRunner::new(4).with_timeline(1_000_000).run(jobs());
    assert_eq!(
        serial.timeline.expect("sampled").to_json(),
        parallel.timeline.expect("sampled").to_json()
    );
}

/// Timeline points carry physically sensible values: monotone
/// timestamps on interval boundaries, per-interval deltas bounded by
/// the run totals, and a locality fraction within [0, 1].
#[test]
fn timeline_points_are_sensible() {
    let (report, obs) = run_simulation_observed(busy(), ObsConfig::default().timeline(500_000));
    let timeline = obs.timeline.expect("sampled");
    let mut hits = 0u64;
    let mut commits = 0u64;
    let mut prev = 0u64;
    for (t_us, p) in timeline.points() {
        assert!(t_us > prev && t_us % 500_000 == 0, "aligned boundaries");
        prev = t_us;
        assert_eq!(p.runs, 1, "single run contributes one sample per point");
        assert!(p.loc_on_page <= p.loc_refs, "locality is a fraction");
        hits += p.hits;
        commits += p.commits;
    }
    // The timeline counts from t=0 (warmup included); the last partial
    // interval is never sampled, so commit deltas stay below the run's
    // full transaction count.
    assert!(hits > 0, "sampled interval saw buffer hits");
    assert!(commits <= report.txns + busy().warmup_txns);
    assert!(commits > 0, "sampled interval saw commits");
}

/// Placement audits describe real decisions: bounded retention keeps
/// the *last* N records, and every record is internally consistent.
#[test]
fn placement_audits_are_bounded_and_consistent() {
    let capacity = 8;
    let (_, obs) = run_simulation_observed(busy(), ObsConfig::default().audit(capacity));
    let audits = obs.audits;
    assert_eq!(audits.len(), capacity, "busy run overflows the sink");
    let mut prev = 0u64;
    for a in &audits {
        assert!(a.at.as_micros() >= prev, "records in decision order");
        prev = a.at.as_micros();
        match a.kind {
            AuditKind::Create => {
                // The landed page is the chosen page unless the search
                // appended or a split redirected the object.
                if let (Some(chosen), SplitVerdict::NotConsidered) = (a.chosen, a.split) {
                    assert_eq!(a.landed, chosen);
                }
            }
            AuditKind::Recluster => {
                assert!(a.chosen.is_some(), "recluster always has a target");
                assert!(a.score_milli > 0, "recluster only moves on gain");
            }
        }
        // Only non-resident examined pages cost I/O, so the charge is
        // bounded by (not equal to) the candidate count.
        assert!(a.search_ios as usize <= a.candidates.len());
        let json = a.to_json();
        assert!(json.starts_with("{\"t\":") && json.ends_with('}'));
    }
}

/// An engine-attached ring sink retains exactly the last `capacity`
/// events while counting everything it saw.
#[test]
fn engine_ring_sink_wraps_and_counts() {
    let ring = shared(RingBufferSink::with_capacity(64));
    let handle = ring.clone();
    let (report, _) = run_simulation_observed(busy(), ObsConfig::with_sink(Box::new(ring)));
    let sink = handle.borrow();
    assert_eq!(sink.len(), 64, "ring is full");
    assert!(
        sink.total_seen() > 64,
        "a busy run emits far more events than the ring holds"
    );
    // The survivors are the chronological tail of the stream.
    let mut prev = 0u64;
    for ev in sink.events() {
        assert!(ev.at().as_micros() >= prev);
        prev = ev.at().as_micros();
    }
    assert!(report.txns > 0);
}

/// A Chrome trace of a real run is a structurally valid JSON array:
/// balanced braces, the six process-name records (transactions,
/// data-disks, log-device, engine, profiler, serve-requests),
/// begin/end span parity
/// per user lane, and durations on every complete event.
#[test]
fn chrome_trace_of_real_run_is_wellformed() {
    let buf = SharedBuf::new();
    let (report, _) = run_simulation_observed(
        busy(),
        ObsConfig::with_sink(Box::new(ChromeTraceSink::new(buf.clone()))),
    );
    let text = String::from_utf8(buf.bytes()).expect("trace is UTF-8");
    assert!(text.starts_with("[\n"));
    assert!(text.ends_with("{}\n]\n"), "array closed exactly once");
    assert_eq!(text.matches('{').count(), text.matches('}').count());
    assert_eq!(text.matches("\"process_name\"").count(), 6);
    // Every transaction span opens and closes (commit or abort).
    let begins = text.matches("\"ph\":\"B\"").count();
    let ends = text.matches("\"ph\":\"E\"").count();
    assert_eq!(begins, ends);
    assert_eq!(
        begins as u64,
        report.txns + busy().warmup_txns,
        "one span per transaction"
    );
    // Complete events always carry a duration.
    for line in text.lines().filter(|l| l.contains("\"ph\":\"X\"")) {
        assert!(line.contains("\"dur\":"), "{line}");
    }
}
