//! Integration tests for the multi-client serve path: oracle-mode
//! byte-identity against the simulator, concurrent-mode ACID under
//! network chaos, graceful drain, deadline and malformed-frame
//! handling over real TCP, overload shedding, the 10k-session smoke,
//! and jobs-invariance of the chaos golden.

use std::net::TcpStream;
use std::time::Duration;

use semcluster::serve::{
    read_frame, write_frame, ErrorKind, Frame, LoadConfig, Request, Response, ServeConfig,
    ServeMode, Server, TxnOp, TxnRequest,
};
use semcluster::{run_simulation, SimConfig};
use semcluster_cli::{dispatch, Args};
use semcluster_faults::NetChaosConfig;

fn small_sim() -> SimConfig {
    SimConfig {
        database_bytes: 4 * 1024 * 1024,
        buffer_pages: 32,
        warmup_txns: 100,
        measured_txns: 300,
        ..SimConfig::default()
    }
}

fn send(stream: &mut TcpStream, req: &Request) {
    write_frame(stream, &req.encode()).expect("write frame");
}

fn recv(stream: &mut TcpStream) -> Response {
    let frame = read_frame(stream)
        .expect("read frame")
        .expect("peer closed mid-conversation");
    Response::parse(&frame).expect("parse response")
}

fn connect(addr: std::net::SocketAddr, sessions: u32) -> (TcpStream, u32) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("read timeout");
    send(&mut stream, &Request::Hello { sessions });
    match recv(&mut stream) {
        Response::HelloOk { first_session } => (stream, first_session),
        other => panic!("expected HelloOk, got {other:?}"),
    }
}

#[test]
fn oracle_report_is_byte_identical_to_the_simulator() {
    let cfg = small_sim();
    let expected = run_simulation(cfg.clone()).to_json();

    let handle = Server::start(
        ServeConfig {
            mode: ServeMode::Oracle(Box::new(cfg)),
            ..ServeConfig::default()
        },
        "127.0.0.1:0",
    )
    .expect("start oracle server");
    let (mut stream, session) = connect(handle.addr(), 1);
    // Step a prefix of the run over the wire, then ask for the report:
    // the server drives the remaining transactions itself, and the
    // bytes must equal a plain in-process `run_simulation`.
    for i in 0..5u64 {
        send(
            &mut stream,
            &Request::Txn(TxnRequest {
                session,
                client_txn: i,
                deadline_ms: 0,
                ops: vec![TxnOp {
                    write: true,
                    object: i as u32,
                }],
            }),
        );
        match recv(&mut stream) {
            Response::TxnOk {
                client_txn,
                completed,
                ..
            } => {
                assert_eq!(client_txn, i);
                assert_eq!(completed, i + 1, "oracle steps exactly one txn per TXN");
            }
            other => panic!("expected TxnOk, got {other:?}"),
        }
    }
    send(&mut stream, &Request::Report);
    match recv(&mut stream) {
        Response::ReportOk { json } => {
            assert_eq!(json, expected, "oracle REPORT drifted from run_simulation");
        }
        other => panic!("expected ReportOk, got {other:?}"),
    }
    send(&mut stream, &Request::Bye);
    assert!(matches!(recv(&mut stream), Response::ByeOk));
    handle.request_shutdown();
    let report = handle.join().expect("oracle drain");
    assert_eq!(report.acid_violations, 0);
    assert!(report.clean_drain);
}

#[test]
fn concurrent_chaos_load_drains_with_zero_acid_violations() {
    let handle = Server::start(ServeConfig::default(), "127.0.0.1:0").expect("start server");
    let summary = semcluster::serve::run_load(&LoadConfig {
        addr: handle.addr().to_string(),
        connections: 8,
        sessions_per_conn: 32,
        txns_per_session: 6,
        ops_per_txn: 4,
        chaos: NetChaosConfig::chaos(),
        pipeline: 8,
        seed: 1989,
        ..LoadConfig::default()
    })
    .expect("run load");
    assert!(summary.acked > 0, "chaos load acked nothing");
    handle.request_shutdown();
    let report = handle.join().expect("drain");
    assert_eq!(
        report.acid_violations, 0,
        "acked transactions must survive recovery even under network chaos"
    );
    assert!(report.clean_drain);
    assert!(
        report.acked <= report.committed,
        "every ack corresponds to a commit ({} acked, {} committed)",
        report.acked,
        report.committed
    );
}

#[test]
fn client_shutdown_frame_drains_the_server_gracefully() {
    let handle = Server::start(ServeConfig::default(), "127.0.0.1:0").expect("start server");
    let summary = semcluster::serve::run_load(&LoadConfig {
        addr: handle.addr().to_string(),
        connections: 4,
        sessions_per_conn: 16,
        txns_per_session: 4,
        pipeline: 8,
        seed: 7,
        shutdown_after: true,
        ..LoadConfig::default()
    })
    .expect("run load");
    assert!(summary.acked > 0);
    // The SHUTDOWN frame (connection 0) started the drain; join must
    // complete without an explicit request_shutdown.
    let report = handle.join().expect("client-initiated drain");
    assert!(report.clean_drain);
    assert_eq!(report.acid_violations, 0);
    assert!(report.acked <= report.committed);
}

#[test]
fn ten_thousand_concurrent_sessions_sustained() {
    let handle = Server::start(ServeConfig::default(), "127.0.0.1:0").expect("start server");
    let summary = semcluster::serve::run_load(&LoadConfig {
        addr: handle.addr().to_string(),
        connections: 50,
        sessions_per_conn: 200,
        txns_per_session: 1,
        ops_per_txn: 2,
        pipeline: 64,
        seed: 1989,
        ..LoadConfig::default()
    })
    .expect("run load");
    assert_eq!(summary.sessions, 10_000);
    assert!(
        summary.sessions_per_sec > 0.0,
        "sustained throughput must be reported"
    );
    handle.request_shutdown();
    let report = handle.join().expect("drain");
    assert_eq!(
        report.sessions_peak, 10_000,
        "all sessions live concurrently"
    );
    assert_eq!(report.acid_violations, 0);
}

#[test]
fn deadline_expires_mid_request_with_a_typed_error() {
    // A huge group-commit window makes every write commit take ≥300 ms;
    // a 30 ms deadline must fire first, as a typed DEADLINE error. The
    // transaction may still commit afterwards — committed-but-unacked
    // is legal; the verdict only forbids acked-but-not-durable.
    let handle = Server::start(
        ServeConfig {
            group_window_us: 300_000,
            ..ServeConfig::default()
        },
        "127.0.0.1:0",
    )
    .expect("start server");
    let (mut stream, session) = connect(handle.addr(), 1);
    send(
        &mut stream,
        &Request::Txn(TxnRequest {
            session,
            client_txn: 42,
            deadline_ms: 30,
            ops: vec![TxnOp {
                write: true,
                object: 5,
            }],
        }),
    );
    match recv(&mut stream) {
        Response::Error {
            kind,
            session: s,
            client_txn,
            ..
        } => {
            assert_eq!(kind, ErrorKind::DeadlineExceeded);
            assert_eq!(s, session);
            assert_eq!(client_txn, 42);
        }
        other => panic!("expected a DEADLINE error, got {other:?}"),
    }
    send(&mut stream, &Request::Bye);
    assert!(matches!(recv(&mut stream), Response::ByeOk));
    handle.request_shutdown();
    let report = handle.join().expect("drain");
    assert!(report.deadline_misses >= 1);
    assert_eq!(report.acid_violations, 0);
}

#[test]
fn malformed_frames_are_rejected_and_the_connection_closed() {
    let handle = Server::start(ServeConfig::default(), "127.0.0.1:0").expect("start server");
    let (mut stream, _) = connect(handle.addr(), 1);
    write_frame(
        &mut stream,
        &Frame {
            opcode: 0x7E,
            payload: vec![0xDE, 0xAD],
        },
    )
    .expect("write garbage frame");
    match recv(&mut stream) {
        Response::Error { kind, .. } => assert_eq!(kind, ErrorKind::Malformed),
        other => panic!("expected a MALFORMED error, got {other:?}"),
    }
    // The server drops the connection after a protocol violation.
    assert!(
        read_frame(&mut stream).expect("clean EOF").is_none(),
        "connection must close after a malformed frame"
    );
    handle.request_shutdown();
    let report = handle.join().expect("drain");
    assert!(report.malformed >= 1);
    assert_eq!(report.acid_violations, 0);
}

#[test]
fn admission_control_sheds_under_pressure_without_breaking_acid() {
    // One worker, a one-slot queue, and a slow commit window guarantee
    // the bounded queue fills; admission control must shed with typed
    // OVERLOADED errors rather than queueing unboundedly, and every
    // ack that does happen must still be durable.
    let handle = Server::start(
        ServeConfig {
            workers: 1,
            queue_cap: 1,
            group_window_us: 20_000,
            ..ServeConfig::default()
        },
        "127.0.0.1:0",
    )
    .expect("start server");
    let summary = semcluster::serve::run_load(&LoadConfig {
        addr: handle.addr().to_string(),
        connections: 4,
        sessions_per_conn: 8,
        txns_per_session: 8,
        deadline_ms: 30_000,
        pipeline: 32,
        seed: 11,
        ..LoadConfig::default()
    })
    .expect("run load");
    handle.request_shutdown();
    let report = handle.join().expect("drain");
    assert!(
        report.sheds > 0,
        "a one-slot queue under pipelined load must shed"
    );
    assert_eq!(summary.rejected_overloaded, report.sheds);
    assert_eq!(report.acid_violations, 0);
    assert!(report.acked <= report.committed);
}

#[test]
fn chaos_golden_matches_at_any_jobs_count() {
    // The committed chaos golden must verify unchanged regardless of
    // the thread count the suite is rendered with.
    for jobs in ["1", "7"] {
        let args = Args::parse(
            ["golden", "--suite", "chaos", "--jobs", jobs]
                .into_iter()
                .map(String::from),
        )
        .expect("parse args");
        let out = dispatch(&args).expect("chaos golden verifies");
        assert!(out.contains("golden OK"), "unexpected output: {out}");
    }
}
