//! Tier-1 contract of the deterministic phase profiler (DESIGN.md §13):
//! profiling must never perturb the simulation it measures, its
//! deterministic counters (calls, simulated time, allocation
//! accounting) must be byte-identical at any worker-thread count, the
//! timeline sampler's page-locality fold must stay allocation-free,
//! and `obs diff` must treat `--threshold` as a strict bound while
//! attributing regressions to the phases whose counters moved.

use std::hint::black_box;

use semcluster::{run_simulation_observed, ObsConfig, SimConfig, SweepRunner};
use semcluster_cli::commands::{
    is_zero_alloc_pinned, profile_golden_jobs, report_to_json, DEFAULT_TIMELINE_INTERVAL_US,
    ZERO_ALLOC_PIN_LEAVES,
};
use semcluster_cli::{dispatch, Args};
use semcluster_obs::allocation_counts;
use semcluster_workload::StructureDensity;

/// Register the same counting allocator the CLI binary uses, so the
/// allocation counts asserted below are real measurements, not the
/// all-zero placeholder of an uninstrumented binary.
#[global_allocator]
static ALLOC: semcluster_obs::CountingAlloc = semcluster_obs::CountingAlloc;

fn tiny(seed: u64) -> SimConfig {
    SimConfig {
        database_bytes: 2 * 1024 * 1024,
        buffer_pages: 24,
        warmup_txns: 40,
        measured_txns: 120,
        seed,
        ..SimConfig::default()
    }
    .with_workload(StructureDensity::Med5, 10.0)
}

fn parse(tokens: &[&str]) -> Args {
    Args::parse(tokens.iter().map(|s| s.to_string())).expect("valid flags")
}

#[test]
fn counting_allocator_is_registered_and_counts_bytes() {
    let (bytes_before, allocs_before) = allocation_counts();
    let v: Vec<u8> = black_box(Vec::with_capacity(4096));
    let (bytes_after, allocs_after) = allocation_counts();
    drop(v);
    assert!(
        bytes_after - bytes_before >= 4096,
        "expected the 4 KiB buffer to be counted, got {} bytes",
        bytes_after - bytes_before
    );
    assert!(allocs_after > allocs_before);
    // Frees must not decrement: the counters measure allocation
    // pressure, not live heap.
    let (bytes_final, _) = allocation_counts();
    assert!(bytes_final >= bytes_after);
}

/// Profiling on vs off: the simulation result must be byte-identical.
/// The profiler only ever observes — one drifting counter here would
/// mean the instrumentation itself changed engine behaviour.
#[test]
fn profiler_is_inert() {
    let (plain, _) = run_simulation_observed(tiny(42), ObsConfig::default());
    let (profiled, obs) = run_simulation_observed(tiny(42), ObsConfig::default().profile());
    assert_eq!(report_to_json(&plain), report_to_json(&profiled));
    let profile = obs.profile.expect("profiling was enabled");
    assert!(profile.get("run").is_some(), "missing root stack");
    assert!(
        profile.get("run;buffer_lookup").is_some(),
        "missing buffer_lookup stack"
    );
}

/// The golden sweep's merged profiles — calls, simulated time and
/// allocation counts — must not depend on the worker-thread count,
/// and every pinned hot-path leaf phase (page locality, placement
/// scoring, buffer lookup, event-queue pop) must be allocation-free
/// under the real counting allocator.
#[test]
fn profile_is_identical_at_any_thread_count() {
    let run = |threads: usize| {
        SweepRunner::new(threads)
            .with_timeline(DEFAULT_TIMELINE_INTERVAL_US)
            .with_profile()
            .run(profile_golden_jobs())
    };
    let serial = run(1);
    let parallel = run(4);
    assert_eq!(serial.items.len(), parallel.items.len());
    for (a, b) in serial.items.iter().zip(&parallel.items) {
        let pa = a.profile.as_ref().expect("profiled sweep");
        let pb = b.profile.as_ref().expect("profiled sweep");
        assert_eq!(
            pa.to_json(),
            pb.to_json(),
            "job {} profile drifted",
            a.label
        );
        for leaf in ZERO_ALLOC_PIN_LEAVES {
            let pinned: Vec<_> = pa
                .phases()
                .filter(|(path, _)| {
                    is_zero_alloc_pinned(path) && path.rsplit(';').next() == Some(*leaf)
                })
                .collect();
            assert!(!pinned.is_empty(), "job {}: no {leaf} stack", a.label);
            for (path, s) in pinned {
                assert!(s.calls > 0, "job {}: {path} never ran", a.label);
                assert_eq!(
                    (s.alloc_bytes, s.allocs),
                    (0, 0),
                    "job {}: pinned hot-path stack {path} allocated",
                    a.label
                );
            }
        }
    }
    let ma = serial.profile.expect("merged profile");
    let mb = parallel.profile.expect("merged profile");
    assert_eq!(ma.to_json(), mb.to_json());
}

/// `simulate --profile` puts only deterministic counters on stdout.
#[test]
fn simulate_profile_emits_schema_line() {
    let out = dispatch(&parse(&[
        "simulate",
        "--preset",
        "low3-5",
        "--txns",
        "60",
        "--buffer-pages",
        "16",
        "--profile",
    ]))
    .expect("simulate --profile runs");
    assert!(out.contains("\"profile_schema\":1"));
    assert!(out.contains("\"run;buffer_lookup\""));
    assert!(
        !out.contains("wall_ns"),
        "wall-clock material leaked onto stdout"
    );
}

/// Two synthetic bench-report snapshots whose single shared run moves
/// from 250 ms to 312.5 ms: exactly +25 % (both values are exact in
/// binary floating point, so the delta is exactly 25.0).
fn write_diff_fixtures(dir: &std::path::Path) -> (String, String) {
    std::fs::create_dir_all(dir).unwrap();
    let base = dir.join("base.json");
    let cur = dir.join("cur.json");
    std::fs::write(
        &base,
        concat!(
            "{\"bench_schema\":2,\"suite\":\"smoke\"}\n",
            "{\"job\":\"a\",\"rep\":0,\"report\":{\"mean_response_s\":0.250000}}\n",
            "{\"job\":\"a\",\"phase\":\"run\",\"calls\":2,\"sim_us\":500,\"alloc_bytes\":0,\"allocs\":0}\n",
            "{\"job\":\"a\",\"phase\":\"run;buffer_lookup\",\"calls\":10,\"sim_us\":100,\"alloc_bytes\":64,\"allocs\":2}\n",
        ),
    )
    .unwrap();
    std::fs::write(
        &cur,
        concat!(
            "{\"bench_schema\":2,\"suite\":\"smoke\"}\n",
            "{\"job\":\"a\",\"rep\":0,\"report\":{\"mean_response_s\":0.312500}}\n",
            "{\"job\":\"a\",\"phase\":\"run\",\"calls\":2,\"sim_us\":500,\"alloc_bytes\":0,\"allocs\":0}\n",
            "{\"job\":\"a\",\"phase\":\"run;buffer_lookup\",\"calls\":10,\"sim_us\":900,\"alloc_bytes\":4160,\"allocs\":66}\n",
        ),
    )
    .unwrap();
    (
        base.to_str().unwrap().to_string(),
        cur.to_str().unwrap().to_string(),
    )
}

#[test]
fn obs_diff_threshold_is_a_strict_bound() {
    let dir = std::env::temp_dir().join("semcluster-profile-test-boundary");
    let (base, cur) = write_diff_fixtures(&dir);
    // A regression of exactly the threshold passes (the contract is
    // strictly-greater-than)…
    let ok = dispatch(&parse(&["obs", "diff", &base, &cur, "--threshold", "25"]))
        .expect("exactly-at-threshold must pass");
    assert!(ok.contains("none slower"));
    // …and an epsilon tighter threshold fails.
    let err = dispatch(&parse(&[
        "obs",
        "diff",
        &base,
        &cur,
        "--threshold",
        "24.999",
    ]))
    .expect_err("above-threshold must fail");
    assert!(err.contains("REGRESSION"));
    assert!(err.contains("1 of 1 runs regressed"));
}

#[test]
fn obs_diff_attributes_regressions_to_phases() {
    let dir = std::env::temp_dir().join("semcluster-profile-test-attrib");
    let (base, cur) = write_diff_fixtures(&dir);
    let err = dispatch(&parse(&["obs", "diff", &base, &cur]))
        .expect_err("a +25 % regression fails the default 5 % threshold");
    // The failure names the phase whose counters moved: buffer_lookup
    // gained +800 sim_us and +4096 alloc_bytes, `run` moved not at all.
    assert!(err.contains("top phases"));
    assert!(err.contains("run;buffer_lookup"));
    assert!(err.contains("+800"));
    assert!(err.contains("+4096"));
}
