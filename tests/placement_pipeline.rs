//! Cross-crate pipeline tests below the engine: vdm → storage →
//! clustering → buffer, exercised directly.

use semcluster_buffer::{
    apply_prefetch, prefetch_group, AccessHint, BufferPool, PrefetchScope, ReplacementPolicy,
};
use semcluster_clustering::{
    execute_placement, plan_placement, plan_recluster, AllResident, ClusteringPolicy,
    PlacementTarget, WeightModel,
};
use semcluster_storage::{StorageManager, DEFAULT_PAGE_BYTES};
use semcluster_vdm::{RelKind, SyntheticDbSpec};

fn spec(seed: u64) -> SyntheticDbSpec {
    SyntheticDbSpec {
        modules: 6,
        depth: 3,
        fanout: (2, 4),
        correspondence_prob: 0.6,
        version_prob: 0.2,
        seed,
        ..SyntheticDbSpec::default()
    }
}

/// Affinity-load the whole database and measure configuration-edge
/// co-residency; compare with sequential append of a shuffled order.
#[test]
fn affinity_load_co_locates_related_objects() {
    let (db, _) = spec(11).build();
    let model = WeightModel::no_hints();

    let mut clustered = StorageManager::new(DEFAULT_PAGE_BYTES);
    // As the engine does on load: leave ~30 % slack on appended pages so
    // relatives placed later can join.
    let reserve = (DEFAULT_PAGE_BYTES - semcluster_storage::PAGE_OVERHEAD_BYTES) * 3 / 10;
    for obj in db.objects() {
        let size = obj.size_bytes();
        let plan = plan_placement(
            &db,
            &clustered,
            &AllResident,
            ClusteringPolicy::NoLimit,
            &model,
            obj.id,
            size,
        );
        match plan.target {
            PlacementTarget::Existing(page) => {
                clustered.place(obj.id, size, page).unwrap();
            }
            PlacementTarget::Append => {
                clustered.append_reserving(obj.id, size, reserve).unwrap();
            }
        }
    }

    let mut scattered = StorageManager::new(DEFAULT_PAGE_BYTES);
    // Stride order approximates interleaved arrival.
    let n = db.object_count();
    for k in 0..n {
        let idx = (k * 257) % n;
        let obj = db.get(semcluster_vdm::ObjectId(idx as u32)).unwrap();
        scattered.append(obj.id, obj.size_bytes()).unwrap();
    }

    let co_residency = |store: &StorageManager| {
        let mut co = 0usize;
        let mut total = 0usize;
        for (kind, a, b) in db.graph().edges() {
            if kind != RelKind::Configuration {
                continue;
            }
            total += 1;
            if store.co_resident(a, b) {
                co += 1;
            }
        }
        co as f64 / total as f64
    };
    let clustered_rate = co_residency(&clustered);
    let scattered_rate = co_residency(&scattered);
    assert!(
        clustered_rate > 0.25,
        "affinity load co-residency {clustered_rate:.2}"
    );
    assert!(
        clustered_rate > scattered_rate * 3.0,
        "clustered {clustered_rate:.2} vs scattered {scattered_rate:.2}"
    );
}

/// Reclustering a scattered store converges: repeated passes reduce total
/// broken configuration arcs monotonically (allowing small plateaus).
#[test]
fn reclustering_reduces_broken_arcs() {
    let (db, _) = spec(13).build();
    let model = WeightModel::no_hints();
    let mut store = StorageManager::new(DEFAULT_PAGE_BYTES);
    let n = db.object_count();
    for k in 0..n {
        let idx = (k * 131) % n;
        let obj = db.get(semcluster_vdm::ObjectId(idx as u32)).unwrap();
        store.append(obj.id, obj.size_bytes()).unwrap();
    }
    let broken = |store: &StorageManager| {
        db.graph()
            .edges()
            .filter(|&(_, a, b)| !store.co_resident(a, b))
            .count()
    };
    let before = broken(&store);
    let mut moves = 0;
    for pass in 0..3 {
        for i in 0..n {
            let id = semcluster_vdm::ObjectId(i as u32);
            if let Some(plan) = plan_recluster(
                &db,
                &store,
                &AllResident,
                ClusteringPolicy::NoLimit,
                &model,
                id,
                0.5,
            ) {
                if store.move_object(id, plan.to).is_ok() {
                    moves += 1;
                }
            }
        }
        let _ = pass;
    }
    let after = broken(&store);
    assert!(moves > 0, "reclustering should find moves");
    assert!(
        after < before,
        "broken arcs before {before}, after {after} ({moves} moves)"
    );
}

/// The prefetcher and the placement agree: after affinity load, a
/// composite's prefetch group is mostly co-resident (tiny groups), so
/// prefetch-within-database fetches few pages.
#[test]
fn prefetch_groups_shrink_after_clustering() {
    let (db, _) = spec(17).build();
    let model = WeightModel::no_hints();
    let mut store = StorageManager::new(DEFAULT_PAGE_BYTES);
    for obj in db.objects() {
        let size = obj.size_bytes();
        let plan = plan_placement(
            &db,
            &store,
            &AllResident,
            ClusteringPolicy::NoLimit,
            &model,
            obj.id,
            size,
        );
        execute_placement(&mut store, obj.id, size, &plan).unwrap();
    }
    let mut pool = BufferPool::new(16, ReplacementPolicy::ContextSensitive, 5);
    let mut total_group = 0usize;
    let mut composites = 0usize;
    for obj in db.objects() {
        if db.graph().downward_fanout(obj.id) == 0 {
            continue;
        }
        composites += 1;
        let group = prefetch_group(&db, &store, obj.id, AccessHint::ByConfiguration);
        total_group += group.len();
        let effect = apply_prefetch(&mut pool, &group, PrefetchScope::WithinDatabase);
        assert_eq!(effect.fetched.len() + effect.boosted, group.len());
    }
    let mean_group = total_group as f64 / composites as f64;
    assert!(
        mean_group < 2.0,
        "after clustering, prefetch groups should be small (got {mean_group:.2})"
    );
}

/// A full placement plan is executable exactly as planned: the chosen page
/// has room and the object lands there.
#[test]
fn plans_execute_as_stated() {
    let (db, _) = spec(23).build();
    let model = WeightModel::no_hints();
    let mut store = StorageManager::new(DEFAULT_PAGE_BYTES);
    for obj in db.objects() {
        let size = obj.size_bytes();
        let plan = plan_placement(
            &db,
            &store,
            &AllResident,
            ClusteringPolicy::IoLimit(2),
            &model,
            obj.id,
            size,
        );
        let landed = execute_placement(&mut store, obj.id, size, &plan).unwrap();
        match plan.target {
            PlacementTarget::Existing(p) => assert_eq!(landed, p),
            PlacementTarget::Append => {}
        }
        assert_eq!(store.page_of(obj.id), Some(landed));
    }
    assert_eq!(
        store.used_bytes(),
        db.objects().map(|o| o.size_bytes() as u64).sum::<u64>()
    );
}
