//! Workspace-spanning end-to-end tests: the full engine (vdm + storage +
//! buffer + clustering + wal + workload + sim) run under the paper's key
//! configurations, asserting the evaluation's qualitative shapes.

use semcluster::{run_replicated, run_simulation, SimConfig};
use semcluster_buffer::{PrefetchScope, ReplacementPolicy};
use semcluster_clustering::{ClusteringPolicy, SplitPolicy};
use semcluster_workload::{StructureDensity, WorkloadSpec};

fn small() -> SimConfig {
    SimConfig {
        database_bytes: 4 * 1024 * 1024,
        buffer_pages: 32,
        warmup_txns: 150,
        measured_txns: 700,
        ..SimConfig::default()
    }
}

#[test]
fn headline_clustering_gain_at_high_density_high_rw() {
    // Figure 5.1's headline: run-time clustering improves response time by
    // ~200% (≈3×) at high density + high read/write ratio.
    let base = small().with_workload(StructureDensity::High10, 100.0);
    let clustered = run_replicated(&base.clone().with_clustering(ClusteringPolicy::NoLimit), 2);
    let scattered = run_replicated(&base.with_clustering(ClusteringPolicy::NoCluster), 2);
    let gain = scattered.response.mean / clustered.response.mean;
    assert!(
        gain > 1.8,
        "clustering gain at hi10-100 only {gain:.2}× (want ≳2×)"
    );
}

#[test]
fn clustering_always_helps_at_rw_5_and_above() {
    // §5.1.1(a): run-time clustering (with I/O budget) always improves
    // response time for the reported workloads.
    for density in StructureDensity::ALL {
        for rw in [5.0, 100.0] {
            let mut base = small();
            base.workload = WorkloadSpec::new(density, rw);
            let clustered =
                run_simulation(base.clone().with_clustering(ClusteringPolicy::IoLimit(10)));
            let scattered = run_simulation(base.with_clustering(ClusteringPolicy::NoCluster));
            assert!(
                clustered.mean_response_s < scattered.mean_response_s * 1.05,
                "{density} rw={rw}: clustered {:.3} vs scattered {:.3}",
                clustered.mean_response_s,
                scattered.mean_response_s
            );
        }
    }
}

#[test]
fn within_buffer_degrades_toward_no_cluster_at_high_density() {
    // §5.1.1(c): clustering within the buffer pool degrades to the
    // No_Clustering case when structure density is high.
    let base = small().with_workload(StructureDensity::High10, 100.0);
    let within = run_replicated(
        &base.clone().with_clustering(ClusteringPolicy::WithinBuffer),
        2,
    );
    let none = run_replicated(
        &base.clone().with_clustering(ClusteringPolicy::NoCluster),
        2,
    );
    let unlimited = run_replicated(&base.with_clustering(ClusteringPolicy::NoLimit), 2);
    // Within-buffer sits far closer to no-clustering than to unlimited.
    let to_none = (within.response.mean - none.response.mean).abs();
    let to_unlimited = (within.response.mean - unlimited.response.mean).abs();
    assert!(
        to_none < to_unlimited,
        "within-buffer {:.3} vs none {:.3} vs unlimited {:.3}",
        within.response.mean,
        none.response.mean,
        unlimited.response.mean
    );
}

#[test]
fn io_limited_search_is_competitive_with_unbounded() {
    // §5.1.1(b): a small I/O limit performs better than or comparable to
    // no limit — "a low limit on I/O appears to be acceptable".
    let mut base = small();
    base.workload = WorkloadSpec::new(StructureDensity::Low3, 5.0);
    let limited = run_replicated(
        &base.clone().with_clustering(ClusteringPolicy::IoLimit(2)),
        2,
    );
    let unlimited = run_replicated(&base.with_clustering(ClusteringPolicy::NoLimit), 2);
    assert!(
        limited.response.mean <= unlimited.response.mean * 1.10,
        "2-IO-limit {:.4} should be ≤ ~unbounded {:.4}",
        limited.response.mean,
        unlimited.response.mean
    );
}

#[test]
fn smart_buffering_beats_naive_buffering() {
    // §5.2(a)+(c): context-sensitive + prefetch-within-DB best, LRU with
    // no prefetch worst.
    let mut base = small();
    base.workload = WorkloadSpec::new(StructureDensity::High10, 100.0);
    base.clustering = ClusteringPolicy::NoLimit;
    base.split = SplitPolicy::Linear;
    let smart = run_replicated(
        &base
            .clone()
            .with_replacement(ReplacementPolicy::ContextSensitive)
            .with_prefetch(PrefetchScope::WithinDatabase),
        2,
    );
    let naive = run_replicated(
        &base
            .with_replacement(ReplacementPolicy::Lru)
            .with_prefetch(PrefetchScope::None),
        2,
    );
    let gain = naive.response.mean / smart.response.mean;
    assert!(gain > 1.2, "smart-buffering gain only {gain:.2}×");
}

#[test]
fn prefetch_within_database_never_hurts_response() {
    // Figures 5.12–5.14: prefetch-within-database has the best response
    // under every replacement policy (its I/Os are asynchronous).
    for replacement in [
        ReplacementPolicy::ContextSensitive,
        ReplacementPolicy::Lru,
        ReplacementPolicy::Random,
    ] {
        let mut base = small();
        base.workload = WorkloadSpec::new(StructureDensity::Med5, 100.0);
        base.clustering = ClusteringPolicy::NoLimit;
        base.replacement = replacement;
        let with = run_simulation(base.clone().with_prefetch(PrefetchScope::WithinDatabase));
        let without = run_simulation(base.with_prefetch(PrefetchScope::None));
        assert!(
            with.mean_response_s <= without.mean_response_s * 1.05,
            "{replacement}: prefetch {:.4} vs none {:.4}",
            with.mean_response_s,
            without.mean_response_s
        );
    }
}

#[test]
fn split_policy_choice_has_minor_effect() {
    // §6: "different page splitting algorithms have little influence on
    // response time".
    let mut base = small();
    base.workload = WorkloadSpec::new(StructureDensity::Med5, 5.0);
    base.clustering = ClusteringPolicy::NoLimit;
    let responses: Vec<f64> = [
        SplitPolicy::NoSplit,
        SplitPolicy::Linear,
        SplitPolicy::Optimal,
    ]
    .into_iter()
    .map(|p| run_replicated(&base.clone().with_split(p), 2).response.mean)
    .collect();
    let max = responses.iter().cloned().fold(f64::MIN, f64::max);
    let min = responses.iter().cloned().fold(f64::MAX, f64::min);
    assert!(
        max / min < 1.5,
        "split policies diverge too much: {responses:?}"
    );
}

#[test]
fn full_stack_determinism() {
    let cfg = small()
        .with_workload(StructureDensity::Med5, 10.0)
        .with_clustering(ClusteringPolicy::IoLimit(2))
        .with_replacement(ReplacementPolicy::ContextSensitive)
        .with_prefetch(PrefetchScope::WithinDatabase)
        .with_split(SplitPolicy::Linear);
    let a = run_simulation(cfg.clone());
    let b = run_simulation(cfg);
    assert_eq!(a.mean_response_s, b.mean_response_s);
    assert_eq!(a.io, b.io);
    assert_eq!(a.log, b.log);
    assert_eq!(a.splits, b.splits);
    assert_eq!(a.recluster_moves, b.recluster_moves);
}

#[test]
fn paper_scale_configuration_is_wired() {
    // Do not *run* the 500 MB configuration in tests; just verify it
    // exposes the paper's Table 4.1 values.
    let cfg = SimConfig::paper_scale();
    assert_eq!(cfg.database_bytes, 500 * 1024 * 1024);
    assert_eq!(cfg.buffer_pages, 1000);
    assert_eq!(cfg.users, 10);
    assert_eq!(cfg.disks, 10);
}
