//! Cross-crate tests of the workload layer: OCT trace reconstruction and
//! the transaction generator against a synthetic database.

use semcluster_sim::SimRng;
use semcluster_vdm::SyntheticDbSpec;
use semcluster_workload::{
    analyze, gen_transaction, generate_trace, oct_tools, QueryKind, StructureDensity, TxnOp,
    WorkloadSpec,
};

#[test]
fn trace_reconstruction_matches_all_profile_dimensions() {
    let tools = oct_tools();
    let mut rng = SimRng::seed_from_u64(99);
    let trace = generate_trace(&tools, 60, &mut rng);
    assert_eq!(trace.len(), tools.len() * 60);
    let stats = analyze(&trace);
    for profile in &tools {
        let s = stats.iter().find(|s| s.tool == profile.name).unwrap();
        assert_eq!(s.invocations, 60);
        // I/O rate within 10 %.
        let rate_err = (s.io_rate() - profile.io_rate_per_s).abs() / profile.io_rate_per_s;
        assert!(rate_err < 0.1, "{}: io rate {rate_err:.3}", profile.name);
        // Density shares within 5 points.
        for (m, e) in s.density_shares.iter().zip(&profile.density_mix) {
            assert!((m - e).abs() < 0.05, "{}: density {m} vs {e}", profile.name);
        }
        // R/W within 25 % for estimable tools.
        if profile.rw_ratio <= 200.0 {
            let err = (s.rw_ratio() - profile.rw_ratio).abs() / profile.rw_ratio;
            assert!(err < 0.25, "{}: rw {err:.3}", profile.name);
        }
    }
}

#[test]
fn oct_rw_ordering_matches_figure_3_2() {
    // The relative ordering of the tools' R/W ratios is the figure's
    // content; verify the measured ordering matches the profiles'.
    let tools = oct_tools();
    let mut rng = SimRng::seed_from_u64(7);
    let trace = generate_trace(&tools, 80, &mut rng);
    let stats = analyze(&trace);
    let measured = |name: &str| {
        stats
            .iter()
            .find(|s| s.tool == name)
            .map(|s| s.rw_ratio())
            .unwrap()
    };
    assert!(measured("vem") > measured("mosaico"));
    assert!(measured("mosaico") > measured("misII"));
    assert!(measured("misII") > measured("sparcs"));
    assert!(measured("sparcs") > measured("cds"));
    assert!(measured("cds") > measured("atlas"));
    assert!(measured("atlas") < 1.0, "atlas writes more than it reads");
}

#[test]
fn generated_transactions_are_executable_against_db() {
    let (db, _) = SyntheticDbSpec::default().build();
    let spec = WorkloadSpec::new(StructureDensity::Med5, 5.0);
    let mut rng = SimRng::seed_from_u64(3);
    let mut reads = 0usize;
    let mut writes = 0usize;
    for _ in 0..2000 {
        let txn = gen_transaction(&db, &spec, &mut rng);
        assert!(!txn.ops.is_empty());
        if txn.is_read() {
            reads += 1;
            assert_eq!(txn.ops.len(), 1);
        } else {
            writes += 1;
        }
        for op in &txn.ops {
            match *op {
                TxnOp::Read { root, kind } => {
                    assert!(root.index() < db.object_count());
                    assert!(kind.is_read());
                }
                TxnOp::Create { anchor, .. } => {
                    assert!(anchor.index() < db.object_count());
                }
                TxnOp::Update { target } => {
                    assert!(target.index() < db.object_count());
                }
            }
        }
    }
    let ratio = reads as f64 / writes as f64;
    assert!((3.5..7.0).contains(&ratio), "rw ratio drifted: {ratio:.2}");
}

#[test]
fn query_taxonomy_is_complete() {
    // All seven §4.1 query types are reachable from the public API.
    let all = [
        QueryKind::SimpleLookup,
        QueryKind::ComponentRetrieval,
        QueryKind::CompositeRetrieval,
        QueryKind::DescendantRetrieval,
        QueryKind::AncestorRetrieval,
        QueryKind::CorrespondentRetrieval,
        QueryKind::Mutation,
    ];
    assert_eq!(all.iter().filter(|q| q.is_read()).count(), 6);
    assert_eq!(all.iter().filter(|q| q.is_structural()).count(), 5);
}
