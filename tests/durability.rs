//! Durable file-backend contract (DESIGN.md §15): the crash matrix run
//! against real files on disk finds zero ACID violations — including at
//! injected syscall-crash, torn-write and fsync-failure points — its
//! render is byte-identical at any worker thread count, and restart
//! recovery from a crashed directory is an idempotent byte-level no-op.

use semcluster::{run_crash_matrix, CrashMatrixConfig, CrashPoint, MatrixBackend, SimConfig};
use semcluster_faults::FsFaultConfig;
use semcluster_storage::{recover_dir, FilePageStore, WalOp, PAGES_FILE, WAL_FILE};

fn tiny_matrix(backend: MatrixBackend, jobs: usize) -> CrashMatrixConfig {
    let mut mc = CrashMatrixConfig::smoke();
    mc.cfg = SimConfig {
        database_bytes: 256 * 1024,
        buffer_pages: 8,
        warmup_txns: 3,
        measured_txns: 10,
        seed: 90,
        ..SimConfig::default()
    };
    mc.event_samples = 4;
    mc.mid_flush_samples = 2;
    mc.syscall_samples = 5;
    mc.fsync_fail_samples = 2;
    mc.backend = backend;
    mc.skip_physical_sync = true; // durability semantics kept; physical sync_all skipped
    mc.jobs = jobs;
    mc
}

#[test]
fn file_backend_matrix_is_violation_free_with_full_fault_coverage() {
    let report = run_crash_matrix(&tiny_matrix(MatrixBackend::File, 2));
    assert_eq!(report.violation_count(), 0, "{}", report.render());
    assert_eq!(report.backend, MatrixBackend::File);

    // The file backend must exercise every fault mode the sim backend
    // cannot: syscall crashes, torn partial-sector writes, and runs
    // that survive an injected fsync failure without acking.
    assert!(
        report
            .points
            .iter()
            .any(|p| matches!(p.point, CrashPoint::Syscall(_))),
        "no syscall crash points sampled"
    );
    assert!(
        report
            .points
            .iter()
            .any(|p| matches!(p.point, CrashPoint::FsyncFail(_))),
        "no fsync-failure points sampled"
    );
    assert!(
        report.points.iter().any(|p| p.torn_write),
        "no point tore its final write"
    );
    assert!(
        report.points.iter().any(|p| p.fsync_failed),
        "no run survived an injected fsync failure"
    );
    // Recovery actually did work somewhere: pages repaired from the
    // log or torn WAL tails truncated.
    assert!(
        report
            .points
            .iter()
            .any(|p| p.repaired_pages > 0 || p.wal_truncated > 0),
        "recovery never repaired or truncated anything"
    );
}

#[test]
fn crash_matrix_render_is_thread_count_invariant_on_both_backends() {
    for backend in [MatrixBackend::Sim, MatrixBackend::File] {
        let serial = run_crash_matrix(&tiny_matrix(backend, 1));
        let parallel = run_crash_matrix(&tiny_matrix(backend, 4));
        assert_eq!(
            serial.render(),
            parallel.render(),
            "{} matrix diverges across thread counts",
            backend.name()
        );
        assert_eq!(serial.violation_count(), 0, "{}", serial.render());
    }
}

#[test]
fn recovery_after_fsync_failure_never_surfaces_the_unacked_commit() {
    // fsyncgate end to end, against real files: a commit whose fsync
    // fails must not be acknowledged, and restart recovery must not
    // surface it as a winner even though its records may be on disk.
    let root = std::env::temp_dir().join(format!("semcluster-durab-gate-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let cfg = FsFaultConfig {
        // fsyncs 1-2 are the checkpoint (pages, wal); fsync 3 is the
        // first commit's log force.
        fsync_fail_at: vec![3],
        skip_physical_sync: true,
        ..FsFaultConfig::default()
    };
    let mut store = FilePageStore::create(&root, cfg).unwrap();
    store.checkpoint([(0u32, &[(1u32, 100u32)][..])]).unwrap();
    store
        .append_op(
            7,
            &WalOp::Place {
                object: 2,
                size: 50,
                page: 0,
            },
        )
        .unwrap();
    assert!(
        store.commit(7).is_err(),
        "commit must not ack a failed fsync"
    );
    assert!(
        store.commit(7).is_err(),
        "retrying on a poisoned handle must fail"
    );
    store.crash(false);

    let rec = recover_dir(&root).unwrap();
    assert!(rec.violations.is_empty(), "{:?}", rec.violations);
    assert!(
        !rec.winners.contains(&7),
        "unacked commit surfaced as a winner: {:?}",
        rec.winners
    );

    // Recovery is an idempotent byte-level no-op the second time.
    let bytes1 = (
        std::fs::read(root.join(PAGES_FILE)).unwrap(),
        std::fs::read(root.join(WAL_FILE)).unwrap(),
    );
    let again = recover_dir(&root).unwrap();
    let bytes2 = (
        std::fs::read(root.join(PAGES_FILE)).unwrap(),
        std::fs::read(root.join(WAL_FILE)).unwrap(),
    );
    assert_eq!(rec.pages, again.pages);
    assert_eq!(bytes1, bytes2);
    std::fs::remove_dir_all(&root).unwrap();
}
