//! Observability integration: determinism of traces and snapshots,
//! behavioural inertness of sinks, registry↔report reconciliation, and
//! the exact response-time attribution invariant.

use semcluster::{
    run_simulation, run_simulation_with_obs, ObsConfig, RunReport, SimConfig, SpanBreakdown,
};
use semcluster_buffer::{PrefetchScope, ReplacementPolicy};
use semcluster_clustering::{ClusteringPolicy, SplitPolicy};
use semcluster_obs::{JsonlSink, MetricsSnapshot, SharedBuf};
use semcluster_workload::{StructureDensity, WorkloadSpec};

fn base() -> SimConfig {
    SimConfig {
        database_bytes: 2 * 1024 * 1024,
        buffer_pages: 24,
        warmup_txns: 80,
        measured_txns: 300,
        ..SimConfig::default()
    }
}

/// A config that exercises every event source: clustering search,
/// splits, prefetch, context-sensitive replacement.
fn busy() -> SimConfig {
    let mut cfg = base();
    cfg.clustering = ClusteringPolicy::NoLimit;
    cfg.split = SplitPolicy::Linear;
    cfg.prefetch = PrefetchScope::WithinDatabase;
    cfg.replacement = ReplacementPolicy::ContextSensitive;
    cfg.workload = WorkloadSpec::new(StructureDensity::Med5, 2.0);
    cfg
}

fn traced_run(cfg: SimConfig) -> (RunReport, MetricsSnapshot, Vec<u8>) {
    let buf = SharedBuf::default();
    let sink = JsonlSink::new(buf.clone());
    let (report, snapshot) = run_simulation_with_obs(cfg, ObsConfig::with_sink(Box::new(sink)));
    let bytes = buf.bytes();
    (report, snapshot, bytes)
}

/// After a full engine run, `IoBreakdown::total()` must equal the sum of
/// the per-category fields. The exhaustive destructuring (no `..`) makes
/// this a compile-time tripwire: adding a category without updating
/// `total()` fails this test.
#[test]
fn io_breakdown_total_is_sum_of_categories() {
    let r = run_simulation(busy());
    let semcluster::IoBreakdown {
        data_reads,
        dirty_writebacks,
        log_ios,
        cluster_search_ios,
        prefetch_ios,
        split_ios,
    } = r.io;
    assert_eq!(
        r.io.total(),
        data_reads + dirty_writebacks + log_ios + cluster_search_ios + prefetch_ios + split_ios
    );
    assert!(r.io.total() > 0, "a busy run does physical I/O");
}

/// The metrics registry is a parallel set of books for the same events
/// the engine counts in `RunReport::io`; the two must reconcile exactly
/// over the measured interval.
#[test]
fn registry_counters_reconcile_with_report_io() {
    let (report, snapshot, _) = traced_run(busy());
    let c = |name: &str| snapshot.counter(name);
    assert_eq!(c("io.read.demand"), report.io.data_reads);
    assert_eq!(c("buffer.evict.dirty"), report.io.dirty_writebacks);
    assert_eq!(
        c("cluster.search.candidate_io"),
        report.io.cluster_search_ios
    );
    assert_eq!(c("prefetch.io"), report.io.prefetch_ios);
    assert_eq!(c("split.io"), report.io.split_ios);
    assert_eq!(
        c("wal.flush.before_image") + c("wal.flush.full") + c("wal.flush.commit"),
        report.io.log_ios
    );
    // Buffer counters mirror the pool's own books.
    assert_eq!(c("buffer.hit"), report.buffer.hits);
    assert_eq!(
        c("buffer.miss"),
        report.io.data_reads + report.io.cluster_search_ios
    );
    assert_eq!(c("lock.wait"), report.lock_waits);
    assert_eq!(c("cluster.split"), report.splits);
    assert_eq!(c("cluster.recluster.move"), report.recluster_moves);
}

/// Two runs of the same seed and configuration must emit byte-identical
/// JSONL traces and identical registry snapshots.
#[test]
fn same_seed_runs_are_byte_identical() {
    let (ra, sa, ta) = traced_run(busy());
    let (rb, sb, tb) = traced_run(busy());
    assert!(!ta.is_empty(), "trace captured events");
    assert_eq!(ta, tb, "same-seed traces must be byte-identical");
    assert_eq!(sa.to_json(), sb.to_json());
    assert_eq!(ra.mean_response_s, rb.mean_response_s);
    assert_eq!(ra.io, rb.io);
}

/// Different seeds must *not* produce the same trace (the determinism
/// above is per-seed, not degenerate).
#[test]
fn different_seed_runs_diverge() {
    let (_, _, ta) = traced_run(busy());
    let mut cfg = busy();
    cfg.seed = 1989;
    let (_, _, tb) = traced_run(cfg);
    assert_ne!(ta, tb);
}

/// Attaching a trace sink is a pure observation: every reported number
/// is identical to the untraced run.
#[test]
fn tracing_does_not_change_results() {
    let plain = run_simulation(busy());
    let (traced, _, trace) = traced_run(busy());
    assert!(!trace.is_empty());
    assert_eq!(plain.mean_response_s, traced.mean_response_s);
    assert_eq!(plain.p95_response_s, traced.p95_response_s);
    assert_eq!(plain.response_us_total, traced.response_us_total);
    assert_eq!(plain.span_totals, traced.span_totals);
    assert_eq!(plain.io, traced.io);
    assert_eq!(plain.txns, traced.txns);
    assert_eq!(plain.lock_waits, traced.lock_waits);
}

/// The per-transaction attribution is exact: the component totals sum to
/// the total measured response time, microsecond for microsecond.
#[test]
fn span_components_sum_to_response_time() {
    for cfg in [base(), busy()] {
        let r = run_simulation(cfg);
        let SpanBreakdown {
            cpu_us,
            data_read_us,
            dirty_flush_us,
            cluster_search_us,
            log_us,
            lock_wait_us,
        } = r.span_totals;
        assert_eq!(
            cpu_us + data_read_us + dirty_flush_us + cluster_search_us + log_us + lock_wait_us,
            r.response_us_total,
            "attribution must be exact"
        );
        assert!(r.response_us_total > 0);
        // The derived mean breakdown reconstructs the mean response.
        let err = (r.breakdown.response_total_s() - r.mean_response_s).abs();
        assert!(err < 1e-6, "breakdown drifts from mean response by {err}");
    }
}

/// Every trace line is a single JSON object with an integer simulated
/// timestamp and a known event type.
#[test]
fn trace_is_wellformed_jsonl() {
    let (report, _, bytes) = traced_run(busy());
    let text = String::from_utf8(bytes).expect("trace is UTF-8");
    let mut commits = 0u64;
    for line in text.lines() {
        assert!(line.starts_with("{\"t\":") && line.ends_with('}'), "{line}");
        let _t: u64 = line["{\"t\":".len()..]
            .split(',')
            .next()
            .unwrap()
            .parse()
            .expect("integer timestamp");
        assert!(line.contains("\"ev\":\""), "{line}");
        if line.contains("\"ev\":\"txn_commit\"") {
            commits += 1;
        }
    }
    // Every warmup + measured transaction commits exactly once.
    let cfg = busy();
    assert_eq!(commits, cfg.warmup_txns + cfg.measured_txns);
    let _ = report;
}
