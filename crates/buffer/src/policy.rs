//! Buffer replacement policies and access hints.

use std::fmt;

/// Replacement policy (Table 4.1, parameter K).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReplacementPolicy {
    /// Least-recently-used.
    Lru,
    /// Uniformly random victim.
    Random,
    /// Priority-based replacement where priorities reflect structural and
    /// inheritance relationships (the paper's smart buffer manager).
    ContextSensitive,
}

impl fmt::Display for ReplacementPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ReplacementPolicy::Lru => "LRU",
            ReplacementPolicy::Random => "Random",
            ReplacementPolicy::ContextSensitive => "Context-sensitive",
        };
        f.write_str(s)
    }
}

/// Prefetch policy (Table 4.1, parameter M).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PrefetchScope {
    /// No prefetching.
    None,
    /// Only adjust priorities of related pages *already* in the pool —
    /// never triggers I/O.
    WithinBuffer,
    /// Fetch related pages from anywhere in the database (extra I/Os).
    WithinDatabase,
}

impl fmt::Display for PrefetchScope {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PrefetchScope::None => "no-prefetch",
            PrefetchScope::WithinBuffer => "prefetch-within-buffer",
            PrefetchScope::WithinDatabase => "prefetch-within-DB",
        };
        f.write_str(s)
    }
}

/// A user-supplied access-pattern hint ("my primary access is via
/// configuration relationships"), registered at the start of a session
/// through the procedural interface.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AccessHint {
    /// No declared pattern.
    #[default]
    None,
    /// Walking the configuration hierarchy (simulators, routers).
    ByConfiguration,
    /// Walking version history (derivation-heavy sessions).
    ByVersionHistory,
    /// Browsing across representations (design browsers).
    ByCorrespondence,
    /// Dereferencing inherited attributes.
    ByInheritance,
}

impl fmt::Display for AccessHint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AccessHint::None => "none",
            AccessHint::ByConfiguration => "by-configuration",
            AccessHint::ByVersionHistory => "by-version-history",
            AccessHint::ByCorrespondence => "by-correspondence",
            AccessHint::ByInheritance => "by-inheritance",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names() {
        assert_eq!(
            ReplacementPolicy::ContextSensitive.to_string(),
            "Context-sensitive"
        );
        assert_eq!(
            PrefetchScope::WithinDatabase.to_string(),
            "prefetch-within-DB"
        );
        assert_eq!(AccessHint::ByConfiguration.to_string(), "by-configuration");
        assert_eq!(AccessHint::default(), AccessHint::None);
    }
}
