//! Relationship-directed prefetching.
//!
//! "Touching an object causes the page containing it and the pages
//! containing its immediate subcomponents to be brought into the buffer
//! pool and given the same high priority" (§2.2). The prefetch group is
//! chosen by the session's [`AccessHint`]; the [`PrefetchScope`] decides
//! whether missing members are fetched (within-database) or only resident
//! members are re-prioritised (within-buffer).

use crate::policy::{AccessHint, PrefetchScope};
use crate::pool::BufferPool;
use semcluster_storage::{PageId, StorageManager};
use semcluster_vdm::{Database, ObjectId};

/// What one prefetch application did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PrefetchEffect {
    /// Pages fetched from disk (each is one physical read).
    pub fetched: Vec<PageId>,
    /// Dirty pages written back by prefetch-triggered evictions.
    pub write_backs: Vec<PageId>,
    /// Resident pages whose priority was raised.
    pub boosted: usize,
}

impl PrefetchEffect {
    /// Physical I/Os implied (reads + write-backs).
    pub fn physical_ios(&self) -> usize {
        self.fetched.len() + self.write_backs.len()
    }
}

/// The pages holding the prefetch group of `object` under `hint`:
/// immediate subcomponents for configuration access, immediate ancestor +
/// descendants for version access, all correspondents for correspondence
/// access, providers + inheritors for inheritance access. The object's own
/// page is excluded (the caller just touched it). Pages are deduplicated,
/// unplaced objects skipped.
pub fn prefetch_group(
    db: &Database,
    store: &StorageManager,
    object: ObjectId,
    hint: AccessHint,
) -> Vec<PageId> {
    let graph = db.graph();
    let own = store.page_of(object);
    let mut related: Vec<ObjectId> = Vec::new();
    match hint {
        AccessHint::None => {}
        AccessHint::ByConfiguration => related.extend_from_slice(graph.components(object)),
        AccessHint::ByVersionHistory => {
            related.extend_from_slice(graph.ancestors(object));
            related.extend_from_slice(graph.descendants(object));
        }
        AccessHint::ByCorrespondence => related.extend_from_slice(graph.correspondents(object)),
        AccessHint::ByInheritance => {
            related.extend_from_slice(graph.providers(object));
            related.extend_from_slice(graph.inheritors(object));
        }
    }
    let mut pages: Vec<PageId> = related
        .into_iter()
        .filter_map(|o| store.page_of(o))
        .filter(|p| Some(*p) != own)
        .collect();
    pages.sort_unstable();
    pages.dedup();
    pages
}

/// Apply a prefetch group to the pool under `scope`.
pub fn apply_prefetch(
    pool: &mut BufferPool,
    group: &[PageId],
    scope: PrefetchScope,
) -> PrefetchEffect {
    let mut effect = PrefetchEffect::default();
    match scope {
        PrefetchScope::None => {}
        PrefetchScope::WithinBuffer => {
            for &page in group {
                if pool.contains(page) {
                    pool.refresh(page);
                    effect.boosted += 1;
                }
            }
        }
        PrefetchScope::WithinDatabase => {
            for &page in group {
                if pool.contains(page) {
                    pool.refresh(page);
                    effect.boosted += 1;
                } else {
                    if let Some(dirty) = pool.prefetch(page) {
                        effect.write_backs.push(dirty);
                    }
                    effect.fetched.push(page);
                }
            }
        }
    }
    effect
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::ReplacementPolicy;
    use semcluster_storage::DEFAULT_PAGE_BYTES;
    use semcluster_vdm::{ObjectName, RelFrequencies, RelKind, TypeLattice};

    /// A composite with two components and one correspondent, each placed
    /// on its own page.
    fn fixture() -> (Database, StorageManager, ObjectId, Vec<PageId>) {
        let mut lattice = TypeLattice::new();
        let layout = lattice
            .define_simple("layout", RelFrequencies::UNIFORM)
            .unwrap();
        let netlist = lattice
            .define_simple("netlist", RelFrequencies::UNIFORM)
            .unwrap();
        let mut db = Database::with_lattice(lattice);
        let root = db
            .create_object(ObjectName::new("TOP", 1, "layout"), layout, 100)
            .unwrap();
        let c1 = db
            .create_object(ObjectName::new("A", 1, "layout"), layout, 100)
            .unwrap();
        let c2 = db
            .create_object(ObjectName::new("B", 1, "layout"), layout, 100)
            .unwrap();
        let corr = db
            .create_object(ObjectName::new("TOP", 1, "netlist"), netlist, 100)
            .unwrap();
        db.relate(RelKind::Configuration, root, c1).unwrap();
        db.relate(RelKind::Configuration, root, c2).unwrap();
        db.relate(RelKind::Correspondence, root, corr).unwrap();

        let mut store = StorageManager::new(DEFAULT_PAGE_BYTES);
        let mut pages = Vec::new();
        for obj in [root, c1, c2, corr] {
            let pid = store.allocate_page();
            store.place(obj, 100, pid).unwrap();
            pages.push(pid);
        }
        (db, store, root, pages)
    }

    #[test]
    fn group_follows_hint() {
        let (db, store, root, pages) = fixture();
        let cfg = prefetch_group(&db, &store, root, AccessHint::ByConfiguration);
        assert_eq!(cfg, vec![pages[1], pages[2]]);
        let corr = prefetch_group(&db, &store, root, AccessHint::ByCorrespondence);
        assert_eq!(corr, vec![pages[3]]);
        assert!(prefetch_group(&db, &store, root, AccessHint::None).is_empty());
        assert!(prefetch_group(&db, &store, root, AccessHint::ByVersionHistory).is_empty());
    }

    #[test]
    fn own_page_excluded_and_deduped() {
        let (db, mut store, root, _) = fixture();
        // Re-place both components onto the root's page.
        let root_page = store.page_of(root).unwrap();
        let comps: Vec<_> = db.graph().components(root).to_vec();
        for c in comps {
            store.move_object(c, root_page).unwrap();
        }
        let group = prefetch_group(&db, &store, root, AccessHint::ByConfiguration);
        assert!(group.is_empty(), "co-resident components need no prefetch");
    }

    #[test]
    fn within_database_fetches_missing() {
        let (db, store, root, pages) = fixture();
        let mut pool = BufferPool::new(8, ReplacementPolicy::ContextSensitive, 0);
        let group = prefetch_group(&db, &store, root, AccessHint::ByConfiguration);
        let effect = apply_prefetch(&mut pool, &group, PrefetchScope::WithinDatabase);
        assert_eq!(effect.fetched, vec![pages[1], pages[2]]);
        assert_eq!(effect.boosted, 0);
        assert_eq!(effect.physical_ios(), 2);
        assert!(pool.contains(pages[1]) && pool.contains(pages[2]));
    }

    #[test]
    fn within_buffer_never_does_io() {
        let (db, store, root, pages) = fixture();
        let mut pool = BufferPool::new(8, ReplacementPolicy::ContextSensitive, 0);
        pool.access(pages[1]); // one component resident
        let group = prefetch_group(&db, &store, root, AccessHint::ByConfiguration);
        let effect = apply_prefetch(&mut pool, &group, PrefetchScope::WithinBuffer);
        assert!(effect.fetched.is_empty());
        assert_eq!(effect.boosted, 1);
        assert_eq!(effect.physical_ios(), 0);
        assert!(!pool.contains(pages[2]), "missing page not fetched");
    }

    #[test]
    fn none_scope_is_inert() {
        let (db, store, root, _) = fixture();
        let mut pool = BufferPool::new(8, ReplacementPolicy::Lru, 0);
        let group = prefetch_group(&db, &store, root, AccessHint::ByConfiguration);
        let effect = apply_prefetch(&mut pool, &group, PrefetchScope::None);
        assert_eq!(effect, PrefetchEffect::default());
        assert!(pool.is_empty());
    }
}
