//! # semcluster-buffer
//!
//! The object-oriented buffer manager of §2.2: a fixed-frame [`BufferPool`]
//! with three replacement policies (LRU, Random, and the paper's
//! **context-sensitive** priority scheme, where pages related to recently
//! touched objects are kept alive by priority boosts), plus
//! relationship-directed prefetching with a within-buffer or
//! within-database scope.
//!
//! ```
//! use semcluster_buffer::{Access, BufferPool, ReplacementPolicy};
//! use semcluster_storage::PageId;
//!
//! let mut pool = BufferPool::new(2, ReplacementPolicy::ContextSensitive, 0);
//! pool.access(PageId(1));
//! pool.access(PageId(2));
//! pool.boost(PageId(1)); // related to what the tool is navigating
//! pool.access(PageId(3)); // evicts p2, not the boosted p1
//! assert!(pool.contains(PageId(1)));
//! assert_eq!(pool.access(PageId(1)), Access::Hit);
//! ```

#![warn(missing_docs)]

mod locality;
mod policy;
mod pool;
mod prefetch;

pub use locality::resident_locality;
pub use policy::{AccessHint, PrefetchScope, ReplacementPolicy};
pub use pool::{Access, BufferPool, BufferStats};
pub use prefetch::{apply_prefetch, prefetch_group, PrefetchEffect};
