//! Folding a per-page locality measure over the resident set.
//!
//! The buffer pool knows *which* pages are in memory; the clustering
//! layer knows how to score one page's structural locality. This fold
//! composes the two without coupling the crates: the caller supplies the
//! per-page scorer, the pool supplies the resident set. The result is a
//! `(satisfied, total)` co-reference pair over everything resident —
//! the timeline sampler's clustering-locality signal.

use crate::pool::BufferPool;
use semcluster_storage::PageId;

/// Sum `per_page(page) -> (on_page, total)` over every resident page.
///
/// Iterates frames in a fixed deterministic order, and the sums are
/// commutative anyway, so the result is independent of residency
/// history beyond the resident set itself.
///
/// This fold runs inside the profiler's `page_locality` phase, whose
/// allocation count the profile golden pins to **zero**
/// (`golden --suite profile`): it must stay a pure walk over the
/// resident-pages slice — no buffering, no collecting.
pub fn resident_locality<F: FnMut(PageId) -> (u64, u64)>(
    pool: &BufferPool,
    mut per_page: F,
) -> (u64, u64) {
    let mut on_page = 0u64;
    let mut total = 0u64;
    for &page in pool.resident_pages() {
        let (on, all) = per_page(page);
        on_page += on;
        total += all;
    }
    (on_page, total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::ReplacementPolicy;

    #[test]
    fn folds_over_resident_pages_only() {
        let mut pool = BufferPool::new(2, ReplacementPolicy::Lru, 0);
        pool.access(PageId(1));
        pool.access(PageId(2));
        pool.access(PageId(3)); // evicts p1
        let mut seen = Vec::new();
        let (on, total) = resident_locality(&pool, |p| {
            seen.push(p);
            (1, 2)
        });
        assert_eq!(seen.len(), 2);
        assert!(!seen.contains(&PageId(1)));
        assert_eq!((on, total), (2, 4));
    }

    #[test]
    fn empty_pool_scores_zero() {
        let pool = BufferPool::new(4, ReplacementPolicy::Lru, 0);
        assert_eq!(resident_locality(&pool, |_| (1, 1)), (0, 0));
    }
}
