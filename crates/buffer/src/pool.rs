//! The buffer pool.
//!
//! A fixed number of page frames with pluggable replacement. All three
//! policies share one 64-bit *retention key* per frame:
//!
//! * **LRU** — key is the logical access tick; the oldest key is evicted.
//! * **Context-sensitive** — key is a priority: the access tick plus
//!   relationship boosts ([`BufferPool::boost`]); the lowest priority is
//!   evicted. Pages related to recently touched objects therefore survive
//!   even when their own last access is old — precisely the behaviour the
//!   paper wants ("the traditional LRU algorithm could easily choose these
//!   pages to be replaced").
//! * **Random** — a uniformly random resident page is evicted.
//!
//! ## Data-oriented layout (DESIGN.md §14)
//!
//! The pool is three dense arrays: `resident` (slot → page), `frames`
//! (slot → retention key / dirty / pins, parallel to `resident`) and
//! `page_slot` (page index → slot, `FREE_SLOT` when non-resident). Lookup
//! is one array index, touch is one store, and eviction is a linear
//! min-key scan over at most `capacity` frames — allocation-free and
//! cache-friendly, replacing the previous `DetHashMap` + `BTreeSet`
//! ordered index whose node churn dominated the `buffer_lookup` phase.
//! Victim choice is *provably identical* to the old ordered index: the
//! first unpinned entry of a `BTreeSet<(key, page)>` in ascending order
//! is exactly the minimum `(key, page)` over unpinned frames.

use crate::policy::ReplacementPolicy;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use semcluster_storage::PageId;

/// `page_slot` sentinel: the page is not resident.
const FREE_SLOT: u32 = u32::MAX;

/// Result of requesting a page through the pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// The page was resident; no physical I/O.
    Hit,
    /// The page was faulted in. `evicted_dirty` names a dirty page that
    /// had to be written back to make room (one extra physical write).
    Miss {
        /// Dirty page written back during eviction, if any.
        evicted_dirty: Option<PageId>,
    },
}

/// Counters the experiments report.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BufferStats {
    /// Logical page requests.
    pub requests: u64,
    /// Requests satisfied without I/O.
    pub hits: u64,
    /// Requests that faulted.
    pub misses: u64,
    /// Pages evicted.
    pub evictions: u64,
    /// Evictions that required a write-back.
    pub dirty_evictions: u64,
    /// Pages brought in by prefetching.
    pub prefetch_reads: u64,
    /// Priority boosts applied.
    pub boosts: u64,
}

impl BufferStats {
    /// Hit ratio over all requests (0 when idle).
    pub fn hit_ratio(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.hits as f64 / self.requests as f64
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Frame {
    key: u64,
    dirty: bool,
    pins: u32,
}

/// A fixed-capacity page buffer with pluggable replacement.
#[derive(Debug, Clone)]
pub struct BufferPool {
    capacity: usize,
    policy: ReplacementPolicy,
    /// Slot → frame state, parallel to `resident`.
    frames: Vec<Frame>,
    /// Slot → resident page, maintained by swap-remove on eviction.
    resident: Vec<PageId>,
    /// Page index → slot (`FREE_SLOT` when non-resident). Grown by
    /// [`BufferPool::ensure_page_capacity`] (callers should pre-grow
    /// outside hot loops) or on demand when an unseen page id arrives.
    page_slot: Vec<u32>,
    tick: u64,
    boost_amount: u64,
    rng: SmallRng,
    stats: BufferStats,
}

impl BufferPool {
    /// Create a pool of `capacity` frames. `seed` drives the Random
    /// policy's victim choice (ignored by the other policies).
    pub fn new(capacity: usize, policy: ReplacementPolicy, seed: u64) -> Self {
        assert!(capacity > 0, "buffer pool needs at least one frame");
        BufferPool {
            capacity,
            policy,
            frames: Vec::with_capacity(capacity),
            resident: Vec::with_capacity(capacity),
            page_slot: Vec::new(),
            tick: 0,
            // Default boost: half the pool's worth of ticks. Related pages
            // outlive roughly capacity/2 unrelated faults.
            boost_amount: (capacity as u64 / 2).max(1),
            rng: SmallRng::seed_from_u64(seed),
            stats: BufferStats::default(),
        }
    }

    /// Grow the page → slot index to cover `pages` page ids. Call from
    /// outside hot loops whenever the database may have grown; admitting
    /// an uncovered page id still works (the index self-grows) but that
    /// growth is then attributed to whatever phase it happens in.
    pub fn ensure_page_capacity(&mut self, pages: usize) {
        if self.page_slot.len() < pages {
            self.page_slot.resize(pages, FREE_SLOT);
        }
    }

    /// Slot of `page`, or `None` when non-resident.
    #[inline]
    fn slot_of(&self, page: PageId) -> Option<usize> {
        match self.page_slot.get(page.index()) {
            Some(&s) if s != FREE_SLOT => Some(s as usize),
            _ => None,
        }
    }

    /// Override the context-sensitive boost magnitude (in access ticks).
    pub fn set_boost_amount(&mut self, boost: u64) {
        self.boost_amount = boost.max(1);
    }

    /// Pool capacity in frames.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The replacement policy.
    pub fn policy(&self) -> ReplacementPolicy {
        self.policy
    }

    /// Number of resident pages.
    pub fn len(&self) -> usize {
        self.resident.len()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.resident.is_empty()
    }

    /// Whether `page` is resident.
    pub fn contains(&self, page: PageId) -> bool {
        self.slot_of(page).is_some()
    }

    /// Resident pages, unordered.
    pub fn resident_pages(&self) -> &[PageId] {
        &self.resident
    }

    /// Statistics so far.
    pub fn stats(&self) -> BufferStats {
        self.stats
    }

    /// Reset statistics (e.g. after warmup) without touching contents.
    pub fn reset_stats(&mut self) {
        self.stats = BufferStats::default();
    }

    /// Request `page` for reading or writing.
    pub fn access(&mut self, page: PageId) -> Access {
        self.tick += 1;
        self.stats.requests += 1;
        if let Some(slot) = self.slot_of(page) {
            self.stats.hits += 1;
            self.touch(slot);
            Access::Hit
        } else {
            self.stats.misses += 1;
            let evicted_dirty = self.admit(page, self.tick);
            Access::Miss { evicted_dirty }
        }
    }

    /// Bring `page` in as a prefetch (counted separately; same retention
    /// key as a direct access). Returns a dirty write-back if eviction was
    /// needed, and `None` in that slot when the page was already resident.
    pub fn prefetch(&mut self, page: PageId) -> Option<PageId> {
        if self.contains(page) {
            self.boost(page);
            return None;
        }
        self.tick += 1;
        self.stats.prefetch_reads += 1;
        self.admit(page, self.tick + self.boost_for_policy())
    }

    /// Raise the retention priority of a resident page because it is
    /// related to something just accessed. No-op for non-resident pages
    /// and (by design) for non-context-sensitive policies, where there is
    /// no priority to adjust.
    pub fn boost(&mut self, page: PageId) {
        if self.policy != ReplacementPolicy::ContextSensitive {
            return;
        }
        let Some(slot) = self.slot_of(page) else {
            return;
        };
        self.stats.boosts += 1;
        let new_key = self.tick + self.boost_amount;
        if new_key > self.frames[slot].key {
            self.frames[slot].key = new_key;
        }
    }

    /// Admit a freshly allocated (empty) page without counting a logical
    /// request or a fault — there is nothing on disk to read yet. Returns
    /// a dirty page written back to make room, if eviction was needed.
    /// No-op returning `None` when the page is already resident.
    pub fn install(&mut self, page: PageId) -> Option<PageId> {
        if self.contains(page) {
            return None;
        }
        self.tick += 1;
        self.admit(page, self.tick + self.boost_for_policy())
    }

    /// Record that a resident page is expected to be needed soon, without
    /// counting a logical request: context-sensitive pools boost its
    /// priority, LRU pools bump its recency, Random pools ignore it. This
    /// is the mechanism behind *prefetch within buffer*, which "does not
    /// create any extra logical I/Os \[but\] causes the buffer priority to
    /// be adjusted" (§2.2).
    pub fn refresh(&mut self, page: PageId) {
        match self.policy {
            ReplacementPolicy::ContextSensitive => self.boost(page),
            ReplacementPolicy::Lru => {
                if let Some(slot) = self.slot_of(page) {
                    self.stats.boosts += 1;
                    self.touch(slot);
                }
            }
            ReplacementPolicy::Random => {}
        }
    }

    /// Mark a resident page dirty (no-op when not resident — the caller
    /// should have accessed it first).
    pub fn mark_dirty(&mut self, page: PageId) {
        if let Some(slot) = self.slot_of(page) {
            self.frames[slot].dirty = true;
        }
    }

    /// Whether a resident page is dirty.
    pub fn is_dirty(&self, page: PageId) -> bool {
        self.slot_of(page)
            .map(|s| self.frames[s].dirty)
            .unwrap_or(false)
    }

    /// Clean a page after an explicit flush (checkpoint, commit force).
    pub fn mark_clean(&mut self, page: PageId) {
        if let Some(slot) = self.slot_of(page) {
            self.frames[slot].dirty = false;
        }
    }

    /// Pin a resident page: pinned pages are never chosen as eviction
    /// victims. Returns `false` when the page is not resident. Pins
    /// nest; match every pin with an [`BufferPool::unpin`].
    pub fn pin(&mut self, page: PageId) -> bool {
        match self.slot_of(page) {
            Some(slot) => {
                self.frames[slot].pins += 1;
                true
            }
            None => false,
        }
    }

    /// Release one pin.
    ///
    /// # Panics
    /// Panics when the page is not resident or not pinned — an unmatched
    /// unpin is always a caller bug.
    pub fn unpin(&mut self, page: PageId) {
        let slot = self.slot_of(page).expect("unpin of a non-resident page");
        let f = &mut self.frames[slot];
        assert!(f.pins > 0, "unpin without a matching pin");
        f.pins -= 1;
    }

    /// Current pin count of a page (0 when not resident).
    pub fn pin_count(&self, page: PageId) -> u32 {
        self.slot_of(page).map(|s| self.frames[s].pins).unwrap_or(0)
    }

    /// All dirty resident pages (for shutdown flushes).
    pub fn dirty_pages(&self) -> Vec<PageId> {
        self.resident
            .iter()
            .enumerate()
            .filter(|&(s, _)| self.frames[s].dirty)
            .map(|(_, &p)| p)
            .collect()
    }

    fn boost_for_policy(&self) -> u64 {
        if self.policy == ReplacementPolicy::ContextSensitive {
            self.boost_amount
        } else {
            0
        }
    }

    fn touch(&mut self, slot: usize) {
        let frame = &mut self.frames[slot];
        let new_key = match self.policy {
            // Recency update; context-sensitive keeps the larger of the
            // boosted key and the recency key.
            ReplacementPolicy::ContextSensitive => frame.key.max(self.tick),
            _ => self.tick,
        };
        frame.key = new_key;
    }

    /// Insert a non-resident page, evicting if needed. Returns the dirty
    /// page written back, if eviction hit one.
    fn admit(&mut self, page: PageId, key: u64) -> Option<PageId> {
        debug_assert!(!self.contains(page));
        let mut write_back = None;
        if self.resident.len() == self.capacity {
            let victim_slot = self.pick_victim_slot();
            let victim = self.resident[victim_slot];
            let frame = self.frames[victim_slot];
            self.page_slot[victim.index()] = FREE_SLOT;
            // O(1) removal: the last frame moves into the vacated slot.
            self.resident.swap_remove(victim_slot);
            self.frames.swap_remove(victim_slot);
            if victim_slot < self.resident.len() {
                let moved = self.resident[victim_slot];
                self.page_slot[moved.index()] = victim_slot as u32;
            }
            self.stats.evictions += 1;
            if frame.dirty {
                self.stats.dirty_evictions += 1;
                write_back = Some(victim);
            }
        }
        let slot = self.resident.len();
        self.resident.push(page);
        self.frames.push(Frame {
            key,
            dirty: false,
            pins: 0,
        });
        self.ensure_page_capacity(page.index() + 1);
        self.page_slot[page.index()] = slot as u32;
        write_back
    }

    /// Pick an unpinned victim slot.
    ///
    /// # Panics
    /// Panics when every frame is pinned — the pool cannot make progress
    /// and the caller has a pin leak.
    fn pick_victim_slot(&mut self) -> usize {
        match self.policy {
            ReplacementPolicy::Lru | ReplacementPolicy::ContextSensitive => {
                // Minimum (key, page) over unpinned frames — identical to
                // the first unpinned entry of an ascending ordered index.
                let mut best: Option<(u64, PageId, usize)> = None;
                for (slot, frame) in self.frames.iter().enumerate() {
                    if frame.pins != 0 {
                        continue;
                    }
                    let page = self.resident[slot];
                    let better = match best {
                        Some((bk, bp, _)) => (frame.key, page) < (bk, bp),
                        None => true,
                    };
                    if better {
                        best = Some((frame.key, page, slot));
                    }
                }
                best.expect("every frame is pinned").2
            }
            ReplacementPolicy::Random => {
                let start = self.rng.gen_range(0..self.resident.len());
                (0..self.resident.len())
                    .map(|off| (start + off) % self.resident.len())
                    .find(|&slot| self.frames[slot].pins == 0)
                    .expect("every frame is pinned")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: u32) -> PageId {
        PageId(i)
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut pool = BufferPool::new(2, ReplacementPolicy::Lru, 0);
        pool.access(p(1));
        pool.access(p(2));
        pool.access(p(1)); // 2 is now LRU
        pool.access(p(3));
        assert!(pool.contains(p(1)));
        assert!(!pool.contains(p(2)));
        assert!(pool.contains(p(3)));
    }

    #[test]
    fn hits_and_misses_counted() {
        let mut pool = BufferPool::new(4, ReplacementPolicy::Lru, 0);
        assert_eq!(
            pool.access(p(1)),
            Access::Miss {
                evicted_dirty: None
            }
        );
        assert_eq!(pool.access(p(1)), Access::Hit);
        let s = pool.stats();
        assert_eq!(s.requests, 2);
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 1);
        assert!((s.hit_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn dirty_eviction_reports_write_back() {
        let mut pool = BufferPool::new(1, ReplacementPolicy::Lru, 0);
        pool.access(p(1));
        pool.mark_dirty(p(1));
        assert!(pool.is_dirty(p(1)));
        let acc = pool.access(p(2));
        assert_eq!(
            acc,
            Access::Miss {
                evicted_dirty: Some(p(1))
            }
        );
        assert_eq!(pool.stats().dirty_evictions, 1);
    }

    #[test]
    fn context_sensitive_boost_protects_related_pages() {
        let mut pool = BufferPool::new(3, ReplacementPolicy::ContextSensitive, 0);
        pool.access(p(1)); // the related page, accessed long ago
        pool.access(p(2));
        pool.access(p(3));
        pool.boost(p(1)); // relationship keeps it alive
        pool.access(p(4)); // must evict someone
        assert!(pool.contains(p(1)), "boosted page survived");
        assert!(!pool.contains(p(2)), "oldest unboosted page evicted");
        assert_eq!(pool.stats().boosts, 1);
    }

    #[test]
    fn lru_ignores_boost() {
        let mut pool = BufferPool::new(2, ReplacementPolicy::Lru, 0);
        pool.access(p(1));
        pool.access(p(2));
        pool.boost(p(1));
        pool.access(p(3));
        assert!(!pool.contains(p(1)), "LRU has no priorities to boost");
        assert_eq!(pool.stats().boosts, 0);
    }

    #[test]
    fn random_policy_is_seeded_and_valid() {
        let mut a = BufferPool::new(3, ReplacementPolicy::Random, 7);
        let mut b = BufferPool::new(3, ReplacementPolicy::Random, 7);
        for i in 0..50 {
            let x = a.access(p(i % 10));
            let y = b.access(p(i % 10));
            assert_eq!(x, y, "same seed, same behaviour");
        }
        assert_eq!(a.len(), 3);
        assert_eq!(a.stats().evictions + 3, a.stats().misses);
    }

    #[test]
    fn prefetch_counts_separately_and_boosts_resident() {
        let mut pool = BufferPool::new(4, ReplacementPolicy::ContextSensitive, 0);
        assert_eq!(pool.prefetch(p(9)), None);
        assert!(pool.contains(p(9)));
        assert_eq!(pool.stats().prefetch_reads, 1);
        assert_eq!(pool.stats().misses, 0);
        // Prefetching a resident page just boosts it.
        pool.prefetch(p(9));
        assert_eq!(pool.stats().prefetch_reads, 1);
        assert_eq!(pool.stats().boosts, 1);
    }

    #[test]
    fn capacity_never_exceeded() {
        let mut pool = BufferPool::new(8, ReplacementPolicy::Random, 3);
        for i in 0..100 {
            pool.access(p(i));
            assert!(pool.len() <= 8);
        }
        assert_eq!(pool.len(), 8);
    }

    #[test]
    fn mark_clean_and_dirty_pages_listing() {
        let mut pool = BufferPool::new(4, ReplacementPolicy::Lru, 0);
        pool.access(p(1));
        pool.access(p(2));
        pool.mark_dirty(p(1));
        pool.mark_dirty(p(2));
        assert_eq!(pool.dirty_pages().len(), 2);
        pool.mark_clean(p(1));
        assert_eq!(pool.dirty_pages(), vec![p(2)]);
    }

    #[test]
    fn context_sensitive_recency_still_matters() {
        // Without any boosts, context-sensitive degenerates to LRU.
        let mut pool = BufferPool::new(2, ReplacementPolicy::ContextSensitive, 0);
        pool.access(p(1));
        pool.access(p(2));
        pool.access(p(1));
        pool.access(p(3));
        assert!(pool.contains(p(1)));
        assert!(!pool.contains(p(2)));
    }
}

#[cfg(test)]
mod pin_tests {
    use super::*;

    fn p(i: u32) -> PageId {
        PageId(i)
    }

    #[test]
    fn pinned_pages_survive_eviction_pressure() {
        for policy in [
            ReplacementPolicy::Lru,
            ReplacementPolicy::Random,
            ReplacementPolicy::ContextSensitive,
        ] {
            let mut pool = BufferPool::new(3, policy, 1);
            pool.access(p(1));
            assert!(pool.pin(p(1)));
            for i in 2..50 {
                pool.access(p(i));
                assert!(pool.contains(p(1)), "{policy}: pinned page evicted");
            }
            pool.unpin(p(1));
            for i in 50..100 {
                pool.access(p(i));
            }
            assert!(!pool.contains(p(1)), "{policy}: unpinned page kept forever");
        }
    }

    #[test]
    fn pins_nest() {
        let mut pool = BufferPool::new(2, ReplacementPolicy::Lru, 0);
        pool.access(p(1));
        pool.pin(p(1));
        pool.pin(p(1));
        assert_eq!(pool.pin_count(p(1)), 2);
        pool.unpin(p(1));
        pool.access(p(2));
        pool.access(p(3)); // must evict p2, not the still-pinned p1
        assert!(pool.contains(p(1)));
        pool.unpin(p(1));
        assert_eq!(pool.pin_count(p(1)), 0);
    }

    #[test]
    fn pin_of_non_resident_page_fails_softly() {
        let mut pool = BufferPool::new(2, ReplacementPolicy::Lru, 0);
        assert!(!pool.pin(p(9)));
        assert_eq!(pool.pin_count(p(9)), 0);
    }

    #[test]
    #[should_panic(expected = "matching pin")]
    fn unmatched_unpin_panics() {
        let mut pool = BufferPool::new(2, ReplacementPolicy::Lru, 0);
        pool.access(p(1));
        pool.unpin(p(1));
    }

    #[test]
    #[should_panic(expected = "every frame is pinned")]
    fn fully_pinned_pool_panics_on_miss() {
        let mut pool = BufferPool::new(2, ReplacementPolicy::Lru, 0);
        pool.access(p(1));
        pool.access(p(2));
        pool.pin(p(1));
        pool.pin(p(2));
        pool.access(p(3));
    }
}
