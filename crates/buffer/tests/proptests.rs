//! Property-based tests for the buffer manager.

use proptest::prelude::*;
use semcluster_buffer::{Access, BufferPool, ReplacementPolicy};
use semcluster_storage::PageId;
use std::collections::HashSet;

fn policies() -> impl Strategy<Value = ReplacementPolicy> {
    prop_oneof![
        Just(ReplacementPolicy::Lru),
        Just(ReplacementPolicy::Random),
        Just(ReplacementPolicy::ContextSensitive),
    ]
}

proptest! {
    /// Under any policy and access stream: capacity is never exceeded,
    /// counters are conserved, and a hit is reported iff the page was
    /// resident (checked against a reference set).
    #[test]
    fn pool_matches_reference_model(
        policy in policies(),
        capacity in 1usize..40,
        accesses in proptest::collection::vec(0u32..120, 1..500),
        seed in any::<u64>(),
    ) {
        let mut pool = BufferPool::new(capacity, policy, seed);
        let mut resident: HashSet<PageId> = HashSet::new();
        for &raw in &accesses {
            let page = PageId(raw);
            let was_resident = resident.contains(&page);
            match pool.access(page) {
                Access::Hit => prop_assert!(was_resident),
                Access::Miss { .. } => prop_assert!(!was_resident),
            }
            // The pool's own view is authoritative; keep ours in sync.
            resident = pool.resident_pages().iter().copied().collect();
            prop_assert!(pool.len() <= capacity);
            prop_assert!(resident.contains(&page), "just-accessed page resident");
        }
        let s = pool.stats();
        prop_assert_eq!(s.requests, accesses.len() as u64);
        prop_assert_eq!(s.hits + s.misses, s.requests);
        prop_assert_eq!(
            s.misses,
            s.evictions + pool.len() as u64,
            "every miss either grew the pool or evicted"
        );
    }

    /// Dirty write-backs are only ever reported for pages that were
    /// marked dirty, and a page re-admitted after eviction is clean.
    #[test]
    fn dirty_tracking_is_sound(
        policy in policies(),
        ops in proptest::collection::vec((0u32..30, any::<bool>()), 1..300),
        seed in any::<u64>(),
    ) {
        let mut pool = BufferPool::new(4, policy, seed);
        let mut dirty: HashSet<PageId> = HashSet::new();
        for &(raw, make_dirty) in &ops {
            let page = PageId(raw);
            match pool.access(page) {
                Access::Miss { evicted_dirty: Some(victim) } => {
                    prop_assert!(dirty.remove(&victim), "write-back of clean page {victim}");
                }
                Access::Miss { evicted_dirty: None } | Access::Hit => {}
            }
            // Evicted-clean pages leave the dirty set untouched; drop any
            // pages no longer resident.
            dirty.retain(|p| pool.contains(*p));
            if make_dirty {
                pool.mark_dirty(page);
                dirty.insert(page);
            }
            prop_assert_eq!(pool.is_dirty(page), dirty.contains(&page));
        }
        let mut listed = pool.dirty_pages();
        listed.sort();
        let mut expected: Vec<PageId> = dirty.into_iter().collect();
        expected.sort();
        prop_assert_eq!(listed, expected);
    }

    /// Boost/refresh/prefetch never change residency counts incorrectly
    /// and never exceed capacity.
    #[test]
    fn boost_refresh_preserve_residency(
        policy in policies(),
        ops in proptest::collection::vec((0u32..40, 0u8..4), 1..300),
        seed in any::<u64>(),
    ) {
        let mut pool = BufferPool::new(8, policy, seed);
        for &(raw, op) in &ops {
            let page = PageId(raw);
            let len_before = pool.len();
            match op {
                0 => {
                    pool.access(page);
                }
                1 => {
                    let resident = pool.contains(page);
                    pool.boost(page);
                    prop_assert_eq!(pool.contains(page), resident, "boost changed residency");
                    prop_assert_eq!(pool.len(), len_before);
                }
                2 => {
                    let resident = pool.contains(page);
                    pool.refresh(page);
                    prop_assert_eq!(pool.contains(page), resident, "refresh changed residency");
                    prop_assert_eq!(pool.len(), len_before);
                }
                _ => {
                    pool.prefetch(page);
                    prop_assert!(pool.contains(page), "prefetch admits");
                }
            }
            prop_assert!(pool.len() <= 8);
        }
    }
}
