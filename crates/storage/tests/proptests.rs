//! Property-based tests for the storage substrate.

use proptest::prelude::*;
use semcluster_storage::{DiskLayout, PageId, StorageManager, DEFAULT_PAGE_BYTES};
use semcluster_vdm::ObjectId;

proptest! {
    /// Bytes are conserved across append / move / remove sequences, the
    /// directory always agrees with page contents, and no page ever
    /// exceeds its capacity.
    #[test]
    fn storage_invariants(
        sizes in proptest::collection::vec(1u32..1500, 1..120),
        moves in proptest::collection::vec((0usize..120, 0u32..40), 0..60),
        removes in proptest::collection::vec(0usize..120, 0..30),
    ) {
        let mut store = StorageManager::new(DEFAULT_PAGE_BYTES);
        let mut live: std::collections::HashMap<ObjectId, u32> =
            std::collections::HashMap::new();
        for (i, &size) in sizes.iter().enumerate() {
            let id = ObjectId(i as u32);
            store.append(id, size).unwrap();
            live.insert(id, size);
        }
        for (obj_idx, page_raw) in moves {
            let id = ObjectId(obj_idx as u32);
            if !live.contains_key(&id) {
                continue;
            }
            let page = PageId(page_raw % store.page_count().max(1) as u32);
            let _ = store.move_object(id, page); // may fail when full; state must stay valid
        }
        for obj_idx in removes {
            let id = ObjectId(obj_idx as u32);
            if live.remove(&id).is_some() {
                store.remove(id).unwrap();
            }
        }
        // Conservation.
        let expected: u64 = live.values().map(|&s| s as u64).sum();
        prop_assert_eq!(store.used_bytes(), expected);
        // Directory/page agreement and capacity.
        for (&id, &size) in &live {
            let page = store.page_of(id).expect("live object is placed");
            let on_page = store
                .objects_on(page)
                .unwrap()
                .iter()
                .find(|&&(o, _)| o == id)
                .map(|&(_, s)| s);
            prop_assert_eq!(on_page, Some(size));
        }
        for p in 0..store.page_count() {
            let page = store.page(PageId(p as u32)).unwrap();
            prop_assert!(page.used() <= page.capacity());
            let sum: u32 = page.objects().iter().map(|&(_, s)| s).sum();
            prop_assert_eq!(sum, page.used());
        }
    }

    /// Sequential append never wastes more than one partially filled page
    /// beyond what object sizes force.
    #[test]
    fn append_packs_tightly(sizes in proptest::collection::vec(1u32..1000, 1..200)) {
        let mut store = StorageManager::new(DEFAULT_PAGE_BYTES);
        for (i, &size) in sizes.iter().enumerate() {
            store.append(ObjectId(i as u32), size).unwrap();
        }
        // Every page except possibly the cursor must have been too full
        // for the object that opened the next page; with max object 1000B
        // a page can never be left more than 1000B free when abandoned.
        let pages = store.page_count();
        for p in 0..pages.saturating_sub(1) {
            let page = store.page(PageId(p as u32)).unwrap();
            prop_assert!(page.free() < 1000, "page {p} abandoned with {} free", page.free());
        }
    }

    /// Disk striping is total and stable.
    #[test]
    fn striping_total(disks in 1u32..64, pages in proptest::collection::vec(any::<u32>(), 1..100)) {
        let layout = DiskLayout::new(disks);
        for &p in &pages {
            let d = layout.disk_of(PageId(p));
            prop_assert!(d < disks);
            prop_assert_eq!(d, layout.disk_of(PageId(p)));
        }
    }
}
