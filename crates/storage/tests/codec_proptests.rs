//! Property-based tests for the on-disk page/WAL codec and file-backend
//! restart recovery: encode/decode round-trips, CRC corruption
//! detection (every single-bit flip, every truncated tail), WAL prefix
//! scans, and recover-twice-is-a-no-op on randomized crash points.

use proptest::prelude::*;
use semcluster_faults::FsFaultConfig;
use semcluster_storage::{
    decode_page, encode_page, encode_wal_record, recover_dir, scan_wal, FilePageStore, PageRead,
    WalOp, DISK_PAGE_BYTES, MAX_DISK_SLOTS, PAGES_FILE, WAL_FILE,
};
use std::path::PathBuf;

/// Slot lists with unique object ids, built from generated sizes.
fn slots_from(sizes: &[u32]) -> Vec<(u32, u32)> {
    sizes
        .iter()
        .enumerate()
        .map(|(i, &s)| (1000 + i as u32, s))
        .collect()
}

/// A per-test scratch directory under the system temp dir. Removed on
/// success by the caller; a failed proptest case leaves it behind for
/// inspection (the path is embedded in the assertion message).
fn scratch(tag: &str, case: u64) -> PathBuf {
    let d = std::env::temp_dir().join(format!(
        "semcluster-codecprop-{tag}-{case}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&d);
    d
}

proptest! {
    /// Page images round-trip exactly through the on-disk codec.
    #[test]
    fn page_roundtrip(
        page in 0u32..4096,
        lsn in 0u64..u64::MAX / 2,
        sizes in proptest::collection::vec(1u32..2000, 0..64),
    ) {
        let slots = slots_from(&sizes);
        let buf = encode_page(page, lsn, &slots).unwrap();
        prop_assert_eq!(buf.len(), DISK_PAGE_BYTES as usize);
        prop_assert_eq!(
            decode_page(&buf),
            PageRead::Valid { page, lsn, slots }
        );
    }

    /// Sampled single-bit flips over randomly generated pages are never
    /// read back as valid. (The exhaustive all-32768-positions sweep on
    /// a fixed page is `every_single_bit_flip_is_detected` below.)
    #[test]
    fn random_bit_flips_are_detected(
        page in 0u32..4096,
        lsn in 0u64..u64::MAX / 2,
        sizes in proptest::collection::vec(1u32..2000, 0..64),
        bits in proptest::collection::vec(0usize..DISK_PAGE_BYTES as usize * 8, 1..48),
    ) {
        let buf = encode_page(page, lsn, &slots_from(&sizes)).unwrap();
        for bit in bits {
            let mut bad = buf.clone();
            bad[bit / 8] ^= 1 << (bit % 8);
            prop_assert_eq!(decode_page(&bad), PageRead::Torn, "bit {}", bit);
        }
    }

    /// A page truncated to any proper prefix is never read as valid,
    /// and the zero-padded variant (what a torn sector write leaves on
    /// disk) decodes as valid if and only if it is byte-identical to
    /// the original image.
    #[test]
    fn truncated_tails_are_detected(
        page in 0u32..4096,
        lsn in 0u64..u64::MAX / 2,
        sizes in proptest::collection::vec(1u32..2000, 1..64),
        cuts in proptest::collection::vec(0usize..DISK_PAGE_BYTES as usize, 1..32),
    ) {
        let slots = slots_from(&sizes);
        let buf = encode_page(page, lsn, &slots).unwrap();
        for cut in cuts {
            // Raw short buffer: wrong length, so never valid.
            let short = &buf[..cut];
            let read = decode_page(short);
            prop_assert!(
                matches!(read, PageRead::Torn | PageRead::Missing),
                "cut {} decoded as {:?}", cut, read
            );
            // Zero-padded back to a full sector-aligned slot.
            let mut padded = short.to_vec();
            padded.resize(DISK_PAGE_BYTES as usize, 0);
            let read = decode_page(&padded);
            if padded == buf {
                prop_assert_eq!(read, PageRead::Valid { page, lsn, slots: slots.clone() });
            } else {
                prop_assert_eq!(read, PageRead::Torn, "cut {}", cut);
            }
        }
    }

    /// Scanning a WAL cut at an arbitrary byte yields exactly the
    /// records that fit entirely before the cut, and accounts every
    /// remaining byte as an untrusted (to-be-truncated) tail.
    #[test]
    fn wal_prefix_scan_recovers_exactly_the_contained_records(
        txns in proptest::collection::vec(1u64..50, 1..40),
        cut_seed in 0u64..u64::MAX,
    ) {
        let mut wal = Vec::new();
        let mut ends = vec![0usize]; // record boundaries
        for (i, &txn) in txns.iter().enumerate() {
            let op = match i % 4 {
                0 => WalOp::Place { object: i as u32, size: 10 + i as u32, page: i as u32 % 8 },
                1 => WalOp::Touch { object: i as u32, size: 10, page: 0 },
                2 => WalOp::Commit,
                _ => WalOp::Move { object: i as u32, size: 5, from: 0, to: 1 },
            };
            wal.extend_from_slice(&encode_wal_record(i as u64 + 1, txn, &op));
            ends.push(wal.len());
        }
        let cut = (cut_seed % (wal.len() as u64 + 1)) as usize;
        let scan = scan_wal(&wal[..cut]);
        let contained = ends.iter().filter(|&&e| e > 0 && e <= cut).count();
        prop_assert_eq!(scan.records.len(), contained);
        prop_assert_eq!(scan.trusted_bytes as usize, ends[contained]);
        prop_assert_eq!(scan.truncated_bytes as usize, cut - ends[contained]);
        for (i, rec) in scan.records.iter().enumerate() {
            prop_assert_eq!(rec.lsn, i as u64 + 1);
            prop_assert_eq!(rec.txn, txns[i]);
        }
    }

    /// Restart recovery is idempotent at randomized crash points: a
    /// scripted run is killed at the k-th filesystem syscall (with a
    /// possibly-torn final write), and recovering the directory twice
    /// must produce identical outcomes, identical on-disk bytes, no
    /// invariant violations, and every acknowledged commit among the
    /// winners.
    #[test]
    fn recovery_is_idempotent_at_random_crash_points(
        crash_at in 1u64..120,
        tear in any::<bool>(),
        seed in 0u64..u64::MAX,
        script in proptest::collection::vec((1u32..400, 0u32..4, 0u32..3), 1..24),
    ) {
        let root = scratch("recover", crash_at ^ seed);
        let cfg = FsFaultConfig {
            seed,
            crash_at_syscall: Some(crash_at),
            skip_physical_sync: true,
            ..FsFaultConfig::default()
        };
        let mut store = FilePageStore::create(&root, cfg).unwrap();
        let mut acked: Vec<u64> = Vec::new();
        // The whole script is best-effort: the injected crash point
        // makes every call past syscall `crash_at` fail, and the run
        // simply stops there.
        let run = store.checkpoint([(0u32, &[(1u32, 100u32)][..])]);
        if run.is_ok() {
            'script: for (t, &(size, page, kind)) in script.iter().enumerate() {
                let txn = t as u64 + 10;
                let object = t as u32 + 500;
                if store.append_op(txn, &WalOp::Place { object, size, page }).is_err() {
                    break 'script;
                }
                match kind {
                    0 => {
                        if store.commit(txn).is_ok() {
                            acked.push(txn);
                        } else {
                            break 'script;
                        }
                    }
                    1 => {
                        if store.abort(txn).is_err() {
                            break 'script;
                        }
                    }
                    _ => {
                        if store.steal(page, &[(object, size)]).is_err() {
                            break 'script;
                        }
                    }
                }
            }
        }
        store.crash(tear);

        let rec1 = recover_dir(&root).unwrap();
        let bytes1 = (
            std::fs::read(root.join(PAGES_FILE)).unwrap_or_default(),
            std::fs::read(root.join(WAL_FILE)).unwrap_or_default(),
        );
        let rec2 = recover_dir(&root).unwrap();
        let bytes2 = (
            std::fs::read(root.join(PAGES_FILE)).unwrap_or_default(),
            std::fs::read(root.join(WAL_FILE)).unwrap_or_default(),
        );

        prop_assert!(rec1.violations.is_empty(), "{} {:?}", root.display(), rec1.violations);
        for txn in &acked {
            prop_assert!(
                rec1.winners.binary_search(txn).is_ok(),
                "{} acked commit {} lost (winners {:?})", root.display(), txn, rec1.winners
            );
        }
        // Second pass: nothing left to repair, nothing changes.
        prop_assert!(rec2.torn_pages.is_empty(), "{}", root.display());
        prop_assert!(rec2.repaired_pages.is_empty(), "{}", root.display());
        prop_assert_eq!(rec2.wal_truncated_bytes, 0);
        prop_assert_eq!(&rec1.winners, &rec2.winners);
        prop_assert_eq!(&rec1.aborted, &rec2.aborted);
        prop_assert_eq!(&rec1.losers, &rec2.losers);
        prop_assert_eq!(&rec1.pages, &rec2.pages);
        prop_assert_eq!(bytes1, bytes2, "recovery must be a byte-level no-op: {}", root.display());
        std::fs::remove_dir_all(&root).unwrap();
    }
}

/// The CRC (plus magic, length and zero-padding checks) catches a flip
/// of EVERY one of the 32768 bit positions in a representative page
/// image — exhaustive, not sampled.
#[test]
fn every_single_bit_flip_is_detected() {
    let slots: Vec<(u32, u32)> = (0..40).map(|i| (2000 + i, 64 + i)).collect();
    let buf = encode_page(17, 0x0123_4567_89AB, &slots).unwrap();
    for bit in 0..buf.len() * 8 {
        let mut bad = buf.clone();
        bad[bit / 8] ^= 1 << (bit % 8);
        assert_eq!(decode_page(&bad), PageRead::Torn, "flip at bit {bit}");
    }
}

/// Every truncate-and-zero-pad prefix of a full-payload page image is
/// detected — exhaustive over all 4096 cut points. A cut only ever
/// reads back as valid when zero-padding happened to reconstruct the
/// exact original bytes (the truncated tail was already zero).
#[test]
fn every_truncated_tail_is_detected() {
    let slots: Vec<(u32, u32)> = (0..MAX_DISK_SLOTS as u32).map(|i| (i, i + 1)).collect();
    let buf = encode_page(3, 99, &slots).unwrap();
    // Cut at 0 leaves the never-written all-zero slot, which reads as
    // `Missing`; every other cut must read as `Torn` unless padding
    // reconstructed the original image byte for byte.
    assert_eq!(decode_page(&vec![0u8; buf.len()]), PageRead::Missing);
    for cut in 1..buf.len() {
        let mut padded = buf[..cut].to_vec();
        padded.resize(buf.len(), 0);
        if padded == buf {
            continue;
        }
        assert_eq!(decode_page(&padded), PageRead::Torn, "cut at byte {cut}");
    }
}
