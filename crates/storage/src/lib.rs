//! # semcluster-storage
//!
//! The physical storage substrate under the clustering engine: slotted
//! [`Page`]s with exact capacity accounting, a [`StorageManager`] mapping
//! every object to its page (with directed placement, sequential append,
//! movement and removal), and the I/O subsystem's physical parameters
//! ([`DiskParams`], [`DiskLayout`]).
//!
//! No payload bytes are stored — the simulation study needs placement and
//! size accounting only — but the capacity arithmetic matches a real
//! slotted page, so overflow and page-splitting behave faithfully.
//!
//! ```
//! use semcluster_storage::{StorageManager, DEFAULT_PAGE_BYTES};
//! use semcluster_vdm::ObjectId;
//!
//! let mut store = StorageManager::new(DEFAULT_PAGE_BYTES);
//! let page = store.append(ObjectId(0), 400).unwrap();
//! store.append(ObjectId(1), 400).unwrap();
//! assert!(store.co_resident(ObjectId(0), ObjectId(1)));
//! assert_eq!(store.page_of(ObjectId(0)), Some(page));
//! ```

#![warn(missing_docs)]

pub mod codec;
mod disk;
mod filestore;
mod fsm;
mod page;
mod pagestore;
mod store;

pub use codec::{
    crc32, decode_page, decode_wal_record, encode_page, encode_wal_record, scan_wal, CodecError,
    PageRead, WalOp, WalRecord, WalScan, DISK_PAGE_BYTES, MAX_DISK_SLOTS,
};
pub use disk::{DiskLayout, DiskParams};
pub use filestore::{
    read_wal, recover_dir, FilePageStore, FileRecoveryOutcome, RecoveredPage, PAGES_FILE, WAL_FILE,
};
pub use fsm::FreeSpaceMap;
pub use page::{Page, PageError, PageId, DEFAULT_PAGE_BYTES, PAGE_OVERHEAD_BYTES};
pub use pagestore::{MemPageStore, PageStore, StoreError};
pub use store::{StorageError, StorageManager};
