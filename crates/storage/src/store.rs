//! The storage manager: pages + object directory.
//!
//! Tracks where every object lives, supports directed placement (for the
//! clustering engine), sequential append (the `No_Clustering` baseline),
//! object movement (reclustering, page splits) and page allocation.

use crate::page::{Page, PageError, PageId};
use semcluster_vdm::ObjectId;
use std::fmt;

/// Errors raised by the storage manager.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// Propagated page-level error.
    Page(PageError),
    /// The page id is not allocated.
    UnknownPage(PageId),
    /// The object has no placement.
    NotPlaced(ObjectId),
    /// The object already has a placement.
    AlreadyPlaced(ObjectId, PageId),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Page(e) => write!(f, "page error: {e}"),
            StorageError::UnknownPage(p) => write!(f, "unknown page {p}"),
            StorageError::NotPlaced(o) => write!(f, "object {o} has no placement"),
            StorageError::AlreadyPlaced(o, p) => write!(f, "object {o} already on {p}"),
        }
    }
}

impl std::error::Error for StorageError {}

impl From<PageError> for StorageError {
    fn from(e: PageError) -> Self {
        StorageError::Page(e)
    }
}

/// Physical placement state for the whole database.
#[derive(Debug, Clone)]
pub struct StorageManager {
    page_bytes: u32,
    pages: Vec<Page>,
    dir: Vec<Option<PageId>>,
    append_cursor: Option<PageId>,
}

impl StorageManager {
    /// Empty store with the given raw page size.
    pub fn new(page_bytes: u32) -> Self {
        StorageManager {
            page_bytes,
            pages: Vec::new(),
            dir: Vec::new(),
            append_cursor: None,
        }
    }

    /// Raw page size in bytes.
    pub fn page_bytes(&self) -> u32 {
        self.page_bytes
    }

    /// Number of allocated pages.
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// Allocate a fresh empty page.
    pub fn allocate_page(&mut self) -> PageId {
        let id = PageId(self.pages.len() as u32);
        self.pages.push(Page::new(id, self.page_bytes));
        id
    }

    /// Immutable page access.
    pub fn page(&self, id: PageId) -> Result<&Page, StorageError> {
        self.pages
            .get(id.index())
            .ok_or(StorageError::UnknownPage(id))
    }

    /// Where an object lives, if placed.
    pub fn page_of(&self, object: ObjectId) -> Option<PageId> {
        self.dir.get(object.index()).copied().flatten()
    }

    /// Whether two objects share a page.
    pub fn co_resident(&self, a: ObjectId, b: ObjectId) -> bool {
        match (self.page_of(a), self.page_of(b)) {
            (Some(pa), Some(pb)) => pa == pb,
            _ => false,
        }
    }

    /// Place a new object on a specific page.
    pub fn place(&mut self, object: ObjectId, size: u32, page: PageId) -> Result<(), StorageError> {
        if let Some(existing) = self.page_of(object) {
            return Err(StorageError::AlreadyPlaced(object, existing));
        }
        let p = self
            .pages
            .get_mut(page.index())
            .ok_or(StorageError::UnknownPage(page))?;
        p.insert(object, size)?;
        self.set_dir(object, Some(page));
        Ok(())
    }

    /// Place a new object at the sequential append cursor — the
    /// no-clustering baseline. Allocates a new page when the current one
    /// cannot hold the object.
    pub fn append(&mut self, object: ObjectId, size: u32) -> Result<PageId, StorageError> {
        if let Some(existing) = self.page_of(object) {
            return Err(StorageError::AlreadyPlaced(object, existing));
        }
        let target = match self.append_cursor {
            Some(pid) if self.pages[pid.index()].fits(size) => pid,
            _ => {
                let pid = self.allocate_page();
                self.append_cursor = Some(pid);
                pid
            }
        };
        self.pages[target.index()].insert(object, size)?;
        self.set_dir(object, Some(target));
        Ok(target)
    }

    /// Like [`StorageManager::append`] but opens a fresh page once the
    /// cursor page would be left with less than `reserve` free bytes — a
    /// clustering store keeps slack so related objects created later can
    /// join their relatives' pages.
    pub fn append_reserving(
        &mut self,
        object: ObjectId,
        size: u32,
        reserve: u32,
    ) -> Result<PageId, StorageError> {
        if let Some(existing) = self.page_of(object) {
            return Err(StorageError::AlreadyPlaced(object, existing));
        }
        let target = match self.append_cursor {
            Some(pid)
                if self.pages[pid.index()].fits(size)
                    && self.pages[pid.index()].free() - size >= reserve =>
            {
                pid
            }
            _ => {
                let pid = self.allocate_page();
                self.append_cursor = Some(pid);
                pid
            }
        };
        self.pages[target.index()].insert(object, size)?;
        self.set_dir(object, Some(target));
        Ok(target)
    }

    /// Remove an object entirely, returning the page it was on.
    pub fn remove(&mut self, object: ObjectId) -> Result<PageId, StorageError> {
        let page = self
            .page_of(object)
            .ok_or(StorageError::NotPlaced(object))?;
        self.pages[page.index()].remove(object)?;
        self.set_dir(object, None);
        Ok(page)
    }

    /// Move a placed object to another page. Returns the source page.
    /// Fails without state change if the destination cannot hold it.
    pub fn move_object(&mut self, object: ObjectId, to: PageId) -> Result<PageId, StorageError> {
        let from = self
            .page_of(object)
            .ok_or(StorageError::NotPlaced(object))?;
        if to.index() >= self.pages.len() {
            return Err(StorageError::UnknownPage(to));
        }
        if from == to {
            return Ok(from);
        }
        let size = self.pages[from.index()]
            .objects()
            .iter()
            .find(|&&(o, _)| o == object)
            .map(|&(_, s)| s)
            .expect("directory and page agree");
        // Check destination first so failure leaves the source intact.
        self.pages[to.index()].insert(object, size)?;
        self.pages[from.index()]
            .remove(object)
            .expect("object was resident");
        self.set_dir(object, Some(to));
        Ok(from)
    }

    /// Change an object's recorded size in place. Fails with
    /// [`PageError::Full`] (wrapped) if its page cannot absorb the growth;
    /// the caller decides whether to move or split.
    pub fn resize(&mut self, object: ObjectId, new_size: u32) -> Result<(), StorageError> {
        let page = self
            .page_of(object)
            .ok_or(StorageError::NotPlaced(object))?;
        self.pages[page.index()].resize(object, new_size)?;
        Ok(())
    }

    /// Objects resident on a page, with sizes.
    pub fn objects_on(&self, page: PageId) -> Result<&[(ObjectId, u32)], StorageError> {
        Ok(self.page(page)?.objects())
    }

    /// Total bytes stored.
    pub fn used_bytes(&self) -> u64 {
        self.pages.iter().map(|p| p.used() as u64).sum()
    }

    /// Mean fill factor over allocated pages (0 when no pages).
    pub fn mean_fill_factor(&self) -> f64 {
        if self.pages.is_empty() {
            0.0
        } else {
            self.pages.iter().map(Page::fill_factor).sum::<f64>() / self.pages.len() as f64
        }
    }

    fn set_dir(&mut self, object: ObjectId, page: Option<PageId>) {
        if object.index() >= self.dir.len() {
            self.dir.resize(object.index() + 1, None);
        }
        self.dir[object.index()] = page;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::DEFAULT_PAGE_BYTES;

    fn o(i: u32) -> ObjectId {
        ObjectId(i)
    }

    fn store() -> StorageManager {
        StorageManager::new(DEFAULT_PAGE_BYTES)
    }

    #[test]
    fn append_fills_then_advances() {
        let mut s = store();
        let cap = DEFAULT_PAGE_BYTES - crate::page::PAGE_OVERHEAD_BYTES;
        let p0 = s.append(o(0), cap - 100).unwrap();
        let p1 = s.append(o(1), 50).unwrap();
        assert_eq!(p0, p1, "second object fits the same page");
        let p2 = s.append(o(2), 200).unwrap();
        assert_ne!(p0, p2, "overflow opens a new page");
        assert_eq!(s.page_count(), 2);
        assert!(s.co_resident(o(0), o(1)));
        assert!(!s.co_resident(o(0), o(2)));
    }

    #[test]
    fn directed_placement() {
        let mut s = store();
        let p = s.allocate_page();
        s.place(o(7), 100, p).unwrap();
        assert_eq!(s.page_of(o(7)), Some(p));
        assert_eq!(
            s.place(o(7), 100, p),
            Err(StorageError::AlreadyPlaced(o(7), p))
        );
        assert!(matches!(
            s.place(o(8), 1, PageId(99)),
            Err(StorageError::UnknownPage(_))
        ));
    }

    #[test]
    fn move_object_updates_directory() {
        let mut s = store();
        let p0 = s.allocate_page();
        let p1 = s.allocate_page();
        s.place(o(1), 300, p0).unwrap();
        let from = s.move_object(o(1), p1).unwrap();
        assert_eq!(from, p0);
        assert_eq!(s.page_of(o(1)), Some(p1));
        assert_eq!(s.page(p0).unwrap().object_count(), 0);
        // Move to the same page is a no-op.
        assert_eq!(s.move_object(o(1), p1).unwrap(), p1);
    }

    #[test]
    fn failed_move_leaves_source_intact() {
        let mut s = store();
        let p0 = s.allocate_page();
        let p1 = s.allocate_page();
        let cap = s.page(p1).unwrap().capacity();
        s.place(o(1), 500, p0).unwrap();
        s.place(o(2), cap, p1).unwrap(); // p1 completely full
        assert!(s.move_object(o(1), p1).is_err());
        assert_eq!(s.page_of(o(1)), Some(p0));
        assert!(s.page(p0).unwrap().contains(o(1)));
    }

    #[test]
    fn remove_clears_placement() {
        let mut s = store();
        s.append(o(3), 100).unwrap();
        let page = s.remove(o(3)).unwrap();
        assert_eq!(s.page_of(o(3)), None);
        assert_eq!(s.page(page).unwrap().used(), 0);
        assert_eq!(s.remove(o(3)), Err(StorageError::NotPlaced(o(3))));
    }

    #[test]
    fn resize_propagates_page_errors() {
        let mut s = store();
        s.append(o(1), 100).unwrap();
        s.resize(o(1), 200).unwrap();
        assert_eq!(s.used_bytes(), 200);
        let huge = DEFAULT_PAGE_BYTES * 2;
        assert!(s.resize(o(1), huge).is_err());
    }

    #[test]
    fn fill_factor_accounting() {
        let mut s = store();
        assert_eq!(s.mean_fill_factor(), 0.0);
        s.append(o(1), 1000).unwrap();
        s.append(o(2), 1000).unwrap();
        assert!(s.mean_fill_factor() > 0.0);
        assert_eq!(s.used_bytes(), 2000);
    }
}
