//! Slotted pages.
//!
//! The simulation tracks object *placement*, not payload bytes: a page
//! records which objects live on it and how many bytes each occupies.
//! Capacity accounting is exact, so page-overflow (and therefore the
//! paper's page-splitting machinery) behaves like a real slotted page.

use semcluster_vdm::ObjectId;
use std::fmt;

/// Identifier of a physical page.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PageId(pub u32);

impl PageId {
    /// Array index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Default page size used throughout the paper's experiments (Table 4.1).
pub const DEFAULT_PAGE_BYTES: u32 = 4096;

/// Bytes of page header + per-slot overhead budget reserved per page.
pub const PAGE_OVERHEAD_BYTES: u32 = 96;

/// Errors raised by page mutation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PageError {
    /// The object does not fit in the remaining free space.
    Full {
        /// Object that did not fit.
        object: ObjectId,
        /// Its size in bytes.
        size: u32,
        /// Free bytes available.
        free: u32,
    },
    /// The object is already resident on this page.
    AlreadyResident(ObjectId),
    /// The object is not resident on this page.
    NotResident(ObjectId),
    /// Object larger than an empty page can ever hold.
    Oversized(ObjectId, u32),
}

impl fmt::Display for PageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PageError::Full { object, size, free } => {
                write!(f, "page full: {object} needs {size} B, {free} B free")
            }
            PageError::AlreadyResident(o) => write!(f, "{o} already on page"),
            PageError::NotResident(o) => write!(f, "{o} not on page"),
            PageError::Oversized(o, s) => write!(f, "{o} ({s} B) exceeds page capacity"),
        }
    }
}

impl std::error::Error for PageError {}

/// A page: a capacity and the objects resident on it.
#[derive(Debug, Clone)]
pub struct Page {
    id: PageId,
    capacity: u32,
    used: u32,
    slots: Vec<(ObjectId, u32)>,
}

impl Page {
    /// Create an empty page. `page_bytes` is the raw device page size; the
    /// usable capacity subtracts [`PAGE_OVERHEAD_BYTES`].
    pub fn new(id: PageId, page_bytes: u32) -> Self {
        assert!(
            page_bytes > PAGE_OVERHEAD_BYTES,
            "page smaller than its own overhead"
        );
        Page {
            id,
            capacity: page_bytes - PAGE_OVERHEAD_BYTES,
            used: 0,
            slots: Vec::new(),
        }
    }

    /// This page's id.
    pub fn id(&self) -> PageId {
        self.id
    }

    /// Usable capacity in bytes.
    pub fn capacity(&self) -> u32 {
        self.capacity
    }

    /// Bytes currently used.
    pub fn used(&self) -> u32 {
        self.used
    }

    /// Bytes still free.
    pub fn free(&self) -> u32 {
        self.capacity - self.used
    }

    /// Used fraction in `[0, 1]`.
    pub fn fill_factor(&self) -> f64 {
        self.used as f64 / self.capacity as f64
    }

    /// Number of resident objects.
    pub fn object_count(&self) -> usize {
        self.slots.len()
    }

    /// Whether `object` is resident.
    pub fn contains(&self, object: ObjectId) -> bool {
        self.slots.iter().any(|&(o, _)| o == object)
    }

    /// Whether an object of `size` bytes would fit.
    pub fn fits(&self, size: u32) -> bool {
        size <= self.free()
    }

    /// Insert an object.
    pub fn insert(&mut self, object: ObjectId, size: u32) -> Result<(), PageError> {
        if size > self.capacity {
            return Err(PageError::Oversized(object, size));
        }
        if self.contains(object) {
            return Err(PageError::AlreadyResident(object));
        }
        if !self.fits(size) {
            return Err(PageError::Full {
                object,
                size,
                free: self.free(),
            });
        }
        self.slots.push((object, size));
        self.used += size;
        Ok(())
    }

    /// Remove an object, returning its size.
    pub fn remove(&mut self, object: ObjectId) -> Result<u32, PageError> {
        let pos = self
            .slots
            .iter()
            .position(|&(o, _)| o == object)
            .ok_or(PageError::NotResident(object))?;
        let (_, size) = self.slots.swap_remove(pos);
        self.used -= size;
        Ok(size)
    }

    /// Change the recorded size of a resident object (object update).
    /// Fails without change if growth would overflow the page.
    pub fn resize(&mut self, object: ObjectId, new_size: u32) -> Result<(), PageError> {
        let pos = self
            .slots
            .iter()
            .position(|&(o, _)| o == object)
            .ok_or(PageError::NotResident(object))?;
        let old = self.slots[pos].1;
        let grow = new_size.saturating_sub(old);
        if grow > self.free() {
            return Err(PageError::Full {
                object,
                size: new_size,
                free: self.free() + old,
            });
        }
        self.slots[pos].1 = new_size;
        self.used = self.used - old + new_size;
        Ok(())
    }

    /// Resident objects as `(object, size)` pairs.
    pub fn objects(&self) -> &[(ObjectId, u32)] {
        &self.slots
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn o(i: u32) -> ObjectId {
        ObjectId(i)
    }

    #[test]
    fn insert_remove_roundtrip() {
        let mut p = Page::new(PageId(0), DEFAULT_PAGE_BYTES);
        p.insert(o(1), 100).unwrap();
        p.insert(o(2), 200).unwrap();
        assert_eq!(p.used(), 300);
        assert_eq!(p.object_count(), 2);
        assert!(p.contains(o(1)));
        assert_eq!(p.remove(o(1)).unwrap(), 100);
        assert_eq!(p.used(), 200);
        assert!(!p.contains(o(1)));
    }

    #[test]
    fn overflow_rejected_exactly() {
        let mut p = Page::new(PageId(0), DEFAULT_PAGE_BYTES);
        let cap = p.capacity();
        p.insert(o(1), cap - 10).unwrap();
        assert!(p.fits(10));
        assert!(!p.fits(11));
        assert!(matches!(
            p.insert(o(2), 11),
            Err(PageError::Full { free: 10, .. })
        ));
        p.insert(o(2), 10).unwrap();
        assert_eq!(p.free(), 0);
        assert_eq!(p.fill_factor(), 1.0);
    }

    #[test]
    fn duplicate_and_missing_objects() {
        let mut p = Page::new(PageId(0), DEFAULT_PAGE_BYTES);
        p.insert(o(1), 50).unwrap();
        assert_eq!(p.insert(o(1), 50), Err(PageError::AlreadyResident(o(1))));
        assert_eq!(p.remove(o(9)), Err(PageError::NotResident(o(9))));
    }

    #[test]
    fn oversized_object_rejected() {
        let mut p = Page::new(PageId(0), DEFAULT_PAGE_BYTES);
        assert!(matches!(
            p.insert(o(1), DEFAULT_PAGE_BYTES),
            Err(PageError::Oversized(_, _))
        ));
    }

    #[test]
    fn resize_tracks_usage() {
        let mut p = Page::new(PageId(0), DEFAULT_PAGE_BYTES);
        p.insert(o(1), 100).unwrap();
        p.resize(o(1), 150).unwrap();
        assert_eq!(p.used(), 150);
        p.resize(o(1), 50).unwrap();
        assert_eq!(p.used(), 50);
        let cap = p.capacity();
        assert!(p.resize(o(1), cap + 1).is_err());
        assert_eq!(p.used(), 50, "failed resize must not change state");
    }
}
