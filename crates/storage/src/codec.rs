//! On-disk formats for the durable backend: checksummed page images
//! and WAL records (DESIGN.md §15).
//!
//! ## Page image (fixed 4096-byte slot at offset `page_id * 4096`)
//!
//! ```text
//! +--------+---------+--------+-------------+--------+----------------+
//! | magic  | page id |  lsn   | payload_len |  crc   |    payload     |
//! | "SPG1" |  u32    |  u64   |    u32      |  u32   | count + slots  |
//! |  u32   |         |        |             |        |  (zero-padded) |
//! +--------+---------+--------+-------------+--------+----------------+
//!  0        4         8        16            20       24 .. 4096
//! ```
//!
//! The payload is `count: u32` followed by `count` `(object: u32,
//! size: u32)` pairs. The CRC (IEEE CRC-32) covers bytes 4..20 plus
//! the payload, so any single-bit flip anywhere meaningful — header or
//! payload — fails verification. An all-zero slot decodes as
//! [`PageRead::Missing`] (never written); anything else that fails the
//! magic, bounds or CRC checks is [`PageRead::Torn`].
//!
//! ## WAL record
//!
//! ```text
//! +--------+------+------+------+----+----+----+----+-------------+-----+---------+
//! | magic  | lsn  | txn  | kind | a  | b  | c  | d  | payload_len | crc | payload |
//! | "SWR1" | u64  | u64  | u8   |u32 |u32 |u32 |u32 |     u32     | u32 |         |
//! +--------+------+------+------+----+----+----+----+-------------+-----+---------+
//! ```
//!
//! Fixed 45-byte header; only [`WalOp::PageSnapshot`] carries a
//! payload (its slot list). [`scan_wal`] walks a byte buffer and stops
//! at the first short or corrupt record: everything after it is the
//! torn tail and recovery truncates it.

use std::fmt;

/// Size of one on-disk page slot.
pub const DISK_PAGE_BYTES: u32 = 4096;
/// Page header: magic + page id + lsn + payload_len + crc.
pub const PAGE_HEADER_BYTES: usize = 24;
/// Maximum `(object, size)` slots one on-disk page can carry.
pub const MAX_DISK_SLOTS: usize = (DISK_PAGE_BYTES as usize - PAGE_HEADER_BYTES - 4) / 8;
/// WAL record header length.
pub const WAL_HEADER_BYTES: usize = 45;

const PAGE_MAGIC: u32 = 0x5350_4731; // "SPG1"
const WAL_MAGIC: u32 = 0x5357_5231; // "SWR1"
/// Sanity bound on a WAL payload (a snapshot of a full page).
const MAX_WAL_PAYLOAD: u32 = DISK_PAGE_BYTES;

/// Errors from encoding on-disk structures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Page payload exceeds the fixed slot size.
    PageOverflow {
        /// Page being encoded.
        page: u32,
        /// Slots that were requested.
        slots: usize,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::PageOverflow { page, slots } => write!(
                f,
                "page {page} with {slots} slots exceeds the {DISK_PAGE_BYTES}-byte on-disk slot \
                 (max {MAX_DISK_SLOTS})"
            ),
        }
    }
}

impl std::error::Error for CodecError {}

// ---------------------------------------------------------------- CRC32

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut bit = 0;
        while bit < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            bit += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

/// IEEE CRC-32 (the zlib polynomial), dependency-free.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

fn put_u32(buf: &mut [u8], at: usize, v: u32) {
    buf[at..at + 4].copy_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut [u8], at: usize, v: u64) {
    buf[at..at + 8].copy_from_slice(&v.to_le_bytes());
}

fn get_u32(buf: &[u8], at: usize) -> u32 {
    u32::from_le_bytes([buf[at], buf[at + 1], buf[at + 2], buf[at + 3]])
}

fn get_u64(buf: &[u8], at: usize) -> u64 {
    let mut b = [0u8; 8];
    b.copy_from_slice(&buf[at..at + 8]);
    u64::from_le_bytes(b)
}

// ----------------------------------------------------------- page codec

/// What decoding one on-disk page slot yielded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PageRead {
    /// The slot was never written (all zero).
    Missing,
    /// A verified page image.
    Valid {
        /// Page id from the header (must match the slot position).
        page: u32,
        /// LSN the image was written at.
        lsn: u64,
        /// `(object, size)` slots.
        slots: Vec<(u32, u32)>,
    },
    /// The slot holds bytes that fail the magic/bounds/CRC checks —
    /// a torn or corrupt write. Recovery must repair it from the log.
    Torn,
}

/// Encode a page image into a fixed [`DISK_PAGE_BYTES`] buffer.
pub fn encode_page(page: u32, lsn: u64, slots: &[(u32, u32)]) -> Result<Vec<u8>, CodecError> {
    if slots.len() > MAX_DISK_SLOTS {
        return Err(CodecError::PageOverflow {
            page,
            slots: slots.len(),
        });
    }
    let mut buf = vec![0u8; DISK_PAGE_BYTES as usize];
    put_u32(&mut buf, 0, PAGE_MAGIC);
    put_u32(&mut buf, 4, page);
    put_u64(&mut buf, 8, lsn);
    let payload_len = 4 + 8 * slots.len() as u32;
    put_u32(&mut buf, 16, payload_len);
    let mut at = PAGE_HEADER_BYTES;
    put_u32(&mut buf, at, slots.len() as u32);
    at += 4;
    for &(object, size) in slots {
        put_u32(&mut buf, at, object);
        put_u32(&mut buf, at + 4, size);
        at += 8;
    }
    let crc = page_crc(&buf, payload_len as usize);
    put_u32(&mut buf, 20, crc);
    Ok(buf)
}

fn page_crc(buf: &[u8], payload_len: usize) -> u32 {
    let mut region = Vec::with_capacity(16 + payload_len);
    region.extend_from_slice(&buf[4..20]);
    region.extend_from_slice(&buf[PAGE_HEADER_BYTES..PAGE_HEADER_BYTES + payload_len]);
    crc32(&region)
}

/// Decode one on-disk page slot. Anything other than an exact
/// [`DISK_PAGE_BYTES`] buffer with a valid header and CRC is `Torn`
/// (or `Missing` for the all-zero never-written slot).
pub fn decode_page(buf: &[u8]) -> PageRead {
    if buf.len() != DISK_PAGE_BYTES as usize {
        return if buf.iter().all(|&b| b == 0) {
            PageRead::Missing
        } else {
            PageRead::Torn
        };
    }
    if buf.iter().all(|&b| b == 0) {
        return PageRead::Missing;
    }
    if get_u32(buf, 0) != PAGE_MAGIC {
        return PageRead::Torn;
    }
    let page = get_u32(buf, 4);
    let lsn = get_u64(buf, 8);
    let payload_len = get_u32(buf, 16) as usize;
    if payload_len < 4
        || payload_len > DISK_PAGE_BYTES as usize - PAGE_HEADER_BYTES
        || !(payload_len - 4).is_multiple_of(8)
    {
        return PageRead::Torn;
    }
    if get_u32(buf, 20) != page_crc(buf, payload_len) {
        return PageRead::Torn;
    }
    // Padding beyond the payload must be zero: a torn overwrite that
    // left stale bytes past a shorter valid payload is still detected.
    if buf[PAGE_HEADER_BYTES + payload_len..]
        .iter()
        .any(|&b| b != 0)
    {
        return PageRead::Torn;
    }
    let count = get_u32(buf, PAGE_HEADER_BYTES) as usize;
    if count != (payload_len - 4) / 8 {
        return PageRead::Torn;
    }
    let mut slots = Vec::with_capacity(count);
    let mut at = PAGE_HEADER_BYTES + 4;
    for _ in 0..count {
        slots.push((get_u32(buf, at), get_u32(buf, at + 4)));
        at += 8;
    }
    PageRead::Valid { page, lsn, slots }
}

// ------------------------------------------------------------ WAL codec

/// A logical WAL operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalOp {
    /// All pages up to this point are on disk (written at startup
    /// before any transaction runs); recovery needs nothing earlier.
    CheckpointEnd,
    /// In-place update of an object (size may change).
    Touch {
        /// Object updated.
        object: u32,
        /// Size after the update.
        size: u32,
        /// Page it lives on.
        page: u32,
    },
    /// An object was placed on a page.
    Place {
        /// Object placed.
        object: u32,
        /// Its size.
        size: u32,
        /// Destination page.
        page: u32,
    },
    /// An object was removed from a page.
    Remove {
        /// Object removed.
        object: u32,
        /// Its size at removal.
        size: u32,
        /// Page it was removed from.
        page: u32,
    },
    /// An object moved between pages (split or recluster).
    Move {
        /// Object moved.
        object: u32,
        /// Its size.
        size: u32,
        /// Source page.
        from: u32,
        /// Destination page.
        to: u32,
    },
    /// Transaction committed (durable once this record is fsynced).
    Commit,
    /// Transaction aborted.
    Abort,
    /// Full before-write image of a page, forced to the log before the
    /// page itself may be stolen (the WAL rule). Doubles as the repair
    /// source for torn page writes.
    PageSnapshot {
        /// Page snapshotted.
        page: u32,
        /// Its full slot list.
        slots: Vec<(u32, u32)>,
    },
}

impl WalOp {
    fn kind(&self) -> u8 {
        match self {
            WalOp::CheckpointEnd => 0,
            WalOp::Touch { .. } => 1,
            WalOp::Place { .. } => 2,
            WalOp::Remove { .. } => 3,
            WalOp::Move { .. } => 4,
            WalOp::Commit => 5,
            WalOp::Abort => 6,
            WalOp::PageSnapshot { .. } => 7,
        }
    }

    /// The page(s) this op touches, for LSN gating during replay.
    pub fn pages(&self) -> (Option<u32>, Option<u32>) {
        match *self {
            WalOp::Touch { page, .. }
            | WalOp::Place { page, .. }
            | WalOp::Remove { page, .. }
            | WalOp::PageSnapshot { page, .. } => (Some(page), None),
            WalOp::Move { from, to, .. } => (Some(from), Some(to)),
            WalOp::CheckpointEnd | WalOp::Commit | WalOp::Abort => (None, None),
        }
    }
}

/// One decoded WAL record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    /// Log sequence number (strictly increasing).
    pub lsn: u64,
    /// Owning transaction (0 = system work: checkpoints, snapshots).
    pub txn: u64,
    /// The operation.
    pub op: WalOp,
}

/// Encode one WAL record.
pub fn encode_wal_record(lsn: u64, txn: u64, op: &WalOp) -> Vec<u8> {
    let (a, b, c, d, payload): (u32, u32, u32, u32, Vec<u8>) = match op {
        WalOp::CheckpointEnd | WalOp::Commit | WalOp::Abort => (0, 0, 0, 0, Vec::new()),
        WalOp::Touch { object, size, page }
        | WalOp::Place { object, size, page }
        | WalOp::Remove { object, size, page } => (*object, *size, *page, 0, Vec::new()),
        WalOp::Move {
            object,
            size,
            from,
            to,
        } => (*object, *size, *from, *to, Vec::new()),
        WalOp::PageSnapshot { page, slots } => {
            let mut p = Vec::with_capacity(4 + 8 * slots.len());
            p.extend_from_slice(&(slots.len() as u32).to_le_bytes());
            for &(object, size) in slots {
                p.extend_from_slice(&object.to_le_bytes());
                p.extend_from_slice(&size.to_le_bytes());
            }
            (*page, 0, 0, 0, p)
        }
    };
    let mut buf = vec![0u8; WAL_HEADER_BYTES + payload.len()];
    put_u32(&mut buf, 0, WAL_MAGIC);
    put_u64(&mut buf, 4, lsn);
    put_u64(&mut buf, 12, txn);
    buf[20] = op.kind();
    put_u32(&mut buf, 21, a);
    put_u32(&mut buf, 25, b);
    put_u32(&mut buf, 29, c);
    put_u32(&mut buf, 33, d);
    put_u32(&mut buf, 37, payload.len() as u32);
    buf[WAL_HEADER_BYTES..].copy_from_slice(&payload);
    let crc = wal_crc(&buf, payload.len());
    put_u32(&mut buf, 41, crc);
    buf
}

fn wal_crc(buf: &[u8], payload_len: usize) -> u32 {
    let mut region = Vec::with_capacity(37 + payload_len);
    region.extend_from_slice(&buf[4..41]);
    region.extend_from_slice(&buf[WAL_HEADER_BYTES..WAL_HEADER_BYTES + payload_len]);
    crc32(&region)
}

/// Decode the record at the start of `buf`. Returns the record and the
/// bytes it consumed, or `None` if the prefix is short or corrupt.
pub fn decode_wal_record(buf: &[u8]) -> Option<(WalRecord, usize)> {
    if buf.len() < WAL_HEADER_BYTES || get_u32(buf, 0) != WAL_MAGIC {
        return None;
    }
    let lsn = get_u64(buf, 4);
    let txn = get_u64(buf, 12);
    let kind = buf[20];
    let a = get_u32(buf, 21);
    let b = get_u32(buf, 25);
    let c = get_u32(buf, 29);
    let d = get_u32(buf, 33);
    let payload_len = get_u32(buf, 37);
    if payload_len > MAX_WAL_PAYLOAD {
        return None;
    }
    let total = WAL_HEADER_BYTES + payload_len as usize;
    if buf.len() < total {
        return None;
    }
    if get_u32(buf, 41) != wal_crc(buf, payload_len as usize) {
        return None;
    }
    let op = match kind {
        0 => WalOp::CheckpointEnd,
        1 => WalOp::Touch {
            object: a,
            size: b,
            page: c,
        },
        2 => WalOp::Place {
            object: a,
            size: b,
            page: c,
        },
        3 => WalOp::Remove {
            object: a,
            size: b,
            page: c,
        },
        4 => WalOp::Move {
            object: a,
            size: b,
            from: c,
            to: d,
        },
        5 => WalOp::Commit,
        6 => WalOp::Abort,
        7 => {
            let payload = &buf[WAL_HEADER_BYTES..total];
            if payload.len() < 4 {
                return None;
            }
            let count = get_u32(payload, 0) as usize;
            if payload.len() != 4 + 8 * count {
                return None;
            }
            let mut slots = Vec::with_capacity(count);
            for i in 0..count {
                slots.push((get_u32(payload, 4 + 8 * i), get_u32(payload, 8 + 8 * i)));
            }
            WalOp::PageSnapshot { page: a, slots }
        }
        _ => return None,
    };
    Some((WalRecord { lsn, txn, op }, total))
}

/// Result of scanning a WAL byte buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalScan {
    /// Records decoded before the first corruption, in log order.
    pub records: Vec<WalRecord>,
    /// Offset where the trusted prefix ends.
    pub trusted_bytes: u64,
    /// Bytes after the trusted prefix (the torn tail; 0 = clean).
    pub truncated_bytes: u64,
}

/// Walk `buf` record by record, stopping at the first short or corrupt
/// record. Everything after that point is an untrusted torn tail.
pub fn scan_wal(buf: &[u8]) -> WalScan {
    let mut records = Vec::new();
    let mut at = 0usize;
    while at < buf.len() {
        match decode_wal_record(&buf[at..]) {
            Some((rec, used)) => {
                records.push(rec);
                at += used;
            }
            None => break,
        }
    }
    WalScan {
        records,
        trusted_bytes: at as u64,
        truncated_bytes: (buf.len() - at) as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vector() {
        // CRC-32("123456789") is the classic check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn page_roundtrip() {
        let slots = vec![(7, 512), (9, 128), (u32::MAX, 1)];
        let buf = encode_page(3, 42, &slots).unwrap();
        assert_eq!(buf.len(), DISK_PAGE_BYTES as usize);
        assert_eq!(
            decode_page(&buf),
            PageRead::Valid {
                page: 3,
                lsn: 42,
                slots
            }
        );
    }

    #[test]
    fn empty_page_roundtrip_and_missing() {
        let buf = encode_page(0, 0, &[]).unwrap();
        assert!(matches!(decode_page(&buf), PageRead::Valid { .. }));
        assert_eq!(decode_page(&[0u8; 4096]), PageRead::Missing);
        assert_eq!(decode_page(&[]), PageRead::Missing);
    }

    #[test]
    fn page_overflow_is_typed() {
        let slots = vec![(1, 1); MAX_DISK_SLOTS + 1];
        let err = encode_page(5, 1, &slots).unwrap_err();
        assert!(err.to_string().contains("page 5"));
    }

    #[test]
    fn page_bit_flip_is_torn() {
        let buf = encode_page(1, 7, &[(10, 100), (11, 200)]).unwrap();
        for at in [
            0,
            5,
            9,
            17,
            21,
            PAGE_HEADER_BYTES + 1,
            PAGE_HEADER_BYTES + 9,
        ] {
            let mut bad = buf.clone();
            bad[at] ^= 0x10;
            assert_eq!(decode_page(&bad), PageRead::Torn, "flip at byte {at}");
        }
        // Stale non-zero padding past the payload is also torn.
        let mut bad = buf;
        bad[4000] = 1;
        assert_eq!(decode_page(&bad), PageRead::Torn);
    }

    #[test]
    fn wal_record_roundtrip_all_kinds() {
        let ops = [
            WalOp::CheckpointEnd,
            WalOp::Touch {
                object: 1,
                size: 2,
                page: 3,
            },
            WalOp::Place {
                object: 4,
                size: 5,
                page: 6,
            },
            WalOp::Remove {
                object: 7,
                size: 8,
                page: 9,
            },
            WalOp::Move {
                object: 10,
                size: 11,
                from: 12,
                to: 13,
            },
            WalOp::Commit,
            WalOp::Abort,
            WalOp::PageSnapshot {
                page: 14,
                slots: vec![(15, 16), (17, 18)],
            },
        ];
        let mut buf = Vec::new();
        for (i, op) in ops.iter().enumerate() {
            buf.extend_from_slice(&encode_wal_record(i as u64 + 1, 100 + i as u64, op));
        }
        let scan = scan_wal(&buf);
        assert_eq!(scan.truncated_bytes, 0);
        assert_eq!(scan.records.len(), ops.len());
        for (i, rec) in scan.records.iter().enumerate() {
            assert_eq!(rec.lsn, i as u64 + 1);
            assert_eq!(rec.txn, 100 + i as u64);
            assert_eq!(&rec.op, &ops[i]);
        }
    }

    #[test]
    fn wal_scan_truncates_torn_tail() {
        let mut buf = encode_wal_record(1, 9, &WalOp::Commit);
        let second = encode_wal_record(
            2,
            9,
            &WalOp::PageSnapshot {
                page: 1,
                slots: vec![(1, 2)],
            },
        );
        buf.extend_from_slice(&second[..second.len() - 3]); // torn tail
        let scan = scan_wal(&buf);
        assert_eq!(scan.records.len(), 1);
        assert_eq!(scan.truncated_bytes, (second.len() - 3) as u64);
    }

    #[test]
    fn wal_mid_stream_corruption_stops_the_scan() {
        let mut buf = encode_wal_record(1, 9, &WalOp::Commit);
        let keep = buf.len();
        buf.extend_from_slice(&encode_wal_record(2, 9, &WalOp::Abort));
        buf[keep + 6] ^= 0x40;
        let scan = scan_wal(&buf);
        assert_eq!(scan.records.len(), 1);
        assert_eq!(scan.trusted_bytes, keep as u64);
        assert!(scan.truncated_bytes > 0);
    }
}
