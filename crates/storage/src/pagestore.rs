//! The [`PageStore`] trait: the seam between the simulation and a
//! durable backend (DESIGN.md §15).
//!
//! A `PageStore` persists checksummed page images keyed by page id.
//! [`MemPageStore`] is the in-memory reference implementation — it
//! still round-trips every image through the on-disk codec, so the two
//! backends share one format and one failure vocabulary.
//! [`crate::FilePageStore`] is the real file-backed implementation
//! with WAL ordering and crash recovery.

use crate::codec::{decode_page, encode_page, CodecError, PageRead, DISK_PAGE_BYTES};
use semcluster_faults::FsError;
use std::fmt;

/// Errors a page store can raise.
#[derive(Debug, Clone, PartialEq)]
pub enum StoreError {
    /// Filesystem-level failure (path is in the message).
    Fs(FsError),
    /// Encoding failure (page overflow).
    Codec(CodecError),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Fs(e) => write!(f, "{e}"),
            StoreError::Codec(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<FsError> for StoreError {
    fn from(e: FsError) -> Self {
        StoreError::Fs(e)
    }
}

impl From<CodecError> for StoreError {
    fn from(e: CodecError) -> Self {
        StoreError::Codec(e)
    }
}

/// A store of checksummed page images.
pub trait PageStore {
    /// Backend name for reports (`"sim"` / `"file"`).
    fn backend_name(&self) -> &'static str;

    /// Write (or overwrite) the image of `page` stamped with `lsn`.
    fn write_page(&mut self, page: u32, lsn: u64, slots: &[(u32, u32)]) -> Result<(), StoreError>;

    /// Read back the image of `page`, verifying its checksum.
    fn read_page(&mut self, page: u32) -> Result<PageRead, StoreError>;

    /// Make every written page durable.
    fn sync(&mut self) -> Result<(), StoreError>;
}

/// In-memory reference [`PageStore`]: a vector of encoded page slots.
/// Every image passes through the same codec as the file backend, so
/// format bugs surface here too.
#[derive(Debug, Default)]
pub struct MemPageStore {
    slots: Vec<Option<Vec<u8>>>,
}

impl MemPageStore {
    /// Empty store.
    pub fn new() -> Self {
        MemPageStore::default()
    }

    /// Number of page slots written at least once.
    pub fn written_pages(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }
}

impl PageStore for MemPageStore {
    fn backend_name(&self) -> &'static str {
        "sim"
    }

    fn write_page(&mut self, page: u32, lsn: u64, slots: &[(u32, u32)]) -> Result<(), StoreError> {
        let buf = encode_page(page, lsn, slots)?;
        let idx = page as usize;
        if idx >= self.slots.len() {
            self.slots.resize(idx + 1, None);
        }
        self.slots[idx] = Some(buf);
        Ok(())
    }

    fn read_page(&mut self, page: u32) -> Result<PageRead, StoreError> {
        Ok(match self.slots.get(page as usize) {
            Some(Some(buf)) => decode_page(buf),
            _ => decode_page(&vec![0u8; DISK_PAGE_BYTES as usize]),
        })
    }

    fn sync(&mut self) -> Result<(), StoreError> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_store_roundtrips_through_the_codec() {
        let mut store = MemPageStore::new();
        assert_eq!(store.read_page(0).unwrap(), PageRead::Missing);
        store.write_page(2, 5, &[(1, 100), (2, 200)]).unwrap();
        assert_eq!(
            store.read_page(2).unwrap(),
            PageRead::Valid {
                page: 2,
                lsn: 5,
                slots: vec![(1, 100), (2, 200)]
            }
        );
        assert_eq!(store.read_page(0).unwrap(), PageRead::Missing);
        assert_eq!(store.written_pages(), 1);
        store.sync().unwrap();
        assert_eq!(store.backend_name(), "sim");
    }
}
