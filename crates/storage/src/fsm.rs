//! Free-space map.
//!
//! A coarse, incrementally maintained index of page free space, bucketed
//! into power-of-two classes — how a real storage manager answers the
//! clusterer's "is there *any* page with ≥ N bytes free near this
//! cluster?" without scanning. Kept separate from [`crate::StorageManager`]
//! so callers opt in; the map observes placements through
//! [`FreeSpaceMap::note`].

use crate::page::PageId;
use std::collections::BTreeSet;

/// Number of free-space classes. Class `k` holds pages whose free space
/// is in `[2^k, 2^(k+1))` bytes (class 0: `[0, 2)`).
const CLASSES: usize = 16;

/// Bucketed page free-space index.
#[derive(Debug, Clone, Default)]
pub struct FreeSpaceMap {
    classes: [BTreeSet<PageId>; CLASSES],
    known: Vec<Option<u8>>, // page → class, for O(1) reclassification
}

fn class_of(free: u32) -> usize {
    (32 - (free | 1).leading_zeros() as usize - 1).min(CLASSES - 1)
}

impl FreeSpaceMap {
    /// Empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record (or update) a page's free space.
    pub fn note(&mut self, page: PageId, free: u32) {
        let cls = class_of(free) as u8;
        if self.known.len() <= page.index() {
            self.known.resize(page.index() + 1, None);
        }
        if let Some(old) = self.known[page.index()] {
            if old == cls {
                return;
            }
            self.classes[old as usize].remove(&page);
        }
        self.classes[cls as usize].insert(page);
        self.known[page.index()] = Some(cls);
    }

    /// Forget a page (e.g. taken offline).
    pub fn forget(&mut self, page: PageId) {
        if let Some(Some(cls)) = self.known.get(page.index()).copied() {
            self.classes[cls as usize].remove(&page);
            self.known[page.index()] = None;
        }
    }

    /// Some page guaranteed to have at least `min_free` bytes free, if
    /// one is known. Prefers the fullest suitable class (best-fit-ish),
    /// lowest page id within it.
    ///
    /// Pages in the class containing `min_free` itself may have slightly
    /// less than `min_free`; they are skipped via the exactness check the
    /// caller performs, so this method only consults classes strictly
    /// above.
    pub fn page_with_room(&self, min_free: u32) -> Option<PageId> {
        let first_safe = class_of(min_free) + 1;
        self.classes[first_safe.min(CLASSES - 1)..]
            .iter()
            .flat_map(|set| set.iter())
            .next()
            .copied()
    }

    /// Number of pages tracked.
    pub fn len(&self) -> usize {
        self.known.iter().filter(|c| c.is_some()).count()
    }

    /// Whether the map tracks no pages.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: u32) -> PageId {
        PageId(i)
    }

    #[test]
    fn classes_are_power_of_two_buckets() {
        assert_eq!(class_of(0), 0);
        assert_eq!(class_of(1), 0);
        assert_eq!(class_of(2), 1);
        assert_eq!(class_of(3), 1);
        assert_eq!(class_of(1024), 10);
        assert_eq!(class_of(u32::MAX), CLASSES - 1);
    }

    #[test]
    fn page_with_room_guarantees_capacity() {
        let mut fsm = FreeSpaceMap::new();
        fsm.note(p(1), 100); // class 6: [64,128)
        fsm.note(p(2), 1000); // class 9: [512,1024)
        fsm.note(p(3), 4000); // class 11
                              // Asking for 120 must skip p1 (same class as 120 → not
                              // guaranteed) and return a strictly-higher class page.
        let found = fsm.page_with_room(120).unwrap();
        assert!(found == p(2) || found == p(3));
        assert_eq!(fsm.page_with_room(2000), Some(p(3)));
        assert_eq!(fsm.page_with_room(5000), None);
    }

    #[test]
    fn note_reclassifies_and_forget_removes() {
        let mut fsm = FreeSpaceMap::new();
        fsm.note(p(1), 2048);
        assert_eq!(fsm.page_with_room(1000), Some(p(1)));
        fsm.note(p(1), 10); // page filled up
        assert_eq!(fsm.page_with_room(1000), None);
        fsm.note(p(1), 3000);
        fsm.forget(p(1));
        assert_eq!(fsm.page_with_room(1000), None);
        assert!(fsm.is_empty());
    }

    #[test]
    fn prefers_smaller_sufficient_class() {
        let mut fsm = FreeSpaceMap::new();
        fsm.note(p(9), 4000);
        fsm.note(p(2), 600);
        // min_free 200 → first safe class is 8 ([256,512)); p2 is class 9.
        assert_eq!(fsm.page_with_room(200), Some(p(2)));
    }

    #[test]
    fn tracks_many_pages() {
        let mut fsm = FreeSpaceMap::new();
        for i in 0..1000u32 {
            fsm.note(p(i), (i * 7) % 4000 + 1);
        }
        assert_eq!(fsm.len(), 1000);
        // min_free 1500 → first safe class holds pages with ≥ 2048 free.
        let found = fsm.page_with_room(1500).unwrap();
        assert!((found.0 * 7) % 4000 + 1 >= 2048, "page {found} too full");
        // Nothing can guarantee more than the 4000-byte maximum.
        assert_eq!(fsm.page_with_room(4096), None);
    }
}
