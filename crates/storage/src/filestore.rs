//! [`FilePageStore`]: the real file-backed page store, and
//! [`recover_dir`]: ARIES-style restart recovery over its files
//! (DESIGN.md §15).
//!
//! ## Layout
//!
//! A store directory holds two files:
//!
//! * `pages.db` — fixed 4096-byte checksummed page slots at offset
//!   `page_id * 4096` (see [`crate::codec`]);
//! * `wal.log` — an append-only stream of checksummed WAL records.
//!
//! ## Fsync ordering rules
//!
//! 1. **Log force before page steal.** A page image may only be
//!    written after a full [`WalOp::PageSnapshot`] of it has been
//!    appended *and fsynced*. A torn page write is therefore always
//!    repairable from the log.
//! 2. **Fsync before ack.** [`FilePageStore::commit`] appends the
//!    commit record and fsyncs the WAL before returning; only a `Ok`
//!    return may be acknowledged to a client.
//! 3. **A failed fsync poisons the handle** (fsyncgate). The pending
//!    writes are gone; retrying cannot resurrect them, so `commit`
//!    surfaces the error and the caller must fail the transaction,
//!    never retry-and-ack. The fault layer enforces this: post-failure
//!    operations return [`FsError::Poisoned`].
//!
//! ## Recovery
//!
//! [`recover_dir`] runs on the plain files (no fault layer — it models
//! the restarted process): scan the WAL and truncate the torn tail;
//! decode every page slot, treating CRC failures as torn; rebuild each
//! page from its newest trusted base (valid disk image or logged
//! snapshot); redo terminated transactions' operations gated on the
//! per-page LSN; undo in-flight losers in reverse LSN order with
//! presence-conditioned inverses (idempotent without CLRs); then
//! repair the files in place — recovering twice is a no-op.
//!
//! One deliberate modeling choice: the simulation engine does not roll
//! back the placement effects of transactions *it* aborts (their
//! objects stay in the in-memory store), so recovery replays both
//! committed and aborted transactions and rolls back only transactions
//! with no durable terminal record. Atomicity is verified for those
//! losers: an object only ever placed by a loser must be absent from
//! the recovered state.

use crate::codec::{
    decode_page, encode_page, scan_wal, PageRead, WalOp, WalRecord, DISK_PAGE_BYTES,
};
use crate::pagestore::{PageStore, StoreError};
use semcluster_faults::{FaultedDir, FsCrashReport, FsError, FsFaultConfig, FsFile, FsStats};
use std::collections::{BTreeMap, BTreeSet};
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};

/// Page-slot file name inside a store directory.
pub const PAGES_FILE: &str = "pages.db";
/// WAL file name inside a store directory.
pub const WAL_FILE: &str = "wal.log";

/// The real file-backed page store. See the module docs for the
/// on-disk protocol.
#[derive(Debug)]
pub struct FilePageStore {
    fs: FaultedDir,
    pages: FsFile,
    wal: FsFile,
    next_lsn: u64,
}

impl FilePageStore {
    /// Create a store rooted at `root` (created if absent) behind the
    /// given filesystem fault schedule.
    pub fn create(root: &Path, cfg: FsFaultConfig) -> Result<Self, StoreError> {
        let mut fs = FaultedDir::create(root, cfg)?;
        let pages = fs.open(PAGES_FILE)?;
        let wal = fs.open(WAL_FILE)?;
        Ok(FilePageStore {
            fs,
            pages,
            wal,
            next_lsn: 1,
        })
    }

    /// Store directory.
    pub fn root(&self) -> &Path {
        self.fs.root()
    }

    /// Filesystem syscall/injection counters.
    pub fn stats(&self) -> FsStats {
        self.fs.stats()
    }

    /// Whether an injected crash point has fired.
    pub fn is_crashed(&self) -> bool {
        self.fs.is_crashed()
    }

    /// Next LSN to be assigned.
    pub fn next_lsn(&self) -> u64 {
        self.next_lsn
    }

    /// Append one WAL record (buffered — durable only after a WAL
    /// fsync). Returns the record's LSN.
    pub fn append_op(&mut self, txn: u64, op: &WalOp) -> Result<u64, StoreError> {
        let lsn = self.next_lsn;
        let buf = crate::codec::encode_wal_record(lsn, txn, op);
        self.fs.append(self.wal, &buf)?;
        self.next_lsn += 1;
        Ok(lsn)
    }

    /// Force the WAL to disk.
    pub fn sync_wal(&mut self) -> Result<(), StoreError> {
        self.fs.fsync(self.wal)?;
        Ok(())
    }

    /// Commit `txn`: append the commit record and fsync the WAL.
    /// Only an `Ok` return may be acknowledged; on `Err` the commit is
    /// not durable and — per fsyncgate — must not be retried.
    pub fn commit(&mut self, txn: u64) -> Result<u64, StoreError> {
        let lsn = self.append_op(txn, &WalOp::Commit)?;
        self.sync_wal()?;
        Ok(lsn)
    }

    /// Append an abort record (buffered; if it is lost to a crash the
    /// transaction recovers as a loser instead, which is equivalent).
    pub fn abort(&mut self, txn: u64) -> Result<u64, StoreError> {
        self.append_op(txn, &WalOp::Abort)
    }

    /// Steal (write back) a page: force a full snapshot record to the
    /// log first — the WAL rule — then write and sync the page image.
    pub fn steal(&mut self, page: u32, slots: &[(u32, u32)]) -> Result<(), StoreError> {
        let lsn = self.append_op(
            0,
            &WalOp::PageSnapshot {
                page,
                slots: slots.to_vec(),
            },
        )?;
        self.sync_wal()?;
        self.write_page(page, lsn, slots)?;
        self.fs.fsync(self.pages)?;
        Ok(())
    }

    /// Write the initial database image: every page, then a
    /// `CheckpointEnd` record. Recovery treats a WAL without a durable
    /// `CheckpointEnd` as a store that never opened.
    pub fn checkpoint<'a, I>(&mut self, pages: I) -> Result<(), StoreError>
    where
        I: IntoIterator<Item = (u32, &'a [(u32, u32)])>,
    {
        for (page, slots) in pages {
            self.write_page(page, 0, slots)?;
        }
        self.fs.fsync(self.pages)?;
        self.append_op(0, &WalOp::CheckpointEnd)?;
        self.sync_wal()?;
        Ok(())
    }

    /// Kill the process image: unsynced writes are dropped; with
    /// `tear_last_write` the most recent in-flight write persists only
    /// a partial prefix. Returns what the crash left behind.
    pub fn crash(&mut self, tear_last_write: bool) -> FsCrashReport {
        self.fs.crash(tear_last_write)
    }

    /// Report of an already-fired crash point, if any.
    pub fn crash_report(&self) -> Option<&FsCrashReport> {
        self.fs.crash_report()
    }

    /// Clean shutdown: force both files and return the root.
    pub fn finish(mut self) -> Result<PathBuf, StoreError> {
        self.fs.fsync(self.wal)?;
        self.fs.fsync(self.pages)?;
        Ok(self.fs.root().to_path_buf())
    }
}

impl PageStore for FilePageStore {
    fn backend_name(&self) -> &'static str {
        "file"
    }

    fn write_page(&mut self, page: u32, lsn: u64, slots: &[(u32, u32)]) -> Result<(), StoreError> {
        let buf = encode_page(page, lsn, slots)?;
        self.fs
            .write_at(self.pages, page as u64 * DISK_PAGE_BYTES as u64, &buf)?;
        Ok(())
    }

    fn read_page(&mut self, page: u32) -> Result<PageRead, StoreError> {
        let buf = self.fs.read_at(
            self.pages,
            page as u64 * DISK_PAGE_BYTES as u64,
            DISK_PAGE_BYTES as usize,
        )?;
        Ok(decode_page(&buf))
    }

    fn sync(&mut self) -> Result<(), StoreError> {
        self.fs.fsync(self.pages)?;
        self.fs.fsync(self.wal)?;
        Ok(())
    }
}

// ------------------------------------------------------------- recovery

/// One recovered page image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveredPage {
    /// LSN the image is current through.
    pub lsn: u64,
    /// `(object, size)` slots in deterministic order.
    pub slots: Vec<(u32, u32)>,
}

/// Everything restart recovery derived and did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileRecoveryOutcome {
    /// Whether a durable `CheckpointEnd` was found. Without one the
    /// store never finished opening: both files are reset.
    pub checkpoint_seen: bool,
    /// Transactions with a durable commit record (ascending).
    pub winners: Vec<u64>,
    /// Transactions with a durable abort record (ascending). Their
    /// placement effects persist — the engine's abort model does not
    /// roll back placements.
    pub aborted: Vec<u64>,
    /// In-flight transactions (ops but no terminal record) rolled back.
    pub losers: Vec<u64>,
    /// Redo operations applied (LSN-gated).
    pub redone: u64,
    /// Undo operations applied or verified absent.
    pub undone: u64,
    /// Page slots whose on-disk image failed verification.
    pub torn_pages: Vec<u32>,
    /// Pages rewritten during repair.
    pub repaired_pages: Vec<u32>,
    /// Torn WAL tail bytes physically truncated.
    pub wal_truncated_bytes: u64,
    /// Trusted WAL records scanned.
    pub wal_records: usize,
    /// Invariant violations found during recovery (empty = clean).
    pub violations: Vec<String>,
    /// The recovered page images.
    pub pages: BTreeMap<u32, RecoveredPage>,
}

fn read_file(path: &Path) -> Result<Vec<u8>, StoreError> {
    match std::fs::read(path) {
        Ok(b) => Ok(b),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Vec::new()),
        Err(e) => Err(StoreError::Fs(FsError::Io {
            op: "read",
            path: path.display().to_string(),
            detail: e.to_string(),
        })),
    }
}

fn io_err(op: &'static str, path: &Path, e: std::io::Error) -> StoreError {
    StoreError::Fs(FsError::Io {
        op,
        path: path.display().to_string(),
        detail: e.to_string(),
    })
}

/// Remove `object` from a slot list if present; true if it was there.
fn slot_remove(slots: &mut Vec<(u32, u32)>, object: u32) -> bool {
    if let Some(i) = slots.iter().position(|&(o, _)| o == object) {
        slots.remove(i);
        true
    } else {
        false
    }
}

/// Insert `(object, size)` if the object is absent; true if inserted.
fn slot_insert(slots: &mut Vec<(u32, u32)>, object: u32, size: u32) -> bool {
    if slots.iter().any(|&(o, _)| o == object) {
        false
    } else {
        slots.push((object, size));
        true
    }
}

/// ARIES-style restart recovery over a [`FilePageStore`] directory.
/// Safe to run any number of times: the second and later runs find a
/// clean store and change nothing.
pub fn recover_dir(root: &Path) -> Result<FileRecoveryOutcome, StoreError> {
    let wal_path = root.join(WAL_FILE);
    let pages_path = root.join(PAGES_FILE);
    let wal_bytes = read_file(&wal_path)?;
    let pages_bytes = read_file(&pages_path)?;

    // 1. Scan the log; everything after the first corruption is the
    //    torn tail.
    let scan = scan_wal(&wal_bytes);
    let checkpoint_seen = scan
        .records
        .iter()
        .any(|r| matches!(r.op, WalOp::CheckpointEnd));

    // A store that never finished opening (no durable CheckpointEnd)
    // holds no acknowledged state: reset it to empty.
    if !checkpoint_seen {
        if !wal_bytes.is_empty() || !pages_bytes.is_empty() {
            truncate_file(&wal_path, 0)?;
            truncate_file(&pages_path, 0)?;
        }
        return Ok(FileRecoveryOutcome {
            checkpoint_seen: false,
            winners: Vec::new(),
            aborted: Vec::new(),
            losers: Vec::new(),
            redone: 0,
            undone: 0,
            torn_pages: Vec::new(),
            repaired_pages: Vec::new(),
            wal_truncated_bytes: wal_bytes.len() as u64,
            wal_records: scan.records.len(),
            violations: Vec::new(),
            pages: BTreeMap::new(),
        });
    }

    // 2. Decode every on-disk page slot.
    let mut images: BTreeMap<u32, RecoveredPage> = BTreeMap::new();
    let mut torn_pages: Vec<u32> = Vec::new();
    let slot_count = pages_bytes.len().div_ceil(DISK_PAGE_BYTES as usize);
    for i in 0..slot_count {
        let start = i * DISK_PAGE_BYTES as usize;
        let end = (start + DISK_PAGE_BYTES as usize).min(pages_bytes.len());
        match decode_page(&pages_bytes[start..end]) {
            PageRead::Missing => {}
            PageRead::Valid { page, lsn, slots } if page == i as u32 => {
                images.insert(page, RecoveredPage { lsn, slots });
            }
            // Valid bytes under the wrong slot, short tail slots and
            // CRC failures are all torn.
            _ => torn_pages.push(i as u32),
        }
    }

    // 3. Analysis: terminal transactions (commit OR abort — see the
    //    module docs on the engine's abort model) replay; transactions
    //    with ops but no terminal record are losers.
    let mut committed: BTreeSet<u64> = BTreeSet::new();
    let mut aborted: BTreeSet<u64> = BTreeSet::new();
    let mut has_ops: BTreeSet<u64> = BTreeSet::new();
    for rec in &scan.records {
        match rec.op {
            WalOp::Commit => {
                committed.insert(rec.txn);
            }
            WalOp::Abort => {
                aborted.insert(rec.txn);
            }
            WalOp::Touch { .. }
            | WalOp::Place { .. }
            | WalOp::Remove { .. }
            | WalOp::Move { .. } => {
                has_ops.insert(rec.txn);
            }
            WalOp::CheckpointEnd | WalOp::PageSnapshot { .. } => {}
        }
    }
    let losers: BTreeSet<u64> = has_ops
        .iter()
        .copied()
        .filter(|t| *t != 0 && !committed.contains(t) && !aborted.contains(t))
        .collect();
    let replays = |txn: u64| txn != 0 && !losers.contains(&txn);

    let base_lsn = |images: &BTreeMap<u32, RecoveredPage>, page: u32| -> u64 {
        images.get(&page).map(|p| p.lsn).unwrap_or(0)
    };

    // 4. Redo pass, in LSN order, gated per page side.
    let mut redone = 0u64;
    for rec in &scan.records {
        match &rec.op {
            // A snapshot is a full redo image: it replaces any older
            // base, which is exactly how torn pages heal.
            WalOp::PageSnapshot { page, slots } if rec.lsn > base_lsn(&images, *page) => {
                images.insert(
                    *page,
                    RecoveredPage {
                        lsn: rec.lsn,
                        slots: slots.clone(),
                    },
                );
            }
            WalOp::Touch { object, size, page }
                if replays(rec.txn) && rec.lsn > base_lsn(&images, *page) =>
            {
                let img = images.entry(*page).or_insert_with(|| RecoveredPage {
                    lsn: 0,
                    slots: Vec::new(),
                });
                if let Some(slot) = img.slots.iter_mut().find(|(o, _)| o == object) {
                    slot.1 = *size;
                }
                img.lsn = rec.lsn;
                redone += 1;
            }
            WalOp::Place { object, size, page }
                if replays(rec.txn) && rec.lsn > base_lsn(&images, *page) =>
            {
                let img = images.entry(*page).or_insert_with(|| RecoveredPage {
                    lsn: 0,
                    slots: Vec::new(),
                });
                slot_insert(&mut img.slots, *object, *size);
                img.lsn = rec.lsn;
                redone += 1;
            }
            WalOp::Remove { object, page, .. }
                if replays(rec.txn) && rec.lsn > base_lsn(&images, *page) =>
            {
                let img = images.entry(*page).or_insert_with(|| RecoveredPage {
                    lsn: 0,
                    slots: Vec::new(),
                });
                slot_remove(&mut img.slots, *object);
                img.lsn = rec.lsn;
                redone += 1;
            }
            WalOp::Move {
                object,
                size,
                from,
                to,
            } if replays(rec.txn) => {
                if rec.lsn > base_lsn(&images, *from) {
                    let img = images.entry(*from).or_insert_with(|| RecoveredPage {
                        lsn: 0,
                        slots: Vec::new(),
                    });
                    slot_remove(&mut img.slots, *object);
                    img.lsn = rec.lsn;
                    redone += 1;
                }
                if rec.lsn > base_lsn(&images, *to) {
                    let img = images.entry(*to).or_insert_with(|| RecoveredPage {
                        lsn: 0,
                        slots: Vec::new(),
                    });
                    slot_insert(&mut img.slots, *object, *size);
                    img.lsn = rec.lsn;
                    redone += 1;
                }
            }
            _ => {}
        }
    }

    // 5. Undo pass: loser ops in reverse LSN order. Inverses are
    //    presence-conditioned, so undoing twice is a no-op and no CLRs
    //    are needed.
    let mut undone = 0u64;
    for rec in scan.records.iter().rev() {
        if !losers.contains(&rec.txn) {
            continue;
        }
        match &rec.op {
            WalOp::Place { object, page, .. } => {
                if let Some(img) = images.get_mut(page) {
                    slot_remove(&mut img.slots, *object);
                }
                undone += 1;
            }
            WalOp::Remove { object, size, page } => {
                let img = images.entry(*page).or_insert_with(|| RecoveredPage {
                    lsn: 0,
                    slots: Vec::new(),
                });
                slot_insert(&mut img.slots, *object, *size);
                undone += 1;
            }
            WalOp::Move {
                object,
                size,
                from,
                to,
            } => {
                if let Some(img) = images.get_mut(to) {
                    slot_remove(&mut img.slots, *object);
                }
                let img = images.entry(*from).or_insert_with(|| RecoveredPage {
                    lsn: 0,
                    slots: Vec::new(),
                });
                slot_insert(&mut img.slots, *object, *size);
                undone += 1;
            }
            WalOp::Touch { .. } => {
                undone += 1;
            }
            _ => {}
        }
    }

    // 6. Invariant checks on the recovered state.
    let mut violations = Vec::new();
    for &page in &torn_pages {
        let has_snapshot = scan
            .records
            .iter()
            .any(|r| matches!(&r.op, WalOp::PageSnapshot { page: p, .. } if *p == page));
        if !has_snapshot && images.contains_key(&page) {
            violations.push(format!(
                "torn page {page} has no logged snapshot to repair from"
            ));
        }
    }
    {
        let mut seen: BTreeMap<u32, u32> = BTreeMap::new();
        for (page, img) in &images {
            for &(object, _) in &img.slots {
                if let Some(other) = seen.insert(object, *page) {
                    violations.push(format!(
                        "object {object} recovered on both page {other} and page {page}"
                    ));
                }
            }
        }
        // Atomicity: an object only ever placed by losers must be gone.
        let mut replayed_objects: BTreeSet<u32> = BTreeSet::new();
        let mut loser_placed: BTreeSet<u32> = BTreeSet::new();
        for rec in &scan.records {
            match &rec.op {
                WalOp::Place { object, .. } if losers.contains(&rec.txn) => {
                    loser_placed.insert(*object);
                }
                WalOp::Touch { object, .. }
                | WalOp::Place { object, .. }
                | WalOp::Remove { object, .. }
                | WalOp::Move { object, .. }
                    if replays(rec.txn) =>
                {
                    replayed_objects.insert(*object);
                }
                _ => {}
            }
        }
        for object in loser_placed.difference(&replayed_objects) {
            if let Some(page) = seen.get(object) {
                violations.push(format!(
                    "atomicity: object {object} placed only by an in-flight loser \
                     survived recovery on page {page}"
                ));
            }
        }
    }

    // 7. Repair: rewrite any page whose recovered image differs from
    //    its on-disk bytes, and physically truncate the torn WAL tail.
    let mut repaired_pages = Vec::new();
    {
        let mut out: Option<std::fs::File> = None;
        for (page, img) in &images {
            let encoded = encode_page(*page, img.lsn, &img.slots)?;
            let start = *page as usize * DISK_PAGE_BYTES as usize;
            let end = start + DISK_PAGE_BYTES as usize;
            let on_disk = pages_bytes.get(start..end);
            if on_disk == Some(encoded.as_slice()) {
                continue;
            }
            let f = match &mut out {
                Some(f) => f,
                None => out.insert(
                    std::fs::OpenOptions::new()
                        .write(true)
                        .create(true)
                        .truncate(false)
                        .open(&pages_path)
                        .map_err(|e| io_err("open", &pages_path, e))?,
                ),
            };
            f.write_all_at(&encoded, start as u64)
                .map_err(|e| io_err("write", &pages_path, e))?;
            repaired_pages.push(*page);
        }
        if let Some(f) = out {
            f.sync_all().map_err(|e| io_err("fsync", &pages_path, e))?;
        }
    }
    if scan.truncated_bytes > 0 {
        truncate_file(&wal_path, scan.trusted_bytes)?;
    }

    Ok(FileRecoveryOutcome {
        checkpoint_seen: true,
        winners: committed.into_iter().collect(),
        aborted: aborted.into_iter().collect(),
        losers: losers.into_iter().collect(),
        redone,
        undone,
        torn_pages,
        repaired_pages,
        wal_truncated_bytes: scan.truncated_bytes,
        wal_records: scan.records.len(),
        violations,
        pages: images,
    })
}

fn truncate_file(path: &Path, len: u64) -> Result<(), StoreError> {
    let f = std::fs::OpenOptions::new()
        .write(true)
        .create(true)
        .truncate(false)
        .open(path)
        .map_err(|e| io_err("open", path, e))?;
    f.set_len(len).map_err(|e| io_err("truncate", path, e))?;
    f.sync_all().map_err(|e| io_err("fsync", path, e))?;
    let _ = f;
    Ok(())
}

/// Decoded trusted WAL records of a store directory (post-crash view;
/// diagnostic helper for the crash harness and tests).
pub fn read_wal(root: &Path) -> Result<Vec<WalRecord>, StoreError> {
    let bytes = read_file(&root.join(WAL_FILE))?;
    Ok(scan_wal(&bytes).records)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("semcluster-filestore-{name}"));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn quiet_cfg() -> FsFaultConfig {
        FsFaultConfig {
            skip_physical_sync: true,
            ..FsFaultConfig::default()
        }
    }

    #[test]
    fn clean_run_recovers_committed_state() {
        let root = scratch("clean");
        let mut store = FilePageStore::create(&root, quiet_cfg()).unwrap();
        store.checkpoint([(0u32, &[(1u32, 100u32)][..])]).unwrap();
        store
            .append_op(
                7,
                &WalOp::Place {
                    object: 2,
                    size: 50,
                    page: 0,
                },
            )
            .unwrap();
        store.commit(7).unwrap();
        store.finish().unwrap();

        let rec = recover_dir(&root).unwrap();
        assert!(rec.checkpoint_seen);
        assert_eq!(rec.winners, vec![7]);
        assert!(rec.losers.is_empty());
        assert!(rec.violations.is_empty(), "{:?}", rec.violations);
        assert_eq!(rec.pages[&0].slots, vec![(1, 100), (2, 50)]);

        // Idempotence: a second recovery changes nothing.
        let again = recover_dir(&root).unwrap();
        assert_eq!(again.pages, rec.pages);
        assert!(again.repaired_pages.is_empty());
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn unsynced_commit_recovers_as_loser_and_is_undone() {
        let root = scratch("loser");
        let mut store = FilePageStore::create(&root, quiet_cfg()).unwrap();
        store.checkpoint([(0u32, &[(1u32, 100u32)][..])]).unwrap();
        store
            .append_op(
                7,
                &WalOp::Place {
                    object: 2,
                    size: 50,
                    page: 0,
                },
            )
            .unwrap();
        store.sync_wal().unwrap(); // the op is durable, the commit is not
        store.append_op(7, &WalOp::Commit).unwrap();
        store.crash(false);

        let rec = recover_dir(&root).unwrap();
        assert_eq!(rec.losers, vec![7]);
        assert!(rec.winners.is_empty());
        assert!(rec.violations.is_empty(), "{:?}", rec.violations);
        assert_eq!(rec.pages[&0].slots, vec![(1, 100)], "loser place undone");
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn torn_page_write_is_repaired_from_the_snapshot() {
        let root = scratch("tornpage");
        let mut store = FilePageStore::create(&root, quiet_cfg()).unwrap();
        store.checkpoint([(0u32, &[(1u32, 100u32)][..])]).unwrap();
        // Steal page 0 with new content; then tear the page bytes on
        // disk to simulate a torn write that the CRC catches.
        store.steal(0, &[(1, 100), (3, 300)]).unwrap();
        store.finish().unwrap();
        let pages_path = root.join(PAGES_FILE);
        let mut bytes = std::fs::read(&pages_path).unwrap();
        for b in bytes.iter_mut().skip(2048) {
            *b = 0xFF;
        }
        std::fs::write(&pages_path, &bytes).unwrap();

        let rec = recover_dir(&root).unwrap();
        assert_eq!(rec.torn_pages, vec![0]);
        assert_eq!(rec.repaired_pages, vec![0]);
        assert!(rec.violations.is_empty(), "{:?}", rec.violations);
        assert_eq!(rec.pages[&0].slots, vec![(1, 100), (3, 300)]);

        let again = recover_dir(&root).unwrap();
        assert!(again.torn_pages.is_empty());
        assert!(again.repaired_pages.is_empty());
        assert_eq!(again.pages, rec.pages);
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn store_without_checkpoint_resets_to_empty() {
        let root = scratch("nockpt");
        let mut store = FilePageStore::create(&root, quiet_cfg()).unwrap();
        store.write_page(0, 0, &[(1, 100)]).unwrap();
        store
            .append_op(
                5,
                &WalOp::Place {
                    object: 9,
                    size: 10,
                    page: 0,
                },
            )
            .unwrap();
        store.sync().unwrap();
        store.crash(false);

        let rec = recover_dir(&root).unwrap();
        assert!(!rec.checkpoint_seen);
        assert!(rec.pages.is_empty());
        assert_eq!(std::fs::read(root.join(WAL_FILE)).unwrap(), b"");
        assert_eq!(std::fs::read(root.join(PAGES_FILE)).unwrap(), b"");
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn fsyncgate_commit_failure_is_not_durable_and_not_retryable() {
        let root = scratch("fsyncgate");
        let cfg = FsFaultConfig {
            // fsync 1-2: checkpoint (pages, wal); fsync 3: the commit.
            fsync_fail_at: vec![3],
            skip_physical_sync: true,
            ..FsFaultConfig::default()
        };
        let mut store = FilePageStore::create(&root, cfg).unwrap();
        store.checkpoint([(0u32, &[(1u32, 100u32)][..])]).unwrap();
        store
            .append_op(
                7,
                &WalOp::Place {
                    object: 2,
                    size: 50,
                    page: 0,
                },
            )
            .unwrap();
        let err = store.commit(7).unwrap_err();
        assert!(
            matches!(err, StoreError::Fs(FsError::SyncFailed { .. })),
            "{err}"
        );
        // Retrying the commit must fail too — the handle is poisoned
        // and the dirty records are gone.
        let retry = store.commit(7).unwrap_err();
        assert!(
            matches!(retry, StoreError::Fs(FsError::Poisoned { .. })),
            "{retry}"
        );
        store.crash(false);

        let rec = recover_dir(&root).unwrap();
        assert!(rec.winners.is_empty(), "failed commit must not be durable");
        assert_eq!(rec.pages[&0].slots, vec![(1, 100)]);
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn moves_replay_across_pages() {
        let root = scratch("moves");
        let mut store = FilePageStore::create(&root, quiet_cfg()).unwrap();
        store
            .checkpoint([(0u32, &[(1u32, 100u32), (2, 200)][..]), (1u32, &[][..])])
            .unwrap();
        store
            .append_op(
                9,
                &WalOp::Move {
                    object: 2,
                    size: 200,
                    from: 0,
                    to: 1,
                },
            )
            .unwrap();
        store.commit(9).unwrap();
        store.crash(false);

        let rec = recover_dir(&root).unwrap();
        assert!(rec.violations.is_empty(), "{:?}", rec.violations);
        assert_eq!(rec.pages[&0].slots, vec![(1, 100)]);
        assert_eq!(rec.pages[&1].slots, vec![(2, 200)]);
        std::fs::remove_dir_all(&root).unwrap();
    }
}
