//! The I/O subsystem's physical parameters.
//!
//! A parametric service-time model for one page transfer (average seek +
//! half-rotation + transfer) and the static page → disk mapping used by
//! the multi-disk server (Table 4.1: 10 disks).

use crate::page::PageId;

/// Disk service-time parameters. Defaults approximate a late-1980s SMD
/// drive (the hardware generation of the paper's environment).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiskParams {
    /// Average seek time in microseconds.
    pub avg_seek_us: u64,
    /// Full rotation time in microseconds (half is charged as latency).
    pub rotation_us: u64,
    /// Transfer time for one page in microseconds.
    pub page_transfer_us: u64,
}

impl Default for DiskParams {
    fn default() -> Self {
        // ~16 ms seek + 8.3 ms half-rotation (3600 rpm) + ~3 ms / 4 KB
        // transfer ⇒ ~28 ms per random page I/O.
        DiskParams {
            avg_seek_us: 16_000,
            rotation_us: 16_600,
            page_transfer_us: 3_000,
        }
    }
}

impl DiskParams {
    /// Service time for one random page I/O, in microseconds.
    pub fn service_us(&self) -> u64 {
        self.avg_seek_us + self.rotation_us / 2 + self.page_transfer_us
    }

    /// Service time for a sequential follow-on page (no seek, no
    /// rotational delay) — used for multi-page prefetch transfers.
    pub fn sequential_us(&self) -> u64 {
        self.page_transfer_us
    }
}

/// Static page → disk striping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiskLayout {
    disks: u32,
}

impl DiskLayout {
    /// Layout across `disks` spindles.
    ///
    /// # Panics
    /// Panics if `disks == 0`.
    pub fn new(disks: u32) -> Self {
        assert!(disks > 0, "need at least one disk");
        DiskLayout { disks }
    }

    /// Number of spindles.
    pub fn disks(&self) -> u32 {
        self.disks
    }

    /// Which disk a page lives on (round-robin striping).
    pub fn disk_of(&self, page: PageId) -> u32 {
        page.0 % self.disks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_service_time_is_late_80s() {
        let p = DiskParams::default();
        let ms = p.service_us() as f64 / 1000.0;
        assert!((20.0..40.0).contains(&ms), "{ms} ms");
        assert!(p.sequential_us() < p.service_us());
    }

    #[test]
    fn striping_is_balanced() {
        let layout = DiskLayout::new(10);
        let mut counts = [0u32; 10];
        for pid in 0..1000 {
            counts[layout.disk_of(PageId(pid)) as usize] += 1;
        }
        assert!(counts.iter().all(|&c| c == 100), "{counts:?}");
    }

    #[test]
    #[should_panic(expected = "at least one disk")]
    fn zero_disks_panics() {
        DiskLayout::new(0);
    }
}
