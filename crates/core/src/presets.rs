//! Named configurations matching the paper's experiment setups.

use crate::config::SimConfig;
use semcluster_buffer::{PrefetchScope, ReplacementPolicy};
use semcluster_clustering::{ClusteringPolicy, SplitPolicy};
use semcluster_workload::{StructureDensity, WorkloadSpec};

/// The fixed buffering setting of the §5.1 clustering experiments:
/// no prefetch, LRU replacement (buffer size is the scaled default).
pub fn clustering_study_base() -> SimConfig {
    SimConfig {
        replacement: ReplacementPolicy::Lru,
        prefetch: PrefetchScope::None,
        split: SplitPolicy::NoSplit,
        ..SimConfig::default()
    }
}

/// The fixed clustering setting of the §5.2 buffering experiments:
/// clustering without I/O limitation, splitting on overflow.
pub fn buffering_study_base() -> SimConfig {
    SimConfig {
        clustering: ClusteringPolicy::NoLimit,
        split: SplitPolicy::Linear,
        ..SimConfig::default()
    }
}

/// Parse a paper-style workload label (`low3-5`, `med5-10`, `hi10-100`)
/// into a [`WorkloadSpec`].
pub fn workload_from_label(label: &str) -> Option<WorkloadSpec> {
    let (density, rest) = if let Some(r) = label.strip_prefix("low3-") {
        (StructureDensity::Low3, r)
    } else if let Some(r) = label.strip_prefix("med5-") {
        (StructureDensity::Med5, r)
    } else if let Some(r) = label.strip_prefix("hi10-") {
        (StructureDensity::High10, r)
    } else {
        return None;
    };
    rest.parse::<f64>()
        .ok()
        .map(|rw| WorkloadSpec::new(density, rw))
}

/// The six buffering combinations reported in Figure 5.11, as
/// `(label, replacement, prefetch)`.
pub fn figure_5_11_combos() -> [(&'static str, ReplacementPolicy, PrefetchScope); 6] {
    [
        (
            "C_p_DB",
            ReplacementPolicy::ContextSensitive,
            PrefetchScope::WithinDatabase,
        ),
        (
            "C_p_buff",
            ReplacementPolicy::ContextSensitive,
            PrefetchScope::WithinBuffer,
        ),
        (
            "R_p_DB",
            ReplacementPolicy::Random,
            PrefetchScope::WithinDatabase,
        ),
        (
            "R_p_buff",
            ReplacementPolicy::Random,
            PrefetchScope::WithinBuffer,
        ),
        (
            "LRU_p_DB",
            ReplacementPolicy::Lru,
            PrefetchScope::WithinDatabase,
        ),
        ("LRU_no_p", ReplacementPolicy::Lru, PrefetchScope::None),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_parse() {
        let w = workload_from_label("low3-5").unwrap();
        assert_eq!(w.label(), "low3-5");
        let w = workload_from_label("hi10-100").unwrap();
        assert_eq!(w.label(), "hi10-100");
        assert!(workload_from_label("bogus-5").is_none());
        assert!(workload_from_label("low3-x").is_none());
    }

    #[test]
    fn study_bases_match_paper_settings() {
        let c = clustering_study_base();
        assert_eq!(c.replacement, ReplacementPolicy::Lru);
        assert_eq!(c.prefetch, PrefetchScope::None);
        let b = buffering_study_base();
        assert_eq!(b.clustering, ClusteringPolicy::NoLimit);
        assert_ne!(b.split, SplitPolicy::NoSplit);
    }

    #[test]
    fn figure_5_11_has_six_combos() {
        let combos = figure_5_11_combos();
        assert_eq!(combos.len(), 6);
        assert_eq!(combos[0].0, "C_p_DB");
        assert_eq!(combos[5].0, "LRU_no_p");
    }
}
