//! Deterministic parallel sweep execution (DESIGN.md §10).
//!
//! Every experiment in the reproduction is a loop over *independent*
//! simulation configurations: each run owns its RNG (derived from its
//! config's seed), its engine state and its metrics registry, and shares
//! nothing with its neighbours. [`SweepRunner`] exploits that: it runs
//! the submitted [`SweepJob`]s on a scoped worker pool (std only — no
//! external thread-pool crate) and assembles the results **in submission
//! order**, so the output is byte-identical whether the sweep ran on one
//! thread or sixteen, and regardless of completion order.
//!
//! The determinism contract:
//!
//! * a job's result depends only on its `SimConfig` (the engine is a
//!   deterministic function of the config — same seed, same report);
//! * results, merged metrics and verbose breakdowns are assembled by
//!   submission index at join, never by completion order;
//! * each replication gets an isolated `semcluster-obs` registry; the
//!   per-run snapshots are merged with the commutative-and-associative
//!   [`MetricsSnapshot::merge`], folded in submission order;
//! * a panicking run is caught (`catch_unwind`) and surfaces as a
//!   [`SweepError`] for that job alone — the rest of the sweep completes.
//!
//! Only host wall-clock facts ([`SweepSummary`]) vary with thread count;
//! callers print those to stderr so stdout stays canonical.

use crate::config::SimConfig;
use crate::engine::ObsConfig;
use crate::runner::{run_replicated_observed, ReplicatedResult};
use semcluster_obs::{MetricsSnapshot, ProfileReport, Timeline, TraceSink};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// One independent unit of sweep work: a configuration run `reps` times
/// with derived seeds (see [`crate::replication_config`]).
#[derive(Debug, Clone)]
pub struct SweepJob {
    /// Label carried through to the item (defaults to the config label).
    pub label: String,
    /// The configuration to run.
    pub cfg: SimConfig,
    /// Replications (each with a derived seed).
    pub reps: u32,
}

impl SweepJob {
    /// A labelled job.
    pub fn new(label: impl Into<String>, cfg: SimConfig, reps: u32) -> Self {
        SweepJob {
            label: label.into(),
            cfg,
            reps,
        }
    }

    /// A job labelled with its config's own label.
    pub fn of(cfg: SimConfig, reps: u32) -> Self {
        SweepJob {
            label: cfg.label(),
            cfg,
            reps,
        }
    }
}

/// A run that failed (panicked); the sweep carries on without it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepError {
    /// Submission index of the failed job.
    pub index: usize,
    /// The failed job's label.
    pub label: String,
    /// The panic payload, if it was a string.
    pub message: String,
}

impl fmt::Display for SweepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "sweep run #{} ({}) failed: {}",
            self.index, self.label, self.message
        )
    }
}

impl std::error::Error for SweepError {}

/// The outcome of one job, in submission order.
#[derive(Debug)]
pub struct SweepItem {
    /// Submission index (== position in [`SweepOutcome::items`]).
    pub index: usize,
    /// Job label.
    pub label: String,
    /// The folded replications, or the captured panic.
    pub result: Result<ReplicatedResult, SweepError>,
    /// Merged metrics snapshots of this job's replications (empty on
    /// failure).
    pub metrics: MetricsSnapshot,
    /// Merged timeline of this job's replications (when the runner has
    /// timeline sampling enabled; `None` on failure or when disabled).
    pub timeline: Option<Timeline>,
    /// Merged phase profile of this job's replications (when the runner
    /// has profiling enabled; `None` on failure or when disabled).
    pub profile: Option<ProfileReport>,
    /// Host wall-clock this job took on its worker.
    pub wall: Duration,
}

/// Host-side facts about a finished sweep. Everything here varies with
/// thread count and machine load — print it to stderr, never into
/// canonical output.
#[derive(Debug, Clone)]
pub struct SweepSummary {
    /// Jobs submitted.
    pub runs: usize,
    /// Jobs that failed.
    pub failed: usize,
    /// Worker threads used.
    pub threads: usize,
    /// Wall-clock of the whole sweep.
    pub wall: Duration,
    /// Sum of per-job wall-clocks (≈ what one thread would have taken).
    pub serial_equivalent: Duration,
}

impl SweepSummary {
    /// Parallel speedup estimate: serial-equivalent time over wall time.
    pub fn speedup(&self) -> f64 {
        let wall = self.wall.as_secs_f64();
        if wall <= 0.0 {
            1.0
        } else {
            self.serial_equivalent.as_secs_f64() / wall
        }
    }

    /// One-line human-readable rendering.
    pub fn render(&self) -> String {
        let failed = if self.failed > 0 {
            format!(", {} FAILED", self.failed)
        } else {
            String::new()
        };
        format!(
            "sweep: {} runs on {} thread{} in {:.2}s (serial-equivalent {:.2}s, speedup {:.2}x{})",
            self.runs,
            self.threads,
            if self.threads == 1 { "" } else { "s" },
            self.wall.as_secs_f64(),
            self.serial_equivalent.as_secs_f64(),
            self.speedup(),
            failed,
        )
    }
}

/// Everything a sweep produced: per-job items in submission order, the
/// deterministically merged metrics of all successful runs, and the
/// host-side summary.
#[derive(Debug)]
pub struct SweepOutcome {
    /// Per-job outcomes, in submission order.
    pub items: Vec<SweepItem>,
    /// All successful jobs' metrics, merged in submission order.
    pub metrics: MetricsSnapshot,
    /// All successful jobs' timelines, merged in submission order
    /// (`None` unless the runner had timeline sampling enabled).
    pub timeline: Option<Timeline>,
    /// All successful jobs' phase profiles, merged in submission order
    /// (`None` unless the runner had profiling enabled). The merge is
    /// per-stack sums, so this is byte-identical at any thread count.
    pub profile: Option<ProfileReport>,
    /// Host wall-clock facts (stderr material).
    pub summary: SweepSummary,
}

impl SweepOutcome {
    /// The results in submission order, failing on the first error.
    /// Sweeps that expect every configuration to succeed (all the figure
    /// sweeps) use this to keep the old panic-on-failure behaviour
    /// explicit.
    pub fn into_results(self) -> Result<Vec<ReplicatedResult>, SweepError> {
        self.items.into_iter().map(|item| item.result).collect()
    }

    /// Borrowed view of every successful result, in submission order.
    pub fn ok_results(&self) -> impl Iterator<Item = (&SweepItem, &ReplicatedResult)> {
        self.items
            .iter()
            .filter_map(|i| i.result.as_ref().ok().map(|r| (i, r)))
    }

    /// The errors, in submission order (empty when all runs succeeded).
    pub fn errors(&self) -> Vec<&SweepError> {
        self.items
            .iter()
            .filter_map(|i| i.result.as_ref().err())
            .collect()
    }
}

/// Per-replication trace-sink factory: `(job index, replication)` → sink.
/// Called on the worker thread that owns the run, so the sink itself
/// never crosses threads.
pub type SinkFactory = dyn Fn(usize, u32) -> Option<Box<dyn TraceSink>> + Send + Sync;

/// The deterministic parallel sweep executor.
pub struct SweepRunner {
    jobs: usize,
    sink_factory: Option<Box<SinkFactory>>,
    timeline_interval_us: Option<u64>,
    profile: bool,
}

impl SweepRunner {
    /// An executor using `jobs` worker threads; `0` means the host's
    /// available parallelism.
    pub fn new(jobs: usize) -> Self {
        let jobs = if jobs == 0 {
            default_parallelism()
        } else {
            jobs
        };
        SweepRunner {
            jobs,
            sink_factory: None,
            timeline_interval_us: None,
            profile: false,
        }
    }

    /// Worker threads this executor will use.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Attach a per-replication trace-sink factory (e.g. one JSONL file
    /// per run). Each run still gets an isolated registry either way.
    pub fn with_sink_factory(
        mut self,
        f: impl Fn(usize, u32) -> Option<Box<dyn TraceSink>> + Send + Sync + 'static,
    ) -> Self {
        self.sink_factory = Some(Box::new(f));
        self
    }

    /// Enable timeline sampling for every run, at `interval_us`
    /// simulated microseconds. Each job's replications merge into
    /// [`SweepItem::timeline`]; all jobs merge into
    /// [`SweepOutcome::timeline`]. Because sample boundaries are
    /// interval multiples and the merge is order-independent, the merged
    /// timelines are byte-identical at any thread count.
    pub fn with_timeline(mut self, interval_us: u64) -> Self {
        self.timeline_interval_us = Some(interval_us);
        self
    }

    /// Enable phase profiling for every run. Each job's replications
    /// merge into [`SweepItem::profile`]; all jobs merge into
    /// [`SweepOutcome::profile`]. Per-stack counters are deterministic
    /// sums, so the merged profile (minus wall clock, which never enters
    /// canonical output) is byte-identical at any thread count.
    pub fn with_profile(mut self) -> Self {
        self.profile = true;
        self
    }

    /// Run every job and assemble the outcome in submission order.
    pub fn run(&self, jobs: Vec<SweepJob>) -> SweepOutcome {
        let started = Instant::now();
        let n = jobs.len();
        let threads = self.jobs.clamp(1, n.max(1));
        let mut slots: Vec<Option<SweepItem>> = Vec::with_capacity(n);
        slots.resize_with(n, || None);
        if threads == 1 {
            // Serial fast path: no pool, identical assembly.
            for (index, job) in jobs.into_iter().enumerate() {
                slots[index] = Some(self.run_one(index, job));
            }
        } else {
            let next = AtomicUsize::new(0);
            let jobs: Vec<Mutex<Option<SweepJob>>> =
                jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
            let out: Vec<Mutex<&mut Option<SweepItem>>> =
                slots.iter_mut().map(Mutex::new).collect();
            std::thread::scope(|scope| {
                for _ in 0..threads {
                    scope.spawn(|| loop {
                        let index = next.fetch_add(1, Ordering::Relaxed);
                        if index >= n {
                            break;
                        }
                        let job = jobs[index]
                            .lock()
                            .expect("job mutex poisoned: a worker panicked while taking a job")
                            .take()
                            .expect("job index dispensed twice: the atomic cursor guarantees one owner per job");
                        let item = self.run_one(index, job);
                        **out[index].lock().expect("result mutex poisoned: a worker panicked while storing its item") = Some(item);
                    });
                }
            });
        }
        let items: Vec<SweepItem> = slots
            .into_iter()
            .map(|s| s.expect("worker pool exited with an unfilled result slot; every index < n is claimed exactly once"))
            .collect();
        // Join: fold metrics, timelines and wall-clocks in submission
        // order (both merges are order-independent anyway).
        let mut metrics = MetricsSnapshot::default();
        let mut timeline: Option<Timeline> = None;
        let mut profile: Option<ProfileReport> = None;
        let mut serial_equivalent = Duration::ZERO;
        let mut failed = 0;
        for item in &items {
            metrics.merge(&item.metrics);
            match (&mut timeline, &item.timeline) {
                (Some(merged), Some(t)) => merged.merge(t),
                (slot @ None, Some(t)) => *slot = Some(t.clone()),
                _ => {}
            }
            match (&mut profile, &item.profile) {
                (Some(merged), Some(p)) => merged.merge(p),
                (slot @ None, Some(p)) => *slot = Some(p.clone()),
                _ => {}
            }
            serial_equivalent += item.wall;
            if item.result.is_err() {
                failed += 1;
            }
        }
        SweepOutcome {
            metrics,
            timeline,
            profile,
            summary: SweepSummary {
                runs: items.len(),
                failed,
                threads,
                wall: started.elapsed(),
                serial_equivalent,
            },
            items,
        }
    }

    fn run_one(&self, index: usize, job: SweepJob) -> SweepItem {
        let SweepJob { label, cfg, reps } = job;
        let t0 = Instant::now();
        let factory = self.sink_factory.as_deref();
        let interval = self.timeline_interval_us;
        let profiled = self.profile;
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            run_replicated_observed(&cfg, reps, &mut |rep| {
                let mut obs = match factory.and_then(|f| f(index, rep)) {
                    Some(sink) => ObsConfig::with_sink(sink),
                    None => ObsConfig::default(),
                };
                if let Some(us) = interval {
                    obs = obs.timeline(us);
                }
                if profiled {
                    obs = obs.profile();
                }
                obs
            })
        }));
        let (result, metrics, timeline, profile) = match outcome {
            Ok((result, obs)) => (Ok(result), obs.metrics, obs.timeline, obs.profile),
            Err(payload) => (
                Err(SweepError {
                    index,
                    label: label.clone(),
                    message: panic_message(payload.as_ref()),
                }),
                MetricsSnapshot::default(),
                None,
                None,
            ),
        };
        SweepItem {
            index,
            label,
            result,
            metrics,
            timeline,
            profile,
            wall: t0.elapsed(),
        }
    }
}

/// The host's available parallelism (1 when unknown).
pub fn default_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else {
        payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| "non-string panic payload".to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(seed: u64) -> SimConfig {
        SimConfig {
            database_bytes: 2 * 1024 * 1024,
            buffer_pages: 24,
            warmup_txns: 40,
            measured_txns: 120,
            seed,
            ..SimConfig::default()
        }
    }

    #[test]
    fn serial_and_parallel_agree() {
        let jobs = |reps| {
            (0..4)
                .map(|i| SweepJob::new(format!("job{i}"), tiny(100 + i), reps))
                .collect::<Vec<_>>()
        };
        let serial = SweepRunner::new(1).run(jobs(1));
        let parallel = SweepRunner::new(4).run(jobs(1));
        assert_eq!(serial.items.len(), 4);
        assert_eq!(serial.summary.threads, 1);
        assert_eq!(parallel.summary.threads, 4);
        assert_eq!(serial.metrics, parallel.metrics);
        for (a, b) in serial.items.iter().zip(&parallel.items) {
            assert_eq!(a.label, b.label);
            let (ra, rb) = (a.result.as_ref().unwrap(), b.result.as_ref().unwrap());
            assert_eq!(ra.response.mean.to_bits(), rb.response.mean.to_bits());
            assert_eq!(ra.reports[0].io, rb.reports[0].io);
            assert_eq!(a.metrics, b.metrics);
        }
    }

    #[test]
    fn timelines_merge_identically_across_thread_counts() {
        let jobs = || {
            (0..4)
                .map(|i| SweepJob::new(format!("job{i}"), tiny(200 + i), 2))
                .collect::<Vec<_>>()
        };
        let serial = SweepRunner::new(1).with_timeline(1_000_000).run(jobs());
        let parallel = SweepRunner::new(4).with_timeline(1_000_000).run(jobs());
        for (a, b) in serial.items.iter().zip(&parallel.items) {
            let (ta, tb) = (a.timeline.as_ref().unwrap(), b.timeline.as_ref().unwrap());
            assert!(!ta.is_empty());
            assert_eq!(ta.to_json(), tb.to_json());
        }
        let (ma, mb) = (serial.timeline.unwrap(), parallel.timeline.unwrap());
        assert_eq!(ma.to_json(), mb.to_json());
        // Each job contributed 2 replications to the first boundary.
        let first = ma.points().next().unwrap().1;
        assert_eq!(first.runs, 8);
    }

    #[test]
    fn panicking_job_is_isolated() {
        let jobs = vec![
            SweepJob::new("ok-before", tiny(7), 1),
            // reps == 0 violates run_replicated's precondition and panics.
            SweepJob::new("boom", tiny(8), 0),
            SweepJob::new("ok-after", tiny(9), 1),
        ];
        let out = SweepRunner::new(2).run(jobs);
        assert_eq!(out.summary.failed, 1);
        assert!(out.items[0].result.is_ok());
        assert!(out.items[2].result.is_ok());
        let err = out.items[1].result.as_ref().unwrap_err();
        assert_eq!(err.index, 1);
        assert_eq!(err.label, "boom");
        assert!(err.message.contains("at least one replication"));
        assert_eq!(out.errors().len(), 1);
        assert!(out.into_results().is_err());
    }

    #[test]
    fn per_rep_fanout_matches_serial_replication() {
        let cfg = tiny(5);
        let serial = crate::runner::run_replicated(&cfg, 3);
        let jobs = (0..3)
            .map(|r| {
                SweepJob::new(
                    format!("rep{r}"),
                    crate::runner::replication_config(&cfg, r),
                    1,
                )
            })
            .collect();
        let results = SweepRunner::new(3).run(jobs).into_results().unwrap();
        assert_eq!(serial.reports.len(), results.len());
        for (a, b) in serial
            .reports
            .iter()
            .zip(results.iter().map(|r| &r.reports[0]))
        {
            assert_eq!(a.mean_response_s.to_bits(), b.mean_response_s.to_bits());
            assert_eq!(a.io, b.io);
            assert_eq!(a.span_totals, b.span_totals);
        }
    }

    #[test]
    fn zero_jobs_means_available_parallelism() {
        assert!(SweepRunner::new(0).jobs() >= 1);
        assert_eq!(SweepRunner::new(3).jobs(), 3);
    }

    #[test]
    fn summary_speedup_and_render() {
        let s = SweepSummary {
            runs: 8,
            failed: 0,
            threads: 4,
            wall: Duration::from_secs(2),
            serial_equivalent: Duration::from_secs(6),
        };
        assert!((s.speedup() - 3.0).abs() < 1e-12);
        let line = s.render();
        assert!(line.contains("8 runs"));
        assert!(line.contains("4 threads"));
        let failing = SweepSummary { failed: 2, ..s };
        assert!(failing.render().contains("2 FAILED"));
    }

    #[test]
    fn sink_factory_runs_per_replication() {
        use std::sync::atomic::AtomicU32;
        use std::sync::Arc;
        let calls = Arc::new(AtomicU32::new(0));
        let seen = Arc::clone(&calls);
        let runner = SweepRunner::new(2).with_sink_factory(move |_, _| {
            seen.fetch_add(1, Ordering::Relaxed);
            None
        });
        let jobs = (0..3).map(|i| SweepJob::of(tiny(i), 2)).collect();
        let out = runner.run(jobs);
        assert_eq!(out.summary.failed, 0);
        assert_eq!(calls.load(Ordering::Relaxed), 6);
    }
}
