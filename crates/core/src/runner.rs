//! Replicated experiment running.

use crate::config::SimConfig;
use crate::engine::{run_simulation_observed, ObsConfig, RunObservations};
use crate::metrics::RunReport;
use semcluster_obs::{MetricsSnapshot, TraceSink};
use semcluster_sim::{Estimate, OnlineStats};

/// Mean response time with a confidence interval, plus the per-replication
/// reports.
#[derive(Debug, Clone)]
pub struct ReplicatedResult {
    /// Mean-response-time estimate across replications (seconds).
    pub response: Estimate,
    /// Log-I/O count estimate across replications.
    pub log_ios: Estimate,
    /// Buffer-hit-ratio estimate across replications.
    pub hit_ratio: Estimate,
    /// The individual run reports.
    pub reports: Vec<RunReport>,
}

impl ReplicatedResult {
    /// Fold per-replication reports (in replication order) into the
    /// summary estimates. The fold is a plain left-to-right pass, so the
    /// result depends only on the report sequence — never on how the
    /// replications were scheduled.
    pub fn from_reports(reports: Vec<RunReport>) -> ReplicatedResult {
        assert!(!reports.is_empty(), "need at least one replication");
        let mut response = OnlineStats::new();
        let mut log_ios = OnlineStats::new();
        let mut hit_ratio = OnlineStats::new();
        for report in &reports {
            response.push(report.mean_response_s);
            log_ios.push(report.log_ios as f64);
            hit_ratio.push(report.hit_ratio);
        }
        ReplicatedResult {
            response: Estimate::from_stats(&response),
            log_ios: Estimate::from_stats(&log_ios),
            hit_ratio: Estimate::from_stats(&hit_ratio),
            reports,
        }
    }
}

/// The configuration of replication `r` of `cfg`: the same parameters
/// under a seed derived from the master seed. This mapping is the single
/// definition of "replication seed" — the serial runner, the parallel
/// sweep executor and the CLI all share it, which is what makes their
/// outputs interchangeable.
///
/// Replication 0 *is* the master configuration
/// (`replication_config(cfg, 0) == cfg`), so fanning the replications
/// out as independent single-replication sweep jobs produces exactly
/// the reports a serial [`run_replicated`] call would.
pub fn replication_config(cfg: &SimConfig, r: u32) -> SimConfig {
    cfg.clone().with_seed(
        cfg.seed
            .wrapping_add((r as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)),
    )
}

/// Run `cfg` `replications` times with derived seeds and fold the results.
pub fn run_replicated(cfg: &SimConfig, replications: u32) -> ReplicatedResult {
    run_replicated_with_obs(cfg, replications, &mut |_| None).0
}

/// Like [`run_replicated`], but each replication runs with an isolated
/// metrics registry whose final snapshots are merged (in replication
/// order) into one [`MetricsSnapshot`]; `sink_for` may attach a fresh
/// trace sink per replication (`None` = no tracing).
pub fn run_replicated_with_obs(
    cfg: &SimConfig,
    replications: u32,
    sink_for: &mut dyn FnMut(u32) -> Option<Box<dyn TraceSink>>,
) -> (ReplicatedResult, MetricsSnapshot) {
    let (result, obs) = run_replicated_observed(cfg, replications, &mut |r| match sink_for(r) {
        Some(sink) => ObsConfig::with_sink(sink),
        None => ObsConfig::default(),
    });
    (result, obs.metrics)
}

/// The fully general replicated runner: `obs_for` builds a complete
/// [`ObsConfig`] per replication (sink, timeline sampling, auditing).
/// Metrics and timelines merge order-independently; audits concatenate
/// in replication order.
pub fn run_replicated_observed(
    cfg: &SimConfig,
    replications: u32,
    obs_for: &mut dyn FnMut(u32) -> ObsConfig,
) -> (ReplicatedResult, RunObservations) {
    assert!(replications > 0, "need at least one replication");
    let mut reports = Vec::with_capacity(replications as usize);
    let mut merged = RunObservations::default();
    for r in 0..replications {
        let (report, obs) = run_simulation_observed(replication_config(cfg, r), obs_for(r));
        merged.absorb(obs);
        reports.push(report);
    }
    (ReplicatedResult::from_reports(reports), merged)
}
