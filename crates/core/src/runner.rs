//! Replicated experiment running.

use crate::config::SimConfig;
use crate::engine::run_simulation;
use crate::metrics::RunReport;
use semcluster_sim::{Estimate, OnlineStats};

/// Mean response time with a confidence interval, plus the per-replication
/// reports.
#[derive(Debug, Clone)]
pub struct ReplicatedResult {
    /// Mean-response-time estimate across replications (seconds).
    pub response: Estimate,
    /// Log-I/O count estimate across replications.
    pub log_ios: Estimate,
    /// Buffer-hit-ratio estimate across replications.
    pub hit_ratio: Estimate,
    /// The individual run reports.
    pub reports: Vec<RunReport>,
}

/// Run `cfg` `replications` times with derived seeds and fold the results.
pub fn run_replicated(cfg: &SimConfig, replications: u32) -> ReplicatedResult {
    assert!(replications > 0, "need at least one replication");
    let mut response = OnlineStats::new();
    let mut log_ios = OnlineStats::new();
    let mut hit_ratio = OnlineStats::new();
    let mut reports = Vec::with_capacity(replications as usize);
    for r in 0..replications {
        let run_cfg = cfg.clone().with_seed(
            cfg.seed
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add(r as u64),
        );
        let report = run_simulation(run_cfg);
        response.push(report.mean_response_s);
        log_ios.push(report.log_ios as f64);
        hit_ratio.push(report.hit_ratio);
        reports.push(report);
    }
    let estimate = |s: &OnlineStats| Estimate {
        mean: s.mean(),
        ci95: s.ci95_half_width(),
        replications: s.count(),
    };
    ReplicatedResult {
        response: estimate(&response),
        log_ios: estimate(&log_ios),
        hit_ratio: estimate(&hit_ratio),
        reports,
    }
}
