//! Crash points, ACID verification, and the crash-recovery matrix
//! (DESIGN.md §11).
//!
//! [`Engine::run_and_crash_at`](crate::Engine::run_and_crash_at) stops a
//! run at an arbitrary [`CrashPoint`] and returns a [`CrashOutcome`]:
//! the durable log, the recovery replay, and — crucially — the engine's
//! *ground truth* about what clients observed before the crash
//! (acknowledged commits, in-flight transactions, aborts).
//! [`CrashOutcome::verify_acid`] checks the recovery against that ground
//! truth, and [`run_crash_matrix`] sweeps a workload across every commit
//! boundary plus sampled intra-transaction and mid-flush points,
//! verifying each one.

use crate::config::SimConfig;
use crate::engine::Engine;
use crate::metrics::RunReport;
use semcluster_faults::CrashPoint;
use semcluster_vdm::DetHashSet;
use semcluster_wal::{DurableLog, RecordKind, RecoveryOutcome, TxnToken};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Everything a crashed run leaves behind: the simulation's report up to
/// the crash, the durable log, the recovery replay over it, and the
/// engine-side ground truth the replay must be consistent with.
#[derive(Debug)]
pub struct CrashOutcome {
    /// Where the run crashed.
    pub point: CrashPoint,
    /// Run report covering everything up to the crash.
    pub report: RunReport,
    /// The log records that survived (possibly with a torn tail).
    pub durable: DurableLog,
    /// The analysis/redo/undo replay over `durable`.
    pub recovery: RecoveryOutcome,
    /// Transactions whose commit was *acknowledged* to the client
    /// (the TxnDone event ran) before the crash. Durability must hold
    /// for exactly these.
    pub acked: Vec<TxnToken>,
    /// Transactions still in flight at the crash. They may legally end
    /// up as winners (commit durable, acknowledgement lost) or losers.
    pub in_flight: Vec<TxnToken>,
    /// Transactions the engine aborted (retry exhaustion, placement
    /// failure) before the crash. Their effects must never be redone.
    pub aborted: Vec<TxnToken>,
    /// Simulation events processed before the crash.
    pub events_seen: u64,
    /// Commit records written before the crash.
    pub commits_seen: u64,
    /// Physical log-device flushes issued before the crash.
    pub log_flushes_seen: u64,
}

impl CrashOutcome {
    /// Check the recovery replay against the engine's ground truth.
    /// Returns one human-readable line per violated invariant; an empty
    /// vector means the crash was ACID-clean:
    ///
    /// * **Durability** — every acknowledged commit has a durable commit
    ///   record, is never rolled back as a loser, and (if it logged any
    ///   updates) is redone as a winner.
    /// * **Atomicity** — engine-aborted transactions are never redone;
    ///   loser effects are undone completely, in reverse LSN order.
    /// * **Replay fidelity** — the redo list is exactly the durable
    ///   winner updates in LSN order, and the undo list exactly the
    ///   durable loser updates reversed.
    pub fn verify_acid(&self) -> Vec<String> {
        let mut violations = Vec::new();
        let trusted = self.durable.trusted();
        let mut committed: DetHashSet<TxnToken> = DetHashSet::default();
        let mut updated: DetHashSet<TxnToken> = DetHashSet::default();
        for rec in trusted {
            match rec.kind {
                RecordKind::Commit => {
                    committed.insert(rec.txn);
                }
                RecordKind::Update { .. } => {
                    updated.insert(rec.txn);
                }
                RecordKind::Abort => {}
            }
        }
        let winners: DetHashSet<TxnToken> = self.recovery.winners.iter().copied().collect();
        let losers: DetHashSet<TxnToken> = self.recovery.losers.iter().copied().collect();

        // Durability of acknowledged commits.
        for t in &self.acked {
            if !committed.contains(t) {
                violations.push(format!(
                    "durability: acked {t:?} has no durable commit record"
                ));
            }
            if losers.contains(t) {
                violations.push(format!(
                    "durability: acked {t:?} was rolled back as a loser"
                ));
            }
            if updated.contains(t) && !winners.contains(t) {
                violations.push(format!(
                    "durability: acked {t:?} logged updates but recovery did not redo them"
                ));
            }
        }

        // Atomicity of engine-side aborts.
        for t in &self.aborted {
            if winners.contains(t) {
                violations.push(format!(
                    "atomicity: engine-aborted {t:?} was redone as a winner"
                ));
            }
        }

        // Replay fidelity: redo is exactly the winner updates in LSN
        // order; undo exactly the loser updates reversed.
        let expected_redo: Vec<(TxnToken, semcluster_storage::PageId)> = trusted
            .iter()
            .filter_map(|r| match r.kind {
                RecordKind::Update { page, .. } if winners.contains(&r.txn) => Some((r.txn, page)),
                _ => None,
            })
            .collect();
        if expected_redo != self.recovery.redone {
            violations.push(format!(
                "replay: redo list diverges from durable winner updates \
                 (expected {}, got {})",
                expected_redo.len(),
                self.recovery.redone.len()
            ));
        }
        let mut expected_undo: Vec<(TxnToken, semcluster_storage::PageId)> = trusted
            .iter()
            .filter_map(|r| match r.kind {
                RecordKind::Update { page, .. } if losers.contains(&r.txn) => Some((r.txn, page)),
                _ => None,
            })
            .collect();
        expected_undo.reverse();
        if expected_undo != self.recovery.undone {
            violations.push(format!(
                "replay: undo list diverges from reversed durable loser updates \
                 (expected {}, got {})",
                expected_undo.len(),
                self.recovery.undone.len()
            ));
        }
        violations
    }
}

/// Configuration of one crash-matrix sweep.
#[derive(Debug, Clone)]
pub struct CrashMatrixConfig {
    /// The workload to crash. `retain_log` is forced on.
    pub cfg: SimConfig,
    /// Intra-transaction crash points sampled evenly across the run's
    /// event count (on top of every commit boundary).
    pub event_samples: usize,
    /// Mid-flush (torn log record) points sampled evenly across the
    /// run's physical log flushes.
    pub mid_flush_samples: usize,
    /// Worker threads (`0` = host parallelism).
    pub jobs: usize,
}

impl CrashMatrixConfig {
    /// The smoke matrix: a small workload (1 MB database, 16 buffers,
    /// 80 transactions) crashed at every commit plus 50 event samples
    /// and 10 mid-flush samples. Runs in seconds; used by CI.
    pub fn smoke() -> Self {
        CrashMatrixConfig {
            cfg: SimConfig {
                database_bytes: 1024 * 1024,
                buffer_pages: 16,
                warmup_txns: 20,
                measured_txns: 60,
                retain_log: true,
                seed: 4242,
                ..SimConfig::default()
            },
            event_samples: 50,
            mid_flush_samples: 10,
            jobs: 0,
        }
    }

    /// The deep matrix: a larger workload and denser sampling for
    /// overnight confidence runs.
    pub fn deep() -> Self {
        CrashMatrixConfig {
            cfg: SimConfig {
                database_bytes: 4 * 1024 * 1024,
                buffer_pages: 32,
                warmup_txns: 50,
                measured_txns: 250,
                retain_log: true,
                seed: 4242,
                ..SimConfig::default()
            },
            event_samples: 200,
            mid_flush_samples: 40,
            jobs: 0,
        }
    }
}

/// Result of crashing at one point of the matrix.
#[derive(Debug, Clone)]
pub struct CrashPointResult {
    /// The crash point exercised.
    pub point: CrashPoint,
    /// Commits acknowledged before the crash.
    pub acked: usize,
    /// Winners recovery identified.
    pub winners: usize,
    /// Losers recovery rolled back.
    pub losers: usize,
    /// Torn records truncated before analysis.
    pub truncated: u32,
    /// ACID violations ([`CrashOutcome::verify_acid`]); empty = clean.
    pub violations: Vec<String>,
}

/// The whole matrix: probe-run totals plus one result per crash point,
/// in deterministic point order.
#[derive(Debug)]
pub struct CrashMatrixReport {
    /// Commits the uncrashed probe run performed.
    pub total_commits: u64,
    /// Events the uncrashed probe run processed.
    pub total_events: u64,
    /// Physical log flushes the uncrashed probe run issued.
    pub total_flushes: u64,
    /// Per-point results, in the order the points were generated
    /// (commits, then event samples, then mid-flush samples).
    pub points: Vec<CrashPointResult>,
}

impl CrashMatrixReport {
    /// Total ACID violations across every point.
    pub fn violation_count(&self) -> usize {
        self.points.iter().map(|p| p.violations.len()).sum()
    }

    /// Deterministic human-readable summary (one line per violating
    /// point, plus a footer). Safe for goldens: contains no host facts.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "crash matrix: {} points over {} commits / {} events / {} log flushes\n",
            self.points.len(),
            self.total_commits,
            self.total_events,
            self.total_flushes
        ));
        for p in &self.points {
            if !p.violations.is_empty() {
                out.push_str(&format!("  FAIL {}:\n", p.point.label()));
                for v in &p.violations {
                    out.push_str(&format!("    - {v}\n"));
                }
            }
        }
        out.push_str(&format!(
            "{} violations across {} points\n",
            self.violation_count(),
            self.points.len()
        ));
        out
    }
}

/// Evenly sample `n` values from `1..=max` (deduplicated, ascending).
fn sample_points(max: u64, n: usize) -> Vec<u64> {
    if max == 0 || n == 0 {
        return Vec::new();
    }
    let n = (n as u64).min(max);
    let mut out = Vec::with_capacity(n as usize);
    for i in 0..n {
        // i/(n-1) across [1, max]; integer arithmetic keeps it exact.
        let v = if n == 1 {
            max
        } else {
            1 + (i * (max - 1)) / (n - 1)
        };
        if out.last() != Some(&v) {
            out.push(v);
        }
    }
    out
}

/// Run the exhaustive crash-recovery matrix: probe the workload once to
/// learn its commit/event/flush totals, then crash it at every commit
/// boundary, at `event_samples` intra-transaction points, and at
/// `mid_flush_samples` torn-log points, verifying ACID invariants at
/// each. The point list and every result are deterministic; worker
/// count only affects wall-clock.
pub fn run_crash_matrix(config: &CrashMatrixConfig) -> CrashMatrixReport {
    let mut cfg = config.cfg.clone();
    cfg.retain_log = true;

    // Probe: run to completion to learn the crash-point space.
    let probe = Engine::new(cfg.clone()).run_and_crash_at(CrashPoint::End);
    let (total_commits, total_events, total_flushes) = (
        probe.commits_seen,
        probe.events_seen,
        probe.log_flushes_seen,
    );

    let mut points: Vec<CrashPoint> = Vec::new();
    for k in 1..=total_commits {
        points.push(CrashPoint::Commit(k));
    }
    for k in sample_points(total_events, config.event_samples) {
        points.push(CrashPoint::Event(k));
    }
    for k in sample_points(total_flushes, config.mid_flush_samples) {
        points.push(CrashPoint::MidFlush(k));
    }

    let n = points.len();
    let threads = if config.jobs == 0 {
        crate::sweep::default_parallelism()
    } else {
        config.jobs
    }
    .clamp(1, n.max(1));

    let run_point = |point: CrashPoint| -> CrashPointResult {
        let outcome = Engine::new(cfg.clone()).run_and_crash_at(point);
        let violations = outcome.verify_acid();
        CrashPointResult {
            point,
            acked: outcome.acked.len(),
            winners: outcome.recovery.winners.len(),
            losers: outcome.recovery.losers.len(),
            truncated: outcome.recovery.truncated,
            violations,
        }
    };

    let mut slots: Vec<Option<CrashPointResult>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    if threads == 1 {
        for (i, &point) in points.iter().enumerate() {
            slots[i] = Some(run_point(point));
        }
    } else {
        let next = AtomicUsize::new(0);
        let out: Vec<Mutex<&mut Option<CrashPointResult>>> =
            slots.iter_mut().map(Mutex::new).collect();
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let item = run_point(points[i]);
                    **out[i].lock().expect("matrix result slot poisoned") = Some(item);
                });
            }
        });
    }

    CrashMatrixReport {
        total_commits,
        total_events,
        total_flushes,
        points: slots
            .into_iter()
            .map(|s| s.expect("every matrix slot filled by a worker"))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_points_are_ascending_and_bounded() {
        assert_eq!(sample_points(0, 10), Vec::<u64>::new());
        assert_eq!(sample_points(5, 0), Vec::<u64>::new());
        assert_eq!(sample_points(1, 3), vec![1]);
        let s = sample_points(100, 7);
        assert_eq!(s.first(), Some(&1));
        assert_eq!(s.last(), Some(&100));
        assert!(s.windows(2).all(|w| w[0] < w[1]));
        // More samples than range: every point once.
        assert_eq!(sample_points(4, 50), vec![1, 2, 3, 4]);
    }

    #[test]
    fn crash_at_first_commit_is_acid_clean() {
        let cfg = SimConfig {
            database_bytes: 512 * 1024,
            buffer_pages: 8,
            warmup_txns: 5,
            measured_txns: 20,
            retain_log: true,
            ..SimConfig::default()
        };
        let outcome = Engine::new(cfg).run_and_crash_at(CrashPoint::Commit(1));
        assert_eq!(outcome.commits_seen, 1, "stopped at the first commit");
        let violations = outcome.verify_acid();
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn mid_flush_crash_truncates_and_stays_clean() {
        let cfg = SimConfig {
            database_bytes: 512 * 1024,
            buffer_pages: 8,
            warmup_txns: 5,
            measured_txns: 20,
            retain_log: true,
            ..SimConfig::default()
        };
        let outcome = Engine::new(cfg).run_and_crash_at(CrashPoint::MidFlush(3));
        let violations = outcome.verify_acid();
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn tiny_matrix_is_violation_free_and_thread_invariant() {
        let mut mc = CrashMatrixConfig::smoke();
        mc.cfg.database_bytes = 512 * 1024;
        mc.cfg.buffer_pages = 8;
        mc.cfg.warmup_txns = 3;
        mc.cfg.measured_txns = 8;
        mc.event_samples = 6;
        mc.mid_flush_samples = 3;
        mc.jobs = 1;
        let serial = run_crash_matrix(&mc);
        assert_eq!(serial.violation_count(), 0, "{}", serial.render());
        assert!(serial.total_commits > 0);
        assert!(serial.points.len() as u64 >= serial.total_commits);
        mc.jobs = 4;
        let parallel = run_crash_matrix(&mc);
        assert_eq!(serial.render(), parallel.render());
    }
}
