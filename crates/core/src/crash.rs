//! Crash points, ACID verification, and the crash-recovery matrix
//! (DESIGN.md §11).
//!
//! [`Engine::run_and_crash_at`](crate::Engine::run_and_crash_at) stops a
//! run at an arbitrary [`CrashPoint`] and returns a [`CrashOutcome`]:
//! the durable log, the recovery replay, and — crucially — the engine's
//! *ground truth* about what clients observed before the crash
//! (acknowledged commits, in-flight transactions, aborts).
//! [`CrashOutcome::verify_acid`] checks the recovery against that ground
//! truth, and [`run_crash_matrix`] sweeps a workload across every commit
//! boundary plus sampled intra-transaction and mid-flush points,
//! verifying each one.

use crate::config::SimConfig;
use crate::durable::{DurableMirror, FileCrashArtifacts};
use crate::engine::Engine;
use crate::metrics::RunReport;
use semcluster_faults::{CrashPoint, FsFaultConfig};
use semcluster_storage::{recover_dir, FileRecoveryOutcome, PAGES_FILE, WAL_FILE};
use semcluster_vdm::DetHashSet;
use semcluster_wal::{DurableLog, RecordKind, RecoveryOutcome, TxnToken};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Everything a crashed run leaves behind: the simulation's report up to
/// the crash, the durable log, the recovery replay over it, and the
/// engine-side ground truth the replay must be consistent with.
#[derive(Debug)]
pub struct CrashOutcome {
    /// Where the run crashed.
    pub point: CrashPoint,
    /// Run report covering everything up to the crash.
    pub report: RunReport,
    /// The log records that survived (possibly with a torn tail).
    pub durable: DurableLog,
    /// The analysis/redo/undo replay over `durable`.
    pub recovery: RecoveryOutcome,
    /// Transactions whose commit was *acknowledged* to the client
    /// (the TxnDone event ran) before the crash. Durability must hold
    /// for exactly these.
    pub acked: Vec<TxnToken>,
    /// Transactions that finished but whose durable (file-backend)
    /// commit fsync failed: the client was never acknowledged, so
    /// recovery owes them nothing — and fsyncgate semantics demand they
    /// never silently become durable later. Empty without a mirror.
    pub unacked: Vec<TxnToken>,
    /// Transactions still in flight at the crash. They may legally end
    /// up as winners (commit durable, acknowledgement lost) or losers.
    pub in_flight: Vec<TxnToken>,
    /// Transactions the engine aborted (retry exhaustion, placement
    /// failure) before the crash. Their effects must never be redone.
    pub aborted: Vec<TxnToken>,
    /// Simulation events processed before the crash.
    pub events_seen: u64,
    /// Commit records written before the crash.
    pub commits_seen: u64,
    /// Physical log-device flushes issued before the crash.
    pub log_flushes_seen: u64,
    /// What the durable file backend left behind (directory, fault
    /// stats, torn-write report). `None` when no mirror was attached.
    pub file: Option<FileCrashArtifacts>,
}

impl CrashOutcome {
    /// Check the recovery replay against the engine's ground truth.
    /// Returns one human-readable line per violated invariant; an empty
    /// vector means the crash was ACID-clean:
    ///
    /// * **Durability** — every acknowledged commit has a durable commit
    ///   record, is never rolled back as a loser, and (if it logged any
    ///   updates) is redone as a winner.
    /// * **Atomicity** — engine-aborted transactions are never redone;
    ///   loser effects are undone completely, in reverse LSN order.
    /// * **Replay fidelity** — the redo list is exactly the durable
    ///   winner updates in LSN order, and the undo list exactly the
    ///   durable loser updates reversed.
    pub fn verify_acid(&self) -> Vec<String> {
        let mut violations = Vec::new();
        let trusted = self.durable.trusted();
        let mut committed: DetHashSet<TxnToken> = DetHashSet::default();
        let mut updated: DetHashSet<TxnToken> = DetHashSet::default();
        for rec in trusted {
            match rec.kind {
                RecordKind::Commit => {
                    committed.insert(rec.txn);
                }
                RecordKind::Update { .. } => {
                    updated.insert(rec.txn);
                }
                RecordKind::Abort => {}
            }
        }
        let winners: DetHashSet<TxnToken> = self.recovery.winners.iter().copied().collect();
        let losers: DetHashSet<TxnToken> = self.recovery.losers.iter().copied().collect();

        // Durability of acknowledged commits.
        for t in &self.acked {
            if !committed.contains(t) {
                violations.push(format!(
                    "durability: acked {t:?} has no durable commit record"
                ));
            }
            if losers.contains(t) {
                violations.push(format!(
                    "durability: acked {t:?} was rolled back as a loser"
                ));
            }
            if updated.contains(t) && !winners.contains(t) {
                violations.push(format!(
                    "durability: acked {t:?} logged updates but recovery did not redo them"
                ));
            }
        }

        // Atomicity of engine-side aborts.
        for t in &self.aborted {
            if winners.contains(t) {
                violations.push(format!(
                    "atomicity: engine-aborted {t:?} was redone as a winner"
                ));
            }
        }

        // Replay fidelity: redo is exactly the winner updates in LSN
        // order; undo exactly the loser updates reversed.
        let expected_redo: Vec<(TxnToken, semcluster_storage::PageId)> = trusted
            .iter()
            .filter_map(|r| match r.kind {
                RecordKind::Update { page, .. } if winners.contains(&r.txn) => Some((r.txn, page)),
                _ => None,
            })
            .collect();
        if expected_redo != self.recovery.redone {
            violations.push(format!(
                "replay: redo list diverges from durable winner updates \
                 (expected {}, got {})",
                expected_redo.len(),
                self.recovery.redone.len()
            ));
        }
        let mut expected_undo: Vec<(TxnToken, semcluster_storage::PageId)> = trusted
            .iter()
            .filter_map(|r| match r.kind {
                RecordKind::Update { page, .. } if losers.contains(&r.txn) => Some((r.txn, page)),
                _ => None,
            })
            .collect();
        expected_undo.reverse();
        if expected_undo != self.recovery.undone {
            violations.push(format!(
                "replay: undo list diverges from reversed durable loser updates \
                 (expected {}, got {})",
                expected_undo.len(),
                self.recovery.undone.len()
            ));
        }
        violations
    }
}

/// Which storage backend a crash-matrix sweep exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MatrixBackend {
    /// The simulated log only (in-memory `DurableLog` + wal replay).
    #[default]
    Sim,
    /// A real file-backed [`crate::DurableMirror`] per point: crash
    /// points additionally kill the process image at filesystem syscall
    /// boundaries and inject fsync failures, and ACID is verified by
    /// recovering the actual files from disk — twice.
    File,
}

impl MatrixBackend {
    /// Stable lowercase name (CLI flag value and render label).
    pub fn name(self) -> &'static str {
        match self {
            MatrixBackend::Sim => "sim",
            MatrixBackend::File => "file",
        }
    }
}

/// Configuration of one crash-matrix sweep.
#[derive(Debug, Clone)]
pub struct CrashMatrixConfig {
    /// The workload to crash. `retain_log` is forced on.
    pub cfg: SimConfig,
    /// Intra-transaction crash points sampled evenly across the run's
    /// event count (on top of every commit boundary).
    pub event_samples: usize,
    /// Mid-flush (torn log record) points sampled evenly across the
    /// run's physical log flushes.
    pub mid_flush_samples: usize,
    /// Worker threads (`0` = host parallelism).
    pub jobs: usize,
    /// Storage backend under test.
    pub backend: MatrixBackend,
    /// File backend only: crash points sampled across the probe run's
    /// post-checkpoint filesystem syscalls (the fault layer pulls the
    /// plug mid-syscall, tearing the in-flight write at sector
    /// granularity).
    pub syscall_samples: usize,
    /// File backend only: points injecting an fsync *failure* (not a
    /// crash) at the k-th fsync; the run continues on the poisoned
    /// handle and the matrix verifies failed commits were never acked
    /// and never became durable.
    pub fsync_fail_samples: usize,
    /// File backend only: probability any raw write syscall accepts
    /// only a prefix (exercises the short-write retry loop).
    pub short_write_rate: f64,
    /// File backend only: keep the durability semantics of the fault
    /// layer (pending writes only reach the file at fsync) but skip the
    /// physical `sync_all` syscall. For fast tests; CI keeps it off.
    pub skip_physical_sync: bool,
    /// File backend only: where failing points preserve their store
    /// directory (default `target/crash-scratch`).
    pub scratch_dir: Option<PathBuf>,
}

impl CrashMatrixConfig {
    /// The smoke matrix: a small workload (1 MB database, 16 buffers,
    /// 80 transactions) crashed at every commit plus 50 event samples
    /// and 10 mid-flush samples. Runs in seconds; used by CI.
    pub fn smoke() -> Self {
        CrashMatrixConfig {
            cfg: SimConfig {
                database_bytes: 1024 * 1024,
                buffer_pages: 16,
                warmup_txns: 20,
                measured_txns: 60,
                retain_log: true,
                seed: 4242,
                ..SimConfig::default()
            },
            event_samples: 50,
            mid_flush_samples: 10,
            jobs: 0,
            backend: MatrixBackend::Sim,
            syscall_samples: 12,
            fsync_fail_samples: 4,
            short_write_rate: 0.05,
            skip_physical_sync: false,
            scratch_dir: None,
        }
    }

    /// The deep matrix: a larger workload and denser sampling for
    /// overnight confidence runs.
    pub fn deep() -> Self {
        CrashMatrixConfig {
            cfg: SimConfig {
                database_bytes: 4 * 1024 * 1024,
                buffer_pages: 32,
                warmup_txns: 50,
                measured_txns: 250,
                retain_log: true,
                seed: 4242,
                ..SimConfig::default()
            },
            event_samples: 200,
            mid_flush_samples: 40,
            jobs: 0,
            backend: MatrixBackend::Sim,
            syscall_samples: 40,
            fsync_fail_samples: 8,
            short_write_rate: 0.05,
            skip_physical_sync: false,
            scratch_dir: None,
        }
    }
}

/// Result of crashing at one point of the matrix.
#[derive(Debug, Clone)]
pub struct CrashPointResult {
    /// The crash point exercised.
    pub point: CrashPoint,
    /// Commits acknowledged before the crash.
    pub acked: usize,
    /// Winners recovery identified.
    pub winners: usize,
    /// Losers recovery rolled back.
    pub losers: usize,
    /// Torn records truncated before analysis.
    pub truncated: u32,
    /// ACID violations ([`CrashOutcome::verify_acid`], plus the file
    /// backend's recovery checks); empty = clean.
    pub violations: Vec<String>,
    /// File backend: the crash tore a partially written sector.
    pub torn_write: bool,
    /// File backend: an injected fsync failure fired during the run.
    pub fsync_failed: bool,
    /// File backend: pages recovery rewrote from WAL snapshots.
    pub repaired_pages: usize,
    /// File backend: torn WAL tail bytes physically truncated.
    pub wal_truncated: u64,
    /// File backend: where the store directory was preserved when this
    /// point failed verification (`None` when clean — the scratch
    /// directory is removed).
    pub scratch: Option<String>,
}

/// The whole matrix: probe-run totals plus one result per crash point,
/// in deterministic point order.
#[derive(Debug)]
pub struct CrashMatrixReport {
    /// Backend the matrix ran against.
    pub backend: MatrixBackend,
    /// Commits the uncrashed probe run performed.
    pub total_commits: u64,
    /// Events the uncrashed probe run processed.
    pub total_events: u64,
    /// Physical log flushes the uncrashed probe run issued.
    pub total_flushes: u64,
    /// File backend: filesystem syscalls the probe run issued.
    pub total_syscalls: u64,
    /// File backend: fsyncs the probe run issued.
    pub total_fsyncs: u64,
    /// Per-point results, in the order the points were generated
    /// (commits, then event samples, then mid-flush samples, then —
    /// file backend — syscall and fsync-failure samples).
    pub points: Vec<CrashPointResult>,
}

impl CrashMatrixReport {
    /// Total ACID violations across every point.
    pub fn violation_count(&self) -> usize {
        self.points.iter().map(|p| p.violations.len()).sum()
    }

    /// Deterministic human-readable summary (one line per violating
    /// point, plus a footer). Safe for goldens: contains no host facts.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "crash matrix: {} points over {} commits / {} events / {} log flushes\n",
            self.points.len(),
            self.total_commits,
            self.total_events,
            self.total_flushes
        ));
        if self.backend == MatrixBackend::File {
            out.push_str(&format!(
                "file backend: {} syscalls / {} fsyncs probed; \
                 {} torn writes, {} fsync-failure runs, \
                 {} pages repaired, {} wal tails truncated\n",
                self.total_syscalls,
                self.total_fsyncs,
                self.points.iter().filter(|p| p.torn_write).count(),
                self.points.iter().filter(|p| p.fsync_failed).count(),
                self.points.iter().map(|p| p.repaired_pages).sum::<usize>(),
                self.points.iter().filter(|p| p.wal_truncated > 0).count()
            ));
        }
        for p in &self.points {
            if !p.violations.is_empty() {
                out.push_str(&format!("  FAIL {}:\n", p.point.label()));
                for v in &p.violations {
                    out.push_str(&format!("    - {v}\n"));
                }
                if let Some(s) = &p.scratch {
                    out.push_str(&format!("    scratch preserved at {s}\n"));
                }
            }
        }
        out.push_str(&format!(
            "{} violations across {} points\n",
            self.violation_count(),
            self.points.len()
        ));
        out
    }
}

/// Evenly sample `n` values from `1..=max` (deduplicated, ascending).
fn sample_points(max: u64, n: usize) -> Vec<u64> {
    if max == 0 || n == 0 {
        return Vec::new();
    }
    let n = (n as u64).min(max);
    let mut out = Vec::with_capacity(n as usize);
    for i in 0..n {
        // i/(n-1) across [1, max]; integer arithmetic keeps it exact.
        let v = if n == 1 {
            max
        } else {
            1 + (i * (max - 1)) / (n - 1)
        };
        if out.last() != Some(&v) {
            out.push(v);
        }
    }
    out
}

/// Evenly sample `n` values from `lo..=max` (deduplicated, ascending).
fn sample_range(lo: u64, max: u64, n: usize) -> Vec<u64> {
    if max < lo {
        return Vec::new();
    }
    sample_points(max - lo + 1, n)
        .into_iter()
        .map(|v| lo + v - 1)
        .collect()
}

/// Fill one result slot per point, either serially or with a scoped
/// worker pool pulling from a shared counter. Result order is the point
/// order regardless of worker count.
fn run_slots<F>(points: &[CrashPoint], threads: usize, run_point: F) -> Vec<CrashPointResult>
where
    F: Fn(usize, CrashPoint) -> CrashPointResult + Sync,
{
    let n = points.len();
    let mut slots: Vec<Option<CrashPointResult>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    if threads == 1 {
        for (i, &point) in points.iter().enumerate() {
            slots[i] = Some(run_point(i, point));
        }
    } else {
        let next = AtomicUsize::new(0);
        let out: Vec<Mutex<&mut Option<CrashPointResult>>> =
            slots.iter_mut().map(Mutex::new).collect();
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let item = run_point(i, points[i]);
                    **out[i].lock().expect("matrix result slot poisoned") = Some(item);
                });
            }
        });
    }
    slots
        .into_iter()
        .map(|s| s.expect("every matrix slot filled by a worker"))
        .collect()
}

fn thread_count(jobs: usize, n: usize) -> usize {
    if jobs == 0 {
        crate::sweep::default_parallelism()
    } else {
        jobs
    }
    .clamp(1, n.max(1))
}

/// Run the exhaustive crash-recovery matrix: probe the workload once to
/// learn its commit/event/flush totals, then crash it at every commit
/// boundary, at `event_samples` intra-transaction points, and at
/// `mid_flush_samples` torn-log points, verifying ACID invariants at
/// each. With [`MatrixBackend::File`] every point additionally runs a
/// real file-backed store; the matrix adds crash-at-syscall and
/// fsync-failure points and verifies ACID by recovering the actual
/// files from disk, twice (recovery must be idempotent byte-for-byte).
/// The point list and every result are deterministic; worker count only
/// affects wall-clock.
pub fn run_crash_matrix(config: &CrashMatrixConfig) -> CrashMatrixReport {
    match config.backend {
        MatrixBackend::Sim => run_sim_matrix(config),
        MatrixBackend::File => run_file_matrix(config),
    }
}

fn run_sim_matrix(config: &CrashMatrixConfig) -> CrashMatrixReport {
    let mut cfg = config.cfg.clone();
    cfg.retain_log = true;

    // Probe: run to completion to learn the crash-point space.
    let probe = Engine::new(cfg.clone()).run_and_crash_at(CrashPoint::End);
    let (total_commits, total_events, total_flushes) = (
        probe.commits_seen,
        probe.events_seen,
        probe.log_flushes_seen,
    );

    let mut points: Vec<CrashPoint> = Vec::new();
    for k in 1..=total_commits {
        points.push(CrashPoint::Commit(k));
    }
    for k in sample_points(total_events, config.event_samples) {
        points.push(CrashPoint::Event(k));
    }
    for k in sample_points(total_flushes, config.mid_flush_samples) {
        points.push(CrashPoint::MidFlush(k));
    }

    let threads = thread_count(config.jobs, points.len());
    let run_point = |_idx: usize, point: CrashPoint| -> CrashPointResult {
        let outcome = Engine::new(cfg.clone()).run_and_crash_at(point);
        let violations = outcome.verify_acid();
        CrashPointResult {
            point,
            acked: outcome.acked.len(),
            winners: outcome.recovery.winners.len(),
            losers: outcome.recovery.losers.len(),
            truncated: outcome.recovery.truncated,
            violations,
            torn_write: false,
            fsync_failed: false,
            repaired_pages: 0,
            wal_truncated: 0,
            scratch: None,
        }
    };

    CrashMatrixReport {
        backend: MatrixBackend::Sim,
        total_commits,
        total_events,
        total_flushes,
        total_syscalls: 0,
        total_fsyncs: 0,
        points: run_slots(&points, threads, run_point),
    }
}

/// Deterministic per-point salt for the filesystem fault schedule.
const POINT_SALT: u64 = 0x9E37_79B9_7F4A_7C15;

fn file_fault_cfg(config: &CrashMatrixConfig, idx: u64, point: CrashPoint) -> FsFaultConfig {
    let mut fscfg = FsFaultConfig {
        seed: config.cfg.seed ^ idx.wrapping_mul(POINT_SALT),
        short_write_rate: config.short_write_rate,
        skip_physical_sync: config.skip_physical_sync,
        ..FsFaultConfig::default()
    };
    match point {
        CrashPoint::Syscall(k) => fscfg.crash_at_syscall = Some(k),
        CrashPoint::FsyncFail(k) => fscfg.fsync_fail_at = vec![k],
        _ => {}
    }
    fscfg
}

/// Read the two store files (absent files read as distinct sentinels so
/// existence changes also count as byte changes).
fn store_bytes(root: &Path) -> (Option<Vec<u8>>, Option<Vec<u8>>) {
    (
        std::fs::read(root.join(PAGES_FILE)).ok(),
        std::fs::read(root.join(WAL_FILE)).ok(),
    )
}

/// Preserve a failing point's store directory for post-mortem.
fn preserve_scratch(root: &Path, dest: &Path) -> std::io::Result<()> {
    std::fs::create_dir_all(dest)?;
    for name in [PAGES_FILE, WAL_FILE] {
        let src = root.join(name);
        if src.exists() {
            std::fs::copy(&src, dest.join(name))?;
        }
    }
    Ok(())
}

impl CrashOutcome {
    /// File-backend ACID checks over two consecutive recoveries of the
    /// real store files: every acknowledged commit is durable on disk,
    /// no fsync-failed commit silently became durable, the recovery
    /// itself reports no invariant violations, and the second pass is a
    /// byte-level no-op (`bytes_stable` is the caller's comparison of
    /// the store files before and after the second recovery).
    pub fn verify_file(
        &self,
        rec1: &FileRecoveryOutcome,
        rec2: &FileRecoveryOutcome,
        bytes_stable: bool,
    ) -> Vec<String> {
        let mut v = Vec::new();
        for t in &self.acked {
            if rec1.winners.binary_search(&t.raw()).is_err() {
                v.push(format!(
                    "file durability: acked txn {} has no durable commit on disk",
                    t.raw()
                ));
            }
        }
        for t in &self.unacked {
            if rec1.winners.binary_search(&t.raw()).is_ok() {
                v.push(format!(
                    "file fsyncgate: txn {} failed its commit fsync yet became durable",
                    t.raw()
                ));
            }
        }
        v.extend(
            rec1.violations
                .iter()
                .map(|s| format!("file recovery: {s}")),
        );
        v.extend(
            rec2.violations
                .iter()
                .map(|s| format!("file recovery (2nd pass): {s}")),
        );
        if !rec2.torn_pages.is_empty()
            || !rec2.repaired_pages.is_empty()
            || rec2.wal_truncated_bytes != 0
        {
            v.push(format!(
                "file recovery: second pass repaired again (torn {:?}, rewrote {:?}, \
                 truncated {}) — not idempotent",
                rec2.torn_pages, rec2.repaired_pages, rec2.wal_truncated_bytes
            ));
        }
        if rec2.winners != rec1.winners || rec2.losers != rec1.losers || rec2.pages != rec1.pages {
            v.push("file recovery: second pass diverged from the first".to_string());
        }
        if !bytes_stable {
            v.push("file recovery: second pass modified the on-disk bytes".to_string());
        }
        v
    }
}

fn run_file_matrix(config: &CrashMatrixConfig) -> CrashMatrixReport {
    let mut cfg = config.cfg.clone();
    cfg.retain_log = true;
    let base = std::env::temp_dir().join(format!("semcluster-matrix-{}", std::process::id()));
    let scratch_base = config
        .scratch_dir
        .clone()
        .unwrap_or_else(|| PathBuf::from("target/crash-scratch"));

    // Probe with a fault-free mirror to learn the crash-point space,
    // including the filesystem syscall/fsync counts past the initial
    // checkpoint (crashes inside the checkpoint exercise nothing
    // transactional: the store resets to pre-operational).
    let probe_root = base.join("probe");
    let _ = std::fs::remove_dir_all(&probe_root);
    let probe = {
        let mut engine = Engine::new(cfg.clone());
        let mirror = DurableMirror::create(
            &probe_root,
            file_fault_cfg(config, u64::MAX, CrashPoint::End),
        )
        .expect("file matrix: probe mirror creation failed");
        engine
            .attach_mirror(mirror)
            .expect("file matrix: probe checkpoint failed");
        engine.run_and_crash_at(CrashPoint::End)
    };
    let _ = std::fs::remove_dir_all(&probe_root);
    let artifacts = probe
        .file
        .as_ref()
        .expect("probe run carries mirror artifacts");
    let (total_syscalls, total_fsyncs) = (
        artifacts.report.stats.syscalls,
        artifacts.report.stats.fsyncs,
    );
    let (ckpt_syscalls, ckpt_fsyncs) = (artifacts.checkpoint_syscalls, artifacts.checkpoint_fsyncs);
    let (total_commits, total_events, total_flushes) = (
        probe.commits_seen,
        probe.events_seen,
        probe.log_flushes_seen,
    );

    let mut points: Vec<CrashPoint> = Vec::new();
    for k in 1..=total_commits {
        points.push(CrashPoint::Commit(k));
    }
    for k in sample_points(total_events, config.event_samples) {
        points.push(CrashPoint::Event(k));
    }
    for k in sample_points(total_flushes, config.mid_flush_samples) {
        points.push(CrashPoint::MidFlush(k));
    }
    for k in sample_range(ckpt_syscalls + 1, total_syscalls, config.syscall_samples) {
        points.push(CrashPoint::Syscall(k));
    }
    for k in sample_range(ckpt_fsyncs + 1, total_fsyncs, config.fsync_fail_samples) {
        points.push(CrashPoint::FsyncFail(k));
    }

    let threads = thread_count(config.jobs, points.len());
    let run_point = |idx: usize, point: CrashPoint| -> CrashPointResult {
        let dirname = format!("pt{idx:03}-{}", point.label().replace(':', "-"));
        let root = base.join(&dirname);
        let _ = std::fs::remove_dir_all(&root);
        let mut result = CrashPointResult {
            point,
            acked: 0,
            winners: 0,
            losers: 0,
            truncated: 0,
            violations: Vec::new(),
            torn_write: false,
            fsync_failed: false,
            repaired_pages: 0,
            wal_truncated: 0,
            scratch: None,
        };

        let mut engine = Engine::new(cfg.clone());
        match DurableMirror::create(&root, file_fault_cfg(config, idx as u64, point))
            .and_then(|m| engine.attach_mirror(m))
        {
            Err(e) => result
                .violations
                .push(format!("file: mirror setup failed: {e}")),
            Ok(()) => {
                let outcome = engine.run_and_crash_at(point);
                result.violations.extend(
                    outcome
                        .verify_acid()
                        .into_iter()
                        .map(|v| format!("sim: {v}")),
                );
                result.acked = outcome.acked.len();
                let artifacts = outcome
                    .file
                    .as_ref()
                    .expect("mirror was attached, so artifacts exist");
                result.torn_write = artifacts.report.torn.is_some();
                result.fsync_failed = artifacts.report.stats.fsync_failures > 0;
                match recover_dir(&root) {
                    Err(e) => result.violations.push(format!("file recovery failed: {e}")),
                    Ok(rec1) => {
                        let snap1 = store_bytes(&root);
                        match recover_dir(&root) {
                            Err(e) => result
                                .violations
                                .push(format!("file recovery (2nd pass) failed: {e}")),
                            Ok(rec2) => {
                                let bytes_stable = snap1 == store_bytes(&root);
                                result.violations.extend(outcome.verify_file(
                                    &rec1,
                                    &rec2,
                                    bytes_stable,
                                ));
                            }
                        }
                        result.winners = rec1.winners.len();
                        result.losers = rec1.losers.len();
                        result.truncated = rec1.wal_truncated_bytes.min(u32::MAX as u64) as u32;
                        result.repaired_pages = rec1.repaired_pages.len();
                        result.wal_truncated = rec1.wal_truncated_bytes;
                    }
                }
            }
        }

        if !result.violations.is_empty() {
            let dest = scratch_base.join(&dirname);
            if preserve_scratch(&root, &dest).is_ok() {
                result.scratch = Some(dest.display().to_string());
            }
        }
        let _ = std::fs::remove_dir_all(&root);
        result
    };

    let points_out = run_slots(&points, threads, run_point);
    let _ = std::fs::remove_dir_all(&base);

    CrashMatrixReport {
        backend: MatrixBackend::File,
        total_commits,
        total_events,
        total_flushes,
        total_syscalls,
        total_fsyncs,
        points: points_out,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_points_are_ascending_and_bounded() {
        assert_eq!(sample_points(0, 10), Vec::<u64>::new());
        assert_eq!(sample_points(5, 0), Vec::<u64>::new());
        assert_eq!(sample_points(1, 3), vec![1]);
        let s = sample_points(100, 7);
        assert_eq!(s.first(), Some(&1));
        assert_eq!(s.last(), Some(&100));
        assert!(s.windows(2).all(|w| w[0] < w[1]));
        // More samples than range: every point once.
        assert_eq!(sample_points(4, 50), vec![1, 2, 3, 4]);
    }

    #[test]
    fn crash_at_first_commit_is_acid_clean() {
        let cfg = SimConfig {
            database_bytes: 512 * 1024,
            buffer_pages: 8,
            warmup_txns: 5,
            measured_txns: 20,
            retain_log: true,
            ..SimConfig::default()
        };
        let outcome = Engine::new(cfg).run_and_crash_at(CrashPoint::Commit(1));
        assert_eq!(outcome.commits_seen, 1, "stopped at the first commit");
        let violations = outcome.verify_acid();
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn mid_flush_crash_truncates_and_stays_clean() {
        let cfg = SimConfig {
            database_bytes: 512 * 1024,
            buffer_pages: 8,
            warmup_txns: 5,
            measured_txns: 20,
            retain_log: true,
            ..SimConfig::default()
        };
        let outcome = Engine::new(cfg).run_and_crash_at(CrashPoint::MidFlush(3));
        let violations = outcome.verify_acid();
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn tiny_matrix_is_violation_free_and_thread_invariant() {
        let mut mc = CrashMatrixConfig::smoke();
        mc.cfg.database_bytes = 512 * 1024;
        mc.cfg.buffer_pages = 8;
        mc.cfg.warmup_txns = 3;
        mc.cfg.measured_txns = 8;
        mc.event_samples = 6;
        mc.mid_flush_samples = 3;
        mc.jobs = 1;
        let serial = run_crash_matrix(&mc);
        assert_eq!(serial.violation_count(), 0, "{}", serial.render());
        assert!(serial.total_commits > 0);
        assert!(serial.points.len() as u64 >= serial.total_commits);
        mc.jobs = 4;
        let parallel = run_crash_matrix(&mc);
        assert_eq!(serial.render(), parallel.render());
    }

    #[test]
    fn tiny_file_matrix_is_violation_free() {
        let mut mc = CrashMatrixConfig::smoke();
        mc.cfg.database_bytes = 256 * 1024;
        mc.cfg.buffer_pages = 8;
        mc.cfg.warmup_txns = 3;
        mc.cfg.measured_txns = 8;
        mc.event_samples = 4;
        mc.mid_flush_samples = 2;
        mc.syscall_samples = 4;
        mc.fsync_fail_samples = 2;
        mc.backend = MatrixBackend::File;
        mc.skip_physical_sync = true;
        mc.jobs = 2;
        let report = run_crash_matrix(&mc);
        assert_eq!(report.violation_count(), 0, "{}", report.render());
        assert_eq!(report.backend, MatrixBackend::File);
        assert!(report.total_syscalls > report.total_fsyncs);
        assert!(report.total_fsyncs > 0);
        // The point list must actually cover the file-only fault modes.
        assert!(report
            .points
            .iter()
            .any(|p| matches!(p.point, CrashPoint::Syscall(_))));
        assert!(report
            .points
            .iter()
            .any(|p| matches!(p.point, CrashPoint::FsyncFail(_))));
        assert!(
            report.points.iter().any(|p| p.fsync_failed),
            "at least one run must survive an injected fsync failure"
        );
    }
}
