//! The integrated simulation engine.
//!
//! A closed queueing network after Figure 4.1: `users` workstations with
//! exponential think times submit transactions to a file server holding
//! the buffer manager, cluster manager and log manager, backed by one CPU
//! and `disks` FCFS disks. Every logical page access can expand into 0–3
//! physical I/Os (dirty-page flush, log I/O, demand read), exactly as §4
//! describes.
//!
//! ## Model notes (documented deviations and interpretations)
//!
//! * **Initial placement reflects the policy's history.** A database that
//!   has lived under `No_Cluster` is laid out in arrival order with
//!   interleaved design activity (scattered); one that has lived under any
//!   clustering policy is affinity-placed. Run-time differences (search
//!   I/O charges, new-object placement, reclustering, splits) then play
//!   out on top, as in the paper.
//! * **Working sets.** Sessions operate on a working set seeded by a
//!   checkout (a root object and its transitive components); reads and
//!   writes target it with probability `working_set_bias`, else a uniform
//!   random object. This reproduces the locality that makes run-time
//!   clustering matter.
//! * **Prefetch is asynchronous**: prefetch I/Os load the disks but are
//!   not on the issuing transaction's critical path (§5.2's
//!   prefetch-within-database could not win otherwise).
//! * **Intra-transaction I/O is serial** (navigation is a dependency
//!   chain); I/Os of different users interleave through the shared FCFS
//!   servers.

use crate::config::SimConfig;
use crate::crash::CrashOutcome;
use crate::durable::DurableMirror;
use crate::error::EngineError;
use crate::metrics::{MetricsCollector, RunReport, SpanBreakdown};
use semcluster_buffer::{
    apply_prefetch, prefetch_group, resident_locality, Access, AccessHint, BufferPool,
    PrefetchScope, ReplacementPolicy,
};
use semcluster_clustering::{
    consider_split, execute_placement, execute_split, page_locality, plan_placement_in,
    plan_recluster_in, ClusteringPolicy, PlacementTarget, ScoreScratch, SplitPolicy, WeightModel,
};
use semcluster_faults::{CrashPoint, FaultState, IoError, IoOp};
use semcluster_lock::{LockManager, LockMode};
use semcluster_obs::{
    milli, AuditKind, AuditSink, CandidateAudit, FaultOp, FlushCause, LogFlushKind,
    MetricsRegistry, MetricsSnapshot, NoopSink, Phase, PhaseProfiler, PhaseToken, PlacementAudit,
    ProfileReport, ReadCause, SplitVerdict, Timeline, TimelineSample, TimelineSampler, TraceEvent,
    TraceSink,
};
use semcluster_sim::{EventQueue, FcfsServer, ServerBank, SimDuration, SimRng, SimTime};
use semcluster_storage::{DiskLayout, PageId, StorageManager, StoreError, WalOp};
use semcluster_vdm::{derive_version, Database, ObjectId, ObjectName, RelKind, SyntheticDbSpec};
use semcluster_wal::LogManager;
use semcluster_workload::{
    sample_read_kind, sample_session_length, sample_write_shape, CreateMode, QueryKind,
    StructureDensity,
};
use std::collections::VecDeque;

/// Maximum related pages boosted per object access under the
/// context-sensitive policy.
const CONTEXT_BOOST_FANOUT: usize = 8;

/// Working-set capacity per user.
const WORKING_SET_CAP: usize = 64;

/// Transactions remembered when estimating the run-time read/write ratio
/// for the adaptive clustering policy.
const RW_WINDOW: usize = 100;

/// Build the engine's metrics registry with every counter the hot
/// paths bump pre-declared at zero. First-touch of a counter name
/// allocates its `String` key and possibly a tree node; declaring them
/// all here — before any profiled phase opens — keeps the zero-alloc
/// pins on the inner loops honest. Zero-valued counters are filtered
/// out of snapshots, so unfired declarations are invisible.
fn engine_registry() -> MetricsRegistry {
    let mut r = MetricsRegistry::new();
    for name in [
        "buffer.hit",
        "buffer.miss",
        "buffer.evict.dirty",
        "io.read.demand",
        "cluster.search.candidate_io",
        "cluster.split",
        "cluster.recluster.move",
        "split.io",
        "lock.wait",
        "prefetch.issue",
        "prefetch.io",
        "wal.flush.before_image",
        "wal.flush.full",
        "wal.flush.commit",
        "fault.io.read_error",
        "fault.io.write_error",
        "fault.io.retry",
        "fault.log.stall",
        "fault.txn.abort",
        "fault.degrade.enter",
        "fault.degrade.exit",
    ] {
        r.declare(name);
    }
    r
}

/// Map the fault layer's I/O kind onto the trace vocabulary.
fn fault_op(op: IoOp) -> FaultOp {
    match op {
        IoOp::Read => FaultOp::Read,
        IoOp::Write => FaultOp::Write,
        IoOp::Log => FaultOp::Log,
    }
}

#[derive(Debug, Clone, Copy)]
#[allow(clippy::enum_variant_names)]
enum Event {
    ThinkDone(u32),
    OpDone(u32),
    TxnDone(u32),
}

#[derive(Debug, Clone, Copy)]
enum Op {
    Read { kind: QueryKind, root: ObjectId },
    Create { anchor: ObjectId, mode: CreateMode },
    Update { target: ObjectId },
    Delete { target: ObjectId },
}

#[derive(Debug)]
struct ActiveTxn {
    ops: Vec<Op>,
    next_op: usize,
    started: SimTime,
    is_read: bool,
    token: Option<semcluster_wal::TxnToken>,
    /// Global transaction sequence number (trace identity).
    id: u64,
    /// Exact response-time attribution accumulated so far.
    span: SpanBreakdown,
}

/// Observability wiring for an engine run.
///
/// The default is behaviourally free: a [`NoopSink`] whose
/// `enabled() == false` short-circuits event construction, no timeline
/// sampling and no placement auditing, so an uninstrumented run does no
/// observability work beyond a branch. Every observer is pure —
/// attaching one changes no simulation result.
pub struct ObsConfig {
    /// Trace sink receiving every typed event, stamped in simulated time.
    pub sink: Box<dyn TraceSink>,
    /// When set, sample the timeline signals every this many simulated
    /// microseconds (see [`Timeline`]).
    pub timeline_interval_us: Option<u64>,
    /// When set, record a [`PlacementAudit`] for every (re)cluster
    /// decision, retaining the most recent this-many records.
    pub audit_capacity: Option<usize>,
    /// When true, bracket the engine's hot paths with a
    /// [`PhaseProfiler`] and return the per-phase self costs in
    /// [`RunObservations::profile`]. Purely observational: the simulated
    /// results are byte-identical with profiling on or off.
    pub profile: bool,
}

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig {
            sink: Box::new(NoopSink),
            timeline_interval_us: None,
            audit_capacity: None,
            profile: false,
        }
    }
}

impl ObsConfig {
    /// Wire a specific trace sink.
    pub fn with_sink(sink: Box<dyn TraceSink>) -> Self {
        ObsConfig {
            sink,
            ..ObsConfig::default()
        }
    }

    /// Enable timeline sampling at `interval_us` simulated microseconds.
    pub fn timeline(mut self, interval_us: u64) -> Self {
        self.timeline_interval_us = Some(interval_us);
        self
    }

    /// Enable placement auditing, retaining the last `capacity` records.
    pub fn audit(mut self, capacity: usize) -> Self {
        self.audit_capacity = Some(capacity);
        self
    }

    /// Enable hierarchical phase profiling.
    pub fn profile(mut self) -> Self {
        self.profile = true;
        self
    }
}

/// Everything the observability layer collected during one run (or,
/// after merging, across the runs of a sweep).
#[derive(Default)]
pub struct RunObservations {
    /// Final metrics-registry snapshot (counters reconcile with
    /// [`RunReport::io`]).
    pub metrics: MetricsSnapshot,
    /// Sampled timeline, when sampling was enabled.
    pub timeline: Option<Timeline>,
    /// Retained placement audits, oldest first, when auditing was
    /// enabled (runs are concatenated in replication order on merge).
    pub audits: Vec<PlacementAudit>,
    /// Per-phase self-cost profile, when profiling was enabled (runs
    /// merge by per-stack sums, order-independently).
    pub profile: Option<ProfileReport>,
}

impl RunObservations {
    /// Merge another run's observations into this one. Metrics,
    /// timelines and profiles merge order-independently; audits
    /// concatenate.
    pub fn absorb(&mut self, other: RunObservations) {
        self.metrics.merge(&other.metrics);
        match (&mut self.timeline, other.timeline) {
            (Some(mine), Some(theirs)) => mine.merge(&theirs),
            (slot @ None, Some(theirs)) => *slot = Some(theirs),
            _ => {}
        }
        self.audits.extend(other.audits);
        match (&mut self.profile, other.profile) {
            (Some(mine), Some(theirs)) => mine.merge(&theirs),
            (slot @ None, Some(theirs)) => *slot = Some(theirs),
            _ => {}
        }
    }
}

/// Never-reset whole-run counters feeding the timeline sampler. These
/// are kept separate from the metrics registry, which resets when the
/// measured interval begins; the timeline spans warmup too, and its
/// per-interval deltas must not jump backwards at that boundary.
#[derive(Debug, Clone, Copy, Default)]
struct TimelineCounters {
    hits: u64,
    misses: u64,
    commits: u64,
    aborts: u64,
}

#[derive(Debug)]
struct UserState {
    session_left: u32,
    working_set: VecDeque<ObjectId>,
    txn: Option<ActiveTxn>,
    /// Transaction blocked on locks: its ops and submission time.
    parked: Option<(Vec<Op>, SimTime)>,
}

/// The simulated OODBMS server plus its client population.
pub struct Engine {
    cfg: SimConfig,
    db: Database,
    store: StorageManager,
    pool: BufferPool,
    log: LogManager,
    disks: ServerBank,
    log_disk: FcfsServer,
    cpu: FcfsServer,
    layout: DiskLayout,
    queue: EventQueue<Event>,
    users: Vec<UserState>,
    rng: SimRng,
    weights: WeightModel,
    locks: LockManager,
    /// Reusable dense scoring scratch threaded through every placement
    /// and recluster decision (DESIGN.md §14): pre-grown outside the
    /// profiled phases so candidate scoring never allocates.
    scratch: ScoreScratch,
    /// Reusable hierarchical lock-request buffer for [`Self::try_lock`].
    lock_requests: Vec<(ObjectId, LockMode)>,
    parked_fifo: VecDeque<u32>,
    /// Sliding window of recent transaction kinds (true = read) for the
    /// adaptive clustering policy.
    recent_kinds: VecDeque<bool>,
    metrics: MetricsCollector,
    completed: u64,
    measuring: bool,
    measure_start: SimTime,
    create_seq: u64,
    disk_service: SimDuration,
    /// Named counters/gauges/histograms, reset at measurement start so
    /// snapshots reconcile with [`RunReport::io`].
    registry: MetricsRegistry,
    /// Typed event sink (NoopSink unless the caller attached one).
    trace: Box<dyn TraceSink>,
    /// Fixed-interval timeline sampler (None unless enabled).
    timeline: Option<TimelineSampler>,
    /// Bounded placement-audit recorder (None unless enabled).
    audit: Option<AuditSink>,
    /// Hierarchical phase profiler (None unless enabled); pure observer.
    profiler: Option<PhaseProfiler>,
    /// The profiler's final report, staged by [`Self::finalize_obs`]
    /// *before* any trace emission so the report never observes its own
    /// export.
    profile_report: Option<ProfileReport>,
    /// Whole-run counters backing the timeline's per-interval deltas.
    tl: TimelineCounters,
    /// Global transaction sequence number.
    txn_seq: u64,
    /// Scratch attribution for the operation currently executing; drained
    /// into the owning transaction's span after each operation.
    cur_span: SpanBreakdown,
    /// Deterministic fault-injection state (inert unless configured).
    faults: FaultState,
    /// Where a crash-and-recover run pulls the plug.
    crash_point: CrashPoint,
    /// Set when the crash point fires; the drive loop stops at the next
    /// event boundary.
    crash_pending: bool,
    /// Simulation events processed (crash-point `event:K` counter).
    events_seen: u64,
    /// Write-transaction commits logged (crash-point `commit:K` counter).
    commits_seen: u64,
    /// Physical log I/Os issued (crash-point `midflush:K` counter).
    log_flushes_seen: u64,
    /// Tokens whose commit was acknowledged to the user (TxnDone) —
    /// ground truth for crash-matrix verification. Only tracked with
    /// `retain_log`.
    acked_commits: Vec<semcluster_wal::TxnToken>,
    /// Tokens aborted after retry exhaustion (ground truth; only
    /// tracked with `retain_log`).
    aborted_tokens: Vec<semcluster_wal::TxnToken>,
    /// First few abort reasons, for the run report.
    abort_reasons: Vec<String>,
    /// Optional durable file-backed mirror (DESIGN.md §15). `None` in
    /// every simulated run; each hook is then a single branch, keeping
    /// the golden suites byte-identical.
    mirror: Option<DurableMirror>,
    /// Tokens whose durable commit fsync failed — must never be acked.
    mirror_failed: Vec<semcluster_wal::TxnToken>,
    /// Tokens that reached TxnDone but whose durable commit had failed;
    /// the matrix verifies these are NOT required to survive recovery.
    unacked_commits: Vec<semcluster_wal::TxnToken>,
}

impl Engine {
    /// Build the engine: synthesise the database, lay it out under the
    /// configured policy's history, and prime the event queue.
    pub fn new(cfg: SimConfig) -> Self {
        Self::with_obs(cfg, ObsConfig::default())
    }

    /// Build the engine with an attached observability configuration.
    pub fn with_obs(cfg: SimConfig, obs: ObsConfig) -> Self {
        let mut rng = SimRng::seed_from_u64(cfg.seed);
        let db = Self::build_database(&cfg, &mut rng);
        let weights = match cfg.hints {
            semcluster_clustering::HintPolicy::UserHints => {
                WeightModel::with_hint(cfg.session_hint)
            }
            semcluster_clustering::HintPolicy::NoHints => WeightModel::no_hints(),
        };
        let store = Self::load_database(&cfg, &db, &weights, &mut rng);
        let log = if cfg.retain_log {
            LogManager::with_retention(cfg.log)
        } else {
            LogManager::new(cfg.log)
        };
        let mut pool = BufferPool::new(
            cfg.buffer_pages,
            cfg.replacement,
            rng.below(u32::MAX as u64),
        );
        if let Some(boost) = cfg.context_boost_ticks {
            pool.set_boost_amount(boost);
        }
        pool.ensure_page_capacity(store.page_count() + 64);
        let disks = ServerBank::new("disk", cfg.disks as usize);
        let log_disk = FcfsServer::new("log-disk");
        let cpu = FcfsServer::new("cpu");
        let layout = DiskLayout::new(cfg.disks);
        let users = (0..cfg.users)
            .map(|_| UserState {
                session_left: 0,
                working_set: VecDeque::with_capacity(WORKING_SET_CAP),
                txn: None,
                parked: None,
            })
            .collect();
        let disk_service = SimDuration::from_micros(cfg.disk.service_us());
        let faults = FaultState::new(cfg.seed, cfg.faults.clone());
        let scratch = ScoreScratch::with_capacity(db.object_count() + 64, store.page_count() + 64);
        let mut locks = LockManager::new();
        locks.ensure_object_capacity(db.object_count() + 64);
        let queue = EventQueue::with_capacity(cfg.users as usize * 4 + 16);
        let mut engine = Engine {
            cfg,
            db,
            store,
            pool,
            log,
            disks,
            log_disk,
            cpu,
            layout,
            queue,
            users,
            rng,
            weights,
            locks,
            scratch,
            lock_requests: Vec::with_capacity(64),
            parked_fifo: VecDeque::new(),
            recent_kinds: VecDeque::with_capacity(RW_WINDOW),
            metrics: MetricsCollector::default(),
            completed: 0,
            measuring: false,
            measure_start: SimTime::ZERO,
            create_seq: 0,
            disk_service,
            registry: engine_registry(),
            trace: obs.sink,
            timeline: obs.timeline_interval_us.map(TimelineSampler::new),
            audit: obs.audit_capacity.map(AuditSink::with_capacity),
            profiler: obs.profile.then(PhaseProfiler::new),
            profile_report: None,
            tl: TimelineCounters::default(),
            txn_seq: 0,
            cur_span: SpanBreakdown::default(),
            faults,
            crash_point: CrashPoint::End,
            crash_pending: false,
            events_seen: 0,
            commits_seen: 0,
            log_flushes_seen: 0,
            acked_commits: Vec::new(),
            aborted_tokens: Vec::new(),
            abort_reasons: Vec::new(),
            mirror: None,
            mirror_failed: Vec::new(),
            unacked_commits: Vec::new(),
        };
        for u in 0..engine.cfg.users {
            engine.start_session(u);
            let think = engine.rng.exp_duration(engine.cfg.think_time);
            engine
                .queue
                .schedule(SimTime::ZERO + think, Event::ThinkDone(u));
        }
        engine
    }

    /// Immutable view of the logical database (for examples/tests).
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// Immutable view of physical placement (for examples/tests).
    pub fn store(&self) -> &StorageManager {
        &self.store
    }

    fn build_database(cfg: &SimConfig, rng: &mut SimRng) -> Database {
        let (fanout, depth) = match cfg.workload.density {
            StructureDensity::Low3 => ((1usize, 3usize), 6usize),
            StructureDensity::Med5 => ((4, 9), 3),
            StructureDensity::High10 => ((10, 15), 2),
        };
        // Estimate nodes per configuration tree to size the module count.
        let mean_fanout = (fanout.0 + fanout.1) as f64 / 2.0;
        let mut tree_nodes = 1.0;
        let mut level = 1.0;
        for _ in 0..depth {
            level *= mean_fanout;
            tree_nodes += level;
        }
        let reps = 2.0;
        let version_prob = 0.2;
        let per_module = tree_nodes * reps * (1.0 + version_prob);
        let modules = ((cfg.target_objects() as f64 / per_module).round() as usize).max(1);
        let spec = SyntheticDbSpec {
            modules,
            depth,
            fanout,
            representations: vec!["layout".into(), "netlist".into()],
            correspondence_prob: 0.5,
            version_prob,
            body_bytes: (64, 512),
            seed: rng.below(u64::MAX / 2),
        };
        spec.build().0
    }

    /// The interleaved "design history" order the database was populated
    /// in: engineers work in sessions of ~`chunk` operations on one
    /// module, in random order within the module, and modules interleave.
    fn history_order(db: &Database, rng: &mut SimRng, chunk: usize) -> Vec<ObjectId> {
        // The synthetic builder names objects `M{m}N{n}` (and derived
        // versions share the base), so the module index is recoverable
        // from the name.
        let module_of = |base: &str| -> usize {
            base.strip_prefix('M')
                .and_then(|rest| rest.split('N').next())
                .and_then(|digits| digits.parse::<usize>().ok())
                .unwrap_or(0)
        };
        let mut modules: Vec<Vec<ObjectId>> = Vec::new();
        for obj in db.objects() {
            let m = module_of(&obj.name.base);
            if m >= modules.len() {
                modules.resize_with(m + 1, Vec::new);
            }
            modules[m].push(obj.id);
        }
        // Random creation order within each module.
        for members in &mut modules {
            for i in (1..members.len()).rev() {
                let j = rng.below(i as u64 + 1) as usize;
                members.swap(i, j);
            }
        }
        let mut cursors = vec![0usize; modules.len()];
        let mut pending: Vec<usize> = (0..modules.len())
            .filter(|&m| !modules[m].is_empty())
            .collect();
        let mut order = Vec::with_capacity(db.object_count());
        while !pending.is_empty() {
            let pick = rng.below(pending.len() as u64) as usize;
            let m = pending[pick];
            let start = cursors[m];
            let end = (start + chunk).min(modules[m].len());
            order.extend_from_slice(&modules[m][start..end]);
            cursors[m] = end;
            if end == modules[m].len() {
                pending.swap_remove(pick);
            }
        }
        order
    }

    /// Lay the database out as the configured policy's own history would
    /// have: full-visibility affinity placement for the I/O-capable
    /// policies, a recency-window-constrained search for
    /// `Cluster_within_Buffer`, plain arrival-order append for
    /// `No_Cluster`. The history order itself (interleaved module
    /// sessions) is the same for every policy.
    fn load_database(
        cfg: &SimConfig,
        db: &Database,
        weights: &WeightModel,
        rng: &mut SimRng,
    ) -> StorageManager {
        /// FIFO window over recently touched pages — the candidate pages
        /// a within-buffer clusterer would have seen during history.
        struct RecencyWindow {
            cap: usize,
            set: semcluster_vdm::DetHashSet<PageId>,
            queue: VecDeque<PageId>,
        }
        impl RecencyWindow {
            fn touch(&mut self, page: PageId) {
                if self.set.insert(page) {
                    self.queue.push_back(page);
                    if self.queue.len() > self.cap {
                        let old = self
                            .queue
                            .pop_front()
                            .expect("recency queue is non-empty when over capacity");
                        self.set.remove(&old);
                    }
                }
            }
        }
        impl semcluster_clustering::ResidencyView for RecencyWindow {
            fn is_resident(&self, page: PageId) -> bool {
                self.set.contains(&page)
            }
        }

        let mut store = StorageManager::new(cfg.page_bytes);
        // Clustering stores keep slack on freshly filled pages so later
        // relatives can join (~30 % of the page).
        let reserve = (cfg.page_bytes - semcluster_storage::PAGE_OVERHEAD_BYTES) * 3 / 10;
        match cfg.clustering {
            ClusteringPolicy::NoCluster => {
                // Arrival-order append over the interleaved history.
                for id in Self::history_order(db, rng, 16) {
                    let obj = db
                        .get(id)
                        .expect("seeded object ids are dense in 0..object_count");
                    store
                        .append(obj.id, obj.size_bytes())
                        .expect("append always finds or opens a page (object larger than a page would be a workload bug)");
                }
            }
            ClusteringPolicy::WithinBuffer => {
                // The same interleaved history, but the candidate search
                // only ever saw the recency window of buffered pages.
                let mut window = RecencyWindow {
                    cap: cfg.buffer_pages,
                    set: semcluster_vdm::DetHashSet::default(),
                    queue: VecDeque::new(),
                };
                let mut scratch = ScoreScratch::with_capacity(db.object_count(), 0);
                for id in Self::history_order(db, rng, 16) {
                    let size = db
                        .get(id)
                        .expect("seeded object ids are dense in 0..object_count")
                        .size_bytes();
                    let plan = plan_placement_in(
                        db,
                        &store,
                        &window,
                        ClusteringPolicy::WithinBuffer,
                        weights,
                        id,
                        size,
                        &mut scratch,
                    );
                    let landed = match plan.target {
                        PlacementTarget::Existing(page) => {
                            store.place(id, size, page).expect("placement plan verified the page had room when it was drawn");
                            page
                        }
                        PlacementTarget::Append => store
                            .append_reserving(id, size, reserve)
                            .expect("append always finds or opens a page (object larger than a page would be a workload bug)"),
                    };
                    scratch.put_examined(plan.examined);
                    window.touch(landed);
                }
            }
            ClusteringPolicy::IoLimit(_)
            | ClusteringPolicy::NoLimit
            | ClusteringPolicy::Adaptive => {
                // Unbounded search plus months of run-time reclustering
                // converge on relationship-order placement; load in
                // structure order with full visibility.
                let mut scratch = ScoreScratch::with_capacity(db.object_count(), 0);
                for obj_id in 0..db.object_count() {
                    let id = ObjectId(obj_id as u32);
                    let size = db
                        .get(id)
                        .expect("seeded object ids are dense in 0..object_count")
                        .size_bytes();
                    let plan = plan_placement_in(
                        db,
                        &store,
                        &semcluster_clustering::AllResident,
                        ClusteringPolicy::NoLimit,
                        weights,
                        id,
                        size,
                        &mut scratch,
                    );
                    let landed = match plan.target {
                        PlacementTarget::Existing(page) => {
                            store.place(id, size, page).expect("placement plan verified the page had room when it was drawn");
                            page
                        }
                        PlacementTarget::Append => store
                            .append_reserving(id, size, reserve)
                            .expect("append always finds or opens a page (object larger than a page would be a workload bug)"),
                    };
                    scratch.put_examined(plan.examined);
                    let _ = landed;
                }
            }
        }
        store
    }

    // ----------------------------------------------------------- running

    /// Run to completion (warmup + measured transactions) and report.
    pub fn run(self) -> RunReport {
        self.run_with_obs().0
    }

    /// Run to completion, returning the report plus a snapshot of the
    /// metrics registry (counters reconcile with [`RunReport::io`]).
    pub fn run_with_obs(self) -> (RunReport, MetricsSnapshot) {
        let (report, obs) = self.run_observed();
        (report, obs.metrics)
    }

    /// Run to completion, returning the report plus everything the
    /// observability layer collected (metrics snapshot, timeline,
    /// placement audits).
    pub fn run_observed(mut self) -> (RunReport, RunObservations) {
        self.drive();
        self.finalize_obs();
        let report = self.report();
        let obs = RunObservations {
            metrics: self.registry.snapshot(),
            timeline: self.timeline.take().map(TimelineSampler::into_timeline),
            audits: self
                .audit
                .take()
                .map(AuditSink::into_records)
                .unwrap_or_default(),
            profile: self.profile_report.take(),
        };
        (report, obs)
    }

    /// Live view of the metrics registry (for tests and embedding).
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// Open a profiled phase. One branch when profiling is off.
    #[inline]
    fn prof_enter(&mut self, phase: Phase) -> Option<PhaseToken> {
        self.profiler.as_mut().map(|p| p.enter(phase))
    }

    /// Close a profiled phase, attributing `sim_us` of simulated self
    /// cost to it.
    #[inline]
    fn prof_exit(&mut self, token: Option<PhaseToken>, sim_us: u64) {
        if let Some(token) = token {
            self.profiler
                .as_mut()
                .expect("a live token implies a live profiler")
                .exit(token, sim_us);
        }
    }

    /// Stamp end-of-run utilisation gauges and flush the trace sink.
    fn finalize_obs(&mut self) {
        for i in 0..self.disks.len() {
            let busy = self.disks.member(i).busy_time().as_micros();
            self.registry
                .set_gauge(&format!("disk.{i}.busy_us"), busy as i64);
        }
        self.registry.set_gauge(
            "log_disk.busy_us",
            self.log_disk.busy_time().as_micros() as i64,
        );
        self.registry
            .set_gauge("cpu.busy_us", self.cpu.busy_time().as_micros() as i64);
        self.registry.set_gauge(
            "lock.wait_us",
            self.metrics.lock_wait_time.as_micros() as i64,
        );
        if let Some(profiler) = self.profiler.as_mut() {
            profiler.add_root_sim_us(self.queue.now().as_micros());
            let report = profiler.report();
            // Counter events ride the trace stream; the report itself is
            // staged first so exporting it cannot perturb its numbers.
            if self.trace.enabled() {
                let at = self.queue.now();
                for (path, s) in report.phases() {
                    self.trace.emit(&TraceEvent::ProfilePhase {
                        at,
                        path: path.to_string(),
                        calls: s.calls,
                        sim_us: s.sim_us,
                        alloc_bytes: s.alloc_bytes,
                        allocs: s.allocs,
                    });
                }
            }
            self.profile_report = Some(report);
        }
        self.trace.flush();
    }

    /// Run to completion, then simulate a server crash and recover from
    /// the durable log (requires `cfg.retain_log`). Returns the run
    /// report plus the recovery outcome — winners are exactly the
    /// committed transactions, losers are in-flight ones whose records
    /// spilled before the crash.
    ///
    /// This is the legacy single-point form; see
    /// [`Engine::run_and_crash_at`] for arbitrary crash points.
    pub fn run_and_crash(self) -> (RunReport, semcluster_wal::RecoveryOutcome) {
        let outcome = self.run_and_crash_at(CrashPoint::End);
        (outcome.report, outcome.recovery)
    }

    /// Run until `point` fires (or to completion for
    /// [`CrashPoint::End`]), crash there, replay recovery over the
    /// durable log, and return the full [`CrashOutcome`] — including
    /// the engine's ground truth (acknowledged commits, in-flight and
    /// aborted transactions) so ACID invariants can be checked against
    /// what the clients actually observed. Requires `cfg.retain_log`.
    ///
    /// A [`CrashPoint::MidFlush`] crash tears the log record that was
    /// being written; recovery truncates it (commit is only
    /// acknowledged after its force completes, so a torn record never
    /// belongs to an acknowledged transaction).
    pub fn run_and_crash_at(mut self, point: CrashPoint) -> CrashOutcome {
        assert!(
            self.cfg.retain_log,
            "run_and_crash requires cfg.retain_log = true"
        );
        self.crash_point = point;
        self.drive();
        self.finalize_obs();
        let report = self.report();
        let in_flight: Vec<semcluster_wal::TxnToken> = self
            .users
            .iter()
            .filter_map(|u| u.txn.as_ref().and_then(|t| t.token))
            .collect();
        let durable = match point {
            CrashPoint::MidFlush(_) => self.log.crash_torn(),
            _ => self.log.crash(),
        };
        let recovery = semcluster_wal::recover(&durable);
        let file = self
            .mirror
            .take()
            .map(|m| m.crash(matches!(point, CrashPoint::MidFlush(_))));
        CrashOutcome {
            point,
            report,
            durable,
            recovery,
            acked: self.acked_commits,
            unacked: self.unacked_commits,
            in_flight,
            aborted: self.aborted_tokens,
            events_seen: self.events_seen,
            commits_seen: self.commits_seen,
            log_flushes_seen: self.log_flushes_seen,
            file,
        }
    }

    /// Attach a durable file-backed mirror: writes the checkpoint image
    /// of the store as laid out right now, then shadows every storage
    /// effect for the rest of the run. Call before [`Engine::run`] or
    /// [`Engine::run_and_crash_at`].
    pub fn attach_mirror(&mut self, mut mirror: DurableMirror) -> Result<(), StoreError> {
        mirror.checkpoint(&self.store)?;
        self.mirror = Some(mirror);
        Ok(())
    }

    /// Mirror one logical storage op (single branch when detached).
    fn mirror_op(&mut self, token: semcluster_wal::TxnToken, op: WalOp) {
        if let Some(m) = self.mirror.as_mut() {
            m.op(token.raw(), op);
        }
    }

    fn drive(&mut self) {
        while self.step_event() {}
    }

    /// Process exactly one simulation event. Returns `false` when the
    /// run is over: the transaction target was reached, the event queue
    /// drained, or a crash point fired. This is the single loop body
    /// behind [`Engine::drive`] **and** the serialized stepping API
    /// ([`Engine::step_transaction`]) — both paths execute the identical
    /// event sequence, which is what makes the simulator a byte-exact
    /// oracle for the wire-protocol server's serialized mode.
    fn step_event(&mut self) -> bool {
        let target = self.cfg.warmup_txns + self.cfg.measured_txns;
        if self.completed >= target {
            return false;
        }
        {
            let tok = self.prof_enter(Phase::EventPop);
            let popped = self.queue.pop();
            self.prof_exit(tok, 0);
            let Some((now, ev)) = popped else {
                return false; // all users idle — cannot happen in a closed network
            };
            // Pre-grow every dense index outside the profiled phases so
            // in-phase self-growth (which would charge its allocation to
            // the phase it happens in) never fires: the headroom covers
            // every object/page a single event can create.
            let obj_cap = self.db.object_count() + 64;
            let page_cap = self.store.page_count() + 64;
            self.scratch.ensure_capacity(obj_cap, page_cap);
            self.pool.ensure_page_capacity(page_cap);
            self.locks.ensure_object_capacity(obj_cap);
            match ev {
                Event::ThinkDone(u) => self.on_think_done(u, now),
                Event::OpDone(u) => self.on_op_done(u, now),
                Event::TxnDone(u) => self.on_txn_done(u, now),
            }
            self.events_seen += 1;
            self.sample_timeline(now);
            match self.crash_point {
                CrashPoint::Event(k) if self.events_seen >= k => self.crash_pending = true,
                CrashPoint::Lsn(k) if self.log.current_lsn() >= k => self.crash_pending = true,
                _ => {}
            }
            if let Some(m) = &self.mirror {
                // The fs fault layer pulled the plug at an injected
                // syscall boundary: stop at this event boundary too.
                if m.crashed() {
                    self.crash_pending = true;
                }
            }
        }
        // Crash point fired: stop at this event boundary.
        !self.crash_pending
    }

    /// Advance the simulation to the next transaction boundary: process
    /// events until one more transaction completes. Returns `true` when
    /// a transaction completed and `false` when the run is over (the
    /// configured warmup + measured target was reached). Stepping to
    /// every boundary and then calling [`Engine::run_observed`] produces
    /// output byte-identical to an uninterrupted run — the oracle
    /// contract the serialized server mode is tested against.
    pub fn step_transaction(&mut self) -> bool {
        let before = self.completed;
        while self.completed == before {
            if !self.step_event() {
                return false;
            }
        }
        true
    }

    /// Transactions completed so far (warmup + measured).
    pub fn completed_txns(&self) -> u64 {
        self.completed
    }

    /// Total transactions the run will execute (warmup + measured).
    pub fn target_txns(&self) -> u64 {
        self.cfg.warmup_txns + self.cfg.measured_txns
    }

    /// Record a timeline point for every interval boundary simulated
    /// time has crossed since the last sample. Pure observation: reads
    /// engine state, touches no RNG, schedules nothing — with sampling
    /// off this is one branch.
    fn sample_timeline(&mut self, now: SimTime) {
        let due = match &self.timeline {
            Some(sampler) => sampler.due(now.as_micros()),
            None => false,
        };
        if !due {
            return;
        }
        let tok = self.prof_enter(Phase::TimelineSample);
        let mut sampler = self.timeline.take().expect("due implies a sampler");
        while sampler.due(now.as_micros()) {
            let t_us = sampler.next_due_us();
            let mut queue_us = Vec::with_capacity(self.disks.len());
            for i in 0..self.disks.len() {
                let free = self.disks.member(i).free_at().as_micros();
                queue_us.push(free.saturating_sub(t_us));
            }
            // The locality fold is pinned allocation-free by the profile
            // golden; nothing else may creep inside this bracket.
            let ptok = self.prof_enter(Phase::PageLocality);
            let (loc_on_page, loc_refs) = resident_locality(&self.pool, |page| {
                page_locality(&self.db, &self.store, page)
            });
            self.prof_exit(ptok, 0);
            sampler.record(TimelineSample {
                hits: self.tl.hits,
                misses: self.tl.misses,
                commits: self.tl.commits,
                aborts: self.tl.aborts,
                queue_us,
                log_buffered: self.log.buffered_bytes() as u64,
                loc_on_page,
                loc_refs,
            });
        }
        self.timeline = Some(sampler);
        self.prof_exit(tok, 0);
    }

    fn report(&self) -> RunReport {
        let now = self.queue.now();
        let span = now - self.measure_start;
        let mut report = RunReport::new(
            self.cfg.label(),
            &self.metrics,
            self.pool.stats(),
            self.log.stats(),
            self.disks.mean_utilization(now),
            self.cpu.utilization(now),
            span,
        );
        report.breakdown.think_s = self.cfg.think_time.as_secs_f64();
        report.faults_enabled = self.faults.enabled();
        report.faults = self.faults.stats;
        report.abort_reasons = self.abort_reasons.clone();
        report
    }

    fn on_think_done(&mut self, u: u32, now: SimTime) {
        let ops = self.generate_ops(u);
        if self.cfg.locking && !self.try_lock(u, &ops) {
            // Conservative pre-declaration failed: park until a release.
            self.users[u as usize].parked = Some((ops, now));
            self.parked_fifo.push_back(u);
            self.metrics.lock_waits += 1;
            self.registry.inc("lock.wait");
            if self.trace.enabled() {
                self.trace.emit(&TraceEvent::LockWait { at: now, user: u });
            }
            return;
        }
        self.begin_txn(u, ops, now, now);
    }

    /// Start a transaction whose locks are held. `submitted` is when the
    /// user submitted it (response time includes any lock wait).
    fn begin_txn(&mut self, u: u32, ops: Vec<Op>, submitted: SimTime, now: SimTime) {
        let is_read = ops.iter().all(|op| matches!(op, Op::Read { .. }));
        let token = if is_read {
            None
        } else {
            Some(self.log.begin())
        };
        self.txn_seq += 1;
        let id = self.txn_seq;
        // Any gap between submission and lock grant is the lock-wait
        // component of the transaction's response time.
        let span = SpanBreakdown {
            lock_wait_us: now.since(submitted).as_micros(),
            ..SpanBreakdown::default()
        };
        if self.trace.enabled() {
            self.trace.emit(&TraceEvent::TxnBegin {
                at: now,
                user: u,
                txn: id,
                is_read,
                ops: ops.len() as u32,
            });
        }
        self.users[u as usize].txn = Some(ActiveTxn {
            ops,
            next_op: 0,
            started: submitted,
            is_read,
            token,
            id,
            span,
        });
        self.run_next_op(u, now);
    }

    /// Hierarchical conservative lock acquisition for a transaction's
    /// pre-declared object set.
    fn try_lock(&mut self, u: u32, ops: &[Op]) -> bool {
        let tok = self.prof_enter(Phase::LockAcquire);
        let mut requests = std::mem::take(&mut self.lock_requests);
        requests.clear();
        for op in ops {
            let (object, mode) = match *op {
                Op::Read { root, .. } => (root, LockMode::Shared),
                Op::Create { anchor, .. } => (anchor, LockMode::Exclusive),
                Op::Update { target } | Op::Delete { target } => (target, LockMode::Exclusive),
            };
            LockManager::hierarchical_lockset_into(&self.db, object, mode, &mut requests);
        }
        let granted = self
            .locks
            .try_acquire_all(semcluster_lock::TxnId(u as u64), &requests);
        self.lock_requests = requests;
        // Lock acquisition is instantaneous in simulated time (any wait
        // is charged to the parked transaction, not this phase).
        self.prof_exit(tok, 0);
        granted
    }

    fn on_op_done(&mut self, u: u32, now: SimTime) {
        let txn = self.users[u as usize].txn.as_ref().expect(
            "user owns a transaction in flight (op/txn events only fire for active transactions)",
        );
        if txn.next_op < txn.ops.len() {
            self.run_next_op(u, now);
        } else {
            // Commit.
            let token = txn.token;
            let mut done = now;
            if let Some(token) = token {
                let ios = self.log.commit(token);
                self.commits_seen += 1;
                if let Some(m) = self.mirror.as_mut() {
                    // The durable commit force is the acknowledgement
                    // gate: a failed fsync (fsyncgate) means the token
                    // must never be acked, and is never retried.
                    if !m.commit(token.raw()) {
                        self.mirror_failed.push(token);
                    }
                }
                if let CrashPoint::Commit(k) = self.crash_point {
                    if self.commits_seen == k {
                        self.crash_pending = true;
                    }
                }
                for _ in 0..ios {
                    done = self.submit_log_io(done, LogFlushKind::Commit);
                }
            }
            // The commit force is part of the transaction's log component.
            let commit_span = std::mem::take(&mut self.cur_span);
            self.users[u as usize]
                .txn
                .as_mut()
                .expect("user owns a transaction in flight (op/txn events only fire for active transactions)")
                .span
                .add(&commit_span);
            self.queue.schedule(done, Event::TxnDone(u));
        }
    }

    fn on_txn_done(&mut self, u: u32, now: SimTime) {
        let txn = self.users[u as usize].txn.take().expect(
            "user owns a transaction in flight (op/txn events only fire for active transactions)",
        );
        let response = now.since(txn.started);
        // Every microsecond of response time is attributed to exactly one
        // component: the op chain only ever advances through the charge_*
        // helpers, which account each advance as they make it.
        debug_assert_eq!(
            txn.span.total_us(),
            response.as_micros(),
            "span components must sum exactly to the response time"
        );
        self.registry
            .observe("txn.response_us", response.as_micros());
        if self.trace.enabled() {
            self.trace.emit(&TraceEvent::TxnCommit {
                at: now,
                user: u,
                txn: txn.id,
                response_us: response.as_micros(),
                cpu_us: txn.span.cpu_us,
                data_read_us: txn.span.data_read_us,
                dirty_flush_us: txn.span.dirty_flush_us,
                cluster_search_us: txn.span.cluster_search_us,
                log_us: txn.span.log_us,
                lock_wait_us: txn.span.lock_wait_us,
            });
        }
        if self.cfg.retain_log {
            // This is the moment the client sees the commit: durable by
            // construction (the force completed before TxnDone was
            // scheduled), so recovery must never lose it.
            if let Some(token) = txn.token {
                if self.mirror_failed.contains(&token) {
                    // The durable backend could not force this commit:
                    // the simulation proceeds, but the client was never
                    // acknowledged — recovery owes it nothing.
                    self.unacked_commits.push(token);
                } else {
                    self.acked_commits.push(token);
                }
            }
        }
        self.observe_degradation(txn.span.cluster_search_us, now);
        if self.cfg.locking {
            self.locks.release_all(semcluster_lock::TxnId(u as u64));
            self.wake_parked(now);
        }
        if self.recent_kinds.len() == RW_WINDOW {
            self.recent_kinds.pop_front();
        }
        self.recent_kinds.push_back(txn.is_read);
        self.tl.commits += 1;
        if self.measuring {
            self.metrics.record_txn(response, txn.is_read, txn.span);
        }
        self.completed += 1;
        if !self.measuring && self.completed >= self.cfg.warmup_txns {
            self.begin_measurement(now);
        }
        let user = &mut self.users[u as usize];
        user.session_left = user.session_left.saturating_sub(1);
        if user.session_left == 0 {
            self.start_session(u);
        }
        let think = self.rng.exp_duration(self.cfg.think_time);
        self.queue.schedule(now + think, Event::ThinkDone(u));
    }

    /// Retry parked transactions in FIFO order; each success starts its
    /// transaction at `now` (the lock wait is inside its response time).
    fn wake_parked(&mut self, now: SimTime) {
        let mut still_parked = VecDeque::new();
        while let Some(u) = self.parked_fifo.pop_front() {
            let Some((ops, submitted)) = self.users[u as usize].parked.take() else {
                continue;
            };
            if self.try_lock(u, &ops) {
                if self.measuring {
                    self.metrics.lock_wait_time += now - submitted;
                }
                if self.trace.enabled() {
                    self.trace.emit(&TraceEvent::LockGrant {
                        at: now,
                        user: u,
                        wait_us: now.since(submitted).as_micros(),
                    });
                }
                self.begin_txn(u, ops, submitted, now);
            } else {
                self.users[u as usize].parked = Some((ops, submitted));
                still_parked.push_back(u);
            }
        }
        self.parked_fifo = still_parked;
    }

    fn begin_measurement(&mut self, now: SimTime) {
        self.measuring = true;
        self.measure_start = now;
        self.metrics = MetricsCollector::default();
        // Counters restart with the measured interval so the final
        // snapshot reconciles with the RunReport's I/O breakdown.
        self.registry.reset();
        self.pool.reset_stats();
        self.log.reset_stats();
        self.disks.reset_stats();
        self.cpu.reset_stats();
        self.log_disk.reset_stats();
        self.faults.reset_stats();
        self.abort_reasons.clear();
    }

    /// Feed a finished transaction's cluster-search time into the
    /// graceful-degradation window; record any mode transition.
    fn observe_degradation(&mut self, search_us: u64, now: SimTime) {
        if let Some(entered) = self.faults.observe_txn_search(search_us) {
            self.registry.inc(if entered {
                "fault.degrade.enter"
            } else {
                "fault.degrade.exit"
            });
            if self.trace.enabled() {
                self.trace.emit(&TraceEvent::Degrade { at: now, entered });
            }
        }
    }

    /// Abort the transaction in flight for user `u` after a run-path
    /// failure (retry exhaustion): write an abort record, release
    /// locks, and send the user back to thinking. The simulation keeps
    /// going — a fault aborts one transaction, not the run.
    ///
    /// Aborted transactions are *not* recorded in the response metrics
    /// (reports describe committed work); their count and reasons are
    /// reported separately via [`RunReport::faults`].
    fn abort_txn(&mut self, u: u32, err: EngineError, now: SimTime) {
        let txn = self.users[u as usize].txn.take().expect(
            "user owns a transaction in flight (op/txn events only fire for active transactions)",
        );
        let response = now.since(txn.started);
        // The failed op charged its waits (attempts + backoff) as they
        // accrued, so attribution still sums exactly; only the CPU tail
        // of the aborted op is abandoned.
        debug_assert_eq!(
            txn.span.total_us(),
            response.as_micros(),
            "abort-time span components must sum exactly to the elapsed response"
        );
        if let Some(token) = txn.token {
            self.log.abort(token);
            if let Some(m) = self.mirror.as_mut() {
                m.abort(token.raw());
            }
            if self.cfg.retain_log {
                self.aborted_tokens.push(token);
            }
        }
        self.faults.stats.txn_aborts += 1;
        self.registry.inc("fault.txn.abort");
        self.tl.aborts += 1;
        if self.abort_reasons.len() < 8 {
            self.abort_reasons.push(err.to_string());
        }
        if self.trace.enabled() {
            if let EngineError::Io(e) = &err {
                self.trace.emit(&TraceEvent::TxnAbort {
                    at: now,
                    user: u,
                    txn: txn.id,
                    op: fault_op(e.op),
                    page: PageId(e.page),
                    disk: e.disk,
                });
            }
        }
        self.observe_degradation(txn.span.cluster_search_us, now);
        if self.cfg.locking {
            self.locks.release_all(semcluster_lock::TxnId(u as u64));
            self.wake_parked(now);
        }
        if self.recent_kinds.len() == RW_WINDOW {
            self.recent_kinds.pop_front();
        }
        self.recent_kinds.push_back(txn.is_read);
        // Counts toward run progress (the closed network must not wedge)
        // but not toward the measured response statistics.
        self.completed += 1;
        if !self.measuring && self.completed >= self.cfg.warmup_txns {
            self.begin_measurement(now);
        }
        let user = &mut self.users[u as usize];
        user.session_left = user.session_left.saturating_sub(1);
        if user.session_left == 0 {
            self.start_session(u);
        }
        let think = self.rng.exp_duration(self.cfg.think_time);
        self.queue.schedule(now + think, Event::ThinkDone(u));
    }

    // ------------------------------------------------- session & targets

    fn start_session(&mut self, u: u32) {
        let len = sample_session_length(&self.cfg.workload, &mut self.rng);
        // Seed the working set with a checkout: a random root plus its
        // transitive components.
        let root = self.pick_uniform();
        let mut seed = vec![root];
        seed.extend(self.db.graph().transitive_components(root, 8));
        let user = &mut self.users[u as usize];
        user.session_left = len;
        user.working_set.clear();
        user.working_set.extend(seed);
    }

    fn pick_uniform(&mut self) -> ObjectId {
        ObjectId(self.rng.below(self.db.object_count() as u64) as u32)
    }

    fn remember(&mut self, u: u32, obj: ObjectId) {
        let ws = &mut self.users[u as usize].working_set;
        if ws.len() == WORKING_SET_CAP {
            ws.pop_front();
        }
        ws.push_back(obj);
    }

    fn pick_target(&mut self, u: u32) -> ObjectId {
        let ws_len = self.users[u as usize].working_set.len();
        if ws_len > 0 && self.rng.chance(self.cfg.working_set_bias) {
            let i = self.rng.below(ws_len as u64) as usize;
            self.users[u as usize].working_set[i]
        } else {
            self.pick_uniform()
        }
    }

    /// Pick a read root that actually has components (for composite
    /// retrieval the paper's structure density is a property of composite
    /// objects).
    fn pick_composite(&mut self, u: u32) -> ObjectId {
        for _ in 0..8 {
            let cand = self.pick_target(u);
            if self.db.graph().downward_fanout(cand) > 0 {
                return cand;
            }
            // Walking up from a leaf finds its composite.
            if let Some(&up) = self.db.graph().composites(cand).first() {
                return up;
            }
        }
        self.pick_target(u)
    }

    fn generate_ops(&mut self, u: u32) -> Vec<Op> {
        let spec = match &self.cfg.phases {
            Some(schedule) => schedule.spec_at(self.completed).clone(),
            None => self.cfg.workload.clone(),
        };
        if self.rng.chance(spec.read_probability()) {
            let kind = sample_read_kind(&mut self.rng);
            let root = match kind {
                QueryKind::CompositeRetrieval => self.pick_composite(u),
                _ => self.pick_target(u),
            };
            vec![Op::Read { kind, root }]
        } else {
            // A write transaction is a checkin: every mutation targets one
            // anchor's neighbourhood (§4.1 — "a checkin operation invokes
            // some object insertions and updating"). Under clustering the
            // touched objects share pages, which is what lets the log
            // manager coalesce before-images (Figure 5.5).
            let anchor = self.pick_target(u);
            let shape = sample_write_shape(&spec, &mut self.rng);
            shape
                .into_iter()
                .map(|create| match create {
                    Some(mode) => Op::Create { anchor, mode },
                    None => {
                        let comps = self.db.graph().components(anchor);
                        let target = if comps.is_empty() {
                            anchor
                        } else {
                            let i = self.rng.below(comps.len() as u64 + 1) as usize;
                            if i == comps.len() {
                                anchor
                            } else {
                                comps[i]
                            }
                        };
                        // A checkin occasionally removes an obsolete
                        // component instead of updating it.
                        if target != anchor && self.rng.chance(spec.delete_fraction) {
                            Op::Delete { target }
                        } else {
                            Op::Update { target }
                        }
                    }
                })
                .collect()
        }
    }

    // ------------------------------------------------------ op execution

    fn run_next_op(&mut self, u: u32, now: SimTime) {
        let txn = self.users[u as usize].txn.as_mut().expect(
            "user owns a transaction in flight (op/txn events only fire for active transactions)",
        );
        let op = txn.ops[txn.next_op];
        txn.next_op += 1;
        let token = txn.token;
        let done = match op {
            Op::Read { kind, root } => self.exec_read(u, kind, root, now),
            Op::Create { anchor, mode } => {
                let token = token
                    .expect("write txn holds a log token (invariant: non-read txns begin one)");
                self.exec_create(u, anchor, mode, token, now)
            }
            Op::Update { target } => {
                let token = token
                    .expect("write txn holds a log token (invariant: non-read txns begin one)");
                self.exec_update(u, target, token, now)
            }
            Op::Delete { target } => {
                let token = token
                    .expect("write txn holds a log token (invariant: non-read txns begin one)");
                self.exec_delete(target, token, now)
            }
        };
        // Drain this operation's attribution into the owning transaction
        // (on failure too — the waits up to the failure were real).
        let op_span = std::mem::take(&mut self.cur_span);
        self.users[u as usize]
            .txn
            .as_mut()
            .expect("user owns a transaction in flight (op/txn events only fire for active transactions)")
            .span
            .add(&op_span);
        match done {
            Ok(done) => self.queue.schedule(done.max(now), Event::OpDone(u)),
            Err(err) => {
                let at = match &err {
                    EngineError::Io(e) => SimTime::from_micros(e.at_us),
                    EngineError::Placement { .. } => now,
                };
                self.abort_txn(u, err, at.max(now));
            }
        }
    }

    /// The clustering policy in force right now (resolves `Adaptive`
    /// against the observed read/write ratio of the last transactions).
    /// Under graceful degradation the candidate search is suspended:
    /// placement falls back to plain append until the cluster-search
    /// budget recovers.
    fn effective_clustering(&self) -> ClusteringPolicy {
        if self.faults.degraded() {
            return ClusteringPolicy::NoCluster;
        }
        if self.cfg.clustering != ClusteringPolicy::Adaptive {
            return self.cfg.clustering;
        }
        let reads = self.recent_kinds.iter().filter(|&&r| r).count() as f64;
        let writes = (self.recent_kinds.len() as f64 - reads).max(1.0);
        self.cfg.clustering.resolve_adaptive(reads / writes)
    }

    /// The prefetch scope in force right now: degradation narrows
    /// database-wide prefetch to within-buffer (no extra disk traffic
    /// while the disks are the problem).
    fn effective_prefetch(&self) -> PrefetchScope {
        if self.faults.degraded() && self.cfg.prefetch == PrefetchScope::WithinDatabase {
            PrefetchScope::WithinBuffer
        } else {
            self.cfg.prefetch
        }
    }

    /// Run one disk I/O with fault injection: degraded/spike service
    /// multipliers per attempt, transient failures from the fault plan,
    /// and bounded retry with deterministic backoff charged in
    /// simulated time. Returns the completion time of the successful
    /// attempt, or the [`IoError`] after the budget is exhausted. Every
    /// failed attempt still occupies the disk for its full (possibly
    /// spiked) service time. With an inert fault config this reduces
    /// exactly to one `submit_to` call.
    fn faulty_disk_io(
        &mut self,
        op: IoOp,
        page: PageId,
        d: usize,
        mut t: SimTime,
    ) -> Result<SimTime, IoError> {
        let retry = self.faults.retry();
        let max_attempts = retry.max_attempts.max(1);
        let mut attempt = 1u32;
        loop {
            let mult = self.faults.service_mult(d as u32);
            let done = self.disks.submit_to(d, t, self.disk_service.times(mult));
            let failed = match op {
                IoOp::Read => self.faults.read_fails(d as u32),
                IoOp::Write => self.faults.write_fails(d as u32),
                IoOp::Log => unreachable!("log I/O stalls, it does not fail"),
            };
            if !failed {
                return Ok(done);
            }
            self.registry.inc(match op {
                IoOp::Read => "fault.io.read_error",
                IoOp::Write => "fault.io.write_error",
                IoOp::Log => unreachable!(),
            });
            if self.trace.enabled() {
                self.trace.emit(&TraceEvent::IoFault {
                    at: done,
                    op: fault_op(op),
                    page,
                    disk: d as u32,
                    attempt,
                });
            }
            if attempt >= max_attempts {
                return Err(IoError {
                    op,
                    page: page.0,
                    disk: d as u32,
                    attempts: attempt,
                    at_us: done.as_micros(),
                });
            }
            let backoff = retry.backoff_after(attempt);
            t = done + SimDuration::from_micros(backoff);
            attempt += 1;
            self.faults.stats.retries += 1;
            self.registry.inc("fault.io.retry");
            if self.trace.enabled() {
                self.trace.emit(&TraceEvent::IoRetry {
                    at: t,
                    op: fault_op(op),
                    page,
                    disk: d as u32,
                    attempt,
                    backoff_us: backoff,
                });
            }
        }
    }

    /// Fault `page` through the pool, chaining any physical I/O after `t`.
    /// Returns the time the page is available. `cause` decides whether the
    /// read is a demand read or a clustering-search read — the two are
    /// charged to different response components and counters. Under fault
    /// injection the read may retry with backoff (all of it charged to
    /// the same component) or fail the owning transaction.
    fn charge_access(
        &mut self,
        page: PageId,
        t: SimTime,
        cause: ReadCause,
    ) -> Result<SimTime, EngineError> {
        let tok = self.prof_enter(Phase::BufferLookup);
        match self.pool.access(page) {
            Access::Hit => {
                self.registry.inc("buffer.hit");
                self.tl.hits += 1;
                self.prof_exit(tok, 0);
                Ok(t)
            }
            Access::Miss { evicted_dirty } => {
                self.registry.inc("buffer.miss");
                self.tl.misses += 1;
                let issued = t;
                let mut ios = 1u32;
                let mut t = t;
                if let Some(victim) = evicted_dirty {
                    match self.charge_flush(victim, t, FlushCause::Evict) {
                        Ok(done) => t = done,
                        Err(e) => {
                            // Failed write-back aborts the access; the
                            // phase still closes (its span was already
                            // charged to the transaction by charge_flush).
                            self.prof_exit(tok, 0);
                            return Err(e);
                        }
                    }
                    ios += 1;
                }
                let d = self.layout.disk_of(page) as usize;
                let read_issued = t;
                let outcome = self.faulty_disk_io(IoOp::Read, page, d, t);
                let end = match &outcome {
                    Ok(done) => *done,
                    Err(e) => SimTime::from_micros(e.at_us),
                };
                // The whole retry saga (attempts + backoff) is read wait,
                // charged even when the I/O ultimately fails — the
                // transaction really did spend that time.
                let wait = end.since(read_issued).as_micros();
                match cause {
                    ReadCause::Demand => {
                        self.metrics.io.data_reads += 1;
                        self.registry.inc("io.read.demand");
                        self.cur_span.data_read_us += wait;
                    }
                    ReadCause::ClusterSearch => {
                        self.metrics.io.cluster_search_ios += 1;
                        self.registry.inc("cluster.search.candidate_io");
                        self.cur_span.cluster_search_us += wait;
                    }
                }
                // Phase self cost covers the whole miss expansion
                // (eviction write-back + read wait), even when the read
                // ultimately fails — close before the `?` propagates.
                self.prof_exit(tok, end.since(issued).as_micros());
                let t = outcome?;
                if self.trace.enabled() {
                    self.trace.emit(&TraceEvent::IoExpand {
                        at: issued,
                        page,
                        ios,
                    });
                    self.trace.emit(&TraceEvent::PageRead {
                        at: read_issued,
                        page,
                        disk: d as u32,
                        cause,
                        done: t,
                    });
                }
                Ok(t)
            }
        }
    }

    /// Write a dirty page back on the transaction's critical path.
    fn charge_flush(
        &mut self,
        page: PageId,
        t: SimTime,
        cause: FlushCause,
    ) -> Result<SimTime, EngineError> {
        if self.mirror.is_some() {
            // Stealing a dirty page to disk: the mirror forces a page
            // snapshot into the WAL first (so a torn page write is
            // always repairable), then performs the real write + fsync.
            let slots: Vec<(u32, u32)> = self
                .store
                .objects_on(page)
                .map(|objs| objs.iter().map(|&(o, s)| (o.0, s)).collect())
                .unwrap_or_default();
            if let Some(m) = self.mirror.as_mut() {
                m.steal(page.0, &slots);
            }
        }
        let d = self.layout.disk_of(page) as usize;
        let outcome = self.faulty_disk_io(IoOp::Write, page, d, t);
        let end = match &outcome {
            Ok(done) => *done,
            Err(e) => SimTime::from_micros(e.at_us),
        };
        self.cur_span.dirty_flush_us += end.since(t).as_micros();
        let done = outcome?;
        match cause {
            FlushCause::Evict => {
                self.metrics.io.dirty_writebacks += 1;
                self.registry.inc("buffer.evict.dirty");
            }
            FlushCause::Split => {
                self.metrics.io.split_ios += 1;
                self.registry.inc("split.io");
            }
            FlushCause::Prefetch => unreachable!("prefetch write-backs are asynchronous"),
        }
        if self.trace.enabled() {
            self.trace.emit(&TraceEvent::PageFlush {
                at: t,
                page,
                disk: d as u32,
                cause,
                done,
            });
        }
        Ok(done)
    }

    /// Admit a page the engine just created (no disk image yet).
    fn charge_install(&mut self, page: PageId, mut t: SimTime) -> Result<SimTime, EngineError> {
        if let Some(victim) = self.pool.install(page) {
            t = self.charge_flush(victim, t, FlushCause::Evict)?;
        }
        Ok(t)
    }

    /// One physical log-device I/O of the given kind, chained after `t`.
    /// Log I/O never fails (the device is redundant in the model) but an
    /// injected stall can delay it; the stall is charged to the log
    /// component in simulated time.
    fn submit_log_io(&mut self, t: SimTime, kind: LogFlushKind) -> SimTime {
        let tok = self.prof_enter(Phase::WalFlush);
        self.log_flushes_seen += 1;
        if let CrashPoint::MidFlush(k) = self.crash_point {
            if self.log_flushes_seen == k {
                self.crash_pending = true;
            }
        }
        let stall = self.faults.log_stall_us();
        let issue = if stall > 0 {
            self.registry.inc("fault.log.stall");
            if self.trace.enabled() {
                self.trace.emit(&TraceEvent::LogStall {
                    at: t,
                    stall_us: stall,
                });
            }
            t + SimDuration::from_micros(stall)
        } else {
            t
        };
        let done = self.log_disk.submit(issue, self.disk_service);
        self.metrics.io.log_ios += 1;
        self.registry.inc(match kind {
            LogFlushKind::BeforeImage => "wal.flush.before_image",
            LogFlushKind::Full => "wal.flush.full",
            LogFlushKind::Commit => "wal.flush.commit",
        });
        self.cur_span.log_us += done.since(t).as_micros();
        self.prof_exit(tok, done.since(t).as_micros());
        if self.trace.enabled() {
            self.trace.emit(&TraceEvent::LogFlush { at: t, kind, done });
        }
        done
    }

    /// Log an update and charge the physical log I/Os it caused
    /// (first-touch before-image and/or log-buffer wraps).
    fn charge_log(
        &mut self,
        token: semcluster_wal::TxnToken,
        page: PageId,
        bytes: u32,
        mut t: SimTime,
    ) -> SimTime {
        let tok = self.prof_enter(Phase::WalAppend);
        let io = self.log.log_update_detail(token, page, bytes);
        if io.before_image {
            t = self.submit_log_io(t, LogFlushKind::BeforeImage);
        }
        for _ in 0..io.wrap_flushes {
            t = self.submit_log_io(t, LogFlushKind::Full);
        }
        // Physical flush time nests under `wal_flush`; the append itself
        // is bookkeeping with zero simulated self cost.
        self.prof_exit(tok, 0);
        t
    }

    /// Context-sensitive relationship boosting: pages of objects related
    /// to the one just touched survive longer.
    fn context_boost(&mut self, obj: ObjectId) {
        if self.pool.policy() != ReplacementPolicy::ContextSensitive {
            return;
        }
        // Walk the adjacency slices directly (same order `related()`
        // returns) and stop at the fanout cap — no materialised list.
        let db = &self.db;
        let store = &self.store;
        let pool = &mut self.pool;
        let mut left = CONTEXT_BOOST_FANOUT;
        db.graph().for_each_related(obj, |_, _, other| {
            if let Some(page) = store.page_of(other) {
                pool.boost(page);
            }
            left -= 1;
            left > 0
        });
    }

    /// Asynchronous prefetch for an access to `obj` arriving via `kind`.
    /// Honours graceful degradation: while degraded, database-wide
    /// prefetch narrows to within-buffer (see [`Self::effective_prefetch`]).
    fn do_prefetch(&mut self, obj: ObjectId, kind: QueryKind, t: SimTime) {
        let tok = self.prof_enter(Phase::Prefetch);
        self.do_prefetch_inner(obj, kind, t);
        // Prefetch I/O is asynchronous: zero simulated self cost on the
        // issuing transaction's path.
        self.prof_exit(tok, 0);
    }

    fn do_prefetch_inner(&mut self, obj: ObjectId, kind: QueryKind, t: SimTime) {
        let scope = self.effective_prefetch();
        if scope == PrefetchScope::None {
            return;
        }
        let hint = match kind {
            QueryKind::CompositeRetrieval | QueryKind::ComponentRetrieval => {
                AccessHint::ByConfiguration
            }
            QueryKind::AncestorRetrieval | QueryKind::DescendantRetrieval => {
                AccessHint::ByVersionHistory
            }
            QueryKind::CorrespondentRetrieval => AccessHint::ByCorrespondence,
            QueryKind::SimpleLookup | QueryKind::Mutation => return,
        };
        let group = prefetch_group(&self.db, &self.store, obj, hint);
        if group.is_empty() {
            return;
        }
        let effect = apply_prefetch(&mut self.pool, &group, scope);
        if !effect.fetched.is_empty() || !effect.write_backs.is_empty() {
            self.registry.inc("prefetch.issue");
            if self.trace.enabled() {
                self.trace.emit(&TraceEvent::PrefetchIssue {
                    at: t,
                    fetched: effect.fetched.len() as u32,
                    write_backs: effect.write_backs.len() as u32,
                });
            }
        }
        // Prefetch I/Os are issued asynchronously: they load the disks but
        // do not extend this transaction's critical path. They never fail
        // or retry, but a persistently degraded disk still serves them
        // slowly (static multiplier — no fault-plan draws).
        for &page in &effect.fetched {
            let d = self.layout.disk_of(page) as usize;
            let service = self.disk_service.times(self.faults.disk_mult(d as u32));
            let done = self.disks.submit_to(d, t, service);
            self.metrics.io.prefetch_ios += 1;
            self.registry.inc("prefetch.io");
            if self.trace.enabled() {
                self.trace.emit(&TraceEvent::PrefetchIo {
                    at: t,
                    page,
                    disk: d as u32,
                    write_back: false,
                    done,
                });
            }
        }
        for &victim in &effect.write_backs {
            let d = self.layout.disk_of(victim) as usize;
            let service = self.disk_service.times(self.faults.disk_mult(d as u32));
            let done = self.disks.submit_to(d, t, service);
            self.metrics.io.prefetch_ios += 1;
            self.registry.inc("prefetch.io");
            if self.trace.enabled() {
                self.trace.emit(&TraceEvent::PrefetchIo {
                    at: t,
                    page: victim,
                    disk: d as u32,
                    write_back: true,
                    done,
                });
            }
        }
    }

    fn exec_read(
        &mut self,
        u: u32,
        kind: QueryKind,
        root: ObjectId,
        now: SimTime,
    ) -> Result<SimTime, EngineError> {
        let query = match kind {
            QueryKind::SimpleLookup => semcluster_vdm::ReadQuery::SimpleLookup,
            QueryKind::ComponentRetrieval => semcluster_vdm::ReadQuery::ComponentRetrieval,
            QueryKind::CompositeRetrieval => semcluster_vdm::ReadQuery::CompositeRetrieval {
                fanout: self.cfg.workload.density.sample_fanout(&mut self.rng),
            },
            QueryKind::DescendantRetrieval => semcluster_vdm::ReadQuery::DescendantRetrieval,
            QueryKind::AncestorRetrieval => semcluster_vdm::ReadQuery::AncestorRetrieval,
            QueryKind::CorrespondentRetrieval => semcluster_vdm::ReadQuery::CorrespondentRetrieval,
            QueryKind::Mutation => unreachable!("reads only"),
        };
        let objects = semcluster_vdm::execute_read(&self.db, query, root);

        let cpu_time = self.cfg.cpu_per_access.times(objects.len() as u64);
        let cpu_done = self.cpu.submit(now, cpu_time);

        let mut t = now;
        for (i, &obj) in objects.iter().enumerate() {
            if let Some(page) = self.store.page_of(obj) {
                t = self.charge_access(page, t, ReadCause::Demand)?;
            }
            if i == 0 {
                self.context_boost(obj);
                self.do_prefetch(obj, kind, now);
            }
        }
        self.remember(u, root);
        Ok(self.finish_op(t, cpu_done))
    }

    /// Close an operation: any time the CPU keeps the transaction busy
    /// beyond its I/O chain is the operation's CPU component.
    fn finish_op(&mut self, t: SimTime, cpu_done: SimTime) -> SimTime {
        let done = cpu_done.max(t);
        self.cur_span.cpu_us += done.since(t).as_micros();
        done
    }

    fn exec_create(
        &mut self,
        u: u32,
        anchor: ObjectId,
        mode: CreateMode,
        token: semcluster_wal::TxnToken,
        now: SimTime,
    ) -> Result<SimTime, EngineError> {
        // 1. Logical creation. The anchor can legally have been deleted
        // by an earlier transaction, so a missing anchor is a run
        // condition (the create aborts), not an invariant violation.
        let id = match mode {
            CreateMode::NewComponent => {
                let (rep, ty) = {
                    let a = self.db.get(anchor).map_err(|_| EngineError::Placement {
                        object: anchor.0,
                        detail: "create anchor no longer exists",
                    })?;
                    (a.name.rep.clone(), a.ty)
                };
                self.create_seq += 1;
                let name = ObjectName::new(format!("w{}", self.create_seq), 1, rep);
                let body = self.rng.range_inclusive(64, 512) as u32;
                let id = self
                    .db
                    .create_object(name, ty, body)
                    .expect("generated names are unique (monotone create_seq)");
                self.db
                    .relate(RelKind::Configuration, anchor, id)
                    .expect("edge to a freshly created object cannot already exist");
                id
            }
            CreateMode::NewVersion => {
                let derived = derive_version(&mut self.db, anchor, &self.cfg.inherit_model)
                    .map_err(|_| EngineError::Placement {
                        object: anchor.0,
                        detail: "version-derivation anchor no longer exists",
                    })?;
                derived.id
            }
        };
        let size = self
            .db
            .get(id)
            .expect("object created two statements ago is present")
            .size_bytes();

        // 2. Placement search (candidate-page reads are charged). The
        // scoring runs on the engine's dense scratch arenas — pinned
        // allocation-free by the profile golden.
        let policy = self.effective_clustering();
        let ptok = self.prof_enter(Phase::PlacementScore);
        let plan = plan_placement_in(
            &self.db,
            &self.store,
            &self.pool,
            policy,
            &self.weights,
            id,
            size,
            &mut self.scratch,
        );
        let cpu_done = self.cpu.submit(now, self.cfg.cpu_per_access);
        let mut t = now;
        // Candidate-page reads flow through the buffer manager; misses
        // they cause are search I/Os, not demand reads. They nest under
        // the placement phase, whose own simulated self cost is zero
        // (scoring is CPU work, charged through the CPU server). A read
        // failure must still close the phase before propagating.
        let mut charged = Ok(());
        for c in &plan.examined {
            match self.charge_access(c.page, t, ReadCause::ClusterSearch) {
                Ok(done) => t = done,
                Err(e) => {
                    charged = Err(e);
                    break;
                }
            }
        }
        self.prof_exit(ptok, 0);
        charged?;

        // 3. Page-overflow handling.
        let mut split_verdict = if plan.preferred_full.is_some() {
            SplitVerdict::Declined
        } else {
            SplitVerdict::NotConsidered
        };
        let landed = if plan.target == PlacementTarget::Append
            && plan.preferred_full.is_some()
            && self.cfg.split != SplitPolicy::NoSplit
        {
            let Some(full) = plan.preferred_full else {
                unreachable!("guarded by the surrounding condition");
            };
            match consider_split(
                &self.db,
                &self.store,
                &self.weights,
                self.cfg.split,
                full,
                plan.preferred_full_affinity,
                plan.chosen_affinity,
                (id, size),
            ) {
                Some(split_plan) => {
                    let outcome = execute_split(&mut self.store, &split_plan).map_err(|_| {
                        EngineError::Placement {
                            object: id.0,
                            detail: "split plan no longer feasible against the store",
                        }
                    })?;
                    let split_cpu = self.cpu.submit(now, self.cfg.cpu_per_split);
                    let chained = t.max(split_cpu);
                    self.cur_span.cpu_us += chained.since(t).as_micros();
                    t = chained;
                    t = self.charge_access(full, t, ReadCause::Demand)?;
                    t = self.charge_install(outcome.new_page, t)?;
                    self.pool.mark_dirty(full);
                    self.pool.mark_dirty(outcome.new_page);
                    // One extra I/O to flush the new page, plus a log
                    // record for the split (§5.1.2).
                    t = self.charge_flush(outcome.new_page, t, FlushCause::Split)?;
                    t = self.charge_log(token, outcome.new_page, size, t);
                    if self.mirror.is_some() {
                        // Each object the split carried off the full page
                        // is a logged move (sizes read back from the new
                        // page, where they now live).
                        let on_new: Vec<(ObjectId, u32)> = self
                            .store
                            .objects_on(outcome.new_page)
                            .map(|objs| objs.to_vec())
                            .unwrap_or_default();
                        for &moved in &outcome.moved {
                            let msize = on_new
                                .iter()
                                .find(|&&(o, _)| o == moved)
                                .map(|&(_, s)| s)
                                .unwrap_or(0);
                            self.mirror_op(
                                token,
                                WalOp::Move {
                                    object: moved.0,
                                    size: msize,
                                    from: full.0,
                                    to: outcome.new_page.0,
                                },
                            );
                        }
                    }
                    self.metrics.splits += 1;
                    self.registry.inc("cluster.split");
                    if self.trace.enabled() {
                        self.trace.emit(&TraceEvent::Split {
                            at: t,
                            from: full,
                            new: outcome.new_page,
                        });
                    }
                    split_verdict = SplitVerdict::Executed {
                        new_page: outcome.new_page,
                    };
                    outcome.incoming_page
                }
                None => execute_placement(&mut self.store, id, size, &plan).map_err(|_| {
                    EngineError::Placement {
                        object: id.0,
                        detail: "append after declined split found no page",
                    }
                })?,
            }
        } else {
            execute_placement(&mut self.store, id, size, &plan).map_err(|_| {
                EngineError::Placement {
                    object: id.0,
                    detail: "planned target page could not take the object",
                }
            })?
        };

        if let Some(audit) = self.audit.as_mut() {
            audit.push(PlacementAudit {
                at: now,
                kind: AuditKind::Create,
                object: id.0,
                candidates: plan
                    .examined
                    .iter()
                    .map(|c| CandidateAudit {
                        page: c.page,
                        score_milli: milli(c.score),
                        fits: c.fits,
                    })
                    .collect(),
                chosen: match plan.target {
                    PlacementTarget::Existing(p) => Some(p),
                    PlacementTarget::Append => None,
                },
                landed,
                score_milli: milli(plan.chosen_affinity),
                preferred_full: plan.preferred_full,
                split: split_verdict,
                search_ios: plan.search_ios,
            });
        }
        self.scratch.put_examined(plan.examined);

        // 4. Touch + dirty + log the landing page.
        let fresh = self
            .store
            .page(landed)
            .map(|p| p.object_count() == 1)
            .unwrap_or(false);
        t = if fresh {
            self.charge_install(landed, t)?
        } else {
            self.charge_access(landed, t, ReadCause::Demand)?
        };
        self.pool.mark_dirty(landed);
        t = self.charge_log(token, landed, size, t);
        self.mirror_op(
            token,
            WalOp::Place {
                object: id.0,
                size,
                page: landed.0,
            },
        );
        if self.measuring {
            self.metrics.objects_created += 1;
        }
        self.remember(u, id);
        Ok(self.finish_op(t, cpu_done))
    }

    fn exec_update(
        &mut self,
        u: u32,
        target: ObjectId,
        token: semcluster_wal::TxnToken,
        now: SimTime,
    ) -> Result<SimTime, EngineError> {
        let cpu_done = self.cpu.submit(now, self.cfg.cpu_per_access);
        let mut t = now;
        let Some(page) = self.store.page_of(target) else {
            return Ok(self.finish_op(now, cpu_done));
        };
        t = self.charge_access(page, t, ReadCause::Demand)?;
        self.pool.mark_dirty(page);
        let size = self
            .store
            .objects_on(page)
            .ok()
            .and_then(|objs| objs.iter().find(|&&(o, _)| o == target).map(|&(_, s)| s))
            .unwrap_or(128);
        t = self.charge_log(token, page, size, t);
        self.mirror_op(
            token,
            WalOp::Touch {
                object: target.0,
                size,
                page: page.0,
            },
        );

        // Run-time reclustering: the update is the moment the cluster
        // manager re-evaluates the object's placement. Suspended while
        // degraded (effective policy is NoCluster, which never clusters).
        let policy = self.effective_clustering();
        if policy.clusters() {
            let ptok = self.prof_enter(Phase::PlacementScore);
            let plan = plan_recluster_in(
                &self.db,
                &self.store,
                &self.pool,
                policy,
                &self.weights,
                target,
                self.cfg.recluster_min_gain,
                &mut self.scratch,
            );
            // Candidate reads nest under the scoring phase; close it
            // before any error propagates or the move executes.
            let mut charged = Ok(());
            if let Some(plan) = &plan {
                for c in &plan.examined {
                    match self.charge_access(c.page, t, ReadCause::ClusterSearch) {
                        Ok(done) => t = done,
                        Err(e) => {
                            charged = Err(e);
                            break;
                        }
                    }
                }
            }
            self.prof_exit(ptok, 0);
            charged?;
            if let Some(plan) = plan {
                let moved = self.store.move_object(target, plan.to).is_ok();
                if moved {
                    self.pool.mark_dirty(page);
                    self.pool.mark_dirty(plan.to);
                    t = self.charge_log(token, plan.to, size, t);
                    self.mirror_op(
                        token,
                        WalOp::Move {
                            object: target.0,
                            size,
                            from: page.0,
                            to: plan.to.0,
                        },
                    );
                    self.metrics.recluster_moves += 1;
                    self.registry.inc("cluster.recluster.move");
                    if self.trace.enabled() {
                        self.trace.emit(&TraceEvent::ReclusterMove {
                            at: t,
                            object: target.0,
                            from: page,
                            to: plan.to,
                        });
                    }
                }
                if let Some(audit) = self.audit.as_mut() {
                    audit.push(PlacementAudit {
                        at: now,
                        kind: AuditKind::Recluster,
                        object: target.0,
                        candidates: plan
                            .examined
                            .iter()
                            .map(|c| CandidateAudit {
                                page: c.page,
                                score_milli: milli(c.score),
                                fits: c.fits,
                            })
                            .collect(),
                        chosen: Some(plan.to),
                        landed: if moved { plan.to } else { page },
                        score_milli: milli(plan.gain),
                        preferred_full: None,
                        split: SplitVerdict::NotConsidered,
                        search_ios: plan.search_ios,
                    });
                }
                self.scratch.put_examined(plan.examined);
            }
        }
        self.remember(u, target);
        Ok(self.finish_op(t, cpu_done))
    }

    /// §4.1 query type 7 also covers deletion: remove the object
    /// logically (tombstoned; refused while by-reference inheritors
    /// exist) and physically, logging the page update.
    fn exec_delete(
        &mut self,
        target: ObjectId,
        token: semcluster_wal::TxnToken,
        now: SimTime,
    ) -> Result<SimTime, EngineError> {
        let cpu_done = self.cpu.submit(now, self.cfg.cpu_per_access);
        if self.db.delete_object(target).is_err() {
            // Already gone, or protected by inheritors: a no-op read of
            // the catalog.
            return Ok(self.finish_op(now, cpu_done));
        }
        let mut t = now;
        if let Some(page) = self.store.page_of(target) {
            t = self.charge_access(page, t, ReadCause::Demand)?;
            let size = self
                .store
                .objects_on(page)
                .ok()
                .and_then(|objs| objs.iter().find(|&&(o, _)| o == target).map(|&(_, s)| s))
                .unwrap_or(0);
            let removed = self.store.remove(target).is_ok();
            self.pool.mark_dirty(page);
            t = self.charge_log(token, page, size, t);
            if removed {
                self.mirror_op(
                    token,
                    WalOp::Remove {
                        object: target.0,
                        size,
                        page: page.0,
                    },
                );
            }
            if self.measuring {
                self.metrics.objects_deleted += 1;
            }
        }
        Ok(self.finish_op(t, cpu_done))
    }
}

/// Run one configured simulation to completion.
pub fn run_simulation(cfg: SimConfig) -> RunReport {
    Engine::new(cfg).run()
}

/// Run one configured simulation with observability attached, returning
/// the report plus the final metrics snapshot.
pub fn run_simulation_with_obs(cfg: SimConfig, obs: ObsConfig) -> (RunReport, MetricsSnapshot) {
    Engine::with_obs(cfg, obs).run_with_obs()
}

/// Run one configured simulation with observability attached, returning
/// the report plus everything collected (metrics, timeline, audits).
pub fn run_simulation_observed(cfg: SimConfig, obs: ObsConfig) -> (RunReport, RunObservations) {
    Engine::with_obs(cfg, obs).run_observed()
}

#[cfg(test)]
mod tests {
    use super::*;
    use semcluster_clustering::HintPolicy;

    fn tiny() -> SimConfig {
        SimConfig {
            database_bytes: 2 * 1024 * 1024,
            buffer_pages: 24,
            warmup_txns: 100,
            measured_txns: 400,
            ..SimConfig::default()
        }
    }

    #[test]
    fn run_completes_and_measures() {
        let report = run_simulation(tiny());
        assert_eq!(report.txns, 400);
        assert!(report.mean_response_s > 0.0);
        assert!(report.reads > report.writes, "rw=5 workload");
        assert!(report.hit_ratio > 0.0 && report.hit_ratio <= 1.0);
        assert!(report.measured_span_s > 0.0);
    }

    #[test]
    fn same_seed_same_result() {
        let a = run_simulation(tiny());
        let b = run_simulation(tiny());
        assert_eq!(a.mean_response_s, b.mean_response_s);
        assert_eq!(a.io, b.io);
        let c = run_simulation(tiny().with_seed(99));
        assert_ne!(a.mean_response_s, c.mean_response_s);
    }

    #[test]
    fn clustering_beats_no_clustering_at_high_density_high_rw() {
        let base = SimConfig {
            workload: semcluster_workload::WorkloadSpec::new(StructureDensity::High10, 100.0),
            ..tiny()
        };
        let clustered = run_simulation(base.clone().with_clustering(ClusteringPolicy::NoLimit));
        let scattered = run_simulation(base.with_clustering(ClusteringPolicy::NoCluster));
        assert!(
            clustered.mean_response_s < scattered.mean_response_s,
            "clustered {} vs scattered {}",
            clustered.mean_response_s,
            scattered.mean_response_s
        );
    }

    #[test]
    fn clustering_coalesces_before_images() {
        // Figure 5.5's mechanism: clustered updates of related objects
        // share pages, so fewer before-images are logged per committed
        // write transaction. Compare the per-commit rate (totals are
        // diluted by the random write-transaction counts of each run).
        let mut base = tiny();
        base.measured_txns = 2000;
        base.workload = semcluster_workload::WorkloadSpec::new(StructureDensity::Med5, 2.0);
        let clustered = run_simulation(base.clone().with_clustering(ClusteringPolicy::NoLimit));
        let scattered = run_simulation(base.with_clustering(ClusteringPolicy::NoCluster));
        let rate =
            |r: &crate::RunReport| r.log.before_image_ios as f64 / r.log.commits.max(1) as f64;
        assert!(
            rate(&clustered) < rate(&scattered),
            "clustered {:.3} vs scattered {:.3} images/commit",
            rate(&clustered),
            rate(&scattered)
        );
    }

    #[test]
    fn context_prefetch_beats_lru_no_prefetch() {
        let base = SimConfig {
            workload: semcluster_workload::WorkloadSpec::new(StructureDensity::High10, 100.0),
            clustering: ClusteringPolicy::NoLimit,
            split: SplitPolicy::Linear,
            ..tiny()
        };
        let smart = run_simulation(
            base.clone()
                .with_replacement(ReplacementPolicy::ContextSensitive)
                .with_prefetch(PrefetchScope::WithinDatabase),
        );
        let naive = run_simulation(
            base.with_replacement(ReplacementPolicy::Lru)
                .with_prefetch(PrefetchScope::None),
        );
        assert!(
            smart.mean_response_s < naive.mean_response_s,
            "smart {} vs naive {}",
            smart.mean_response_s,
            naive.mean_response_s
        );
    }

    #[test]
    fn user_hints_do_not_break_runs() {
        let mut cfg = tiny();
        cfg.hints = HintPolicy::UserHints;
        cfg.session_hint = AccessHint::ByConfiguration;
        let report = run_simulation(cfg);
        assert_eq!(report.txns, 400);
    }

    #[test]
    fn splits_happen_under_split_policy() {
        let mut cfg = tiny();
        cfg.split = SplitPolicy::Linear;
        cfg.clustering = ClusteringPolicy::NoLimit;
        cfg.workload = semcluster_workload::WorkloadSpec::new(StructureDensity::High10, 2.0);
        cfg.measured_txns = 800;
        let report = run_simulation(cfg);
        // Write-heavy high-density load on a clustered store must
        // eventually overflow preferred pages.
        assert!(
            report.splits > 0,
            "expected splits, got {:?}",
            report.splits
        );
    }
}

#[cfg(test)]
mod lock_tests {
    use super::*;

    #[test]
    fn locking_produces_waits_under_contention() {
        // A small, write-heavy database with nearly no think time keeps
        // all ten users concurrently active, maximising composite-lock
        // collisions.
        let mut cfg = SimConfig {
            database_bytes: 256 * 1024,
            buffer_pages: 16,
            warmup_txns: 50,
            measured_txns: 600,
            ..SimConfig::default()
        };
        cfg.think_time = SimDuration::from_millis(100);
        cfg.workload = semcluster_workload::WorkloadSpec::new(StructureDensity::Med5, 0.5);
        let locked = run_simulation(cfg.clone());
        assert!(
            locked.lock_waits > 0,
            "expected lock waits under contention"
        );
        assert!(locked.mean_lock_wait_s >= 0.0);
        cfg.locking = false;
        let unlocked = run_simulation(cfg);
        assert_eq!(unlocked.lock_waits, 0);
        // Both complete the full measured load either way.
        assert_eq!(locked.txns, 600);
        assert_eq!(unlocked.txns, 600);
    }

    #[test]
    fn locking_preserves_determinism() {
        let cfg = SimConfig {
            database_bytes: 1024 * 1024,
            buffer_pages: 16,
            warmup_txns: 50,
            measured_txns: 300,
            ..SimConfig::default()
        };
        let a = run_simulation(cfg.clone());
        let b = run_simulation(cfg);
        assert_eq!(a.mean_response_s, b.mean_response_s);
        assert_eq!(a.lock_waits, b.lock_waits);
    }
}

#[cfg(test)]
mod adaptive_tests {
    use super::*;
    use semcluster_workload::PhaseSchedule;

    fn phased(policy: ClusteringPolicy) -> SimConfig {
        SimConfig {
            database_bytes: 2 * 1024 * 1024,
            buffer_pages: 24,
            warmup_txns: 100,
            measured_txns: 800,
            clustering: policy,
            phases: Some(PhaseSchedule::mosaico(StructureDensity::Med5, 80)),
            ..SimConfig::default()
        }
    }

    #[test]
    fn phased_workload_runs_and_differs_from_static() {
        let phased_report = run_simulation(phased(ClusteringPolicy::NoLimit));
        assert_eq!(phased_report.txns, 800);
        // The MOSAICO cycle is write-heavy on average (rw 0.52 phase), so
        // the write count must be much higher than a static rw=46 mix.
        assert!(
            phased_report.writes > phased_report.txns / 10,
            "phases should inject write-heavy intervals: {} writes",
            phased_report.writes
        );
    }

    #[test]
    fn adaptive_policy_tracks_the_best_fixed_policy() {
        let adaptive = run_simulation(phased(ClusteringPolicy::Adaptive));
        let bounded = run_simulation(phased(ClusteringPolicy::IoLimit(2)));
        let unbounded = run_simulation(phased(ClusteringPolicy::NoLimit));
        let best = bounded.mean_response_s.min(unbounded.mean_response_s);
        // Adaptive should be within 15% of the better fixed policy.
        assert!(
            adaptive.mean_response_s <= best * 1.15,
            "adaptive {:.4} vs best fixed {:.4}",
            adaptive.mean_response_s,
            best
        );
    }
}

#[cfg(test)]
mod delete_tests {
    use super::*;

    #[test]
    fn deletions_happen_and_are_accounted() {
        let mut cfg = SimConfig {
            database_bytes: 1024 * 1024,
            buffer_pages: 16,
            warmup_txns: 50,
            measured_txns: 1500,
            ..SimConfig::default()
        };
        cfg.workload = semcluster_workload::WorkloadSpec::new(StructureDensity::Med5, 2.0);
        cfg.workload.delete_fraction = 0.5;
        let report = run_simulation(cfg);
        assert!(
            report.objects_deleted > 0,
            "write-heavy load with delete_fraction=0.5 must delete"
        );
        assert_eq!(report.txns, 1500, "deletions must not wedge the engine");
    }
}

#[cfg(test)]
mod crash_tests {
    use super::*;

    #[test]
    fn crash_recovery_matches_commit_history() {
        let cfg = SimConfig {
            database_bytes: 1024 * 1024,
            buffer_pages: 16,
            warmup_txns: 30,
            measured_txns: 300,
            retain_log: true,
            ..SimConfig::default()
        }
        .with_workload(StructureDensity::Med5, 3.0);
        let engine = Engine::new(cfg);
        let (report, recovery) = engine.run_and_crash();
        // Every winner committed; with force-on-commit nothing committed
        // can be lost, and in-flight losers are bounded by the user count.
        assert!(!recovery.winners.is_empty());
        assert!(
            recovery.losers.len() <= 10,
            "{} losers",
            recovery.losers.len()
        );
        assert!(
            !recovery.redone.is_empty(),
            "committed updates must be redone"
        );
        assert!(report.writes > 0);
        // Redo page set is a subset of pages the store knows.
        assert!(!recovery.dirty_pages.is_empty());
    }

    #[test]
    #[should_panic(expected = "retain_log")]
    fn run_and_crash_requires_retention() {
        let cfg = SimConfig {
            database_bytes: 512 * 1024,
            buffer_pages: 8,
            warmup_txns: 5,
            measured_txns: 10,
            ..SimConfig::default()
        };
        let _ = Engine::new(cfg).run_and_crash();
    }

    #[test]
    fn percentiles_are_ordered() {
        let report = run_simulation(SimConfig {
            database_bytes: 1024 * 1024,
            buffer_pages: 16,
            warmup_txns: 30,
            measured_txns: 300,
            ..SimConfig::default()
        });
        assert!(report.p50_response_s <= report.p95_response_s);
        assert!(report.p95_response_s <= report.max_response_s + 0.011);
        assert!(report.p50_response_s > 0.0);
    }
}
