//! Simulation configuration — every parameter of Table 4.1 plus the
//! engine-level knobs (CPU path lengths, disk timing, scale).
//!
//! Two scales are built in:
//!
//! * [`SimConfig::paper_scale`] — the paper's static parameters verbatim
//!   (500 MB database, 4 KB pages, 10 users, 10 disks, 4 s think time,
//!   1000 buffers). Heavy: hundreds of thousands of objects.
//! * [`SimConfig::default`] — a **proportionally scaled** laptop
//!   configuration (32 MB database, 100 buffers ≈ the same 1 % of the
//!   database as the paper's 1000-of-125k-pages) used by the figure
//!   regeneration binaries. Response-time *ratios* between policies are
//!   preserved; absolute values are not comparable to the paper's
//!   (unlabelled) axes anyway.

use semcluster_buffer::{AccessHint, PrefetchScope, ReplacementPolicy};
use semcluster_clustering::{ClusteringPolicy, HintPolicy, SplitPolicy};
use semcluster_faults::FaultConfig;
use semcluster_sim::SimDuration;
use semcluster_storage::DiskParams;
use semcluster_vdm::CopyVsRefModel;
use semcluster_wal::LogConfig;
use semcluster_workload::{StructureDensity, WorkloadSpec};

/// Full configuration of one simulation run.
#[derive(Debug, Clone)]
pub struct SimConfig {
    // ------------------------------------------------ static (Table 4.1)
    /// (A) Database size in bytes.
    pub database_bytes: u64,
    /// (B) Page size in bytes.
    pub page_bytes: u32,
    /// (C) Number of interactive users.
    pub users: u32,
    /// (D) Number of disks.
    pub disks: u32,
    /// (E) Mean think time between transactions.
    pub think_time: SimDuration,

    // ----------------------------------------------- control (Table 4.1)
    /// (F, G) Workload: structure density and read/write ratio.
    pub workload: WorkloadSpec,
    /// (H) Clustering policy.
    pub clustering: ClusteringPolicy,
    /// (I) Page-splitting policy.
    pub split: SplitPolicy,
    /// (J) User-hint policy.
    pub hints: HintPolicy,
    /// (K) Buffer replacement policy.
    pub replacement: ReplacementPolicy,
    /// (L) Buffer pool size in pages.
    pub buffer_pages: usize,
    /// (M) Prefetch policy.
    pub prefetch: PrefetchScope,

    // ------------------------------------------------------ engine knobs
    /// The access pattern sessions declare when hints are enabled.
    pub session_hint: AccessHint,
    /// Disk timing model.
    pub disk: DiskParams,
    /// Log-manager configuration.
    pub log: LogConfig,
    /// CPU service per logical page access.
    pub cpu_per_access: SimDuration,
    /// Extra CPU service for running a page-split partition.
    pub cpu_per_split: SimDuration,
    /// Copy-vs-reference model for derived versions.
    pub inherit_model: CopyVsRefModel,
    /// Minimum expected-cost gain before run-time reclustering moves an
    /// object.
    pub recluster_min_gain: f64,
    /// Override of the context-sensitive priority boost, in access ticks
    /// (None = the pool default of half the capacity).
    pub context_boost_ticks: Option<u64>,
    /// Whether transactions take hierarchical object locks (conservative
    /// pre-declaration; §4.1's object/composite-object concurrency
    /// control). Lock waits are part of response time.
    pub locking: bool,
    /// Optional phased workload (e.g. the MOSAICO run): overrides the
    /// static workload's read/write mix per transaction while keeping its
    /// density-driven database. See `semcluster_workload::PhaseSchedule`.
    pub phases: Option<semcluster_workload::PhaseSchedule>,
    /// Retain log records so the run can end in a simulated crash and
    /// recovery ([`crate::Engine::run_and_crash`]).
    pub retain_log: bool,
    /// Transactions discarded as warmup before measurement starts.
    pub warmup_txns: u64,
    /// Transactions measured after warmup.
    pub measured_txns: u64,
    /// Probability that a session operation targets the session's working
    /// set rather than a uniformly random object.
    pub working_set_bias: f64,
    /// Fault-injection configuration. The default is inert: no faults,
    /// and the engine's output is byte-identical to a fault-free build.
    pub faults: FaultConfig,
    /// Master seed; every stochastic choice in the run derives from it.
    pub seed: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            database_bytes: 32 * 1024 * 1024,
            page_bytes: 4096,
            users: 10,
            disks: 10,
            think_time: SimDuration::from_secs(4),
            workload: WorkloadSpec::new(StructureDensity::Low3, 5.0),
            clustering: ClusteringPolicy::NoLimit,
            split: SplitPolicy::NoSplit,
            hints: HintPolicy::NoHints,
            replacement: ReplacementPolicy::Lru,
            buffer_pages: 100,
            prefetch: PrefetchScope::None,
            session_hint: AccessHint::ByConfiguration,
            disk: DiskParams::default(),
            log: LogConfig::default(),
            cpu_per_access: SimDuration::from_millis(2),
            cpu_per_split: SimDuration::from_millis(5),
            inherit_model: CopyVsRefModel::default(),
            recluster_min_gain: 3.0,
            context_boost_ticks: None,
            locking: true,
            phases: None,
            retain_log: false,
            warmup_txns: 400,
            measured_txns: 2000,
            working_set_bias: 0.7,
            faults: FaultConfig::default(),
            seed: 42,
        }
    }
}

impl SimConfig {
    /// The paper's Table 4.1 static parameters, unscaled. Expect long
    /// build times and hundreds of megabytes of resident state.
    pub fn paper_scale() -> Self {
        SimConfig {
            database_bytes: 500 * 1024 * 1024,
            buffer_pages: 1000,
            ..SimConfig::default()
        }
    }

    /// Number of pages the database occupies.
    pub fn database_pages(&self) -> u64 {
        self.database_bytes / self.page_bytes as u64
    }

    /// Approximate number of objects the synthetic database will hold
    /// (database bytes / mean object footprint).
    pub fn target_objects(&self) -> u64 {
        self.database_bytes / Self::MEAN_OBJECT_BYTES
    }

    /// Mean synthetic object footprint (body + attribute slots) used for
    /// sizing.
    pub const MEAN_OBJECT_BYTES: u64 = 320;

    /// Short human-readable label of the control-parameter setting.
    pub fn label(&self) -> String {
        format!(
            "{} {} {} {} {} buf{} {}",
            self.workload.label(),
            self.clustering,
            self.split,
            self.hints,
            self.replacement,
            self.buffer_pages,
            self.prefetch,
        )
    }

    // ------------------------------------------------- builder-style API

    /// Set the workload.
    pub fn with_workload(mut self, density: StructureDensity, rw: f64) -> Self {
        self.workload = WorkloadSpec::new(density, rw);
        self
    }

    /// Set the clustering policy.
    pub fn with_clustering(mut self, p: ClusteringPolicy) -> Self {
        self.clustering = p;
        self
    }

    /// Set the split policy.
    pub fn with_split(mut self, p: SplitPolicy) -> Self {
        self.split = p;
        self
    }

    /// Set the replacement policy.
    pub fn with_replacement(mut self, p: ReplacementPolicy) -> Self {
        self.replacement = p;
        self
    }

    /// Set the prefetch scope.
    pub fn with_prefetch(mut self, p: PrefetchScope) -> Self {
        self.prefetch = p;
        self
    }

    /// Set the hint policy.
    pub fn with_hints(mut self, p: HintPolicy) -> Self {
        self.hints = p;
        self
    }

    /// Set the master seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Set buffer pool size.
    pub fn with_buffer_pages(mut self, frames: usize) -> Self {
        self.buffer_pages = frames;
        self
    }

    /// Set the fault-injection configuration.
    pub fn with_faults(mut self, faults: FaultConfig) -> Self {
        self.faults = faults;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_preserves_paper_buffer_ratio() {
        let cfg = SimConfig::default();
        let ratio = cfg.buffer_pages as f64 / cfg.database_pages() as f64;
        let paper = SimConfig::paper_scale();
        let paper_ratio = paper.buffer_pages as f64 / paper.database_pages() as f64;
        // Within 2× of the paper's ~0.8 %.
        assert!(
            ratio / paper_ratio < 2.0 && paper_ratio / ratio < 2.0,
            "scaled ratio {ratio} vs paper {paper_ratio}"
        );
    }

    #[test]
    fn paper_scale_matches_table_4_1() {
        let cfg = SimConfig::paper_scale();
        assert_eq!(cfg.database_bytes, 500 * 1024 * 1024);
        assert_eq!(cfg.page_bytes, 4096);
        assert_eq!(cfg.users, 10);
        assert_eq!(cfg.disks, 10);
        assert_eq!(cfg.think_time, SimDuration::from_secs(4));
        assert_eq!(cfg.buffer_pages, 1000);
    }

    #[test]
    fn builder_chain() {
        let cfg = SimConfig::default()
            .with_workload(StructureDensity::High10, 100.0)
            .with_clustering(ClusteringPolicy::IoLimit(2))
            .with_replacement(ReplacementPolicy::ContextSensitive)
            .with_prefetch(PrefetchScope::WithinDatabase)
            .with_seed(7);
        assert_eq!(cfg.workload.label(), "hi10-100");
        assert_eq!(cfg.clustering, ClusteringPolicy::IoLimit(2));
        assert_eq!(cfg.seed, 7);
        assert!(cfg.label().contains("2_IO_limit"));
    }
}
