//! The durable mirror: a [`FilePageStore`] shadowing a simulation run
//! (DESIGN.md §15).
//!
//! The engine stays a discrete-event simulation — simulated time,
//! placement decisions and metrics are untouched — but with a mirror
//! attached every logical storage effect is also written through the
//! real file-backed store under the WAL protocol:
//!
//! * object placement / removal / movement / update → WAL op records
//!   owned by the simulated transaction's token;
//! * page write-back (evict or split flush) → log-forced
//!   [`WalOp::PageSnapshot`] followed by the real page write;
//! * commit → commit record + WAL fsync, and the engine only
//!   acknowledges the transaction if that fsync succeeded (an injected
//!   fsync failure reroutes the token to `unacked`, never retried);
//! * engine abort → abort record.
//!
//! Everything is a single `Option` branch when no mirror is attached,
//! so the four golden suites are byte-identical with the feature
//! compiled in — the same inertness discipline as tracing and
//! profiling.

use semcluster_faults::{FsCrashReport, FsFaultConfig, FsStats};
use semcluster_storage::{FilePageStore, StorageManager, StoreError, WalOp};
use std::path::{Path, PathBuf};

/// How many mirror-side errors are retained verbatim for diagnosis.
const MAX_ERRORS: usize = 8;

/// Counters of the mirror's durable traffic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MirrorStats {
    /// WAL op records appended (places, removes, moves, touches).
    pub ops_logged: u64,
    /// Page steals (snapshot + page write + fsyncs).
    pub steals: u64,
    /// Commits whose WAL fsync succeeded (ackable).
    pub commits_ok: u64,
    /// Commits whose WAL fsync failed or was impossible (never acked).
    pub commits_failed: u64,
    /// Abort records appended.
    pub aborts: u64,
}

/// What a crashed (or finished) mirror leaves behind for recovery and
/// verification.
#[derive(Debug, Clone)]
pub struct FileCrashArtifacts {
    /// The store directory holding `pages.db` and `wal.log`.
    pub dir: PathBuf,
    /// The fault layer's crash report (torn write, syscall counters).
    pub report: FsCrashReport,
    /// Filesystem syscalls consumed by the initial checkpoint; crash
    /// points below this never observe transactional state.
    pub checkpoint_syscalls: u64,
    /// Fsyncs consumed by the initial checkpoint.
    pub checkpoint_fsyncs: u64,
    /// Durable-traffic counters.
    pub stats: MirrorStats,
    /// First few mirror-side errors (fsync failures, post-poison ops).
    pub errors: Vec<String>,
}

/// A [`FilePageStore`] wired to shadow one engine run.
#[derive(Debug)]
pub struct DurableMirror {
    store: FilePageStore,
    stats: MirrorStats,
    errors: Vec<String>,
    checkpoint_syscalls: u64,
    checkpoint_fsyncs: u64,
}

impl DurableMirror {
    /// Create a mirror rooted at `dir` behind the given filesystem
    /// fault schedule.
    pub fn create(dir: &Path, cfg: FsFaultConfig) -> Result<Self, StoreError> {
        Ok(DurableMirror {
            store: FilePageStore::create(dir, cfg)?,
            stats: MirrorStats::default(),
            errors: Vec::new(),
            checkpoint_syscalls: 0,
            checkpoint_fsyncs: 0,
        })
    }

    /// Store directory.
    pub fn root(&self) -> &Path {
        self.store.root()
    }

    /// Write the initial database image (every page the simulated
    /// store currently holds) and the `CheckpointEnd` record. Called
    /// once, before the run drives.
    pub fn checkpoint(&mut self, sim: &StorageManager) -> Result<(), StoreError> {
        let pages: Vec<(u32, Vec<(u32, u32)>)> = (0..sim.page_count() as u32)
            .map(|p| {
                let slots = sim
                    .objects_on(semcluster_storage::PageId(p))
                    .map(|objs| objs.iter().map(|&(o, s)| (o.0, s)).collect())
                    .unwrap_or_default();
                (p, slots)
            })
            .collect();
        self.store
            .checkpoint(pages.iter().map(|(p, s)| (*p, s.as_slice())))?;
        let stats = self.store.stats();
        self.checkpoint_syscalls = stats.syscalls;
        self.checkpoint_fsyncs = stats.fsyncs;
        Ok(())
    }

    /// Whether an injected crash point has killed the backend.
    pub fn crashed(&self) -> bool {
        self.store.is_crashed()
    }

    /// Filesystem counters.
    pub fn fs_stats(&self) -> FsStats {
        self.store.stats()
    }

    /// Durable-traffic counters.
    pub fn stats(&self) -> MirrorStats {
        self.stats
    }

    fn note_err(&mut self, ctx: &str, e: &StoreError) {
        if self.errors.len() < MAX_ERRORS {
            self.errors.push(format!("{ctx}: {e}"));
        }
    }

    /// Append one transactional op record (buffered; durable at the
    /// next WAL force). Errors are recorded, not propagated: a dead or
    /// poisoned backend must not change the simulation's control flow —
    /// the commit-time fsync is the gate that decides acknowledgement.
    pub fn op(&mut self, txn: u64, op: WalOp) {
        match self.store.append_op(txn, &op) {
            Ok(_) => self.stats.ops_logged += 1,
            Err(e) => self.note_err("op append", &e),
        }
    }

    /// Mirror a page write-back: snapshot-force then page write.
    pub fn steal(&mut self, page: u32, slots: &[(u32, u32)]) {
        match self.store.steal(page, slots) {
            Ok(()) => self.stats.steals += 1,
            Err(e) => self.note_err("page steal", &e),
        }
    }

    /// Mirror a commit: append + fsync. Returns `true` only if the
    /// commit is durable and may be acknowledged. On `false` the
    /// caller must treat the transaction as failed — per fsyncgate
    /// semantics the lost records cannot be resynced, and the mirror
    /// never retries.
    pub fn commit(&mut self, txn: u64) -> bool {
        match self.store.commit(txn) {
            Ok(_) => {
                self.stats.commits_ok += 1;
                true
            }
            Err(e) => {
                self.stats.commits_failed += 1;
                self.note_err("commit", &e);
                false
            }
        }
    }

    /// Mirror an engine-side abort.
    pub fn abort(&mut self, txn: u64) {
        match self.store.abort(txn) {
            Ok(_) => self.stats.aborts += 1,
            Err(e) => self.note_err("abort", &e),
        }
    }

    /// Kill the backend's process image (dropping unsynced writes;
    /// `tear_last_write` persists a partial prefix of the most recent
    /// in-flight write) and hand the artifacts to the crash harness.
    pub fn crash(mut self, tear_last_write: bool) -> FileCrashArtifacts {
        let report = self.store.crash(tear_last_write);
        FileCrashArtifacts {
            dir: self.store.root().to_path_buf(),
            report,
            checkpoint_syscalls: self.checkpoint_syscalls,
            checkpoint_fsyncs: self.checkpoint_fsyncs,
            stats: self.stats,
            errors: self.errors,
        }
    }

    /// Clean shutdown: force both files; returns the store directory.
    pub fn finish(self) -> Result<PathBuf, StoreError> {
        self.store.finish()
    }
}
