//! Output metrics of one simulation run.

use semcluster_buffer::BufferStats;
use semcluster_sim::{Histogram, OnlineStats, SimDuration};
use semcluster_wal::LogStats;
use serde::Serialize;

/// Physical-I/O breakdown by cause.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct IoBreakdown {
    /// Demand page reads (buffer misses on the critical path).
    pub data_reads: u64,
    /// Dirty-page write-backs during eviction.
    pub dirty_writebacks: u64,
    /// Transaction-log I/Os (buffer wraps + before-images + forces).
    pub log_ios: u64,
    /// Candidate-page reads charged to the clustering search.
    pub cluster_search_ios: u64,
    /// Asynchronous prefetch reads (off the critical path but loading the
    /// disks).
    pub prefetch_ios: u64,
    /// Extra I/Os caused by page splits (new-page flushes and moves).
    pub split_ios: u64,
}

impl IoBreakdown {
    /// Total physical I/Os.
    pub fn total(&self) -> u64 {
        self.data_reads
            + self.dirty_writebacks
            + self.log_ios
            + self.cluster_search_ios
            + self.prefetch_ios
            + self.split_ios
    }
}

/// Collects per-transaction observations during the measured interval.
#[derive(Debug, Clone)]
pub struct MetricsCollector {
    /// Response time of every transaction, in seconds.
    pub response: OnlineStats,
    /// Response-time distribution (seconds; 0–10 s, 1000 bins).
    pub response_hist: Histogram,
    /// Response time of read transactions.
    pub read_response: OnlineStats,
    /// Response time of write transactions.
    pub write_response: OnlineStats,
    /// I/O breakdown.
    pub io: IoBreakdown,
    /// Page splits performed.
    pub splits: u64,
    /// Run-time recluster moves performed.
    pub recluster_moves: u64,
    /// Objects created during measurement.
    pub objects_created: u64,
    /// Objects deleted during measurement.
    pub objects_deleted: u64,
    /// Transactions that had to wait for locks.
    pub lock_waits: u64,
    /// Total time transactions spent waiting for locks.
    pub lock_wait_time: SimDuration,
}

impl Default for MetricsCollector {
    fn default() -> Self {
        MetricsCollector {
            response: OnlineStats::new(),
            response_hist: Histogram::new(0.0, 10.0, 1000),
            read_response: OnlineStats::new(),
            write_response: OnlineStats::new(),
            io: IoBreakdown::default(),
            splits: 0,
            recluster_moves: 0,
            objects_created: 0,
            objects_deleted: 0,
            lock_waits: 0,
            lock_wait_time: SimDuration::ZERO,
        }
    }
}

impl MetricsCollector {
    /// Record a completed transaction.
    pub fn record_txn(&mut self, response: SimDuration, is_read: bool) {
        self.response.push_duration(response);
        self.response_hist.record(response.as_secs_f64());
        if is_read {
            self.read_response.push_duration(response);
        } else {
            self.write_response.push_duration(response);
        }
    }
}

/// Immutable summary of one finished run.
#[derive(Debug, Clone, Serialize)]
pub struct RunReport {
    /// Human-readable description of the configuration.
    pub config_label: String,
    /// Transactions measured.
    pub txns: u64,
    /// Read transactions measured.
    pub reads: u64,
    /// Write transactions measured.
    pub writes: u64,
    /// Mean transaction response time in seconds.
    pub mean_response_s: f64,
    /// Mean read-transaction response time in seconds.
    pub read_response_s: f64,
    /// Mean write-transaction response time in seconds.
    pub write_response_s: f64,
    /// Maximum observed response time in seconds.
    pub max_response_s: f64,
    /// Median response time in seconds (histogram estimate).
    pub p50_response_s: f64,
    /// 95th-percentile response time in seconds (histogram estimate).
    pub p95_response_s: f64,
    /// Physical-I/O breakdown.
    pub io: IoBreakdown,
    /// Buffer-pool counters.
    #[serde(skip)]
    pub buffer: BufferStats,
    /// Buffer hit ratio over the measured interval.
    pub hit_ratio: f64,
    /// Log-manager counters.
    #[serde(skip)]
    pub log: LogStats,
    /// Physical log I/Os over the measured interval.
    pub log_ios: u64,
    /// Page splits performed.
    pub splits: u64,
    /// Recluster moves performed.
    pub recluster_moves: u64,
    /// Objects created during the measured interval.
    pub objects_created: u64,
    /// Objects deleted during the measured interval.
    pub objects_deleted: u64,
    /// Transactions that waited for locks.
    pub lock_waits: u64,
    /// Mean lock wait per waiting transaction, in seconds.
    pub mean_lock_wait_s: f64,
    /// Mean disk utilisation over the measured interval.
    pub disk_utilization: f64,
    /// CPU utilisation over the measured interval.
    pub cpu_utilization: f64,
    /// Simulated time the measurement covered, in seconds.
    pub measured_span_s: f64,
}

impl RunReport {
    /// Assemble a report.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        config_label: String,
        metrics: &MetricsCollector,
        buffer: BufferStats,
        log: LogStats,
        disk_utilization: f64,
        cpu_utilization: f64,
        measured_span: SimDuration,
    ) -> Self {
        RunReport {
            config_label,
            txns: metrics.response.count(),
            reads: metrics.read_response.count(),
            writes: metrics.write_response.count(),
            mean_response_s: metrics.response.mean(),
            read_response_s: metrics.read_response.mean(),
            write_response_s: metrics.write_response.mean(),
            max_response_s: if metrics.response.count() > 0 {
                metrics.response.max()
            } else {
                0.0
            },
            p50_response_s: if metrics.response.count() > 0 {
                metrics.response_hist.quantile(0.5)
            } else {
                0.0
            },
            p95_response_s: if metrics.response.count() > 0 {
                metrics.response_hist.quantile(0.95)
            } else {
                0.0
            },
            io: metrics.io,
            buffer,
            hit_ratio: buffer.hit_ratio(),
            log,
            log_ios: log.total_ios(),
            splits: metrics.splits,
            recluster_moves: metrics.recluster_moves,
            objects_created: metrics.objects_created,
            objects_deleted: metrics.objects_deleted,
            lock_waits: metrics.lock_waits,
            mean_lock_wait_s: if metrics.lock_waits == 0 {
                0.0
            } else {
                metrics.lock_wait_time.as_secs_f64() / metrics.lock_waits as f64
            },
            disk_utilization,
            cpu_utilization,
            measured_span_s: measured_span.as_secs_f64(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn io_breakdown_total() {
        let io = IoBreakdown {
            data_reads: 10,
            dirty_writebacks: 2,
            log_ios: 3,
            cluster_search_ios: 4,
            prefetch_ios: 5,
            split_ios: 1,
        };
        assert_eq!(io.total(), 25);
    }

    #[test]
    fn collector_partitions_read_write() {
        let mut m = MetricsCollector::default();
        m.record_txn(SimDuration::from_millis(100), true);
        m.record_txn(SimDuration::from_millis(300), false);
        assert_eq!(m.response.count(), 2);
        assert_eq!(m.read_response.count(), 1);
        assert_eq!(m.write_response.count(), 1);
        assert!((m.response.mean() - 0.2).abs() < 1e-9);
    }

    #[test]
    fn report_assembles() {
        let mut m = MetricsCollector::default();
        m.record_txn(SimDuration::from_millis(50), true);
        let r = RunReport::new(
            "test".into(),
            &m,
            BufferStats::default(),
            LogStats::default(),
            0.5,
            0.1,
            SimDuration::from_secs(100),
        );
        assert_eq!(r.txns, 1);
        assert!((r.mean_response_s - 0.05).abs() < 1e-9);
        assert_eq!(r.measured_span_s, 100.0);
    }
}
