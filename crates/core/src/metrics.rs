//! Output metrics of one simulation run.

use semcluster_buffer::BufferStats;
use semcluster_faults::FaultStats;
use semcluster_sim::{Histogram, OnlineStats, SimDuration};
use semcluster_wal::LogStats;

/// Physical-I/O breakdown by cause.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoBreakdown {
    /// Demand page reads (buffer misses on the critical path).
    pub data_reads: u64,
    /// Dirty-page write-backs during eviction.
    pub dirty_writebacks: u64,
    /// Transaction-log I/Os (buffer wraps + before-images + forces).
    pub log_ios: u64,
    /// Candidate-page reads charged to the clustering search.
    pub cluster_search_ios: u64,
    /// Asynchronous prefetch reads (off the critical path but loading the
    /// disks).
    pub prefetch_ios: u64,
    /// Extra I/Os caused by page splits (new-page flushes and moves).
    pub split_ios: u64,
}

impl IoBreakdown {
    /// Total physical I/Os.
    pub fn total(&self) -> u64 {
        self.data_reads
            + self.dirty_writebacks
            + self.log_ios
            + self.cluster_search_ios
            + self.prefetch_ios
            + self.split_ios
    }
}

/// Per-transaction response-time attribution in integer simulated
/// microseconds.
///
/// The engine serialises every transaction's operations along a single
/// critical-path clock, so each microsecond of response time is charged
/// to exactly one component and the components sum *exactly* to the
/// response time (`total_us()` — checked by a `debug_assert` in the
/// engine and by the observability integration tests).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanBreakdown {
    /// CPU service time (object accesses, clustering decisions, splits).
    pub cpu_us: u64,
    /// Demand page reads waited on (buffer misses).
    pub data_read_us: u64,
    /// Dirty-victim write-backs waited on during eviction or split.
    pub dirty_flush_us: u64,
    /// Candidate-page reads charged to the clustering search.
    pub cluster_search_us: u64,
    /// Log-buffer flushes and the commit force.
    pub log_us: u64,
    /// Time parked waiting for a write token.
    pub lock_wait_us: u64,
}

impl SpanBreakdown {
    /// Sum of all components — equals the transaction's response time.
    pub fn total_us(&self) -> u64 {
        let SpanBreakdown {
            cpu_us,
            data_read_us,
            dirty_flush_us,
            cluster_search_us,
            log_us,
            lock_wait_us,
        } = *self;
        cpu_us + data_read_us + dirty_flush_us + cluster_search_us + log_us + lock_wait_us
    }

    /// Accumulate another breakdown into this one.
    pub fn add(&mut self, other: &SpanBreakdown) {
        self.cpu_us += other.cpu_us;
        self.data_read_us += other.data_read_us;
        self.dirty_flush_us += other.dirty_flush_us;
        self.cluster_search_us += other.cluster_search_us;
        self.log_us += other.log_us;
        self.lock_wait_us += other.lock_wait_us;
    }
}

/// Mean per-transaction response composition in seconds.
///
/// Derived from the exact [`SpanBreakdown`] totals over the measured
/// interval; `think_s` is the configured think time, reported alongside
/// for the paper's closed-network cycle picture but *not* part of the
/// response time.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ResponseBreakdown {
    /// Mean CPU component per transaction.
    pub cpu_s: f64,
    /// Mean demand-read component per transaction.
    pub data_read_s: f64,
    /// Mean dirty-flush component per transaction.
    pub dirty_flush_s: f64,
    /// Mean cluster-search component per transaction.
    pub cluster_search_s: f64,
    /// Mean log component per transaction.
    pub log_s: f64,
    /// Mean lock-wait component per transaction.
    pub lock_wait_s: f64,
    /// Configured think time (informational; not part of response).
    pub think_s: f64,
}

impl ResponseBreakdown {
    /// Mean per-transaction breakdown from exact measured totals.
    pub fn from_totals(span: &SpanBreakdown, txns: u64) -> Self {
        if txns == 0 {
            return ResponseBreakdown::default();
        }
        let per = |us: u64| us as f64 / 1_000_000.0 / txns as f64;
        ResponseBreakdown {
            cpu_s: per(span.cpu_us),
            data_read_s: per(span.data_read_us),
            dirty_flush_s: per(span.dirty_flush_us),
            cluster_search_s: per(span.cluster_search_us),
            log_s: per(span.log_us),
            lock_wait_s: per(span.lock_wait_us),
            think_s: 0.0,
        }
    }

    /// Sum of the response components (excludes `think_s`).
    pub fn response_total_s(&self) -> f64 {
        self.cpu_s
            + self.data_read_s
            + self.dirty_flush_s
            + self.cluster_search_s
            + self.log_s
            + self.lock_wait_s
    }
}

/// Collects per-transaction observations during the measured interval.
#[derive(Debug, Clone)]
pub struct MetricsCollector {
    /// Response time of every transaction, in seconds.
    pub response: OnlineStats,
    /// Response-time distribution (seconds; 0–10 s, 1000 bins).
    pub response_hist: Histogram,
    /// Response time of read transactions.
    pub read_response: OnlineStats,
    /// Response time of write transactions.
    pub write_response: OnlineStats,
    /// I/O breakdown.
    pub io: IoBreakdown,
    /// Page splits performed.
    pub splits: u64,
    /// Run-time recluster moves performed.
    pub recluster_moves: u64,
    /// Objects created during measurement.
    pub objects_created: u64,
    /// Objects deleted during measurement.
    pub objects_deleted: u64,
    /// Transactions that had to wait for locks.
    pub lock_waits: u64,
    /// Total time transactions spent waiting for locks.
    pub lock_wait_time: SimDuration,
    /// Exact response-time attribution summed over measured transactions.
    pub span_totals: SpanBreakdown,
    /// Total response time in integer microseconds (= `span_totals.total_us()`).
    pub response_us_total: u64,
}

impl Default for MetricsCollector {
    fn default() -> Self {
        MetricsCollector {
            response: OnlineStats::new(),
            response_hist: Histogram::new(0.0, 10.0, 1000),
            read_response: OnlineStats::new(),
            write_response: OnlineStats::new(),
            io: IoBreakdown::default(),
            splits: 0,
            recluster_moves: 0,
            objects_created: 0,
            objects_deleted: 0,
            lock_waits: 0,
            lock_wait_time: SimDuration::ZERO,
            span_totals: SpanBreakdown::default(),
            response_us_total: 0,
        }
    }
}

impl MetricsCollector {
    /// Record a completed transaction.
    pub fn record_txn(&mut self, response: SimDuration, is_read: bool, span: SpanBreakdown) {
        self.response.push_duration(response);
        self.response_hist.record(response.as_secs_f64());
        if is_read {
            self.read_response.push_duration(response);
        } else {
            self.write_response.push_duration(response);
        }
        self.span_totals.add(&span);
        self.response_us_total += response.as_micros();
    }
}

/// Immutable summary of one finished run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Human-readable description of the configuration.
    pub config_label: String,
    /// Transactions measured.
    pub txns: u64,
    /// Read transactions measured.
    pub reads: u64,
    /// Write transactions measured.
    pub writes: u64,
    /// Mean transaction response time in seconds.
    pub mean_response_s: f64,
    /// Mean read-transaction response time in seconds.
    pub read_response_s: f64,
    /// Mean write-transaction response time in seconds.
    pub write_response_s: f64,
    /// Maximum observed response time in seconds.
    pub max_response_s: f64,
    /// Median response time in seconds (histogram estimate).
    pub p50_response_s: f64,
    /// 95th-percentile response time in seconds (histogram estimate).
    pub p95_response_s: f64,
    /// Physical-I/O breakdown.
    pub io: IoBreakdown,
    /// Buffer-pool counters.
    pub buffer: BufferStats,
    /// Buffer hit ratio over the measured interval.
    pub hit_ratio: f64,
    /// Log-manager counters.
    pub log: LogStats,
    /// Physical log I/Os over the measured interval.
    pub log_ios: u64,
    /// Page splits performed.
    pub splits: u64,
    /// Recluster moves performed.
    pub recluster_moves: u64,
    /// Objects created during the measured interval.
    pub objects_created: u64,
    /// Objects deleted during the measured interval.
    pub objects_deleted: u64,
    /// Exact response-time attribution totals (integer microseconds).
    pub span_totals: SpanBreakdown,
    /// Total measured response time in integer microseconds.
    pub response_us_total: u64,
    /// Mean per-transaction response composition in seconds.
    pub breakdown: ResponseBreakdown,
    /// Transactions that waited for locks.
    pub lock_waits: u64,
    /// Mean lock wait per waiting transaction, in seconds.
    pub mean_lock_wait_s: f64,
    /// Mean disk utilisation over the measured interval.
    pub disk_utilization: f64,
    /// CPU utilisation over the measured interval.
    pub cpu_utilization: f64,
    /// Simulated time the measurement covered, in seconds.
    pub measured_span_s: f64,
    /// Whether fault injection was active for this run.
    pub faults_enabled: bool,
    /// Fault-injection counters over the measured interval (all zero
    /// when injection is inert).
    pub faults: FaultStats,
    /// Display strings of the first few transaction-abort causes (retry
    /// exhaustion, placement failure), capped so the report stays small.
    pub abort_reasons: Vec<String>,
}

impl RunReport {
    /// Assemble a report.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        config_label: String,
        metrics: &MetricsCollector,
        buffer: BufferStats,
        log: LogStats,
        disk_utilization: f64,
        cpu_utilization: f64,
        measured_span: SimDuration,
    ) -> Self {
        RunReport {
            config_label,
            txns: metrics.response.count(),
            reads: metrics.read_response.count(),
            writes: metrics.write_response.count(),
            mean_response_s: metrics.response.mean(),
            read_response_s: metrics.read_response.mean(),
            write_response_s: metrics.write_response.mean(),
            max_response_s: if metrics.response.count() > 0 {
                metrics.response.max()
            } else {
                0.0
            },
            p50_response_s: if metrics.response.count() > 0 {
                metrics.response_hist.quantile(0.5)
            } else {
                0.0
            },
            p95_response_s: if metrics.response.count() > 0 {
                metrics.response_hist.quantile(0.95)
            } else {
                0.0
            },
            io: metrics.io,
            buffer,
            hit_ratio: buffer.hit_ratio(),
            log,
            log_ios: log.total_ios(),
            splits: metrics.splits,
            recluster_moves: metrics.recluster_moves,
            objects_created: metrics.objects_created,
            objects_deleted: metrics.objects_deleted,
            span_totals: metrics.span_totals,
            response_us_total: metrics.response_us_total,
            breakdown: ResponseBreakdown::from_totals(
                &metrics.span_totals,
                metrics.response.count(),
            ),
            lock_waits: metrics.lock_waits,
            mean_lock_wait_s: if metrics.lock_waits == 0 {
                0.0
            } else {
                metrics.lock_wait_time.as_secs_f64() / metrics.lock_waits as f64
            },
            disk_utilization,
            cpu_utilization,
            measured_span_s: measured_span.as_secs_f64(),
            faults_enabled: false,
            faults: FaultStats::default(),
            abort_reasons: Vec::new(),
        }
    }
}

impl RunReport {
    /// Render the report as a minimal JSON object (no external
    /// dependencies; fields are all numeric or simple strings). Fault
    /// counters are appended **only** when the run had fault injection
    /// enabled, so fault-free output — including the committed smoke
    /// golden — is byte-identical to what it was before the fault layer
    /// existed. This is the canonical serialization: the CLI's report
    /// lines, the golden suites and the wire-protocol server's REPORT
    /// response all emit exactly these bytes, which is what makes
    /// "byte-identical to the simulator oracle" a meaningful contract.
    pub fn to_json(&self) -> String {
        let mut out = format!(
            concat!(
                "{{\"config\":{config:?},\"txns\":{txns},\"reads\":{reads},",
                "\"writes\":{writes},\"mean_response_s\":{mean:.6},",
                "\"p50_response_s\":{p50:.6},\"p95_response_s\":{p95:.6},",
                "\"hit_ratio\":{hit:.4},\"data_reads\":{dr},\"log_ios\":{li},",
                "\"cluster_search_ios\":{cs},\"prefetch_ios\":{pf},",
                "\"splits\":{sp},\"recluster_moves\":{rm},\"lock_waits\":{lw},",
                "\"disk_utilization\":{du:.4},\"cpu_utilization\":{cu:.4}"
            ),
            config = self.config_label,
            txns = self.txns,
            reads = self.reads,
            writes = self.writes,
            mean = self.mean_response_s,
            p50 = self.p50_response_s,
            p95 = self.p95_response_s,
            hit = self.hit_ratio,
            dr = self.io.data_reads,
            li = self.log_ios,
            cs = self.io.cluster_search_ios,
            pf = self.io.prefetch_ios,
            sp = self.splits,
            rm = self.recluster_moves,
            lw = self.lock_waits,
            du = self.disk_utilization,
            cu = self.cpu_utilization,
        );
        if self.faults_enabled {
            let f = &self.faults;
            out.push_str(&format!(
                concat!(
                    ",\"faults\":{{\"read_errors\":{re},\"write_errors\":{we},",
                    "\"retries\":{rt},\"spikes\":{sk},\"log_stalls\":{ls},",
                    "\"stall_us\":{su},\"txn_aborts\":{ab},",
                    "\"degrade_enters\":{de},\"degrade_exits\":{dx}}}"
                ),
                re = f.read_errors,
                we = f.write_errors,
                rt = f.retries,
                sk = f.spikes,
                ls = f.log_stalls,
                su = f.stall_us,
                ab = f.txn_aborts,
                de = f.degrade_enters,
                dx = f.degrade_exits,
            ));
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn io_breakdown_total() {
        let io = IoBreakdown {
            data_reads: 10,
            dirty_writebacks: 2,
            log_ios: 3,
            cluster_search_ios: 4,
            prefetch_ios: 5,
            split_ios: 1,
        };
        assert_eq!(io.total(), 25);
    }

    #[test]
    fn collector_partitions_read_write() {
        let mut m = MetricsCollector::default();
        m.record_txn(
            SimDuration::from_millis(100),
            true,
            SpanBreakdown::default(),
        );
        m.record_txn(
            SimDuration::from_millis(300),
            false,
            SpanBreakdown::default(),
        );
        assert_eq!(m.response.count(), 2);
        assert_eq!(m.read_response.count(), 1);
        assert_eq!(m.write_response.count(), 1);
        assert!((m.response.mean() - 0.2).abs() < 1e-9);
        assert_eq!(m.response_us_total, 400_000);
    }

    #[test]
    fn span_breakdown_sums_and_accumulates() {
        let a = SpanBreakdown {
            cpu_us: 1,
            data_read_us: 2,
            dirty_flush_us: 3,
            cluster_search_us: 4,
            log_us: 5,
            lock_wait_us: 6,
        };
        assert_eq!(a.total_us(), 21);
        let mut b = a;
        b.add(&a);
        assert_eq!(b.total_us(), 42);
        let rb = ResponseBreakdown::from_totals(&b, 2);
        assert!((rb.response_total_s() - 21e-6).abs() < 1e-12);
        assert!((rb.log_s - 5e-6).abs() < 1e-12);
    }

    #[test]
    fn report_assembles() {
        let mut m = MetricsCollector::default();
        let span = SpanBreakdown {
            cpu_us: 20_000,
            data_read_us: 30_000,
            ..Default::default()
        };
        m.record_txn(SimDuration::from_millis(50), true, span);
        let r = RunReport::new(
            "test".into(),
            &m,
            BufferStats::default(),
            LogStats::default(),
            0.5,
            0.1,
            SimDuration::from_secs(100),
        );
        assert_eq!(r.txns, 1);
        assert!((r.mean_response_s - 0.05).abs() < 1e-9);
        assert_eq!(r.measured_span_s, 100.0);
        assert_eq!(r.response_us_total, 50_000);
        assert!((r.breakdown.cpu_s - 0.02).abs() < 1e-12);
        assert!((r.breakdown.data_read_s - 0.03).abs() < 1e-12);
    }
}
