//! Admission control for the serve path.
//!
//! Reuses the hysteresis shape of the cluster-search
//! [`DegradationPolicy`](semcluster_faults::DegradationPolicy): a hard
//! enter threshold, a lower exit threshold (`exit_pct` of the enter
//! level), and a window of consecutive calm observations before
//! recovering. That keeps the server from flapping between shedding and
//! accepting when the queue hovers around capacity — exactly the
//! oscillation the degradation policy exists to prevent on the
//! clustering path.
//!
//! The controller is a pure function of the depth observations fed to
//! it (no clocks, no randomness), so the state machine is unit-testable
//! deterministically and covered by `ci/check_determinism.sh`.

use semcluster_faults::DegradationPolicy;

/// Hysteresis admission controller over queue depth.
#[derive(Debug, Clone)]
pub struct AdmissionControl {
    /// Shed when observed depth reaches this level.
    enter_depth: usize,
    /// Candidate to recover when depth falls to or below this level.
    exit_depth: usize,
    /// Consecutive calm observations required to recover.
    window: usize,
    shedding: bool,
    calm_streak: usize,
    sheds: u64,
    transitions: u64,
}

impl AdmissionControl {
    /// Build from the queue capacity and a degradation policy: enter at
    /// `queue_cap`, exit at `exit_pct`% of it, after `window_txns`
    /// consecutive calm observations.
    pub fn new(queue_cap: usize, policy: &DegradationPolicy) -> Self {
        let enter_depth = queue_cap.max(1);
        let exit_depth = enter_depth * policy.exit_pct.min(100) as usize / 100;
        AdmissionControl {
            enter_depth,
            exit_depth,
            window: policy.window_txns.max(1),
            shedding: false,
            calm_streak: 0,
            sheds: 0,
            transitions: 0,
        }
    }

    /// Observe the queue depth at an admission decision. Returns `true`
    /// when the request should be admitted, `false` when shed.
    pub fn admit(&mut self, depth: usize) -> bool {
        if self.shedding {
            if depth <= self.exit_depth {
                self.calm_streak += 1;
                if self.calm_streak >= self.window {
                    self.shedding = false;
                    self.calm_streak = 0;
                    self.transitions += 1;
                }
            } else {
                self.calm_streak = 0;
            }
        } else if depth >= self.enter_depth {
            self.shedding = true;
            self.calm_streak = 0;
            self.transitions += 1;
        }
        if self.shedding {
            self.sheds += 1;
            false
        } else {
            true
        }
    }

    /// Whether the controller is currently shedding.
    pub fn shedding(&self) -> bool {
        self.shedding
    }

    /// Requests shed so far.
    pub fn sheds(&self) -> u64 {
        self.sheds
    }

    /// Shed-state transitions so far (enter + exit).
    pub fn transitions(&self) -> u64 {
        self.transitions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctl() -> AdmissionControl {
        // cap 8, exit at 50% (4), recover after 3 calm observations.
        AdmissionControl::new(
            8,
            &DegradationPolicy {
                window_txns: 3,
                search_budget_us: 0,
                exit_pct: 50,
            },
        )
    }

    #[test]
    fn admits_below_capacity() {
        let mut c = ctl();
        for depth in 0..8 {
            assert!(c.admit(depth), "depth {depth} must be admitted");
        }
        assert!(!c.shedding());
        assert_eq!(c.sheds(), 0);
    }

    #[test]
    fn sheds_at_capacity_and_recovers_with_hysteresis() {
        let mut c = ctl();
        assert!(!c.admit(8), "at capacity → shed");
        assert!(c.shedding());
        // Depth between exit (4) and enter (8): still shedding — this is
        // the hysteresis band that prevents flapping.
        assert!(!c.admit(6));
        assert!(!c.admit(5));
        // Calm observations start the recovery window.
        assert!(!c.admit(4));
        assert!(!c.admit(3));
        // A spike inside the window resets the streak.
        assert!(!c.admit(7));
        assert!(!c.admit(4));
        assert!(!c.admit(2));
        // Third consecutive calm observation exits shedding; the exiting
        // observation itself is admitted.
        assert!(c.admit(1));
        assert!(!c.shedding());
        assert_eq!(c.transitions(), 2, "one enter + one exit");
        assert_eq!(c.sheds(), 8);
    }

    #[test]
    fn deterministic_for_a_fixed_observation_sequence() {
        let seq: Vec<usize> = (0..64).map(|i| (i * 7 + 3) % 12).collect();
        let run =
            |mut c: AdmissionControl| -> Vec<bool> { seq.iter().map(|&d| c.admit(d)).collect() };
        assert_eq!(run(ctl()), run(ctl()));
    }
}
