//! Multi-client serving: wire protocol, connection FSM, admission
//! control, the threaded TCP server, and the chaos-driven load
//! generator.
//!
//! The layering keeps the deterministic parts pure and the impure
//! parts thin:
//!
//! * [`protocol`] and the connection FSM ([`ConnFsm`]) are pure —
//!   bytes/events in, actions out, time passed as an argument — so
//!   deadline/drain/malformed races are unit-tested deterministically;
//! * [`AdmissionControl`] is a pure hysteresis controller over queue
//!   depth observations;
//! * [`stats`] and [`slo`] are the live-telemetry layer — an atomic
//!   [`ServeStats`] registry plus a clock-free sliding-window
//!   [`SloTracker`]; both take time only as injected arguments;
//! * [`Server`] and [`run_load`] own the threads, sockets and clocks.
//!
//! The simulator remains the oracle: `ServeMode::Oracle` serves a
//! deterministic [`crate::Engine`] whose REPORT bytes must equal
//! [`crate::run_simulation`]'s, and concurrent mode must drain with
//! zero ACID violations (every acked transaction is a recovery winner).

mod admission;
mod load;
mod protocol;
mod server;
mod session;
pub mod slo;
pub mod stats;

pub use admission::AdmissionControl;
pub use load::{run_load, LoadConfig, LoadSummary};
pub use protocol::{
    read_frame, write_frame, ErrorKind, Frame, FrameDecoder, ProtocolError, Request, Response,
    TxnOp, TxnRequest, MAX_FRAME_BYTES, MAX_TXN_OPS,
};
pub use server::{ServeConfig, ServeMode, ServeReport, Server, ServerHandle};
pub use session::{ConnFsm, ConnState, ExecResult, FsmAction, FsmInput};
pub use slo::{SloSummary, SloTracker};
pub use stats::{
    HistSnapshot, RequestCounts, RequestSpans, RequestStamps, RequestTraceRecord, ServeStats,
    StatsSnapshot, HIST_BUCKETS, SPAN_NAMES, STATS_SCHEMA,
};

/// Typed failures on the serve/load paths. Each variant maps to a
/// distinct CLI exit code so scripts can tell transport failures from
/// protocol violations from correctness violations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// Socket/bind/spawn failure (CLI exit 5: service unavailable).
    Net {
        /// What was being attempted.
        context: String,
        /// Underlying I/O error text.
        source: String,
    },
    /// The peer violated the wire protocol (CLI exit 6).
    Protocol(ProtocolError),
    /// The server shed the request under load.
    Overloaded,
    /// The per-request deadline expired.
    DeadlineExceeded,
    /// The server is draining.
    ShuttingDown,
    /// Transient conflicts exhausted the retry budget.
    RetryExhausted {
        /// Attempts made before giving up.
        attempts: u32,
    },
    /// Acked transactions were not durable at drain (CLI exit 7).
    Acid {
        /// Number of acked-but-not-recovered transactions.
        violations: u64,
    },
    /// Unexpected internal failure.
    Internal(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Net { context, source } => {
                write!(f, "network failure ({context}): {source}")
            }
            ServeError::Protocol(e) => write!(f, "protocol violation: {e}"),
            ServeError::Overloaded => write!(f, "server overloaded"),
            ServeError::DeadlineExceeded => write!(f, "deadline exceeded"),
            ServeError::ShuttingDown => write!(f, "server shutting down"),
            ServeError::RetryExhausted { attempts } => {
                write!(f, "retry budget exhausted after {attempts} attempts")
            }
            ServeError::Acid { violations } => {
                write!(
                    f,
                    "{violations} acked transaction(s) not durable after recovery"
                )
            }
            ServeError::Internal(msg) => write!(f, "internal serve failure: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<ProtocolError> for ServeError {
    fn from(e: ProtocolError) -> Self {
        ServeError::Protocol(e)
    }
}
