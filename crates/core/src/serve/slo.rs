//! Pure sliding-window SLO tracker.
//!
//! The tracker never reads a clock: the server's sampler thread feeds
//! it one [`StatsSnapshot`](super::stats::StatsSnapshot) per tick, and
//! the tracker differences consecutive snapshots into per-tick deltas
//! (requests, errors, sheds, and the `total` latency histogram). The
//! window is a bounded deque of those deltas, so the rolling p50/p99,
//! error rate and shed rate cover only the last `window` ticks —
//! exactly the "what is the server doing *right now*" question the
//! cumulative registry cannot answer. Because every input is injected,
//! the module sits behind the CI determinism purity guard.

use std::collections::VecDeque;

use super::stats::{HistSnapshot, StatsSnapshot, HIST_BUCKETS};

/// One tick's worth of deltas between consecutive snapshots.
#[derive(Debug, Clone, Default)]
struct TickDelta {
    requests: u64,
    errors: u64,
    sheds: u64,
    lat_buckets: Vec<u64>,
    lat_count: u64,
    lat_max_us: u64,
}

/// Rolling summary over the window, embedded in snapshots and rendered
/// by both the JSON and Prometheus exporters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SloSummary {
    /// Ticks currently in the window (≤ the configured window size).
    pub window_ticks: u64,
    /// Successful transactions observed in the window.
    pub requests: u64,
    /// Typed error replies in the window (all kinds).
    pub errors: u64,
    /// Admission sheds (overloaded rejections) in the window.
    pub sheds: u64,
    /// Rolling median service time bound, µs.
    pub p50_us: u64,
    /// Rolling 99th-percentile service time bound, µs.
    pub p99_us: u64,
    /// Errors per million outcomes (errors + successes) in the window.
    pub error_ppm: u64,
    /// Sheds per million outcomes in the window.
    pub shed_ppm: u64,
}

impl SloSummary {
    /// Compact single-line JSON in fixed field order.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"window_ticks\":{},\"requests\":{},\"errors\":{},\"sheds\":{},\
             \"p50_us\":{},\"p99_us\":{},\"error_ppm\":{},\"shed_ppm\":{}}}",
            self.window_ticks,
            self.requests,
            self.errors,
            self.sheds,
            self.p50_us,
            self.p99_us,
            self.error_ppm,
            self.shed_ppm
        )
    }
}

/// The tracker: remembers the previous snapshot's cumulative totals and
/// a deque of the last `window` per-tick deltas.
pub struct SloTracker {
    window: usize,
    prev_txn_ok: u64,
    prev_errors: u64,
    prev_sheds: u64,
    prev_lat: Option<HistSnapshot>,
    ticks: VecDeque<TickDelta>,
}

impl SloTracker {
    /// Tracker over the last `window` ticks (min 1).
    pub fn new(window: usize) -> Self {
        SloTracker {
            window: window.max(1),
            prev_txn_ok: 0,
            prev_errors: 0,
            prev_sheds: 0,
            prev_lat: None,
            ticks: VecDeque::new(),
        }
    }

    fn errors_of(snap: &StatsSnapshot) -> u64 {
        snap.counters
            .iter()
            .filter(|(n, _)| n.starts_with("err."))
            .map(|(_, v)| v)
            .sum()
    }

    /// Ingest one tick's cumulative snapshot; the first call seeds the
    /// baseline from zero (the registry starts empty, so that delta is
    /// the truth, not an artifact).
    pub fn observe(&mut self, snap: &StatsSnapshot) {
        let txn_ok = snap.counter("txn_ok");
        let errors = Self::errors_of(snap);
        let sheds = snap.counter("err.overloaded");
        let lat = snap.latency("total").cloned().unwrap_or_default();
        let (prev_buckets, prev_count) = match &self.prev_lat {
            Some(p) => (p.buckets.clone(), p.count),
            None => (vec![0; HIST_BUCKETS], 0),
        };
        let mut lat_buckets = vec![0u64; HIST_BUCKETS];
        for (b, (delta, now)) in lat_buckets.iter_mut().zip(&lat.buckets).enumerate() {
            let was = prev_buckets.get(b).copied().unwrap_or(0);
            *delta = now.saturating_sub(was);
        }
        self.ticks.push_back(TickDelta {
            requests: txn_ok.saturating_sub(self.prev_txn_ok),
            errors: errors.saturating_sub(self.prev_errors),
            sheds: sheds.saturating_sub(self.prev_sheds),
            lat_buckets,
            lat_count: lat.count.saturating_sub(prev_count),
            lat_max_us: lat.max_us,
        });
        while self.ticks.len() > self.window {
            self.ticks.pop_front();
        }
        self.prev_txn_ok = txn_ok;
        self.prev_errors = errors;
        self.prev_sheds = sheds;
        self.prev_lat = Some(lat);
    }

    /// Fold the window into a rolling summary.
    pub fn summary(&self) -> SloSummary {
        let mut requests = 0u64;
        let mut errors = 0u64;
        let mut sheds = 0u64;
        let mut hist = HistSnapshot {
            buckets: vec![0; HIST_BUCKETS],
            ..HistSnapshot::default()
        };
        for t in &self.ticks {
            requests += t.requests;
            errors += t.errors;
            sheds += t.sheds;
            hist.count += t.lat_count;
            hist.max_us = hist.max_us.max(t.lat_max_us);
            for (b, n) in t.lat_buckets.iter().enumerate() {
                hist.buckets[b] += n;
            }
        }
        let outcomes = requests + errors;
        let ppm = |n: u64| {
            n.saturating_mul(1_000_000)
                .checked_div(outcomes)
                .unwrap_or(0)
        };
        SloSummary {
            window_ticks: self.ticks.len() as u64,
            requests,
            errors,
            sheds,
            p50_us: hist.quantile_bound_us(0.50),
            p99_us: hist.quantile_bound_us(0.99),
            error_ppm: ppm(errors),
            shed_ppm: ppm(sheds),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::protocol::ErrorKind;
    use super::super::stats::{RequestStamps, ServeStats};
    use super::*;

    fn stamp(total_us: u64) -> RequestStamps {
        RequestStamps {
            submitted_us: 0,
            dequeued_us: 0,
            locked_us: 0,
            executed_us: total_us,
            committed_us: total_us,
            replied_us: total_us,
        }
    }

    #[test]
    fn window_slides_and_rates_are_ppm() {
        let stats = ServeStats::new();
        let mut slo = SloTracker::new(2);
        // Tick 1: three successes at ~100µs, one shed.
        for _ in 0..3 {
            stats.record_txn_ok();
            stats.record_request_latency(&stamp(100));
        }
        stats.record_error(ErrorKind::Overloaded);
        slo.observe(&stats.snapshot(10, false));
        let s1 = slo.summary();
        assert_eq!(s1.window_ticks, 1);
        assert_eq!(s1.requests, 3);
        assert_eq!(s1.errors, 1);
        assert_eq!(s1.sheds, 1);
        assert_eq!(s1.error_ppm, 250_000);
        assert_eq!(s1.p50_us, 100, "bucket bound clamped to observed max");

        // Tick 2: quiet. Tick 3: one slow success — tick 1 must age out.
        slo.observe(&stats.snapshot(20, false));
        stats.record_txn_ok();
        stats.record_request_latency(&stamp(5_000));
        slo.observe(&stats.snapshot(30, false));
        let s3 = slo.summary();
        assert_eq!(s3.window_ticks, 2, "window bounded");
        assert_eq!(s3.requests, 1, "tick-1 successes aged out");
        assert_eq!(s3.errors, 0);
        assert_eq!(s3.p99_us, 5_000);
    }

    #[test]
    fn observe_is_pure_and_deterministic() {
        // Two trackers fed identical snapshots agree exactly.
        let stats = ServeStats::new();
        let mut a = SloTracker::new(4);
        let mut b = SloTracker::new(4);
        for i in 0..6u64 {
            stats.record_txn_ok();
            stats.record_request_latency(&stamp(i * 37));
            let snap = stats.snapshot(i * 10, false);
            a.observe(&snap);
            b.observe(&snap);
        }
        assert_eq!(a.summary(), b.summary());
        assert_eq!(a.summary().to_json(), b.summary().to_json());
    }
}
