//! Length-prefixed wire protocol for `semclusterctl serve`.
//!
//! Every message is one frame: a little-endian `u32` length (of what
//! follows), one opcode byte, then an opcode-specific payload. The
//! framing layer is deliberately tiny and fully decodable from byte
//! slices — [`FrameDecoder`] is a pure incremental parser, so the
//! connection state machine (and its deterministic interleaving tests)
//! never touch a socket.
//!
//! Requests: HELLO (register N logical sessions on this connection),
//! TXN (execute one transaction for a session, with a per-request
//! deadline), REPORT (fetch the run report / server stats), PING, BYE
//! (close this connection), SHUTDOWN (begin server-wide graceful
//! drain), STATS (fetch a versioned live-telemetry snapshot; allowed
//! even while draining). Responses echo the request identity and carry
//! typed errors:
//! overloaded (admission control shed the request), deadline exceeded,
//! malformed frame, shutting down, retry budget exhausted.

use std::io::{Read, Write};

/// Upper bound on a frame's length field. A peer announcing more than
/// this is malformed by definition (a slow-loris defence: the server
/// never allocates a buffer the peer merely *promised* to fill).
pub const MAX_FRAME_BYTES: u32 = 64 * 1024;

/// Maximum operations one TXN frame may carry.
pub const MAX_TXN_OPS: u16 = 1024;

// Request opcodes.
pub(crate) const OP_HELLO: u8 = 0x01;
pub(crate) const OP_TXN: u8 = 0x02;
pub(crate) const OP_REPORT: u8 = 0x03;
pub(crate) const OP_BYE: u8 = 0x04;
pub(crate) const OP_SHUTDOWN: u8 = 0x05;
pub(crate) const OP_PING: u8 = 0x06;
pub(crate) const OP_STATS: u8 = 0x07;

// Response opcodes (request opcode | 0x80).
pub(crate) const OP_OK_HELLO: u8 = 0x81;
pub(crate) const OP_OK_TXN: u8 = 0x82;
pub(crate) const OP_OK_REPORT: u8 = 0x83;
pub(crate) const OP_OK_BYE: u8 = 0x84;
pub(crate) const OP_OK_SHUTDOWN: u8 = 0x85;
pub(crate) const OP_OK_PING: u8 = 0x86;
pub(crate) const OP_OK_STATS: u8 = 0x87;

// Typed error responses.
pub(crate) const OP_ERR_OVERLOADED: u8 = 0xE1;
pub(crate) const OP_ERR_DEADLINE: u8 = 0xE2;
pub(crate) const OP_ERR_MALFORMED: u8 = 0xE3;
pub(crate) const OP_ERR_SHUTTING_DOWN: u8 = 0xE4;
pub(crate) const OP_ERR_RETRY_EXHAUSTED: u8 = 0xE5;
pub(crate) const OP_ERR_INTERNAL: u8 = 0xE6;

/// One wire frame: opcode plus raw payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Opcode byte.
    pub opcode: u8,
    /// Opcode-specific payload.
    pub payload: Vec<u8>,
}

impl Frame {
    /// Encode as length-prefixed bytes ready for the wire.
    pub fn encode(&self) -> Vec<u8> {
        let len = (1 + self.payload.len()) as u32;
        let mut out = Vec::with_capacity(4 + len as usize);
        out.extend_from_slice(&len.to_le_bytes());
        out.push(self.opcode);
        out.extend_from_slice(&self.payload);
        out
    }
}

/// Why a frame (or its payload) was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolError {
    /// Length field exceeds [`MAX_FRAME_BYTES`] (or is zero).
    BadLength(u32),
    /// Opcode byte is not a known request.
    UnknownOpcode(u8),
    /// Payload did not match the opcode's schema.
    BadPayload(&'static str),
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::BadLength(len) => {
                write!(f, "frame length {len} outside (0, {MAX_FRAME_BYTES}]")
            }
            ProtocolError::UnknownOpcode(op) => write!(f, "unknown opcode 0x{op:02x}"),
            ProtocolError::BadPayload(what) => write!(f, "malformed payload: {what}"),
        }
    }
}

impl std::error::Error for ProtocolError {}

/// Incremental frame parser over raw bytes — pure, socket-free.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
}

impl FrameDecoder {
    /// Empty decoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append raw bytes from the wire.
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Pop the next complete frame, if one is buffered. A bad length
    /// field poisons the stream — the caller must reject the
    /// connection, since framing can no longer be trusted.
    pub fn next_frame(&mut self) -> Result<Option<Frame>, ProtocolError> {
        if self.buf.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes([self.buf[0], self.buf[1], self.buf[2], self.buf[3]]);
        if len == 0 || len > MAX_FRAME_BYTES {
            return Err(ProtocolError::BadLength(len));
        }
        let total = 4 + len as usize;
        if self.buf.len() < total {
            return Ok(None);
        }
        let opcode = self.buf[4];
        let payload = self.buf[5..total].to_vec();
        self.buf.drain(..total);
        Ok(Some(Frame { opcode, payload }))
    }
}

/// Blocking frame read from a stream. `Ok(None)` on clean EOF at a
/// frame boundary.
pub fn read_frame(r: &mut impl Read) -> std::io::Result<Option<Frame>> {
    let mut len_buf = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        match r.read(&mut len_buf[filled..])? {
            0 if filled == 0 => return Ok(None),
            0 => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "connection closed mid-frame",
                ))
            }
            n => filled += n,
        }
    }
    let len = u32::from_le_bytes(len_buf);
    if len == 0 || len > MAX_FRAME_BYTES {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            ProtocolError::BadLength(len),
        ));
    }
    let mut body = vec![0u8; len as usize];
    r.read_exact(&mut body)?;
    let opcode = body[0];
    let payload = body.split_off(1);
    Ok(Some(Frame { opcode, payload }))
}

/// Blocking frame write to a stream.
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> std::io::Result<()> {
    w.write_all(&frame.encode())
}

/// One operation inside a TXN request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TxnOp {
    /// `true` for an update (exclusive lock + WAL record), `false` for
    /// a read (shared lock).
    pub write: bool,
    /// Object the operation touches.
    pub object: u32,
}

/// A parsed TXN request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TxnRequest {
    /// Logical session issuing the transaction.
    pub session: u32,
    /// Client-assigned transaction id (echoed in the response).
    pub client_txn: u64,
    /// Per-request deadline in milliseconds (0 = server default).
    pub deadline_ms: u32,
    /// The operations, executed atomically.
    pub ops: Vec<TxnOp>,
}

/// A parsed request frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Register `sessions` logical sessions on this connection.
    Hello {
        /// Number of sessions multiplexed over the connection.
        sessions: u32,
    },
    /// Execute one transaction.
    Txn(TxnRequest),
    /// Fetch the run report (oracle mode) / server stats (concurrent).
    Report,
    /// Close this connection.
    Bye,
    /// Begin server-wide graceful drain.
    Shutdown,
    /// Liveness probe.
    Ping,
    /// Fetch a versioned live-telemetry snapshot. Unlike TXN, this is
    /// a read-only probe that also works while the server drains.
    Stats,
}

fn take_u32(p: &[u8], at: usize) -> Result<u32, ProtocolError> {
    p.get(at..at + 4)
        .map(|b| u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
        .ok_or(ProtocolError::BadPayload("truncated u32"))
}

fn take_u64(p: &[u8], at: usize) -> Result<u64, ProtocolError> {
    p.get(at..at + 8)
        .map(|b| u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
        .ok_or(ProtocolError::BadPayload("truncated u64"))
}

impl Request {
    /// Parse a frame into a typed request.
    pub fn parse(frame: &Frame) -> Result<Request, ProtocolError> {
        let p = &frame.payload;
        match frame.opcode {
            OP_HELLO => {
                let sessions = take_u32(p, 0)?;
                if p.len() != 4 {
                    return Err(ProtocolError::BadPayload("HELLO trailing bytes"));
                }
                if sessions == 0 {
                    return Err(ProtocolError::BadPayload("HELLO with zero sessions"));
                }
                Ok(Request::Hello { sessions })
            }
            OP_TXN => {
                let session = take_u32(p, 0)?;
                let client_txn = take_u64(p, 4)?;
                let deadline_ms = take_u32(p, 12)?;
                let n = p
                    .get(16..18)
                    .map(|b| u16::from_le_bytes([b[0], b[1]]))
                    .ok_or(ProtocolError::BadPayload("truncated op count"))?;
                if n == 0 || n > MAX_TXN_OPS {
                    return Err(ProtocolError::BadPayload("op count outside (0, max]"));
                }
                if p.len() != 18 + n as usize * 5 {
                    return Err(ProtocolError::BadPayload("TXN op list length mismatch"));
                }
                let mut ops = Vec::with_capacity(n as usize);
                for i in 0..n as usize {
                    let at = 18 + i * 5;
                    let kind = p[at];
                    if kind > 1 {
                        return Err(ProtocolError::BadPayload("unknown op kind"));
                    }
                    ops.push(TxnOp {
                        write: kind == 1,
                        object: take_u32(p, at + 1)?,
                    });
                }
                Ok(Request::Txn(TxnRequest {
                    session,
                    client_txn,
                    deadline_ms,
                    ops,
                }))
            }
            OP_REPORT => Ok(Request::Report),
            OP_BYE => Ok(Request::Bye),
            OP_SHUTDOWN => Ok(Request::Shutdown),
            OP_PING => Ok(Request::Ping),
            OP_STATS => Ok(Request::Stats),
            other => Err(ProtocolError::UnknownOpcode(other)),
        }
    }

    /// Encode as a frame.
    pub fn encode(&self) -> Frame {
        match self {
            Request::Hello { sessions } => Frame {
                opcode: OP_HELLO,
                payload: sessions.to_le_bytes().to_vec(),
            },
            Request::Txn(t) => {
                let mut payload = Vec::with_capacity(18 + t.ops.len() * 5);
                payload.extend_from_slice(&t.session.to_le_bytes());
                payload.extend_from_slice(&t.client_txn.to_le_bytes());
                payload.extend_from_slice(&t.deadline_ms.to_le_bytes());
                payload.extend_from_slice(&(t.ops.len() as u16).to_le_bytes());
                for op in &t.ops {
                    payload.push(op.write as u8);
                    payload.extend_from_slice(&op.object.to_le_bytes());
                }
                Frame {
                    opcode: OP_TXN,
                    payload,
                }
            }
            Request::Report => Frame {
                opcode: OP_REPORT,
                payload: Vec::new(),
            },
            Request::Bye => Frame {
                opcode: OP_BYE,
                payload: Vec::new(),
            },
            Request::Shutdown => Frame {
                opcode: OP_SHUTDOWN,
                payload: Vec::new(),
            },
            Request::Ping => Frame {
                opcode: OP_PING,
                payload: Vec::new(),
            },
            Request::Stats => Frame {
                opcode: OP_STATS,
                payload: Vec::new(),
            },
        }
    }
}

/// Typed error kinds a response can carry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// Admission control shed the request (queue saturated).
    Overloaded,
    /// The per-request deadline expired before the reply.
    DeadlineExceeded,
    /// The frame or payload violated the protocol.
    Malformed,
    /// The server is draining; no new transactions.
    ShuttingDown,
    /// Transient conflicts exhausted the retry budget.
    RetryExhausted,
    /// Unexpected server-side failure.
    Internal,
}

impl ErrorKind {
    fn opcode(self) -> u8 {
        match self {
            ErrorKind::Overloaded => OP_ERR_OVERLOADED,
            ErrorKind::DeadlineExceeded => OP_ERR_DEADLINE,
            ErrorKind::Malformed => OP_ERR_MALFORMED,
            ErrorKind::ShuttingDown => OP_ERR_SHUTTING_DOWN,
            ErrorKind::RetryExhausted => OP_ERR_RETRY_EXHAUSTED,
            ErrorKind::Internal => OP_ERR_INTERNAL,
        }
    }

    /// Machine name (JSON field / log value).
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorKind::Overloaded => "overloaded",
            ErrorKind::DeadlineExceeded => "deadline_exceeded",
            ErrorKind::Malformed => "malformed",
            ErrorKind::ShuttingDown => "shutting_down",
            ErrorKind::RetryExhausted => "retry_exhausted",
            ErrorKind::Internal => "internal",
        }
    }
}

/// A parsed response frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// HELLO accepted; sessions are `[first_session, first_session + n)`.
    HelloOk {
        /// First session id assigned to this connection.
        first_session: u32,
    },
    /// Transaction committed and durable.
    TxnOk {
        /// Echoed session id.
        session: u32,
        /// Echoed client transaction id.
        client_txn: u64,
        /// Log sequence number the commit force reached.
        commit_lsn: u64,
        /// Transactions completed so far (oracle mode: simulation
        /// progress; concurrent mode: committed count).
        completed: u64,
        /// Oracle mode only: the simulated run has reached its target.
        done: bool,
    },
    /// REPORT response; payload is the canonical report JSON.
    ReportOk {
        /// `RunReport::to_json` bytes (oracle) or server-stats JSON.
        json: String,
    },
    /// BYE accepted; the server will close after this frame.
    ByeOk,
    /// SHUTDOWN accepted; drain has begun.
    ShutdownOk,
    /// PING reply.
    PingOk,
    /// STATS response: a versioned telemetry snapshot.
    StatsOk {
        /// `STATS_SCHEMA` at capture time, so scrapers can reject
        /// incompatible servers before parsing the body.
        schema: u32,
        /// `StatsSnapshot::to_json` bytes.
        json: String,
    },
    /// Typed failure, echoing the request identity when known.
    Error {
        /// Which hardening path rejected the request.
        kind: ErrorKind,
        /// Echoed session id (0 when not a TXN failure).
        session: u32,
        /// Echoed client transaction id (0 when not a TXN failure).
        client_txn: u64,
        /// Human-readable detail.
        detail: String,
    },
}

impl Response {
    /// Encode as a frame.
    pub fn encode(&self) -> Frame {
        match self {
            Response::HelloOk { first_session } => Frame {
                opcode: OP_OK_HELLO,
                payload: first_session.to_le_bytes().to_vec(),
            },
            Response::TxnOk {
                session,
                client_txn,
                commit_lsn,
                completed,
                done,
            } => {
                let mut payload = Vec::with_capacity(29);
                payload.extend_from_slice(&session.to_le_bytes());
                payload.extend_from_slice(&client_txn.to_le_bytes());
                payload.extend_from_slice(&commit_lsn.to_le_bytes());
                payload.extend_from_slice(&completed.to_le_bytes());
                payload.push(*done as u8);
                Frame {
                    opcode: OP_OK_TXN,
                    payload,
                }
            }
            Response::ReportOk { json } => Frame {
                opcode: OP_OK_REPORT,
                payload: json.as_bytes().to_vec(),
            },
            Response::ByeOk => Frame {
                opcode: OP_OK_BYE,
                payload: Vec::new(),
            },
            Response::ShutdownOk => Frame {
                opcode: OP_OK_SHUTDOWN,
                payload: Vec::new(),
            },
            Response::PingOk => Frame {
                opcode: OP_OK_PING,
                payload: Vec::new(),
            },
            Response::StatsOk { schema, json } => {
                let mut payload = Vec::with_capacity(4 + json.len());
                payload.extend_from_slice(&schema.to_le_bytes());
                payload.extend_from_slice(json.as_bytes());
                Frame {
                    opcode: OP_OK_STATS,
                    payload,
                }
            }
            Response::Error {
                kind,
                session,
                client_txn,
                detail,
            } => {
                let mut payload = Vec::with_capacity(12 + detail.len());
                payload.extend_from_slice(&session.to_le_bytes());
                payload.extend_from_slice(&client_txn.to_le_bytes());
                payload.extend_from_slice(detail.as_bytes());
                Frame {
                    opcode: kind.opcode(),
                    payload,
                }
            }
        }
    }

    /// Parse a frame into a typed response.
    pub fn parse(frame: &Frame) -> Result<Response, ProtocolError> {
        let p = &frame.payload;
        let err = |kind| -> Result<Response, ProtocolError> {
            Ok(Response::Error {
                kind,
                session: take_u32(p, 0).unwrap_or(0),
                client_txn: take_u64(p, 4).unwrap_or(0),
                detail: String::from_utf8_lossy(p.get(12..).unwrap_or(&[])).into_owned(),
            })
        };
        match frame.opcode {
            OP_OK_HELLO => Ok(Response::HelloOk {
                first_session: take_u32(p, 0)?,
            }),
            OP_OK_TXN => Ok(Response::TxnOk {
                session: take_u32(p, 0)?,
                client_txn: take_u64(p, 4)?,
                commit_lsn: take_u64(p, 12)?,
                completed: take_u64(p, 20)?,
                done: *p
                    .get(28)
                    .ok_or(ProtocolError::BadPayload("truncated done flag"))?
                    != 0,
            }),
            OP_OK_REPORT => Ok(Response::ReportOk {
                json: String::from_utf8(p.clone())
                    .map_err(|_| ProtocolError::BadPayload("report not UTF-8"))?,
            }),
            OP_OK_BYE => Ok(Response::ByeOk),
            OP_OK_SHUTDOWN => Ok(Response::ShutdownOk),
            OP_OK_PING => Ok(Response::PingOk),
            OP_OK_STATS => Ok(Response::StatsOk {
                schema: take_u32(p, 0)?,
                json: String::from_utf8(p.get(4..).unwrap_or(&[]).to_vec())
                    .map_err(|_| ProtocolError::BadPayload("stats not UTF-8"))?,
            }),
            OP_ERR_OVERLOADED => err(ErrorKind::Overloaded),
            OP_ERR_DEADLINE => err(ErrorKind::DeadlineExceeded),
            OP_ERR_MALFORMED => err(ErrorKind::Malformed),
            OP_ERR_SHUTTING_DOWN => err(ErrorKind::ShuttingDown),
            OP_ERR_RETRY_EXHAUSTED => err(ErrorKind::RetryExhausted),
            OP_ERR_INTERNAL => err(ErrorKind::Internal),
            other => Err(ProtocolError::UnknownOpcode(other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip() {
        let reqs = vec![
            Request::Hello { sessions: 200 },
            Request::Txn(TxnRequest {
                session: 7,
                client_txn: 99,
                deadline_ms: 250,
                ops: vec![
                    TxnOp {
                        write: true,
                        object: 42,
                    },
                    TxnOp {
                        write: false,
                        object: 7,
                    },
                ],
            }),
            Request::Report,
            Request::Bye,
            Request::Shutdown,
            Request::Ping,
            Request::Stats,
        ];
        for req in reqs {
            let frame = req.encode();
            assert_eq!(Request::parse(&frame).unwrap(), req);
        }
    }

    #[test]
    fn response_roundtrip() {
        let resps = vec![
            Response::HelloOk {
                first_session: 1000,
            },
            Response::TxnOk {
                session: 3,
                client_txn: 17,
                commit_lsn: 12345,
                completed: 160,
                done: true,
            },
            Response::ReportOk {
                json: "{\"config\":\"x\"}".into(),
            },
            Response::ByeOk,
            Response::ShutdownOk,
            Response::PingOk,
            Response::StatsOk {
                schema: 1,
                json: "{\"stats_schema\":1,\n\"counters\":{}}".into(),
            },
            Response::Error {
                kind: ErrorKind::Overloaded,
                session: 3,
                client_txn: 17,
                detail: "queue full".into(),
            },
        ];
        for resp in resps {
            let frame = resp.encode();
            assert_eq!(Response::parse(&frame).unwrap(), resp);
        }
    }

    #[test]
    fn decoder_reassembles_split_frames() {
        let frame = Request::Txn(TxnRequest {
            session: 1,
            client_txn: 2,
            deadline_ms: 100,
            ops: vec![TxnOp {
                write: true,
                object: 9,
            }],
        })
        .encode();
        let bytes = frame.encode();
        let mut dec = FrameDecoder::new();
        // Feed one byte at a time — a slow-loris client.
        for (i, b) in bytes.iter().enumerate() {
            dec.push(&[*b]);
            let got = dec.next_frame().unwrap();
            if i + 1 < bytes.len() {
                assert!(got.is_none(), "frame complete too early at byte {i}");
            } else {
                assert_eq!(got.unwrap(), frame);
            }
        }
        // Two frames in one push both come out.
        dec.push(&bytes);
        dec.push(&bytes);
        assert_eq!(dec.next_frame().unwrap().unwrap(), frame);
        assert_eq!(dec.next_frame().unwrap().unwrap(), frame);
        assert!(dec.next_frame().unwrap().is_none());
    }

    #[test]
    fn oversize_and_zero_lengths_poison_the_stream() {
        let mut dec = FrameDecoder::new();
        dec.push(&(MAX_FRAME_BYTES + 1).to_le_bytes());
        assert!(matches!(dec.next_frame(), Err(ProtocolError::BadLength(_))));
        let mut dec = FrameDecoder::new();
        dec.push(&0u32.to_le_bytes());
        assert!(matches!(dec.next_frame(), Err(ProtocolError::BadLength(0))));
    }

    #[test]
    fn malformed_payloads_are_typed_errors() {
        // TXN with a lying op count.
        let mut frame = Request::Txn(TxnRequest {
            session: 1,
            client_txn: 2,
            deadline_ms: 0,
            ops: vec![TxnOp {
                write: false,
                object: 1,
            }],
        })
        .encode();
        frame.payload[16] = 9; // claim 9 ops, carry 1
        assert!(Request::parse(&frame).is_err());
        // Unknown opcode.
        let junk = Frame {
            opcode: 0x7F,
            payload: vec![],
        };
        assert!(matches!(
            Request::parse(&junk),
            Err(ProtocolError::UnknownOpcode(0x7F))
        ));
        // HELLO with zero sessions.
        let hello = Frame {
            opcode: OP_HELLO,
            payload: 0u32.to_le_bytes().to_vec(),
        };
        assert!(Request::parse(&hello).is_err());
    }

    #[test]
    fn stream_io_roundtrip() {
        let frame = Request::Ping.encode();
        let mut wire = Vec::new();
        write_frame(&mut wire, &frame).unwrap();
        let mut cursor = &wire[..];
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), frame);
        assert!(read_frame(&mut cursor).unwrap().is_none(), "clean EOF");
    }
}
