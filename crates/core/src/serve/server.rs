//! The multi-client TCP server.
//!
//! Std-only threading: one accept loop, one reader + one driver thread
//! per connection, a bank of executor workers over a bounded job queue,
//! and a group-commit coordinator batching WAL forces across
//! concurrently committing transactions. Two modes share the wire
//! protocol:
//!
//! * **Oracle** — a single executor thread owns a deterministic
//!   [`Engine`] and advances it one transaction per TXN request; REPORT
//!   returns [`crate::RunReport::to_json`] bytes that must be
//!   byte-identical to an in-process [`crate::run_simulation`] of the
//!   same config. This is the equivalence contract that keeps the
//!   simulator the correctness oracle for the served path.
//! * **Concurrent** — worker threads drive one shared core (lock
//!   manager + WAL + object values) with conservative all-or-nothing
//!   locking, bounded retries with exponential backoff, and group
//!   commit. At drain the server replays its own durable log through
//!   [`semcluster_wal::recover`] and reports any acknowledged
//!   transaction that recovery does not consider a winner as an ACID
//!   violation.
//!
//! Hardening on every path: per-request deadlines (expired work is
//! dropped, typed timeout replies), admission control with hysteresis
//! ([`AdmissionControl`]), a bounded queue with backpressure, and
//! drain-then-close shutdown (in-flight transactions finish and are
//! acked; new work is rejected with a typed shutting-down error).

use std::collections::VecDeque;
use std::io::Write as _;
use std::net::{Shutdown as SockShutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender, SyncSender, TrySendError};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use semcluster_faults::{DegradationPolicy, RetryPolicy};
use semcluster_lock::{LockManager, LockMode, TxnId};
use semcluster_obs::{ServePoint, ServeTimeline};
use semcluster_storage::PageId;
use semcluster_vdm::ObjectId;
use semcluster_wal::{recover, LogConfig, LogManager, TxnToken};

use super::admission::AdmissionControl;
use super::protocol::{
    write_frame, ErrorKind, TxnOp, TxnRequest, OP_ERR_DEADLINE, OP_ERR_INTERNAL, OP_ERR_MALFORMED,
    OP_ERR_OVERLOADED, OP_ERR_RETRY_EXHAUSTED, OP_ERR_SHUTTING_DOWN, OP_OK_HELLO, OP_OK_TXN,
};
use super::session::{ConnFsm, ExecResult, FsmAction, FsmInput};
use super::slo::SloTracker;
use super::stats::{RequestCounts, RequestStamps, RequestTraceRecord, ServeStats, StatsSnapshot};
use super::ServeError;
use crate::config::SimConfig;
use crate::engine::Engine;

/// What backs transaction execution.
#[derive(Debug, Clone)]
pub enum ServeMode {
    /// Deterministic single-engine mode: the simulator is the server.
    Oracle(Box<SimConfig>),
    /// Threaded shared-core mode with locking, WAL and group commit.
    Concurrent,
}

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Execution backend.
    pub mode: ServeMode,
    /// Executor worker threads (concurrent mode).
    pub workers: usize,
    /// Bounded execution-queue capacity; also the admission-control
    /// enter threshold.
    pub queue_cap: usize,
    /// Default per-request deadline when a TXN carries none.
    pub default_deadline_ms: u32,
    /// Per-connection pipelining bound (in-flight transactions).
    pub max_inflight_per_conn: usize,
    /// Hysteresis parameters for admission control (reuses the
    /// degradation-policy shape: exit at `exit_pct`% of the enter
    /// level after `window_txns` calm observations).
    pub admission: DegradationPolicy,
    /// Retry budget for lock conflicts.
    pub retry: RetryPolicy,
    /// Group-commit gather window, in wall-clock microseconds.
    pub group_window_us: u64,
    /// Object-id space for concurrent-mode transactions.
    pub objects: u32,
    /// Driver tick (deadline sweep) interval, in milliseconds.
    pub tick_ms: u64,
    /// Timeline sampling interval in milliseconds (0 = off).
    pub timeline_interval_ms: u64,
    /// Optional address for the Prometheus text-exposition listener
    /// (`None` = no metrics endpoint).
    pub metrics_addr: Option<String>,
    /// SLO sliding-window length, in sampler ticks.
    pub slo_window: usize,
    /// Per-request attribution records to retain for the Chrome-trace
    /// server lane (0 = off).
    pub trace_requests: usize,
    /// How long an idle connection stays open for read-only probes
    /// (STATS/PING) once the drain begins, before the server closes it.
    /// 0 (the default) closes idle connections the moment the drain
    /// starts; a BYE always closes immediately regardless.
    pub drain_linger_ms: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            mode: ServeMode::Concurrent,
            workers: 4,
            queue_cap: 256,
            default_deadline_ms: 1_000,
            max_inflight_per_conn: 1_024,
            admission: DegradationPolicy {
                window_txns: 16,
                search_budget_us: 0,
                exit_pct: 50,
            },
            retry: RetryPolicy::default(),
            group_window_us: 200,
            objects: 4_096,
            tick_ms: 20,
            timeline_interval_ms: 0,
            metrics_addr: None,
            slo_window: 30,
            trace_requests: 0,
            drain_linger_ms: 0,
        }
    }
}

/// Final server report, produced when the accept loop drains.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Connections accepted over the server's lifetime.
    pub connections: u64,
    /// Peak simultaneous logical sessions.
    pub sessions_peak: u64,
    /// Transactions made durable (group-commit flushed).
    pub committed: u64,
    /// Transactions acknowledged to clients (ack strictly after the
    /// commit force).
    pub acked: u64,
    /// Requests shed with the typed overloaded error.
    pub sheds: u64,
    /// Deadline-expiry replies sent.
    pub deadline_misses: u64,
    /// Malformed-frame rejections.
    pub malformed: u64,
    /// Retry-budget exhaustions.
    pub retry_exhausted: u64,
    /// Requests rejected because the server was draining.
    pub shutdown_rejected: u64,
    /// Group-commit batches flushed.
    pub group_commits: u64,
    /// Physical log forces those batches cost.
    pub group_forces: u64,
    /// Transactions carried by those batches.
    pub group_txns: u64,
    /// Acked transactions that recovery does not count as winners.
    /// Must be zero: an ack is a durability promise.
    pub acid_violations: u64,
    /// All connections drained and joined cleanly.
    pub clean_drain: bool,
    /// Wall-clock health samples, when sampling was enabled.
    pub timeline: Option<ServeTimeline>,
    /// Final telemetry snapshot (the same shape STATS serves live),
    /// taken after every recorder thread joined, so it is exact.
    pub stats: StatsSnapshot,
    /// Retained per-request attribution records, when
    /// [`ServeConfig::trace_requests`] was nonzero.
    pub request_trace: Vec<RequestTraceRecord>,
}

impl ServeReport {
    /// Canonical JSON (stable field order).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"connections\": {},\n", self.connections));
        out.push_str(&format!("  \"sessions_peak\": {},\n", self.sessions_peak));
        out.push_str(&format!("  \"committed\": {},\n", self.committed));
        out.push_str(&format!("  \"acked\": {},\n", self.acked));
        out.push_str(&format!("  \"sheds\": {},\n", self.sheds));
        out.push_str(&format!(
            "  \"deadline_misses\": {},\n",
            self.deadline_misses
        ));
        out.push_str(&format!("  \"malformed\": {},\n", self.malformed));
        out.push_str(&format!(
            "  \"retry_exhausted\": {},\n",
            self.retry_exhausted
        ));
        out.push_str(&format!(
            "  \"shutdown_rejected\": {},\n",
            self.shutdown_rejected
        ));
        out.push_str(&format!("  \"group_commits\": {},\n", self.group_commits));
        out.push_str(&format!("  \"group_forces\": {},\n", self.group_forces));
        out.push_str(&format!("  \"group_txns\": {},\n", self.group_txns));
        out.push_str(&format!(
            "  \"acid_violations\": {},\n",
            self.acid_violations
        ));
        out.push_str(&format!("  \"clean_drain\": {}\n", self.clean_drain));
        out.push_str("}\n");
        out
    }
}

// ------------------------------------------------------------- executor

/// The state every concurrent-mode transaction contends on: the lock
/// table arbitrates access, the WAL makes effects durable, `values` is
/// the object store the transactions actually read and write.
struct SharedCore {
    locks: LockManager,
    log: LogManager,
    values: Vec<u64>,
    next_lock_txn: u64,
}

struct Job {
    session: u32,
    client_txn: u64,
    ops: Vec<TxnOp>,
    deadline_at: Instant,
    /// Admission time (µs since server start): t0 of the attribution
    /// stamp chain.
    submitted_at_us: u64,
    reply: Sender<ConnEvent>,
}

enum OracleJob {
    Txn {
        session: u32,
        client_txn: u64,
        submitted_at_us: u64,
        reply: Sender<ConnEvent>,
    },
    Report {
        reply: Sender<ConnEvent>,
    },
}

#[derive(Clone)]
enum ExecHandle {
    Concurrent(SyncSender<Job>),
    Oracle(Sender<OracleJob>),
}

/// Group-commit coordinator: the first committer in an idle window
/// becomes leader, sleeps the gather window, then flushes the whole
/// batch with one [`LogManager::commit_group`] call. Followers block
/// until their epoch is flushed. Object locks are held across the wait
/// (strict two-phase locking through commit), which is exactly the
/// contention the lock manager's all-or-nothing acquisition arbitrates.
struct GroupCommitter {
    state: Mutex<GroupState>,
    cv: Condvar,
    window_us: u64,
}

struct GroupState {
    batch: Vec<TxnToken>,
    epoch: u64,
    completed_epoch: u64,
    leader: bool,
    last_lsn: u64,
}

impl GroupCommitter {
    fn new(window_us: u64) -> Self {
        GroupCommitter {
            state: Mutex::new(GroupState {
                batch: Vec::new(),
                epoch: 1,
                completed_epoch: 0,
                leader: false,
                last_lsn: 0,
            }),
            cv: Condvar::new(),
            window_us,
        }
    }

    fn commit(&self, token: TxnToken, core: &Mutex<SharedCore>, stats: &ServeStats) -> u64 {
        let (my_epoch, am_leader) = {
            let mut st = self.state.lock().unwrap();
            st.batch.push(token);
            let e = st.epoch;
            let lead = !st.leader;
            if lead {
                st.leader = true;
            }
            (e, lead)
        };
        if am_leader {
            loop {
                if self.window_us > 0 {
                    thread::sleep(Duration::from_micros(self.window_us));
                }
                let (batch, epoch) = {
                    let mut st = self.state.lock().unwrap();
                    if st.batch.is_empty() {
                        st.leader = false;
                        break;
                    }
                    let b = std::mem::take(&mut st.batch);
                    let e = st.epoch;
                    st.epoch += 1;
                    (b, e)
                };
                let (lsn, forces) = {
                    let mut core = core.lock().unwrap();
                    let forces = core.log.commit_group(&batch);
                    (core.log.current_lsn(), forces)
                };
                stats.record_group_flush(batch.len() as u64, u64::from(forces));
                let mut st = self.state.lock().unwrap();
                st.completed_epoch = epoch;
                st.last_lsn = lsn;
                self.cv.notify_all();
            }
            self.state.lock().unwrap().last_lsn
        } else {
            let mut st = self.state.lock().unwrap();
            while st.completed_epoch < my_epoch {
                st = self.cv.wait(st).unwrap();
            }
            st.last_lsn
        }
    }
}

/// Build the (deduplicated, mode-joined) lock set for a transaction.
fn lockset(ops: &[TxnOp], objects: u32) -> Vec<(ObjectId, LockMode)> {
    let mut set: Vec<(ObjectId, LockMode)> = Vec::with_capacity(ops.len());
    for op in ops {
        let id = ObjectId(op.object % objects.max(1));
        let mode = if op.write {
            LockMode::Exclusive
        } else {
            LockMode::Shared
        };
        match set.iter_mut().find(|(o, _)| *o == id) {
            Some((_, m)) => *m = m.join(mode),
            None => set.push((id, mode)),
        }
    }
    set
}

/// Execute one transaction against the shared core. On commit, returns
/// the attribution stamps with everything up to t4 (`committed_us`)
/// filled in — `submitted_us`/`dequeued_us` are copied from the job, and
/// the driver stamps `replied_us` when the TxnOk actually hits the
/// socket. Non-commit outcomes carry no stamps (nothing was serviced).
fn execute_txn(
    ops: &[TxnOp],
    shared: &Shared,
    core: &Mutex<SharedCore>,
    group: &GroupCommitter,
    submitted_at_us: u64,
    dequeued_us: u64,
) -> (ExecResult, Option<RequestStamps>) {
    let objects = shared.cfg.objects;
    let retry = &shared.cfg.retry;
    let stats = &shared.stats;
    let requests = lockset(ops, objects);
    let has_write = ops.iter().any(|op| op.write);
    let mut attempt = 1u32;
    let mut stamps = RequestStamps {
        submitted_us: submitted_at_us,
        dequeued_us,
        ..RequestStamps::default()
    };
    let token: Option<TxnToken> = loop {
        let mut c = core.lock().unwrap();
        let lock_id = TxnId(c.next_lock_txn);
        if c.locks.try_acquire_all(lock_id, &requests) {
            stamps.locked_us = shared.now_us();
            c.next_lock_txn += 1;
            if !has_write {
                // Read-only commit fast-path: no update records means
                // recovery has nothing to redo, so the transaction
                // never enters the log and never waits for a force.
                // Its "commit LSN" is whatever is already durable.
                for op in ops {
                    let _ = c.values[(op.object % objects.max(1)) as usize];
                }
                let lsn = c.log.current_lsn();
                c.locks.release_all(lock_id);
                drop(c);
                stamps.executed_us = shared.now_us();
                // No group-commit wait on the fast path: t4 == t3.
                stamps.committed_us = stamps.executed_us;
                let completed = stats.record_commit();
                return (
                    ExecResult::Committed {
                        token: None,
                        commit_lsn: lsn,
                        completed,
                        done: false,
                    },
                    Some(stamps),
                );
            }
            let token = c.log.begin();
            for op in ops {
                let slot = (op.object % objects.max(1)) as usize;
                if op.write {
                    c.values[slot] = c.values[slot].wrapping_add(1);
                    c.log.log_update(token, PageId((slot as u32) >> 4), 64);
                } else {
                    // Reads still go through the lock: hold S until commit.
                    let _ = c.values[slot];
                }
            }
            drop(c);
            stamps.executed_us = shared.now_us();
            let lsn = group.commit(token, core, stats);
            let completed = stats.record_commit();
            core.lock().unwrap().locks.release_all(lock_id);
            stamps.committed_us = shared.now_us();
            return (
                ExecResult::Committed {
                    token: Some(token.raw()),
                    commit_lsn: lsn,
                    completed,
                    done: false,
                },
                Some(stamps),
            );
        }
        drop(c);
        if attempt >= retry.max_attempts.max(1) {
            break None;
        }
        // Exponential backoff on the transient conflict, capped so a
        // pathological config cannot stall a worker for seconds.
        thread::sleep(Duration::from_micros(
            retry.backoff_after(attempt).min(20_000),
        ));
        attempt += 1;
    };
    debug_assert!(token.is_none());
    (ExecResult::RetryExhausted { attempts: attempt }, None)
}

// ------------------------------------------------------------ conn glue

enum ConnEvent {
    Bytes(Vec<u8>),
    Eof,
    Executed {
        session: u32,
        client_txn: u64,
        result: ExecResult,
        /// Attribution stamps through t4 on commit; the driver fills
        /// `replied_us` when the reply is written.
        stamps: Option<RequestStamps>,
    },
    ReportReady {
        json: String,
    },
    StatsReady {
        json: String,
    },
    Shutdown,
    Tick,
}

struct Shared {
    cfg: ServeConfig,
    stats: ServeStats,
    shutdown: Arc<AtomicBool>,
    start: Instant,
    admission: Mutex<AdmissionControl>,
    acked_tokens: Mutex<Vec<u64>>,
    exec: Mutex<Option<ExecHandle>>,
    slo: Mutex<SloTracker>,
    request_trace: Mutex<Vec<RequestTraceRecord>>,
}

impl Shared {
    fn now_ms(&self) -> u64 {
        self.start.elapsed().as_millis() as u64
    }

    fn now_us(&self) -> u64 {
        self.start.elapsed().as_micros() as u64
    }

    /// Full telemetry snapshot: registry + rolling SLO summary. The
    /// only wall-clock read is `uptime_ms`, injected here — the
    /// snapshot/render code itself stays pure.
    fn snapshot(&self) -> StatsSnapshot {
        let mut snap = self
            .stats
            .snapshot(self.now_ms(), self.shutdown.load(Ordering::SeqCst));
        snap.slo = Some(self.slo.lock().unwrap().summary());
        snap
    }

    fn stats_json(&self) -> String {
        self.snapshot().to_json()
    }
}

fn reader_thread(stream: TcpStream, tx: Sender<ConnEvent>) {
    let mut stream = stream;
    let mut buf = [0u8; 4096];
    loop {
        match std::io::Read::read(&mut stream, &mut buf) {
            Ok(0) | Err(_) => {
                let _ = tx.send(ConnEvent::Eof);
                return;
            }
            Ok(n) => {
                if tx.send(ConnEvent::Bytes(buf[..n].to_vec())).is_err() {
                    return;
                }
            }
        }
    }
}

#[allow(clippy::too_many_lines)]
fn conn_driver(
    mut stream: TcpStream,
    rx: Receiver<ConnEvent>,
    tx_self: Sender<ConnEvent>,
    session_base: u32,
    shared: Arc<Shared>,
) {
    let cfg = &shared.cfg;
    let mut fsm = ConnFsm::new(
        session_base,
        cfg.default_deadline_ms,
        cfg.max_inflight_per_conn,
        cfg.drain_linger_ms,
    );
    shared.stats.conn_opened();
    let exec = shared.exec.lock().unwrap().clone();
    let mut registered_sessions = 0u64;
    let mut actions: Vec<FsmAction> = Vec::new();
    let mut inputs: VecDeque<ConnEvent> = VecDeque::new();
    // The FSM counts parsed requests per opcode; diffing successive
    // copies keeps the registry exact even when one read carries many
    // frames.
    let mut prev_counts = RequestCounts::default();

    'conn: loop {
        if inputs.is_empty() {
            match rx.recv_timeout(Duration::from_millis(cfg.tick_ms.max(1))) {
                Ok(ev) => inputs.push_back(ev),
                Err(RecvTimeoutError::Timeout) => inputs.push_back(ConnEvent::Tick),
                Err(RecvTimeoutError::Disconnected) => break 'conn,
            }
        }
        let ev = inputs.pop_front().expect("non-empty input queue");
        let now_ms = shared.now_ms();
        // Token and stamps of a just-committed transaction; recorded as
        // acked / latency-attributed only after the TxnOk reply is
        // actually written.
        let mut commit_token: Option<u64> = None;
        let mut commit_stamps: Option<(u32, u64, RequestStamps)> = None;
        actions.clear();
        match ev {
            ConnEvent::Bytes(b) => fsm.on_input(FsmInput::Bytes(&b), now_ms, &mut actions),
            ConnEvent::Eof => fsm.on_input(FsmInput::Eof, now_ms, &mut actions),
            ConnEvent::Executed {
                session,
                client_txn,
                result,
                stamps,
            } => {
                if let ExecResult::Committed { token, .. } = &result {
                    commit_token = *token;
                    commit_stamps = stamps.map(|s| (session, client_txn, s));
                }
                fsm.on_input(
                    FsmInput::Executed {
                        session,
                        client_txn,
                        result,
                    },
                    now_ms,
                    &mut actions,
                );
            }
            ConnEvent::ReportReady { json } => {
                fsm.on_input(FsmInput::ReportReady { json }, now_ms, &mut actions)
            }
            ConnEvent::StatsReady { json } => {
                fsm.on_input(FsmInput::StatsReady { json }, now_ms, &mut actions)
            }
            ConnEvent::Shutdown => fsm.on_input(FsmInput::Shutdown, now_ms, &mut actions),
            ConnEvent::Tick => fsm.on_input(FsmInput::Tick, now_ms, &mut actions),
        }
        let counts = fsm.request_counts();
        shared.stats.add_requests(&prev_counts, &counts);
        prev_counts = counts;
        for action in actions.drain(..) {
            match action {
                FsmAction::Reply(frame) => {
                    match frame.opcode {
                        OP_OK_HELLO => {
                            registered_sessions = u64::from(fsm.sessions());
                            shared.stats.bump_sessions(registered_sessions);
                        }
                        OP_ERR_DEADLINE => shared.stats.record_error(ErrorKind::DeadlineExceeded),
                        OP_ERR_MALFORMED => shared.stats.record_error(ErrorKind::Malformed),
                        OP_ERR_OVERLOADED => shared.stats.record_error(ErrorKind::Overloaded),
                        OP_ERR_SHUTTING_DOWN => shared.stats.record_error(ErrorKind::ShuttingDown),
                        OP_ERR_RETRY_EXHAUSTED => {
                            shared.stats.record_error(ErrorKind::RetryExhausted)
                        }
                        OP_ERR_INTERNAL => shared.stats.record_error(ErrorKind::Internal),
                        _ => {}
                    }
                    let wrote = write_frame(&mut stream, &frame).is_ok() && stream.flush().is_ok();
                    if wrote {
                        if frame.opcode == OP_OK_TXN {
                            shared.stats.record_txn_ok();
                            if let Some(token) = commit_token.take() {
                                shared.acked_tokens.lock().unwrap().push(token);
                                shared.stats.record_ack();
                            }
                            if let Some((session, client_txn, mut stamps)) = commit_stamps.take() {
                                // t5: the reply actually hit the socket.
                                stamps.replied_us = shared.now_us();
                                let spans = shared.stats.record_request_latency(&stamps);
                                if cfg.trace_requests > 0 {
                                    let mut trace = shared.request_trace.lock().unwrap();
                                    if trace.len() < cfg.trace_requests {
                                        trace.push(RequestTraceRecord {
                                            session,
                                            client_txn,
                                            start_us: stamps.submitted_us,
                                            spans,
                                        });
                                    }
                                }
                            }
                        }
                    } else {
                        // Peer is gone; the FSM sees EOF and closes.
                        inputs.push_back(ConnEvent::Eof);
                    }
                }
                FsmAction::Submit(txn) => {
                    if let Some(result) = submit_txn(&shared, exec.as_ref(), &tx_self, &txn) {
                        inputs.push_back(ConnEvent::Executed {
                            session: txn.session,
                            client_txn: txn.client_txn,
                            result,
                            stamps: None,
                        });
                    }
                }
                FsmAction::SubmitReport => match exec.as_ref() {
                    Some(ExecHandle::Oracle(tx)) => {
                        if tx
                            .send(OracleJob::Report {
                                reply: tx_self.clone(),
                            })
                            .is_err()
                        {
                            inputs.push_back(ConnEvent::ReportReady {
                                json: String::new(),
                            });
                        }
                    }
                    _ => inputs.push_back(ConnEvent::ReportReady {
                        json: shared.stats_json(),
                    }),
                },
                // Answered synchronously from the registry: STATS never
                // queues behind the executor, so it stays responsive
                // under overload and during drain.
                FsmAction::SubmitStats => inputs.push_back(ConnEvent::StatsReady {
                    json: shared.stats_json(),
                }),
                FsmAction::RequestShutdown => shared.shutdown.store(true, Ordering::SeqCst),
                FsmAction::Close => {
                    let _ = stream.shutdown(SockShutdown::Both);
                    break 'conn;
                }
            }
        }
    }
    let _ = stream.shutdown(SockShutdown::Both);
    shared.stats.drop_sessions(registered_sessions);
    shared.stats.conn_closed();
}

/// Route a transaction to the executor. `Some(result)` means it was
/// resolved synchronously (shed / draining / queue full) and must be
/// fed straight back to the FSM.
fn submit_txn(
    shared: &Shared,
    exec: Option<&ExecHandle>,
    tx_self: &Sender<ConnEvent>,
    txn: &TxnRequest,
) -> Option<ExecResult> {
    if shared.shutdown.load(Ordering::SeqCst) {
        return Some(ExecResult::ShuttingDown);
    }
    match exec {
        Some(ExecHandle::Concurrent(job_tx)) => {
            let depth = shared.stats.queue_depth() as usize;
            let admitted = shared.admission.lock().unwrap().admit(depth);
            shared.stats.set_admission_shedding(!admitted);
            if !admitted {
                return Some(ExecResult::Overloaded);
            }
            let deadline_ms = if txn.deadline_ms == 0 {
                shared.cfg.default_deadline_ms
            } else {
                txn.deadline_ms
            };
            let job = Job {
                session: txn.session,
                client_txn: txn.client_txn,
                ops: txn.ops.clone(),
                deadline_at: Instant::now() + Duration::from_millis(u64::from(deadline_ms)),
                submitted_at_us: shared.now_us(),
                reply: tx_self.clone(),
            };
            match job_tx.try_send(job) {
                Ok(()) => {
                    shared.stats.queue_enter();
                    None
                }
                Err(TrySendError::Full(_)) => Some(ExecResult::Overloaded),
                Err(TrySendError::Disconnected(_)) => Some(ExecResult::ShuttingDown),
            }
        }
        Some(ExecHandle::Oracle(tx)) => {
            if tx
                .send(OracleJob::Txn {
                    session: txn.session,
                    client_txn: txn.client_txn,
                    submitted_at_us: shared.now_us(),
                    reply: tx_self.clone(),
                })
                .is_err()
            {
                return Some(ExecResult::ShuttingDown);
            }
            None
        }
        None => Some(ExecResult::ShuttingDown),
    }
}

fn worker_thread(
    rx: Arc<Mutex<Receiver<Job>>>,
    core: Arc<Mutex<SharedCore>>,
    group: Arc<GroupCommitter>,
    shared: Arc<Shared>,
) {
    loop {
        let job = match rx.lock().unwrap().recv() {
            Ok(job) => job,
            Err(_) => return,
        };
        shared.stats.queue_leave();
        // t1: the job left the queue — everything before this instant
        // is admission wait.
        let dequeued_us = shared.now_us();
        let (result, stamps) = if Instant::now() >= job.deadline_at {
            // Deadline expired while queued: drop the work unexecuted.
            (ExecResult::DeadlineExceeded, None)
        } else {
            execute_txn(
                &job.ops,
                &shared,
                &core,
                &group,
                job.submitted_at_us,
                dequeued_us,
            )
        };
        let _ = job.reply.send(ConnEvent::Executed {
            session: job.session,
            client_txn: job.client_txn,
            result,
            stamps,
        });
    }
}

fn oracle_thread(rx: Receiver<OracleJob>, cfg: SimConfig, shared: Arc<Shared>) {
    // The engine is built on this thread (trace sinks are not Send);
    // all requests serialize through this one channel, which is what
    // makes the served event sequence identical to `run_simulation`.
    let mut engine = Some(Engine::new(cfg));
    let mut cached_report: Option<String> = None;
    let mut final_completed = 0u64;
    for job in rx {
        match job {
            OracleJob::Txn {
                session,
                client_txn,
                submitted_at_us,
                reply,
            } => {
                // Oracle attribution: no queue, no locks, no group
                // commit — everything between dequeue and reply is
                // engine execution.
                let dequeued_us = shared.now_us();
                let (completed, done) = match engine.as_mut() {
                    Some(eng) => {
                        eng.step_transaction();
                        let c = eng.completed_txns();
                        (c, c >= eng.target_txns())
                    }
                    None => (final_completed, true),
                };
                final_completed = completed;
                let executed_us = shared.now_us();
                let stamps = RequestStamps {
                    submitted_us: submitted_at_us,
                    dequeued_us,
                    locked_us: dequeued_us,
                    executed_us,
                    committed_us: executed_us,
                    ..RequestStamps::default()
                };
                let _ = reply.send(ConnEvent::Executed {
                    session,
                    client_txn,
                    result: ExecResult::Committed {
                        token: None,
                        commit_lsn: 0,
                        completed,
                        done,
                    },
                    stamps: Some(stamps),
                });
            }
            OracleJob::Report { reply } => {
                if cached_report.is_none() {
                    if let Some(eng) = engine.take() {
                        let report = eng.run();
                        final_completed = report.txns;
                        cached_report = Some(report.to_json());
                    }
                }
                let _ = reply.send(ConnEvent::ReportReady {
                    json: cached_report.clone().unwrap_or_default(),
                });
            }
        }
    }
}

// --------------------------------------------------------------- server

/// A running server, owned by the thread that called [`Server::start`].
pub struct ServerHandle {
    addr: SocketAddr,
    metrics_addr: Option<SocketAddr>,
    shutdown: Arc<AtomicBool>,
    join: JoinHandle<ServeReport>,
}

impl ServerHandle {
    /// The bound address (useful with `addr = "127.0.0.1:0"`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The bound Prometheus-exposition address, when
    /// [`ServeConfig::metrics_addr`] was set.
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.metrics_addr
    }

    /// Begin graceful drain: stop accepting, finish in-flight
    /// transactions, reject new work, close connections.
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// Whether drain has been requested (by signal, client SHUTDOWN
    /// frame, or [`ServerHandle::request_shutdown`]).
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Wait for drain to finish and collect the final report (with the
    /// ACID verdict from replaying the durable log through recovery).
    pub fn join(self) -> Result<ServeReport, ServeError> {
        self.join
            .join()
            .map_err(|_| ServeError::Internal("server thread panicked".into()))
    }
}

/// The TCP server front-end.
pub struct Server;

impl Server {
    /// Bind `addr` and start serving in background threads. Returns
    /// once the listener is bound.
    pub fn start(cfg: ServeConfig, addr: &str) -> Result<ServerHandle, ServeError> {
        let listener = TcpListener::bind(addr).map_err(|e| ServeError::Net {
            context: format!("bind {addr}"),
            source: e.to_string(),
        })?;
        let bound = listener.local_addr().map_err(|e| ServeError::Net {
            context: "local_addr".into(),
            source: e.to_string(),
        })?;
        listener
            .set_nonblocking(true)
            .map_err(|e| ServeError::Net {
                context: "set_nonblocking".into(),
                source: e.to_string(),
            })?;
        // Bind the metrics endpoint up front so the caller learns the
        // resolved port (metrics_addr may be ":0") before any traffic.
        let metrics_listener = match &cfg.metrics_addr {
            Some(addr) => {
                let l = TcpListener::bind(addr).map_err(|e| ServeError::Net {
                    context: format!("bind metrics {addr}"),
                    source: e.to_string(),
                })?;
                l.set_nonblocking(true).map_err(|e| ServeError::Net {
                    context: "set_nonblocking metrics".into(),
                    source: e.to_string(),
                })?;
                Some(l)
            }
            None => None,
        };
        let metrics_addr = metrics_listener.as_ref().and_then(|l| l.local_addr().ok());
        let shutdown = Arc::new(AtomicBool::new(false));
        let shutdown2 = Arc::clone(&shutdown);
        let join = thread::Builder::new()
            .name("serve-accept".into())
            .spawn(move || accept_loop(listener, metrics_listener, cfg, shutdown2))
            .map_err(|e| ServeError::Net {
                context: "spawn accept thread".into(),
                source: e.to_string(),
            })?;
        Ok(ServerHandle {
            addr: bound,
            metrics_addr,
            shutdown,
            join,
        })
    }
}

/// Minimal read-only HTTP/1.0-style responder for Prometheus scrapes.
/// One request per connection: read whatever the scraper sends (the
/// request line and headers are ignored — every path serves the same
/// exposition), write one `200 OK` with the rendered snapshot, close.
fn metrics_conn(mut stream: TcpStream, shared: &Shared) {
    stream
        .set_read_timeout(Some(Duration::from_millis(500)))
        .ok();
    let mut buf = [0u8; 1024];
    let _ = std::io::Read::read(&mut stream, &mut buf);
    let body = shared.snapshot().to_prometheus();
    let resp = format!(
        "HTTP/1.1 200 OK\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{}",
        body.len(),
        body
    );
    let _ = stream.write_all(resp.as_bytes());
    let _ = stream.flush();
    let _ = stream.shutdown(SockShutdown::Both);
}

/// Accept loop for the metrics listener. Scrapes are served until the
/// stop flag flips — which happens only after the drain completes, so
/// operators can watch the drain itself through this endpoint.
fn metrics_loop(listener: TcpListener, shared: Arc<Shared>, stop: Arc<AtomicBool>) {
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => metrics_conn(stream, &shared),
            Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(5));
            }
            Err(_) => thread::sleep(Duration::from_millis(5)),
        }
    }
}

/// Executor plumbing built before `Shared` exists; workers are spawned
/// right after, once the `Shared` handle they need is constructed.
enum ExecSetup {
    Oracle(Receiver<OracleJob>, Box<SimConfig>),
    Concurrent(
        Arc<Mutex<Receiver<Job>>>,
        Arc<Mutex<SharedCore>>,
        Arc<GroupCommitter>,
    ),
}

#[allow(clippy::too_many_lines)]
fn accept_loop(
    listener: TcpListener,
    metrics_listener: Option<TcpListener>,
    cfg: ServeConfig,
    shutdown: Arc<AtomicBool>,
) -> ServeReport {
    let timeline_interval = cfg.timeline_interval_ms;
    // Executor backend.
    let mut worker_handles: Vec<JoinHandle<()>> = Vec::new();
    let mut core_for_verdict: Option<Arc<Mutex<SharedCore>>> = None;
    let (exec, setup) = match &cfg.mode {
        ServeMode::Oracle(sim) => {
            let (tx, rx) = mpsc::channel::<OracleJob>();
            (ExecHandle::Oracle(tx), ExecSetup::Oracle(rx, sim.clone()))
        }
        ServeMode::Concurrent => {
            let (tx, rx) = mpsc::sync_channel::<Job>(cfg.queue_cap.max(1));
            let rx = Arc::new(Mutex::new(rx));
            let core = Arc::new(Mutex::new(SharedCore {
                locks: LockManager::new(),
                log: LogManager::with_retention(LogConfig::default()),
                values: vec![0; cfg.objects.max(1) as usize],
                next_lock_txn: 1,
            }));
            core_for_verdict = Some(Arc::clone(&core));
            let group = Arc::new(GroupCommitter::new(cfg.group_window_us));
            (
                ExecHandle::Concurrent(tx),
                ExecSetup::Concurrent(rx, core, group),
            )
        }
    };
    let shared = Arc::new(Shared {
        admission: Mutex::new(AdmissionControl::new(cfg.queue_cap.max(1), &cfg.admission)),
        slo: Mutex::new(SloTracker::new(cfg.slo_window)),
        cfg,
        stats: ServeStats::new(),
        shutdown: Arc::clone(&shutdown),
        start: Instant::now(),
        acked_tokens: Mutex::new(Vec::new()),
        exec: Mutex::new(Some(exec)),
        request_trace: Mutex::new(Vec::new()),
    });
    match setup {
        ExecSetup::Oracle(rx, sim) => {
            let shared2 = Arc::clone(&shared);
            worker_handles.push(
                thread::Builder::new()
                    .name("serve-oracle".into())
                    .spawn(move || oracle_thread(rx, *sim, shared2))
                    .expect("spawn oracle thread"),
            );
        }
        ExecSetup::Concurrent(rx, core, group) => {
            for w in 0..shared.cfg.workers.max(1) {
                let rx = Arc::clone(&rx);
                let core = Arc::clone(&core);
                let group = Arc::clone(&group);
                let shared = Arc::clone(&shared);
                worker_handles.push(
                    thread::Builder::new()
                        .name(format!("serve-worker-{w}"))
                        .spawn(move || worker_thread(rx, core, group, shared))
                        .expect("spawn worker"),
                );
            }
        }
    }
    // Sampler: always runs — it is what advances the SLO window — and
    // additionally records timeline points when sampling was requested.
    let sampler_stop = Arc::new(AtomicBool::new(false));
    let sampler = {
        let shared2 = Arc::clone(&shared);
        let stop = Arc::clone(&sampler_stop);
        let interval = if timeline_interval > 0 {
            timeline_interval
        } else {
            shared.cfg.tick_ms.max(1)
        };
        let timeline = if timeline_interval > 0 {
            Some(Arc::new(Mutex::new(ServeTimeline::new(timeline_interval))))
        } else {
            None
        };
        let timeline2 = timeline.clone();
        let handle = thread::Builder::new()
            .name("serve-timeline".into())
            .spawn(move || {
                while !stop.load(Ordering::SeqCst) {
                    let snap = shared2
                        .stats
                        .snapshot(shared2.now_ms(), shared2.shutdown.load(Ordering::SeqCst));
                    shared2.slo.lock().unwrap().observe(&snap);
                    if let Some(timeline) = &timeline2 {
                        timeline.lock().unwrap().push(ServePoint {
                            t_ms: snap.uptime_ms,
                            queue_depth: snap.gauge("queue_depth"),
                            connections: snap.gauge("connections_live"),
                            sessions: snap.gauge("sessions_live"),
                            acked: snap.counter("acked"),
                            sheds: snap.counter("err.overloaded"),
                            deadline_misses: snap.counter("err.deadline"),
                        });
                    }
                    thread::sleep(Duration::from_millis(interval));
                }
            })
            .expect("spawn timeline sampler");
        (handle, timeline)
    };
    // Prometheus exposition endpoint, served until the drain completes.
    let metrics_stop = Arc::new(AtomicBool::new(false));
    let metrics_handle = metrics_listener.map(|l| {
        let shared2 = Arc::clone(&shared);
        let stop = Arc::clone(&metrics_stop);
        thread::Builder::new()
            .name("serve-metrics".into())
            .spawn(move || metrics_loop(l, shared2, stop))
            .expect("spawn metrics listener")
    });

    // Accept until drain is requested.
    let mut conn_txs: Vec<Sender<ConnEvent>> = Vec::new();
    let mut driver_handles: Vec<JoinHandle<()>> = Vec::new();
    let mut reader_handles: Vec<JoinHandle<()>> = Vec::new();
    let mut next_conn = 0u32;
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                stream.set_nodelay(true).ok();
                let (tx, rx) = mpsc::channel::<ConnEvent>();
                let reader_stream = match stream.try_clone() {
                    Ok(s) => s,
                    Err(_) => continue,
                };
                let tx_reader = tx.clone();
                reader_handles.push(
                    thread::Builder::new()
                        .name(format!("serve-read-{next_conn}"))
                        .spawn(move || reader_thread(reader_stream, tx_reader))
                        .expect("spawn reader"),
                );
                // Session-id space is striped per connection so HELLO
                // can register any count without collisions.
                let session_base = next_conn.wrapping_mul(1_000_000).wrapping_add(1);
                let shared2 = Arc::clone(&shared);
                let tx_self = tx.clone();
                driver_handles.push(
                    thread::Builder::new()
                        .name(format!("serve-conn-{next_conn}"))
                        .spawn(move || conn_driver(stream, rx, tx_self, session_base, shared2))
                        .expect("spawn conn driver"),
                );
                conn_txs.push(tx);
                next_conn = next_conn.wrapping_add(1);
            }
            Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(5));
            }
            Err(_) => thread::sleep(Duration::from_millis(5)),
        }
    }

    // Drain: tell every connection, wait for them, then retire the
    // executor and compute the ACID verdict.
    for tx in &conn_txs {
        let _ = tx.send(ConnEvent::Shutdown);
    }
    for h in driver_handles {
        let _ = h.join();
    }
    for h in reader_handles {
        let _ = h.join();
    }
    shared.exec.lock().unwrap().take();
    let mut clean_drain = true;
    for h in worker_handles {
        clean_drain &= h.join().is_ok();
    }
    sampler_stop.store(true, Ordering::SeqCst);
    let timeline = {
        let (handle, timeline) = sampler;
        let _ = handle.join();
        timeline.map(|t| t.lock().unwrap().clone())
    };

    // ACID verdict: replay the durable log through recovery; every
    // acked transaction must be a winner.
    let acid_violations = match core_for_verdict {
        Some(core) => {
            let mut core = core.lock().unwrap();
            let durable = core.log.crash();
            let outcome = recover(&durable);
            let mut winners: Vec<u64> = outcome.winners.iter().map(|t| t.raw()).collect();
            winners.sort_unstable();
            let acked = shared.acked_tokens.lock().unwrap();
            acked
                .iter()
                .filter(|t| winners.binary_search(t).is_err())
                .count() as u64
        }
        None => 0,
    };

    // Keep serving scrapes through the drain; stop only once the final
    // (exact — all recorders joined) snapshot is about to be taken.
    metrics_stop.store(true, Ordering::SeqCst);
    if let Some(h) = metrics_handle {
        let _ = h.join();
    }

    let stats = shared.snapshot();
    let request_trace = std::mem::take(&mut *shared.request_trace.lock().unwrap());
    ServeReport {
        connections: stats.counter("connections"),
        sessions_peak: stats.gauge("sessions_peak"),
        committed: stats.counter("committed"),
        acked: stats.counter("acked"),
        sheds: stats.counter("err.overloaded"),
        deadline_misses: stats.counter("err.deadline"),
        malformed: stats.counter("err.malformed"),
        retry_exhausted: stats.counter("err.retry_exhausted"),
        shutdown_rejected: stats.counter("err.shutting_down"),
        group_commits: stats.counter("group_commits"),
        group_forces: stats.counter("group_forces"),
        group_txns: stats.counter("group_txns"),
        acid_violations,
        clean_drain,
        timeline,
        stats,
        request_trace,
    }
}
