//! Chaos-driven load generator for the serve path.
//!
//! One OS thread per connection, each multiplexing many logical
//! sessions (HELLO registers the count) and pipelining transactions up
//! to a window. The workload is a pure function of the seed (objects
//! and read/write mix drawn with `splitmix64`), and network chaos is
//! applied **client-side** from a keyed-hash
//! [`NetChaosPlan`](semcluster_faults::NetChaosPlan): the plan decides
//! per frame whether to deliver, drop the connection, stall, half-close,
//! trickle bytes one at a time (slow-loris), or send a corrupt frame
//! the server must reject as malformed. The server's ACID verdict at
//! drain is what makes this chaos meaningful: whatever the client does
//! to the transport, every acked transaction must be a recovery winner.

use std::io::Write as _;
use std::net::{Shutdown as SockShutdown, TcpStream};
use std::thread;
use std::time::{Duration, Instant};

use semcluster_faults::{splitmix64, NetAction, NetChaosConfig, NetChaosPlan};

use super::protocol::{read_frame, Frame, Request, Response, TxnOp, TxnRequest};
use super::ServeError;

/// Load-generator configuration.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Server address (`host:port`).
    pub addr: String,
    /// Client connections (one thread each).
    pub connections: u32,
    /// Logical sessions multiplexed per connection.
    pub sessions_per_conn: u32,
    /// Transactions issued per session.
    pub txns_per_session: u32,
    /// Operations per transaction.
    pub ops_per_txn: u16,
    /// Percentage of operations that are writes.
    pub write_pct: u32,
    /// Object-id space to draw operations from.
    pub objects: u32,
    /// Per-request deadline sent with each TXN (0 = server default).
    pub deadline_ms: u32,
    /// Seed for the workload and the chaos plan.
    pub seed: u64,
    /// Network chaos preset applied client-side.
    pub chaos: NetChaosConfig,
    /// Max in-flight transactions per connection.
    pub pipeline: u32,
    /// Send a SHUTDOWN frame after the load completes (connection 0).
    pub shutdown_after: bool,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            addr: "127.0.0.1:7489".into(),
            connections: 8,
            sessions_per_conn: 64,
            txns_per_session: 4,
            ops_per_txn: 4,
            write_pct: 50,
            objects: 4_096,
            deadline_ms: 2_000,
            seed: 1989,
            chaos: NetChaosConfig::none(),
            pipeline: 32,
            shutdown_after: false,
        }
    }
}

/// Aggregated outcome of one load run.
#[derive(Debug, Clone, Default)]
pub struct LoadSummary {
    /// Logical sessions registered (connections × sessions).
    pub sessions: u64,
    /// Transactions sent.
    pub attempted: u64,
    /// Transactions acknowledged committed.
    pub acked: u64,
    /// Typed overload rejections received.
    pub rejected_overloaded: u64,
    /// Typed deadline rejections received.
    pub rejected_deadline: u64,
    /// Typed shutting-down rejections received.
    pub rejected_shutdown: u64,
    /// Typed retry-exhausted rejections received.
    pub rejected_retry: u64,
    /// Typed malformed rejections received (corrupt-frame chaos).
    pub rejected_malformed: u64,
    /// Transactions with no reply (dropped/half-closed connections).
    pub lost: u64,
    /// Reconnects performed after chaos tore a connection down.
    pub reconnects: u64,
    /// Chaos events: connections dropped mid-stream.
    pub chaos_drops: u64,
    /// Chaos events: frames stalled before sending.
    pub chaos_stalls: u64,
    /// Chaos events: write side half-closed.
    pub chaos_half_closes: u64,
    /// Chaos events: frames trickled byte-by-byte.
    pub chaos_trickles: u64,
    /// Chaos events: corrupt frames sent.
    pub chaos_corrupts: u64,
    /// Wall-clock duration of the run, in milliseconds.
    pub elapsed_ms: u64,
    /// Sessions fully completed per wall-clock second.
    pub sessions_per_sec: f64,
    /// Mean acked-transaction latency, in milliseconds.
    pub mean_ms: f64,
    /// Median acked-transaction latency, in milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile acked-transaction latency, in milliseconds.
    pub p99_ms: f64,
}

impl LoadSummary {
    /// Canonical JSON (stable field order).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"sessions\": {},\n", self.sessions));
        out.push_str(&format!("  \"attempted\": {},\n", self.attempted));
        out.push_str(&format!("  \"acked\": {},\n", self.acked));
        out.push_str(&format!(
            "  \"rejected_overloaded\": {},\n",
            self.rejected_overloaded
        ));
        out.push_str(&format!(
            "  \"rejected_deadline\": {},\n",
            self.rejected_deadline
        ));
        out.push_str(&format!(
            "  \"rejected_shutdown\": {},\n",
            self.rejected_shutdown
        ));
        out.push_str(&format!("  \"rejected_retry\": {},\n", self.rejected_retry));
        out.push_str(&format!(
            "  \"rejected_malformed\": {},\n",
            self.rejected_malformed
        ));
        out.push_str(&format!("  \"lost\": {},\n", self.lost));
        out.push_str(&format!("  \"reconnects\": {},\n", self.reconnects));
        out.push_str(&format!("  \"chaos_drops\": {},\n", self.chaos_drops));
        out.push_str(&format!("  \"chaos_stalls\": {},\n", self.chaos_stalls));
        out.push_str(&format!(
            "  \"chaos_half_closes\": {},\n",
            self.chaos_half_closes
        ));
        out.push_str(&format!("  \"chaos_trickles\": {},\n", self.chaos_trickles));
        out.push_str(&format!("  \"chaos_corrupts\": {},\n", self.chaos_corrupts));
        out.push_str(&format!("  \"elapsed_ms\": {},\n", self.elapsed_ms));
        out.push_str(&format!(
            "  \"sessions_per_sec\": {:.2},\n",
            self.sessions_per_sec
        ));
        out.push_str(&format!(
            "  \"mean_response_s\": {:.6},\n",
            self.mean_ms / 1e3
        ));
        out.push_str(&format!("  \"p50_ms\": {:.3},\n", self.p50_ms));
        out.push_str(&format!("  \"p99_ms\": {:.3}\n", self.p99_ms));
        out.push_str("}\n");
        out
    }
}

/// Deterministic operation list for transaction `idx` of connection
/// `conn` — a pure function of the seed, like every fault plan.
fn gen_ops(cfg: &LoadConfig, conn: u32, idx: u64) -> Vec<TxnOp> {
    let base = splitmix64(
        cfg.seed ^ 0x10AD_C0DE_u64 ^ (u64::from(conn) << 40) ^ idx.wrapping_mul(0x9E37_79B9),
    );
    (0..cfg.ops_per_txn)
        .map(|k| {
            let h = splitmix64(base.wrapping_add(u64::from(k)));
            TxnOp {
                write: h % 100 < u64::from(cfg.write_pct),
                object: ((h >> 32) as u32) % cfg.objects.max(1),
            }
        })
        .collect()
}

struct ConnOutcome {
    summary: LoadSummary,
    latencies_us: Vec<u64>,
    completed_sessions: u64,
}

struct Pending {
    session: u32,
    client_txn: u64,
    sent_at: Instant,
}

struct ClientConn {
    stream: TcpStream,
    first_session: u32,
}

fn connect(addr: &str, sessions: u32) -> Result<ClientConn, ServeError> {
    let stream = TcpStream::connect(addr).map_err(|e| ServeError::Net {
        context: format!("connect {addr}"),
        source: e.to_string(),
    })?;
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .map_err(|e| ServeError::Net {
            context: "set_read_timeout".into(),
            source: e.to_string(),
        })?;
    stream.set_nodelay(true).ok();
    let mut stream = stream;
    let hello = Request::Hello { sessions }.encode();
    stream
        .write_all(&hello.encode())
        .map_err(|e| ServeError::Net {
            context: "send HELLO".into(),
            source: e.to_string(),
        })?;
    let frame = read_frame(&mut stream)
        .map_err(|e| ServeError::Net {
            context: "read HELLO reply".into(),
            source: e.to_string(),
        })?
        .ok_or_else(|| ServeError::Net {
            context: "read HELLO reply".into(),
            source: "connection closed".into(),
        })?;
    match Response::parse(&frame)? {
        Response::HelloOk { first_session } => Ok(ClientConn {
            stream,
            first_session,
        }),
        other => Err(ServeError::Internal(format!(
            "unexpected HELLO reply: {other:?}"
        ))),
    }
}

/// Read replies until fewer than `target` transactions are pending.
/// Returns `false` when the connection died (pending become lost).
fn drain_replies(
    conn: &mut ClientConn,
    pending: &mut Vec<Pending>,
    target: usize,
    out: &mut ConnOutcome,
) -> bool {
    while pending.len() > target {
        let frame = match read_frame(&mut conn.stream) {
            Ok(Some(frame)) => frame,
            Ok(None) | Err(_) => {
                out.summary.lost += pending.len() as u64;
                pending.clear();
                return false;
            }
        };
        let resp = match Response::parse(&frame) {
            Ok(resp) => resp,
            Err(_) => continue,
        };
        let (session, client_txn, result) = match resp {
            Response::TxnOk {
                session,
                client_txn,
                ..
            } => (session, client_txn, Ok(())),
            Response::Error {
                kind,
                session,
                client_txn,
                ..
            } => (session, client_txn, Err(kind)),
            _ => continue,
        };
        let Some(pos) = pending
            .iter()
            .position(|p| p.session == session && p.client_txn == client_txn)
        else {
            // Connection-level malformed rejection (corrupt chaos):
            // count it; the server closes right after.
            if matches!(result, Err(super::protocol::ErrorKind::Malformed)) {
                out.summary.rejected_malformed += 1;
            }
            continue;
        };
        let p = pending.swap_remove(pos);
        match result {
            Ok(()) => {
                out.summary.acked += 1;
                out.latencies_us
                    .push(p.sent_at.elapsed().as_micros() as u64);
            }
            Err(kind) => {
                use super::protocol::ErrorKind::*;
                match kind {
                    Overloaded => out.summary.rejected_overloaded += 1,
                    DeadlineExceeded => out.summary.rejected_deadline += 1,
                    ShuttingDown => out.summary.rejected_shutdown += 1,
                    RetryExhausted => out.summary.rejected_retry += 1,
                    Malformed => out.summary.rejected_malformed += 1,
                    Internal => out.summary.lost += 1,
                }
            }
        }
    }
    true
}

#[allow(clippy::too_many_lines)]
fn conn_worker(
    cfg: &LoadConfig,
    conn_id: u32,
    rendezvous: &std::sync::Barrier,
) -> Result<ConnOutcome, ServeError> {
    let plan = NetChaosPlan::new(cfg.seed, cfg.chaos);
    let mut out = ConnOutcome {
        summary: LoadSummary::default(),
        latencies_us: Vec::new(),
        completed_sessions: 0,
    };
    // Rendezvous: every connection registers its sessions (HELLO)
    // before any connection sends traffic, so the server's peak
    // session gauge reflects all configured sessions being live
    // concurrently. Reached even on a failed connect, so a partial
    // failure cannot deadlock the other workers.
    let conn = connect(&cfg.addr, cfg.sessions_per_conn);
    rendezvous.wait();
    let mut conn = conn?;
    let mut pending: Vec<Pending> = Vec::new();
    let total = u64::from(cfg.sessions_per_conn) * u64::from(cfg.txns_per_session);
    let window = cfg.pipeline.max(1) as usize;
    let reconnect = |conn: &mut ClientConn,
                     pending: &mut Vec<Pending>,
                     out: &mut ConnOutcome|
     -> Result<(), ServeError> {
        out.summary.lost += pending.len() as u64;
        pending.clear();
        out.summary.reconnects += 1;
        *conn = connect(&cfg.addr, cfg.sessions_per_conn)?;
        Ok(())
    };
    for i in 0..total {
        let session = conn.first_session + (i % u64::from(cfg.sessions_per_conn)) as u32;
        let client_txn = (u64::from(conn_id) << 32) | i;
        let txn = Request::Txn(TxnRequest {
            session,
            client_txn,
            deadline_ms: cfg.deadline_ms,
            ops: gen_ops(cfg, conn_id, i),
        })
        .encode()
        .encode();
        let action = plan.action(u64::from(conn_id), i);
        out.summary.attempted += 1;
        let send_result: std::io::Result<()> = match action {
            NetAction::Deliver => conn.stream.write_all(&txn),
            NetAction::Drop => {
                // Abrupt teardown mid-stream: everything in flight is
                // lost; reconnect and send this transaction normally.
                out.summary.chaos_drops += 1;
                let _ = conn.stream.shutdown(SockShutdown::Both);
                reconnect(&mut conn, &mut pending, &mut out)?;
                conn.stream.write_all(&txn)
            }
            NetAction::Stall(ms) => {
                out.summary.chaos_stalls += 1;
                thread::sleep(Duration::from_millis(u64::from(ms.min(100))));
                conn.stream.write_all(&txn)
            }
            NetAction::HalfClose => {
                // Send, close our write side, drain what the server
                // still says, then reconnect.
                out.summary.chaos_half_closes += 1;
                pending.push(Pending {
                    session,
                    client_txn,
                    sent_at: Instant::now(),
                });
                let r = conn.stream.write_all(&txn);
                let _ = conn.stream.shutdown(SockShutdown::Write);
                if r.is_ok() {
                    drain_replies(&mut conn, &mut pending, 0, &mut out);
                } else {
                    out.summary.lost += pending.len() as u64;
                    pending.clear();
                }
                reconnect(&mut conn, &mut pending, &mut out)?;
                continue;
            }
            NetAction::Trickle => {
                // Slow-loris: the frame arrives one byte at a time; the
                // server's incremental decoder must reassemble it.
                out.summary.chaos_trickles += 1;
                let mut r = Ok(());
                for b in &txn {
                    r = conn.stream.write_all(std::slice::from_ref(b));
                    if r.is_err() {
                        break;
                    }
                    let _ = conn.stream.flush();
                }
                r
            }
            NetAction::Corrupt => {
                // A frame the protocol must reject: unknown opcode. The
                // server replies malformed and closes; this transaction
                // is never submitted.
                out.summary.chaos_corrupts += 1;
                out.summary.lost += 1;
                let junk = Frame {
                    opcode: 0x7E,
                    payload: vec![0xDE, 0xAD],
                }
                .encode();
                let _ = conn.stream.write_all(&junk);
                // Expect the malformed reply, then EOF from the server.
                drain_replies(&mut conn, &mut pending, 0, &mut out);
                reconnect(&mut conn, &mut pending, &mut out)?;
                continue;
            }
        };
        if send_result.is_err() {
            out.summary.lost += 1;
            reconnect(&mut conn, &mut pending, &mut out)?;
            continue;
        }
        pending.push(Pending {
            session,
            client_txn,
            sent_at: Instant::now(),
        });
        if pending.len() >= window && !drain_replies(&mut conn, &mut pending, window - 1, &mut out)
        {
            reconnect(&mut conn, &mut pending, &mut out)?;
        }
    }
    if !drain_replies(&mut conn, &mut pending, 0, &mut out) {
        out.summary.lost += pending.len() as u64;
    }
    if cfg.shutdown_after && conn_id == 0 {
        let _ = conn.stream.write_all(&Request::Shutdown.encode().encode());
        let _ = read_frame(&mut conn.stream);
    } else {
        let _ = conn.stream.write_all(&Request::Bye.encode().encode());
        let _ = read_frame(&mut conn.stream);
    }
    // A session counts as completed when it is not missing any reply —
    // approximate by scaling sessions by the replied fraction.
    let replied = out.summary.attempted - out.summary.lost.min(out.summary.attempted);
    out.completed_sessions = (u64::from(cfg.sessions_per_conn) * replied)
        .checked_div(out.summary.attempted)
        .unwrap_or(0);
    Ok(out)
}

/// Run the configured load and aggregate per-connection outcomes.
pub fn run_load(cfg: &LoadConfig) -> Result<LoadSummary, ServeError> {
    let started = Instant::now();
    let mut handles = Vec::new();
    let rendezvous = std::sync::Arc::new(std::sync::Barrier::new(cfg.connections.max(1) as usize));
    for conn_id in 0..cfg.connections.max(1) {
        let cfg = cfg.clone();
        let rendezvous = std::sync::Arc::clone(&rendezvous);
        handles.push(
            thread::Builder::new()
                .name(format!("load-conn-{conn_id}"))
                .spawn(move || conn_worker(&cfg, conn_id, &rendezvous))
                .map_err(|e| ServeError::Net {
                    context: "spawn load thread".into(),
                    source: e.to_string(),
                })?,
        );
    }
    let mut summary = LoadSummary::default();
    let mut latencies: Vec<u64> = Vec::new();
    let mut completed_sessions = 0u64;
    let mut first_err: Option<ServeError> = None;
    for handle in handles {
        match handle.join() {
            Ok(Ok(out)) => {
                summary.attempted += out.summary.attempted;
                summary.acked += out.summary.acked;
                summary.rejected_overloaded += out.summary.rejected_overloaded;
                summary.rejected_deadline += out.summary.rejected_deadline;
                summary.rejected_shutdown += out.summary.rejected_shutdown;
                summary.rejected_retry += out.summary.rejected_retry;
                summary.rejected_malformed += out.summary.rejected_malformed;
                summary.lost += out.summary.lost;
                summary.reconnects += out.summary.reconnects;
                summary.chaos_drops += out.summary.chaos_drops;
                summary.chaos_stalls += out.summary.chaos_stalls;
                summary.chaos_half_closes += out.summary.chaos_half_closes;
                summary.chaos_trickles += out.summary.chaos_trickles;
                summary.chaos_corrupts += out.summary.chaos_corrupts;
                latencies.extend(out.latencies_us);
                completed_sessions += out.completed_sessions;
            }
            Ok(Err(e)) => first_err = first_err.or(Some(e)),
            Err(_) => {
                first_err =
                    first_err.or_else(|| Some(ServeError::Internal("load thread panicked".into())))
            }
        }
    }
    if let Some(e) = first_err {
        return Err(e);
    }
    summary.sessions = u64::from(cfg.connections.max(1)) * u64::from(cfg.sessions_per_conn);
    summary.elapsed_ms = started.elapsed().as_millis() as u64;
    let secs = (summary.elapsed_ms as f64 / 1e3).max(1e-6);
    summary.sessions_per_sec = completed_sessions as f64 / secs;
    latencies.sort_unstable();
    if !latencies.is_empty() {
        let n = latencies.len();
        summary.mean_ms = latencies.iter().sum::<u64>() as f64 / n as f64 / 1e3;
        summary.p50_ms = latencies[n / 2] as f64 / 1e3;
        summary.p99_ms = latencies[(n * 99 / 100).min(n - 1)] as f64 / 1e3;
    }
    Ok(summary)
}
