//! Pure connection state machine for the serve path.
//!
//! The FSM owns everything about one connection that does not touch a
//! socket: frame decoding, session registration, in-flight transaction
//! tracking, per-request deadlines, drain-on-shutdown, and malformed
//! frame rejection. Inputs are bytes/events, outputs are actions
//! (replies to write, transactions to submit, close). Time enters only
//! through the `now_ms` argument — the FSM never reads a clock — so
//! every interleaving the real server can produce (deadline expiry
//! racing a late result, shutdown mid-request, a malformed frame after
//! a valid one) can be replayed deterministically in unit tests.

use super::protocol::{ErrorKind, Frame, FrameDecoder, Request, Response, TxnRequest};
use super::stats::{RequestCounts, STATS_SCHEMA};

/// Connection lifecycle state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnState {
    /// Accepting requests.
    Ready,
    /// Server drain in progress: in-flight transactions finish, new
    /// ones are rejected, then the connection closes.
    Draining,
    /// Closed; all further inputs are ignored.
    Closed,
}

/// How the executor resolved a submitted transaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecResult {
    /// Committed and durable.
    Committed {
        /// WAL token of the transaction, fed to the drain-time ACID
        /// verdict. `None` when there is nothing durable to verify: a
        /// read-only transaction (no update records, so recovery has
        /// no redo to prove) or oracle mode (the simulator owns its
        /// own log).
        token: Option<u64>,
        /// Log sequence number the commit force reached.
        commit_lsn: u64,
        /// Transactions completed so far.
        completed: u64,
        /// Oracle mode: the simulated run reached its target.
        done: bool,
    },
    /// Shed by admission control (bounded queue full).
    Overloaded,
    /// The executor observed the deadline already expired and dropped
    /// the work without executing it.
    DeadlineExceeded,
    /// Lock conflicts exhausted the retry budget.
    RetryExhausted {
        /// Attempts made before giving up.
        attempts: u32,
    },
    /// Rejected because the server is draining.
    ShuttingDown,
    /// Unexpected executor failure.
    Failed(String),
}

/// An input to the state machine.
#[derive(Debug)]
pub enum FsmInput<'a> {
    /// Raw bytes read from the socket.
    Bytes(&'a [u8]),
    /// The socket hit EOF or a read error.
    Eof,
    /// The executor resolved a previously submitted transaction.
    Executed {
        /// Session the transaction belonged to.
        session: u32,
        /// Client-assigned transaction id.
        client_txn: u64,
        /// Outcome.
        result: ExecResult,
    },
    /// A REPORT submitted earlier is ready.
    ReportReady {
        /// Canonical report JSON.
        json: String,
    },
    /// A STATS snapshot submitted earlier is ready.
    StatsReady {
        /// `StatsSnapshot::to_json` bytes.
        json: String,
    },
    /// Periodic timer; drives deadline expiry.
    Tick,
    /// Server-wide graceful drain has begun.
    Shutdown,
}

/// An action the connection driver must perform.
#[derive(Debug, PartialEq, Eq)]
pub enum FsmAction {
    /// Write this frame to the socket.
    Reply(Frame),
    /// Hand this transaction to the executor.
    Submit(TxnRequest),
    /// Ask the server for the report (answer with `ReportReady`).
    SubmitReport,
    /// Ask the server for a live-telemetry snapshot (answer with
    /// `StatsReady`). Allowed even while draining — operators watch
    /// the drain through exactly this path.
    SubmitStats,
    /// The client requested server-wide shutdown.
    RequestShutdown,
    /// Close the socket and stop the driver.
    Close,
}

#[derive(Debug)]
struct InFlight {
    session: u32,
    client_txn: u64,
    deadline_at_ms: u64,
    /// Deadline already reported to the client; swallow the late
    /// executor result when it eventually arrives.
    dead: bool,
}

/// The per-connection state machine.
#[derive(Debug)]
pub struct ConnFsm {
    state: ConnState,
    decoder: FrameDecoder,
    /// First session id this connection may use (assigned at accept).
    session_base: u32,
    /// Sessions registered by HELLO (0 = not yet registered).
    sessions: u32,
    inflight: Vec<InFlight>,
    default_deadline_ms: u32,
    max_inflight: usize,
    close_emitted: bool,
    /// How long an idle draining connection stays open for read-only
    /// probes (STATS, PING) before the FSM closes it. 0 = close the
    /// moment no work is in flight (prompt drain).
    drain_linger_ms: u64,
    /// Tick deadline after which an idle draining connection closes;
    /// armed when the drain finds (or leaves) the connection idle.
    drain_close_at_ms: Option<u64>,
    /// Requests parsed on this connection, by opcode. The driver diffs
    /// successive copies into the server-wide `ServeStats` registry, so
    /// per-opcode counting stays exact even when one read delivers
    /// several frames.
    counts: RequestCounts,
}

impl ConnFsm {
    /// New connection in `Ready`, owning sessions starting at
    /// `session_base` once HELLO arrives.
    pub fn new(
        session_base: u32,
        default_deadline_ms: u32,
        max_inflight: usize,
        drain_linger_ms: u64,
    ) -> Self {
        ConnFsm {
            state: ConnState::Ready,
            decoder: FrameDecoder::new(),
            session_base,
            sessions: 0,
            inflight: Vec::new(),
            default_deadline_ms: default_deadline_ms.max(1),
            max_inflight: max_inflight.max(1),
            close_emitted: false,
            drain_linger_ms,
            drain_close_at_ms: None,
            counts: RequestCounts::default(),
        }
    }

    /// Current lifecycle state.
    pub fn state(&self) -> ConnState {
        self.state
    }

    /// Sessions registered on this connection.
    pub fn sessions(&self) -> u32 {
        self.sessions
    }

    /// Transactions submitted but not yet resolved.
    pub fn inflight(&self) -> usize {
        self.inflight.len()
    }

    /// Per-opcode request counts parsed so far (cumulative).
    pub fn request_counts(&self) -> RequestCounts {
        self.counts
    }

    /// Feed one input; actions are appended to `out` in order.
    pub fn on_input(&mut self, input: FsmInput<'_>, now_ms: u64, out: &mut Vec<FsmAction>) {
        if self.state == ConnState::Closed {
            return;
        }
        match input {
            FsmInput::Bytes(bytes) => {
                self.decoder.push(bytes);
                loop {
                    match self.decoder.next_frame() {
                        Ok(Some(frame)) => {
                            self.on_frame(&frame, now_ms, out);
                            if self.state == ConnState::Closed {
                                return;
                            }
                        }
                        Ok(None) => break,
                        Err(e) => {
                            // Framing is untrustworthy from here on:
                            // reject and drop the connection.
                            self.reply_error(ErrorKind::Malformed, 0, 0, &e.to_string(), out);
                            self.close(out);
                            return;
                        }
                    }
                }
            }
            FsmInput::Eof => self.close(out),
            FsmInput::Executed {
                session,
                client_txn,
                result,
            } => self.on_executed(session, client_txn, result, now_ms, out),
            FsmInput::ReportReady { json } => {
                out.push(FsmAction::Reply(Response::ReportOk { json }.encode()));
            }
            FsmInput::StatsReady { json } => {
                out.push(FsmAction::Reply(
                    Response::StatsOk {
                        schema: STATS_SCHEMA,
                        json,
                    }
                    .encode(),
                ));
            }
            FsmInput::Tick => {
                self.expire_deadlines(now_ms, out);
                if self
                    .drain_close_at_ms
                    .is_some_and(|at| now_ms >= at && self.inflight.is_empty())
                {
                    self.close(out);
                }
            }
            FsmInput::Shutdown => {
                if self.state == ConnState::Ready {
                    self.state = ConnState::Draining;
                }
                if self.inflight.is_empty() {
                    self.drain_idle(now_ms, out);
                }
            }
        }
    }

    fn on_frame(&mut self, frame: &Frame, now_ms: u64, out: &mut Vec<FsmAction>) {
        let req = match Request::parse(frame) {
            Ok(req) => req,
            Err(e) => {
                self.reply_error(ErrorKind::Malformed, 0, 0, &e.to_string(), out);
                self.close(out);
                return;
            }
        };
        match &req {
            Request::Hello { .. } => self.counts.hello += 1,
            Request::Txn(_) => self.counts.txn += 1,
            Request::Report => self.counts.report += 1,
            Request::Bye => self.counts.bye += 1,
            Request::Shutdown => self.counts.shutdown += 1,
            Request::Ping => self.counts.ping += 1,
            Request::Stats => self.counts.stats += 1,
        }
        match req {
            Request::Hello { sessions } => {
                if self.sessions != 0 {
                    self.reply_error(ErrorKind::Malformed, 0, 0, "duplicate HELLO", out);
                    self.close(out);
                    return;
                }
                self.sessions = sessions;
                out.push(FsmAction::Reply(
                    Response::HelloOk {
                        first_session: self.session_base,
                    }
                    .encode(),
                ));
            }
            Request::Txn(txn) => {
                if self.sessions == 0 {
                    self.reply_error(
                        ErrorKind::Malformed,
                        txn.session,
                        txn.client_txn,
                        "TXN before HELLO",
                        out,
                    );
                    self.close(out);
                    return;
                }
                if self.state == ConnState::Draining {
                    self.reply_error(
                        ErrorKind::ShuttingDown,
                        txn.session,
                        txn.client_txn,
                        "server is draining",
                        out,
                    );
                    return;
                }
                if self.inflight.len() >= self.max_inflight {
                    // Per-connection pipelining bound; the server-wide
                    // bound is the admission controller.
                    self.reply_error(
                        ErrorKind::Overloaded,
                        txn.session,
                        txn.client_txn,
                        "connection pipeline full",
                        out,
                    );
                    return;
                }
                let deadline_ms = if txn.deadline_ms == 0 {
                    self.default_deadline_ms
                } else {
                    txn.deadline_ms
                };
                self.inflight.push(InFlight {
                    session: txn.session,
                    client_txn: txn.client_txn,
                    deadline_at_ms: now_ms + u64::from(deadline_ms),
                    dead: false,
                });
                out.push(FsmAction::Submit(txn));
            }
            Request::Report => out.push(FsmAction::SubmitReport),
            Request::Bye => {
                out.push(FsmAction::Reply(Response::ByeOk.encode()));
                self.close(out);
            }
            Request::Shutdown => {
                out.push(FsmAction::Reply(Response::ShutdownOk.encode()));
                out.push(FsmAction::RequestShutdown);
            }
            Request::Ping => out.push(FsmAction::Reply(Response::PingOk.encode())),
            // Read-only probe: answered in Ready *and* Draining.
            Request::Stats => out.push(FsmAction::SubmitStats),
        }
    }

    fn on_executed(
        &mut self,
        session: u32,
        client_txn: u64,
        result: ExecResult,
        now_ms: u64,
        out: &mut Vec<FsmAction>,
    ) {
        let Some(pos) = self
            .inflight
            .iter()
            .position(|f| f.session == session && f.client_txn == client_txn)
        else {
            // Unknown (already swallowed, or a buggy executor): ignore.
            return;
        };
        let entry = self.inflight.swap_remove(pos);
        if !entry.dead {
            let reply = match result {
                ExecResult::Committed {
                    commit_lsn,
                    completed,
                    done,
                    ..
                } => Response::TxnOk {
                    session,
                    client_txn,
                    commit_lsn,
                    completed,
                    done,
                },
                ExecResult::Overloaded => Response::Error {
                    kind: ErrorKind::Overloaded,
                    session,
                    client_txn,
                    detail: "admission control shed the request".into(),
                },
                ExecResult::DeadlineExceeded => Response::Error {
                    kind: ErrorKind::DeadlineExceeded,
                    session,
                    client_txn,
                    detail: "deadline expired before execution".into(),
                },
                ExecResult::RetryExhausted { attempts } => Response::Error {
                    kind: ErrorKind::RetryExhausted,
                    session,
                    client_txn,
                    detail: format!("lock conflicts after {attempts} attempts"),
                },
                ExecResult::ShuttingDown => Response::Error {
                    kind: ErrorKind::ShuttingDown,
                    session,
                    client_txn,
                    detail: "server is draining".into(),
                },
                ExecResult::Failed(detail) => Response::Error {
                    kind: ErrorKind::Internal,
                    session,
                    client_txn,
                    detail,
                },
            };
            out.push(FsmAction::Reply(reply.encode()));
        }
        if self.state == ConnState::Draining && self.inflight.is_empty() {
            self.drain_idle(now_ms, out);
        }
    }

    /// The drain has left this connection idle. With no linger, close
    /// immediately (prompt drain); otherwise keep answering read-only
    /// probes until the linger deadline passes on a tick (or the client
    /// says BYE, whichever comes first).
    fn drain_idle(&mut self, now_ms: u64, out: &mut Vec<FsmAction>) {
        if self.drain_linger_ms == 0 {
            self.close(out);
        } else if self.drain_close_at_ms.is_none() {
            self.drain_close_at_ms = Some(now_ms.saturating_add(self.drain_linger_ms));
        }
    }

    fn expire_deadlines(&mut self, now_ms: u64, out: &mut Vec<FsmAction>) {
        for entry in &mut self.inflight {
            if !entry.dead && entry.deadline_at_ms <= now_ms {
                entry.dead = true;
                out.push(FsmAction::Reply(
                    Response::Error {
                        kind: ErrorKind::DeadlineExceeded,
                        session: entry.session,
                        client_txn: entry.client_txn,
                        detail: "deadline expired awaiting execution".into(),
                    }
                    .encode(),
                ));
            }
        }
    }

    fn reply_error(
        &mut self,
        kind: ErrorKind,
        session: u32,
        client_txn: u64,
        detail: &str,
        out: &mut Vec<FsmAction>,
    ) {
        out.push(FsmAction::Reply(
            Response::Error {
                kind,
                session,
                client_txn,
                detail: detail.into(),
            }
            .encode(),
        ));
    }

    fn close(&mut self, out: &mut Vec<FsmAction>) {
        self.state = ConnState::Closed;
        if !self.close_emitted {
            self.close_emitted = true;
            out.push(FsmAction::Close);
        }
    }
}

#[cfg(test)]
mod tests {
    //! Deterministic interleaving tests: a fixed-seed scheduler replays
    //! input permutations against the pure FSM, so every race the real
    //! threaded server can hit is exercised without threads.

    use super::*;
    use semcluster_faults::splitmix64;

    fn fsm() -> ConnFsm {
        ConnFsm::new(100, 500, 4, 0)
    }

    fn hello_bytes(sessions: u32) -> Vec<u8> {
        Request::Hello { sessions }.encode().encode()
    }

    fn txn_bytes(session: u32, client_txn: u64, deadline_ms: u32) -> Vec<u8> {
        Request::Txn(TxnRequest {
            session,
            client_txn,
            deadline_ms,
            ops: vec![super::super::protocol::TxnOp {
                write: true,
                object: 1,
            }],
        })
        .encode()
        .encode()
    }

    fn replies(actions: &[FsmAction]) -> Vec<Response> {
        actions
            .iter()
            .filter_map(|a| match a {
                FsmAction::Reply(f) => Some(Response::parse(f).unwrap()),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn happy_path_hello_txn_commit_bye() {
        let mut f = fsm();
        let mut out = Vec::new();
        f.on_input(FsmInput::Bytes(&hello_bytes(8)), 0, &mut out);
        assert_eq!(
            replies(&out),
            vec![Response::HelloOk { first_session: 100 }]
        );
        out.clear();
        f.on_input(FsmInput::Bytes(&txn_bytes(100, 1, 0)), 0, &mut out);
        assert!(matches!(out.as_slice(), [FsmAction::Submit(t)] if t.client_txn == 1));
        out.clear();
        f.on_input(
            FsmInput::Executed {
                session: 100,
                client_txn: 1,
                result: ExecResult::Committed {
                    token: Some(7),
                    commit_lsn: 64,
                    completed: 1,
                    done: false,
                },
            },
            1,
            &mut out,
        );
        assert!(matches!(
            replies(&out).as_slice(),
            [Response::TxnOk {
                client_txn: 1,
                commit_lsn: 64,
                ..
            }]
        ));
        out.clear();
        f.on_input(
            FsmInput::Bytes(&Request::Bye.encode().encode()),
            2,
            &mut out,
        );
        assert_eq!(replies(&out), vec![Response::ByeOk]);
        assert!(out.contains(&FsmAction::Close));
        assert_eq!(f.state(), ConnState::Closed);
    }

    #[test]
    fn deadline_expires_mid_request_and_late_result_is_swallowed() {
        let mut f = fsm();
        let mut out = Vec::new();
        f.on_input(FsmInput::Bytes(&hello_bytes(1)), 0, &mut out);
        f.on_input(FsmInput::Bytes(&txn_bytes(100, 9, 50)), 0, &mut out);
        out.clear();
        // Tick before the deadline: nothing.
        f.on_input(FsmInput::Tick, 49, &mut out);
        assert!(out.is_empty());
        // Tick at the deadline: typed timeout reply.
        f.on_input(FsmInput::Tick, 50, &mut out);
        assert!(matches!(
            replies(&out).as_slice(),
            [Response::Error {
                kind: ErrorKind::DeadlineExceeded,
                client_txn: 9,
                ..
            }]
        ));
        out.clear();
        // A second tick must not re-report.
        f.on_input(FsmInput::Tick, 60, &mut out);
        assert!(out.is_empty());
        // The executor eventually finishes: no second reply to the client.
        f.on_input(
            FsmInput::Executed {
                session: 100,
                client_txn: 9,
                result: ExecResult::Committed {
                    token: Some(1),
                    commit_lsn: 10,
                    completed: 1,
                    done: false,
                },
            },
            70,
            &mut out,
        );
        assert!(out.is_empty(), "late result must be swallowed");
        assert_eq!(f.inflight(), 0);
    }

    #[test]
    fn shutdown_while_draining_finishes_inflight_then_closes() {
        let mut f = fsm();
        let mut out = Vec::new();
        f.on_input(FsmInput::Bytes(&hello_bytes(2)), 0, &mut out);
        f.on_input(FsmInput::Bytes(&txn_bytes(100, 1, 0)), 0, &mut out);
        f.on_input(FsmInput::Bytes(&txn_bytes(101, 2, 0)), 0, &mut out);
        out.clear();
        f.on_input(FsmInput::Shutdown, 1, &mut out);
        assert_eq!(f.state(), ConnState::Draining);
        assert!(out.is_empty(), "drain waits for in-flight work");
        // New work is rejected with the typed shutdown error.
        f.on_input(FsmInput::Bytes(&txn_bytes(100, 3, 0)), 2, &mut out);
        assert!(matches!(
            replies(&out).as_slice(),
            [Response::Error {
                kind: ErrorKind::ShuttingDown,
                client_txn: 3,
                ..
            }]
        ));
        out.clear();
        // First in-flight completes: acked, still draining.
        f.on_input(
            FsmInput::Executed {
                session: 100,
                client_txn: 1,
                result: ExecResult::Committed {
                    token: Some(1),
                    commit_lsn: 1,
                    completed: 1,
                    done: false,
                },
            },
            3,
            &mut out,
        );
        assert_eq!(f.state(), ConnState::Draining);
        assert!(!out.contains(&FsmAction::Close));
        out.clear();
        // Last one completes: acked, then close.
        f.on_input(
            FsmInput::Executed {
                session: 101,
                client_txn: 2,
                result: ExecResult::Committed {
                    token: Some(2),
                    commit_lsn: 2,
                    completed: 2,
                    done: false,
                },
            },
            4,
            &mut out,
        );
        let r = replies(&out);
        assert!(matches!(
            r.as_slice(),
            [Response::TxnOk { client_txn: 2, .. }]
        ));
        assert!(out.contains(&FsmAction::Close));
        assert_eq!(f.state(), ConnState::Closed);
    }

    #[test]
    fn malformed_frame_is_rejected_and_closes() {
        // Garbage opcode.
        let mut f = fsm();
        let mut out = Vec::new();
        let junk = Frame {
            opcode: 0xFF,
            payload: vec![1, 2, 3],
        }
        .encode();
        f.on_input(FsmInput::Bytes(&junk), 0, &mut out);
        assert!(matches!(
            replies(&out).as_slice(),
            [Response::Error {
                kind: ErrorKind::Malformed,
                ..
            }]
        ));
        assert!(out.contains(&FsmAction::Close));
        // Oversize length field.
        let mut f = fsm();
        out.clear();
        f.on_input(
            FsmInput::Bytes(&(super::super::protocol::MAX_FRAME_BYTES + 1).to_le_bytes()),
            0,
            &mut out,
        );
        assert!(matches!(
            replies(&out).as_slice(),
            [Response::Error {
                kind: ErrorKind::Malformed,
                ..
            }]
        ));
        assert!(out.contains(&FsmAction::Close));
        // TXN before HELLO.
        let mut f = fsm();
        out.clear();
        f.on_input(FsmInput::Bytes(&txn_bytes(0, 1, 0)), 0, &mut out);
        assert!(matches!(
            replies(&out).as_slice(),
            [Response::Error {
                kind: ErrorKind::Malformed,
                ..
            }]
        ));
        // Duplicate HELLO.
        let mut f = fsm();
        out.clear();
        f.on_input(FsmInput::Bytes(&hello_bytes(1)), 0, &mut out);
        f.on_input(FsmInput::Bytes(&hello_bytes(1)), 0, &mut out);
        assert!(out.contains(&FsmAction::Close));
    }

    #[test]
    fn retry_exhaustion_and_overload_map_to_typed_errors() {
        let mut f = fsm();
        let mut out = Vec::new();
        f.on_input(FsmInput::Bytes(&hello_bytes(1)), 0, &mut out);
        f.on_input(FsmInput::Bytes(&txn_bytes(100, 1, 0)), 0, &mut out);
        out.clear();
        f.on_input(
            FsmInput::Executed {
                session: 100,
                client_txn: 1,
                result: ExecResult::RetryExhausted { attempts: 4 },
            },
            1,
            &mut out,
        );
        assert!(matches!(
            replies(&out).as_slice(),
            [Response::Error {
                kind: ErrorKind::RetryExhausted,
                ..
            }]
        ));
        out.clear();
        // Pipeline bound: fifth concurrent txn on a max_inflight=4 conn.
        for i in 2..=5 {
            f.on_input(FsmInput::Bytes(&txn_bytes(100, i, 0)), 1, &mut out);
        }
        out.clear();
        f.on_input(FsmInput::Bytes(&txn_bytes(100, 6, 0)), 1, &mut out);
        assert!(matches!(
            replies(&out).as_slice(),
            [Response::Error {
                kind: ErrorKind::Overloaded,
                client_txn: 6,
                ..
            }]
        ));
    }

    #[test]
    fn stats_probe_works_while_draining_and_counts_requests() {
        let mut f = fsm();
        let mut out = Vec::new();
        f.on_input(FsmInput::Bytes(&hello_bytes(1)), 0, &mut out);
        f.on_input(FsmInput::Bytes(&txn_bytes(100, 1, 0)), 0, &mut out);
        f.on_input(
            FsmInput::Bytes(&Request::Stats.encode().encode()),
            0,
            &mut out,
        );
        assert!(out.contains(&FsmAction::SubmitStats));
        out.clear();
        // Drain begins with one txn in flight: the connection stays up,
        // and STATS is still answered (unlike TXN).
        f.on_input(FsmInput::Shutdown, 1, &mut out);
        assert_eq!(f.state(), ConnState::Draining);
        f.on_input(
            FsmInput::Bytes(&Request::Stats.encode().encode()),
            2,
            &mut out,
        );
        assert!(
            out.contains(&FsmAction::SubmitStats),
            "STATS must work while draining"
        );
        out.clear();
        f.on_input(
            FsmInput::StatsReady {
                json: "{\"stats_schema\":1}".into(),
            },
            3,
            &mut out,
        );
        assert!(matches!(
            replies(&out).as_slice(),
            [Response::StatsOk { schema, json }]
                if *schema == STATS_SCHEMA && json.contains("stats_schema")
        ));
        let counts = f.request_counts();
        assert_eq!(counts.hello, 1);
        assert_eq!(counts.txn, 1);
        assert_eq!(counts.stats, 2);
        assert_eq!(counts.total(), 4);
    }

    /// Fixed-seed scheduler: replay the same set of inputs in many
    /// hash-chosen orders; invariants must hold in every interleaving.
    #[test]
    fn seeded_interleavings_preserve_reply_invariants() {
        for seed in 0..64u64 {
            // Inputs that may arrive in any order once two txns are in
            // flight: two executor results, ticks at various times, and
            // the shutdown broadcast.
            let mut f = fsm();
            let mut out = Vec::new();
            f.on_input(FsmInput::Bytes(&hello_bytes(2)), 0, &mut out);
            f.on_input(FsmInput::Bytes(&txn_bytes(100, 1, 100)), 0, &mut out);
            f.on_input(FsmInput::Bytes(&txn_bytes(101, 2, 100)), 0, &mut out);
            out.clear();

            // Shuffle event order with a keyed hash (no RNG state).
            let mut events: Vec<u32> = (0..5).collect();
            for i in (1..events.len()).rev() {
                let j = (splitmix64(seed ^ (i as u64) << 8) % (i as u64 + 1)) as usize;
                events.swap(i, j);
            }
            let mut clock = 10u64;
            for ev in events {
                clock += 40; // 50, 90, 130, ... — deadlines (100) expire mid-sequence
                match ev {
                    0 => f.on_input(
                        FsmInput::Executed {
                            session: 100,
                            client_txn: 1,
                            result: ExecResult::Committed {
                                token: Some(1),
                                commit_lsn: 1,
                                completed: 1,
                                done: false,
                            },
                        },
                        clock,
                        &mut out,
                    ),
                    1 => f.on_input(
                        FsmInput::Executed {
                            session: 101,
                            client_txn: 2,
                            result: ExecResult::RetryExhausted { attempts: 4 },
                        },
                        clock,
                        &mut out,
                    ),
                    2 | 3 => f.on_input(FsmInput::Tick, clock, &mut out),
                    _ => f.on_input(FsmInput::Shutdown, clock, &mut out),
                }
            }
            f.on_input(FsmInput::Shutdown, clock + 1, &mut out);

            // Invariant 1: exactly one reply per client txn, whatever
            // the interleaving (commit, typed error, or deadline).
            for txn in [1u64, 2u64] {
                let n = replies(&out)
                    .iter()
                    .filter(|r| match r {
                        Response::TxnOk { client_txn, .. } => *client_txn == txn,
                        Response::Error { client_txn, .. } => *client_txn == txn,
                        _ => false,
                    })
                    .count();
                assert_eq!(n, 1, "seed {seed}: txn {txn} got {n} replies");
            }
            // Invariant 2: the connection always ends Closed with
            // nothing in flight.
            assert_eq!(f.state(), ConnState::Closed, "seed {seed}");
            assert_eq!(f.inflight(), 0, "seed {seed}");
            // Invariant 3: exactly one Close action.
            let closes = out.iter().filter(|a| **a == FsmAction::Close).count();
            assert_eq!(closes, 1, "seed {seed}");
        }
    }

    #[test]
    fn drain_linger_keeps_idle_connection_probeable() {
        let mut f = ConnFsm::new(100, 500, 4, 1_000);
        let mut out = Vec::new();
        f.on_input(FsmInput::Bytes(&hello_bytes(1)), 0, &mut out);
        out.clear();
        // Drain begins with nothing in flight: with a linger the
        // connection stays open instead of closing on the spot.
        f.on_input(FsmInput::Shutdown, 10, &mut out);
        assert_eq!(f.state(), ConnState::Draining);
        assert!(out.is_empty(), "lingering connection stays open");
        // Read-only probes are still answered inside the window.
        f.on_input(
            FsmInput::Bytes(&Request::Stats.encode().encode()),
            500,
            &mut out,
        );
        assert!(out.contains(&FsmAction::SubmitStats));
        out.clear();
        // Ticks before the deadline leave it open; the deadline tick
        // closes it.
        f.on_input(FsmInput::Tick, 1_009, &mut out);
        assert_eq!(f.state(), ConnState::Draining);
        f.on_input(FsmInput::Tick, 1_010, &mut out);
        assert_eq!(f.state(), ConnState::Closed);
        assert_eq!(out.iter().filter(|a| **a == FsmAction::Close).count(), 1);
    }

    #[test]
    fn drain_linger_bye_closes_immediately() {
        let mut f = ConnFsm::new(100, 500, 4, 60_000);
        let mut out = Vec::new();
        f.on_input(FsmInput::Bytes(&hello_bytes(1)), 0, &mut out);
        f.on_input(FsmInput::Shutdown, 10, &mut out);
        out.clear();
        f.on_input(
            FsmInput::Bytes(&Request::Bye.encode().encode()),
            20,
            &mut out,
        );
        assert!(matches!(replies(&out).as_slice(), [Response::ByeOk]));
        assert_eq!(f.state(), ConnState::Closed, "BYE beats the linger");
    }
}
