//! Live-server telemetry: the [`ServeStats`] registry and its
//! versioned, byte-stable snapshot.
//!
//! The registry is the serve-path analog of the engine's
//! `MetricsRegistry`: atomic per-opcode request counters, typed-error
//! counters, gauges (sessions, queue depth, admission state) and
//! fixed-boundary log-bucketed latency histograms. Everything in this
//! module is **pure with respect to time and randomness** — latencies
//! arrive as microsecond stamps taken by the (impure) server, and both
//! renders ([`StatsSnapshot::to_json`] and
//! [`StatsSnapshot::to_prometheus`]) are plain functions of the
//! snapshot, so the module sits behind the CI determinism purity guard
//! alongside the wire protocol and the connection FSM.
//!
//! Two stability properties the tests and the stats golden pin:
//!
//! * the histogram bucket layout is **fixed** ([`HIST_BUCKETS`]
//!   power-of-two boundaries), so a snapshot's shape never depends on
//!   the values observed;
//! * [`StatsSnapshot::to_json`] renders one section per line, so the
//!   wall-clock-free sections (schema, counters, gauges) can be
//!   filtered out byte-stably for the `golden --suite stats` gate.

use std::sync::atomic::{AtomicU64, Ordering};

use super::protocol::ErrorKind;

/// Snapshot schema version, stamped into every render and carried in
/// the STATS response frame. Bump when a field is added, removed or
/// renamed so scrapers can detect incompatible servers.
pub const STATS_SCHEMA: u32 = 1;

/// Fixed bucket count of the log-bucketed latency histograms. Bucket 0
/// holds zero-microsecond observations; bucket `b ≥ 1` holds values in
/// `[2^(b-1), 2^b)` µs. Bucket 39 therefore absorbs everything above
/// ~4.6 days — no observable latency falls off the end.
pub const HIST_BUCKETS: usize = 40;

/// The latency phases recorded per request, in render order: the total
/// service time first, then the five attribution spans that partition
/// it exactly.
pub const SPAN_NAMES: [&str; 6] = [
    "total",
    "admission_wait",
    "lock_wait",
    "engine_exec",
    "commit_wait",
    "reply_write",
];

/// Bucket index for a microsecond value.
fn bucket_of(us: u64) -> usize {
    if us == 0 {
        0
    } else {
        (64 - us.leading_zeros() as usize).min(HIST_BUCKETS - 1)
    }
}

/// Inclusive upper bound of bucket `b`, in microseconds.
pub fn bucket_bound_us(b: usize) -> u64 {
    if b == 0 {
        0
    } else if b >= 63 {
        u64::MAX
    } else {
        (1u64 << b) - 1
    }
}

/// Lock-free fixed-boundary latency histogram. Counters are relaxed:
/// a snapshot taken concurrently with recording may be mid-update by
/// one observation, which is fine for telemetry — the drain-time
/// snapshot (all recorders joined) is exact.
pub struct AtomicHistogram {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum_us: AtomicU64,
    max_us: AtomicU64,
}

impl AtomicHistogram {
    /// Empty histogram.
    pub fn new() -> Self {
        AtomicHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
            max_us: AtomicU64::new(0),
        }
    }

    /// Record one observation.
    pub fn record(&self, us: u64) {
        self.buckets[bucket_of(us)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
        self.max_us.fetch_max(us, Ordering::Relaxed);
    }

    /// Copy out the current state.
    pub fn snapshot(&self) -> HistSnapshot {
        HistSnapshot {
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count.load(Ordering::Relaxed),
            sum_us: self.sum_us.load(Ordering::Relaxed),
            max_us: self.max_us.load(Ordering::Relaxed),
        }
    }
}

impl Default for AtomicHistogram {
    fn default() -> Self {
        Self::new()
    }
}

/// A plain copy of one histogram: always exactly [`HIST_BUCKETS`]
/// buckets, so the rendered shape is value-independent.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Per-bucket observation counts (fixed length).
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of all observations, in microseconds.
    pub sum_us: u64,
    /// Largest observation, in microseconds.
    pub max_us: u64,
}

impl HistSnapshot {
    /// Upper bound on the `q`-quantile (bucket upper boundary, clamped
    /// to the observed maximum). 0 when empty.
    pub fn quantile_bound_us(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (b, n) in self.buckets.iter().enumerate() {
            cum += n;
            if cum >= rank {
                return bucket_bound_us(b).min(self.max_us);
            }
        }
        self.max_us
    }

    /// Compact single-line JSON.
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"count\":{},\"sum_us\":{},\"max_us\":{},\"buckets\":[",
            self.count, self.sum_us, self.max_us
        );
        for (i, b) in self.buckets.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&b.to_string());
        }
        out.push_str("]}");
        out
    }
}

/// Per-opcode request counts. The pure connection FSM owns one and
/// increments it as frames parse; the (impure) driver diffs successive
/// copies into the atomic registry. Keeping the counting inside the FSM
/// means the per-opcode numbers are exact even when one byte buffer
/// carries several frames.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RequestCounts {
    /// HELLO frames parsed.
    pub hello: u64,
    /// TXN frames parsed (including ones later rejected).
    pub txn: u64,
    /// REPORT frames parsed.
    pub report: u64,
    /// STATS frames parsed.
    pub stats: u64,
    /// PING frames parsed.
    pub ping: u64,
    /// BYE frames parsed.
    pub bye: u64,
    /// SHUTDOWN frames parsed.
    pub shutdown: u64,
}

impl RequestCounts {
    /// Total requests across all opcodes.
    pub fn total(&self) -> u64 {
        self.hello + self.txn + self.report + self.stats + self.ping + self.bye + self.shutdown
    }
}

/// Microsecond timestamps (one clock, monotone) taken along a
/// transaction's path through the server. Spans are *differences of
/// consecutive stamps*, so they telescope: their sum equals
/// `replied_us - submitted_us` exactly, with zero residual, by
/// construction — the serve-path analog of the engine's
/// `ResponseBreakdown` invariant.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RequestStamps {
    /// Admitted and enqueued (t0).
    pub submitted_us: u64,
    /// Dequeued by an executor (t1): `t1 - t0` is admission wait.
    pub dequeued_us: u64,
    /// All object locks held (t2): `t2 - t1` is lock wait, including
    /// backoff sleeps between acquisition attempts.
    pub locked_us: u64,
    /// Ops applied and WAL records appended (t3): `t3 - t2` is engine
    /// execution.
    pub executed_us: u64,
    /// Group commit flushed and locks released (t4): `t4 - t3` is
    /// group-commit wait.
    pub committed_us: u64,
    /// TxnOk written to the socket (t5): `t5 - t4` is reply write,
    /// absorbing the executor→driver handoff.
    pub replied_us: u64,
}

impl RequestStamps {
    /// Total measured service time.
    pub fn total_us(&self) -> u64 {
        self.replied_us.saturating_sub(self.submitted_us)
    }
}

/// One request's service time split into the five attribution spans.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RequestSpans {
    /// Queue wait between admission and dequeue.
    pub admission_wait_us: u64,
    /// Lock acquisition, including conflict backoff.
    pub lock_wait_us: u64,
    /// Applying operations and appending WAL records.
    pub engine_exec_us: u64,
    /// Waiting for the group-commit force.
    pub commit_wait_us: u64,
    /// Writing the reply (and the executor→driver handoff).
    pub reply_write_us: u64,
}

impl RequestSpans {
    /// Derive the spans from a stamp sequence. Consecutive differences
    /// telescope, so [`RequestSpans::total_us`] equals
    /// [`RequestStamps::total_us`] exactly.
    pub fn from_stamps(s: &RequestStamps) -> RequestSpans {
        RequestSpans {
            admission_wait_us: s.dequeued_us.saturating_sub(s.submitted_us),
            lock_wait_us: s.locked_us.saturating_sub(s.dequeued_us),
            engine_exec_us: s.executed_us.saturating_sub(s.locked_us),
            commit_wait_us: s.committed_us.saturating_sub(s.executed_us),
            reply_write_us: s.replied_us.saturating_sub(s.committed_us),
        }
    }

    /// Sum of the five spans.
    pub fn total_us(&self) -> u64 {
        self.admission_wait_us
            + self.lock_wait_us
            + self.engine_exec_us
            + self.commit_wait_us
            + self.reply_write_us
    }

    /// `(span name, µs)` pairs in [`SPAN_NAMES`] order (without the
    /// leading `total`).
    pub fn named(&self) -> [(&'static str, u64); 5] {
        [
            ("admission_wait", self.admission_wait_us),
            ("lock_wait", self.lock_wait_us),
            ("engine_exec", self.engine_exec_us),
            ("commit_wait", self.commit_wait_us),
            ("reply_write", self.reply_write_us),
        ]
    }
}

/// One retained per-request attribution record, exported at drain for
/// the Chrome-trace server lane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestTraceRecord {
    /// Logical session the transaction ran under.
    pub session: u32,
    /// Client-assigned transaction id.
    pub client_txn: u64,
    /// Service start (µs since server start).
    pub start_us: u64,
    /// The attribution spans.
    pub spans: RequestSpans,
}

/// The registry: every live-telemetry counter, gauge and histogram the
/// server maintains. All methods are lock-free atomic updates.
pub struct ServeStats {
    // Per-opcode request counters (fed by RequestCounts deltas).
    req_hello: AtomicU64,
    req_txn: AtomicU64,
    req_report: AtomicU64,
    req_stats: AtomicU64,
    req_ping: AtomicU64,
    req_bye: AtomicU64,
    req_shutdown: AtomicU64,
    // Typed-error reply counters.
    err_overloaded: AtomicU64,
    err_deadline: AtomicU64,
    err_malformed: AtomicU64,
    err_shutting_down: AtomicU64,
    err_retry_exhausted: AtomicU64,
    err_internal: AtomicU64,
    // Progress counters.
    connections_total: AtomicU64,
    committed: AtomicU64,
    txn_ok: AtomicU64,
    acked: AtomicU64,
    group_commits: AtomicU64,
    group_forces: AtomicU64,
    group_txns: AtomicU64,
    // Gauges.
    connections_live: AtomicU64,
    sessions_live: AtomicU64,
    sessions_peak: AtomicU64,
    queue_depth: AtomicU64,
    admission_shedding: AtomicU64,
    // Latency histograms: total + the five spans.
    lat_total: AtomicHistogram,
    lat_admission: AtomicHistogram,
    lat_lock: AtomicHistogram,
    lat_exec: AtomicHistogram,
    lat_commit: AtomicHistogram,
    lat_reply: AtomicHistogram,
}

impl ServeStats {
    /// All-zero registry.
    pub fn new() -> Self {
        ServeStats {
            req_hello: AtomicU64::new(0),
            req_txn: AtomicU64::new(0),
            req_report: AtomicU64::new(0),
            req_stats: AtomicU64::new(0),
            req_ping: AtomicU64::new(0),
            req_bye: AtomicU64::new(0),
            req_shutdown: AtomicU64::new(0),
            err_overloaded: AtomicU64::new(0),
            err_deadline: AtomicU64::new(0),
            err_malformed: AtomicU64::new(0),
            err_shutting_down: AtomicU64::new(0),
            err_retry_exhausted: AtomicU64::new(0),
            err_internal: AtomicU64::new(0),
            connections_total: AtomicU64::new(0),
            committed: AtomicU64::new(0),
            txn_ok: AtomicU64::new(0),
            acked: AtomicU64::new(0),
            group_commits: AtomicU64::new(0),
            group_forces: AtomicU64::new(0),
            group_txns: AtomicU64::new(0),
            connections_live: AtomicU64::new(0),
            sessions_live: AtomicU64::new(0),
            sessions_peak: AtomicU64::new(0),
            queue_depth: AtomicU64::new(0),
            admission_shedding: AtomicU64::new(0),
            lat_total: AtomicHistogram::new(),
            lat_admission: AtomicHistogram::new(),
            lat_lock: AtomicHistogram::new(),
            lat_exec: AtomicHistogram::new(),
            lat_commit: AtomicHistogram::new(),
            lat_reply: AtomicHistogram::new(),
        }
    }

    /// A connection was accepted.
    pub fn conn_opened(&self) {
        self.connections_total.fetch_add(1, Ordering::SeqCst);
        self.connections_live.fetch_add(1, Ordering::SeqCst);
    }

    /// A connection closed.
    pub fn conn_closed(&self) {
        self.connections_live.fetch_sub(1, Ordering::SeqCst);
    }

    /// HELLO registered `n` sessions; tracks the peak.
    pub fn bump_sessions(&self, n: u64) {
        let live = self.sessions_live.fetch_add(n, Ordering::SeqCst) + n;
        self.sessions_peak.fetch_max(live, Ordering::SeqCst);
    }

    /// A connection carrying `n` sessions closed.
    pub fn drop_sessions(&self, n: u64) {
        self.sessions_live.fetch_sub(n, Ordering::SeqCst);
    }

    /// Fold the delta between two FSM request-count copies into the
    /// per-opcode counters.
    pub fn add_requests(&self, prev: &RequestCounts, now: &RequestCounts) {
        for (counter, was, is) in [
            (&self.req_hello, prev.hello, now.hello),
            (&self.req_txn, prev.txn, now.txn),
            (&self.req_report, prev.report, now.report),
            (&self.req_stats, prev.stats, now.stats),
            (&self.req_ping, prev.ping, now.ping),
            (&self.req_bye, prev.bye, now.bye),
            (&self.req_shutdown, prev.shutdown, now.shutdown),
        ] {
            let d = is.saturating_sub(was);
            if d > 0 {
                counter.fetch_add(d, Ordering::SeqCst);
            }
        }
    }

    /// A typed error reply was written.
    pub fn record_error(&self, kind: ErrorKind) {
        let counter = match kind {
            ErrorKind::Overloaded => &self.err_overloaded,
            ErrorKind::DeadlineExceeded => &self.err_deadline,
            ErrorKind::Malformed => &self.err_malformed,
            ErrorKind::ShuttingDown => &self.err_shutting_down,
            ErrorKind::RetryExhausted => &self.err_retry_exhausted,
            ErrorKind::Internal => &self.err_internal,
        };
        counter.fetch_add(1, Ordering::SeqCst);
    }

    /// A transaction committed; returns the completed count.
    pub fn record_commit(&self) -> u64 {
        self.committed.fetch_add(1, Ordering::SeqCst) + 1
    }

    /// A TxnOk reply was written (all successful transactions,
    /// including read-only fast-path and oracle-mode ones).
    pub fn record_txn_ok(&self) {
        self.txn_ok.fetch_add(1, Ordering::SeqCst);
    }

    /// A durable commit was acknowledged (token recorded for the
    /// drain-time ACID verdict).
    pub fn record_ack(&self) {
        self.acked.fetch_add(1, Ordering::SeqCst);
    }

    /// A group-commit batch of `txns` transactions flushed with
    /// `forces` physical log forces.
    pub fn record_group_flush(&self, txns: u64, forces: u64) {
        self.group_commits.fetch_add(1, Ordering::SeqCst);
        self.group_forces.fetch_add(forces, Ordering::SeqCst);
        self.group_txns.fetch_add(txns, Ordering::SeqCst);
    }

    /// A job entered the bounded execution queue.
    pub fn queue_enter(&self) {
        self.queue_depth.fetch_add(1, Ordering::SeqCst);
    }

    /// A job left the queue.
    pub fn queue_leave(&self) {
        self.queue_depth.fetch_sub(1, Ordering::SeqCst);
    }

    /// Current queue depth (the admission controller's input).
    pub fn queue_depth(&self) -> u64 {
        self.queue_depth.load(Ordering::SeqCst)
    }

    /// Mirror the admission controller's shed state as a gauge.
    pub fn set_admission_shedding(&self, shedding: bool) {
        self.admission_shedding
            .store(u64::from(shedding), Ordering::SeqCst);
    }

    /// Record one completed request's stamps: derives the spans,
    /// records each span histogram and the total-service-time
    /// histogram, and returns the spans for trace retention. The
    /// telescoping construction makes the per-phase sums reconcile
    /// exactly with the total histogram's sum.
    pub fn record_request_latency(&self, stamps: &RequestStamps) -> RequestSpans {
        let spans = RequestSpans::from_stamps(stamps);
        debug_assert_eq!(
            spans.total_us(),
            stamps.total_us(),
            "attribution residual must be zero"
        );
        self.lat_total.record(stamps.total_us());
        self.lat_admission.record(spans.admission_wait_us);
        self.lat_lock.record(spans.lock_wait_us);
        self.lat_exec.record(spans.engine_exec_us);
        self.lat_commit.record(spans.commit_wait_us);
        self.lat_reply.record(spans.reply_write_us);
        spans
    }

    /// Copy every counter, gauge and histogram into a plain snapshot.
    /// `uptime_ms` and `draining` come from the caller — the registry
    /// itself never reads a clock or the shutdown flag.
    pub fn snapshot(&self, uptime_ms: u64, draining: bool) -> StatsSnapshot {
        let c = |a: &AtomicU64| a.load(Ordering::SeqCst);
        StatsSnapshot {
            schema: STATS_SCHEMA,
            uptime_ms,
            counters: vec![
                ("req.hello", c(&self.req_hello)),
                ("req.txn", c(&self.req_txn)),
                ("req.report", c(&self.req_report)),
                ("req.stats", c(&self.req_stats)),
                ("req.ping", c(&self.req_ping)),
                ("req.bye", c(&self.req_bye)),
                ("req.shutdown", c(&self.req_shutdown)),
                ("err.overloaded", c(&self.err_overloaded)),
                ("err.deadline", c(&self.err_deadline)),
                ("err.malformed", c(&self.err_malformed)),
                ("err.shutting_down", c(&self.err_shutting_down)),
                ("err.retry_exhausted", c(&self.err_retry_exhausted)),
                ("err.internal", c(&self.err_internal)),
                ("connections", c(&self.connections_total)),
                ("committed", c(&self.committed)),
                ("txn_ok", c(&self.txn_ok)),
                ("acked", c(&self.acked)),
                ("group_commits", c(&self.group_commits)),
                ("group_forces", c(&self.group_forces)),
                ("group_txns", c(&self.group_txns)),
            ],
            gauges: vec![
                ("connections_live", c(&self.connections_live)),
                ("sessions_live", c(&self.sessions_live)),
                ("sessions_peak", c(&self.sessions_peak)),
                ("queue_depth", c(&self.queue_depth)),
                ("admission_shedding", c(&self.admission_shedding)),
                ("draining", u64::from(draining)),
            ],
            latency_us: vec![
                ("total", self.lat_total.snapshot()),
                ("admission_wait", self.lat_admission.snapshot()),
                ("lock_wait", self.lat_lock.snapshot()),
                ("engine_exec", self.lat_exec.snapshot()),
                ("commit_wait", self.lat_commit.snapshot()),
                ("reply_write", self.lat_reply.snapshot()),
            ],
            slo: None,
        }
    }
}

impl Default for ServeStats {
    fn default() -> Self {
        Self::new()
    }
}

/// A plain, versioned copy of the whole registry. Rendering is pure.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StatsSnapshot {
    /// [`STATS_SCHEMA`] at capture time.
    pub schema: u32,
    /// Milliseconds since the server started.
    pub uptime_ms: u64,
    /// Monotone counters, in fixed render order.
    pub counters: Vec<(&'static str, u64)>,
    /// Point-in-time gauges, in fixed render order.
    pub gauges: Vec<(&'static str, u64)>,
    /// Latency histograms, keyed by [`SPAN_NAMES`].
    pub latency_us: Vec<(&'static str, HistSnapshot)>,
    /// Rolling SLO summary, when the tracker has observed any ticks.
    pub slo: Option<super::slo::SloSummary>,
}

impl StatsSnapshot {
    /// Look up a counter by name (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| *n == name)
            .map_or(0, |(_, v)| *v)
    }

    /// Look up a gauge by name (0 when absent).
    pub fn gauge(&self, name: &str) -> u64 {
        self.gauges
            .iter()
            .find(|(n, _)| *n == name)
            .map_or(0, |(_, v)| *v)
    }

    /// Look up a latency histogram by phase name.
    pub fn latency(&self, phase: &str) -> Option<&HistSnapshot> {
        self.latency_us
            .iter()
            .find(|(n, _)| *n == phase)
            .map(|(_, h)| h)
    }

    fn section(pairs: &[(&'static str, u64)]) -> String {
        let mut out = String::from("{");
        for (i, (k, v)) in pairs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{k:?}:{v}"));
        }
        out.push('}');
        out
    }

    /// Canonical JSON, one section per line:
    ///
    /// ```json
    /// {"stats_schema":1,
    /// "uptime_ms":…,
    /// "counters":{…},
    /// "gauges":{…},
    /// "latency_us":{…},
    /// "slo":{…}}
    /// ```
    ///
    /// The line-per-section layout is load-bearing: the stats golden
    /// keeps only the wall-clock-free lines (schema, counters, gauges)
    /// by prefix.
    pub fn to_json(&self) -> String {
        let mut out = format!("{{\"stats_schema\":{},\n", self.schema);
        out.push_str(&format!("\"uptime_ms\":{},\n", self.uptime_ms));
        out.push_str(&format!(
            "\"counters\":{},\n",
            Self::section(&self.counters)
        ));
        out.push_str(&format!("\"gauges\":{},\n", Self::section(&self.gauges)));
        out.push_str("\"latency_us\":{");
        for (i, (name, hist)) in self.latency_us.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{name:?}:{}", hist.to_json()));
        }
        out.push_str("},\n");
        match &self.slo {
            Some(slo) => out.push_str(&format!("\"slo\":{}}}\n", slo.to_json())),
            None => out.push_str("\"slo\":null}\n"),
        }
        out
    }

    /// Prometheus text exposition format (v0.0.4): counters as
    /// `semcluster_*_total`, gauges bare, histograms with cumulative
    /// `le` buckets plus `_sum`/`_count`, one `phase` label per span.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        out.push_str("# HELP semcluster_stats_schema Snapshot schema version.\n");
        out.push_str("# TYPE semcluster_stats_schema gauge\n");
        out.push_str(&format!("semcluster_stats_schema {}\n", self.schema));
        out.push_str("# HELP semcluster_uptime_ms Milliseconds since server start.\n");
        out.push_str("# TYPE semcluster_uptime_ms gauge\n");
        out.push_str(&format!("semcluster_uptime_ms {}\n", self.uptime_ms));
        out.push_str("# HELP semcluster_requests_total Requests received, by opcode.\n");
        out.push_str("# TYPE semcluster_requests_total counter\n");
        for (name, v) in &self.counters {
            if let Some(op) = name.strip_prefix("req.") {
                out.push_str(&format!(
                    "semcluster_requests_total{{opcode=\"{op}\"}} {v}\n"
                ));
            }
        }
        out.push_str("# HELP semcluster_errors_total Typed error replies written, by kind.\n");
        out.push_str("# TYPE semcluster_errors_total counter\n");
        for (name, v) in &self.counters {
            if let Some(kind) = name.strip_prefix("err.") {
                out.push_str(&format!("semcluster_errors_total{{kind=\"{kind}\"}} {v}\n"));
            }
        }
        for (name, v) in &self.counters {
            if name.contains('.') {
                continue;
            }
            out.push_str(&format!("# TYPE semcluster_{name}_total counter\n"));
            out.push_str(&format!("semcluster_{name}_total {v}\n"));
        }
        for (name, v) in &self.gauges {
            out.push_str(&format!("# TYPE semcluster_{name} gauge\n"));
            out.push_str(&format!("semcluster_{name} {v}\n"));
        }
        out.push_str(
            "# HELP semcluster_latency_us Request service time by attribution phase, µs.\n",
        );
        out.push_str("# TYPE semcluster_latency_us histogram\n");
        for (phase, hist) in &self.latency_us {
            let mut cum = 0u64;
            for (b, n) in hist.buckets.iter().enumerate() {
                cum += n;
                // Suppress interior all-zero prefixes? No: fixed shape.
                out.push_str(&format!(
                    "semcluster_latency_us_bucket{{phase=\"{phase}\",le=\"{}\"}} {cum}\n",
                    bucket_bound_us(b)
                ));
            }
            out.push_str(&format!(
                "semcluster_latency_us_bucket{{phase=\"{phase}\",le=\"+Inf\"}} {}\n",
                hist.count
            ));
            out.push_str(&format!(
                "semcluster_latency_us_sum{{phase=\"{phase}\"}} {}\n",
                hist.sum_us
            ));
            out.push_str(&format!(
                "semcluster_latency_us_count{{phase=\"{phase}\"}} {}\n",
                hist.count
            ));
        }
        if let Some(slo) = &self.slo {
            for (name, v) in [
                ("slo_window_ticks", slo.window_ticks),
                ("slo_p50_us", slo.p50_us),
                ("slo_p99_us", slo.p99_us),
                ("slo_error_ppm", slo.error_ppm),
                ("slo_shed_ppm", slo.shed_ppm),
            ] {
                out.push_str(&format!("# TYPE semcluster_{name} gauge\n"));
                out.push_str(&format!("semcluster_{name} {v}\n"));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_log2_with_fixed_shape() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), HIST_BUCKETS - 1);
        assert_eq!(bucket_bound_us(0), 0);
        assert_eq!(bucket_bound_us(1), 1);
        assert_eq!(bucket_bound_us(2), 3);
        assert_eq!(bucket_bound_us(11), 2047);
        let h = AtomicHistogram::new();
        let empty = h.snapshot();
        assert_eq!(empty.buckets.len(), HIST_BUCKETS);
        h.record(5);
        h.record(900);
        let snap = h.snapshot();
        assert_eq!(snap.buckets.len(), HIST_BUCKETS, "shape is value-free");
        assert_eq!(snap.count, 2);
        assert_eq!(snap.sum_us, 905);
        assert_eq!(snap.max_us, 900);
        assert_eq!(snap.quantile_bound_us(0.5), 7);
        assert_eq!(snap.quantile_bound_us(0.99), 900, "clamped to max");
    }

    #[test]
    fn spans_telescope_to_zero_residual() {
        // Arbitrary monotone stamps: the spans must sum exactly.
        let stamps = RequestStamps {
            submitted_us: 1_003,
            dequeued_us: 1_247,
            locked_us: 1_251,
            executed_us: 1_893,
            committed_us: 4_001,
            replied_us: 4_020,
        };
        let spans = RequestSpans::from_stamps(&stamps);
        assert_eq!(spans.total_us(), stamps.total_us());
        assert_eq!(spans.admission_wait_us, 244);
        assert_eq!(spans.reply_write_us, 19);
        let stats = ServeStats::new();
        stats.record_request_latency(&stamps);
        let snap = stats.snapshot(0, false);
        let total = snap.latency("total").unwrap();
        let span_sum: u64 = RequestSpans::from_stamps(&stamps)
            .named()
            .iter()
            .map(|(_, v)| v)
            .sum();
        assert_eq!(total.sum_us, span_sum, "zero residual in the registry");
        assert_eq!(total.count, 1);
    }

    #[test]
    fn snapshot_render_is_sectioned_and_stable() {
        let stats = ServeStats::new();
        stats.conn_opened();
        stats.bump_sessions(3);
        stats.add_requests(
            &RequestCounts::default(),
            &RequestCounts {
                hello: 1,
                txn: 4,
                ping: 1,
                ..RequestCounts::default()
            },
        );
        stats.record_error(ErrorKind::Overloaded);
        let a = stats.snapshot(123, false).to_json();
        let b = stats.snapshot(123, false).to_json();
        assert_eq!(a, b, "same state renders byte-identically");
        assert!(a.starts_with("{\"stats_schema\":1,\n"));
        assert!(a.contains("\n\"counters\":{\"req.hello\":1,\"req.txn\":4,"));
        assert!(a.contains("\"err.overloaded\":1"));
        assert!(a.contains("\n\"gauges\":{\"connections_live\":1,\"sessions_live\":3,"));
        assert!(a.contains("\"slo\":null}"));
        // Sections land on their own lines (the golden filter contract).
        assert!(a.lines().any(|l| l.starts_with("\"counters\":")));
        assert!(a.lines().any(|l| l.starts_with("\"gauges\":")));
        assert!(a.lines().any(|l| l.starts_with("\"latency_us\":")));
    }

    #[test]
    fn prometheus_exposition_is_well_formed() {
        let stats = ServeStats::new();
        stats.record_request_latency(&RequestStamps {
            submitted_us: 0,
            dequeued_us: 10,
            locked_us: 12,
            executed_us: 40,
            committed_us: 300,
            replied_us: 305,
        });
        let text = stats.snapshot(50, true).to_prometheus();
        let mut typed: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                typed.insert(rest.split(' ').next().unwrap().to_string());
                continue;
            }
            if line.starts_with('#') {
                continue;
            }
            // Every sample is `name[{labels}] value` with a numeric value.
            let (name_part, value) = line.rsplit_once(' ').expect("sample has a value");
            assert!(value.parse::<f64>().is_ok(), "bad value in {line:?}");
            let metric = name_part.split('{').next().unwrap();
            let base = metric
                .trim_end_matches("_bucket")
                .trim_end_matches("_sum")
                .trim_end_matches("_count");
            assert!(
                typed.contains(metric) || typed.contains(base),
                "sample {metric:?} has no TYPE declaration"
            );
        }
        // Histogram contract: cumulative buckets end at +Inf == count.
        assert!(text.contains("le=\"+Inf\"}"));
        assert!(text.contains("semcluster_latency_us_count{phase=\"total\"} 1"));
        assert!(text.contains("semcluster_draining 1"));
        assert!(text.contains("semcluster_requests_total{opcode=\"txn\"} 0"));
    }
}
