//! # semcluster
//!
//! A full reproduction of **Chang & Katz, "Exploiting Inheritance and
//! Structure Semantics for Effective Clustering and Buffering in an
//! Object-Oriented DBMS"** (SIGMOD 1989 / UCB-CSD 88-473): the Version
//! Data Model, a run-time clustering engine, a context-sensitive buffer
//! manager, transaction logging, and the discrete-event simulation that
//! evaluates them under parameterised CAD workloads.
//!
//! The crate integrates the substrate crates into a closed queueing
//! network (Figure 4.1 of the paper): interactive users with think times,
//! a file server with CPU, buffer pool, cluster manager and log manager,
//! and a bank of FCFS disks.
//!
//! ```no_run
//! use semcluster::{run_simulation, SimConfig};
//! use semcluster_clustering::ClusteringPolicy;
//! use semcluster_workload::StructureDensity;
//!
//! let cfg = SimConfig::default()
//!     .with_workload(StructureDensity::High10, 100.0)
//!     .with_clustering(ClusteringPolicy::NoLimit);
//! let report = run_simulation(cfg);
//! println!("mean response: {:.3}s", report.mean_response_s);
//! ```

#![warn(missing_docs)]

mod config;
mod crash;
mod durable;
mod engine;
mod error;
mod metrics;
mod presets;
mod runner;
pub mod serve;
mod sweep;

pub use config::SimConfig;
pub use crash::{
    run_crash_matrix, CrashMatrixConfig, CrashMatrixReport, CrashOutcome, CrashPointResult,
    MatrixBackend,
};
pub use durable::{DurableMirror, FileCrashArtifacts, MirrorStats};
pub use engine::{
    run_simulation, run_simulation_observed, run_simulation_with_obs, Engine, ObsConfig,
    RunObservations,
};
pub use error::EngineError;
pub use metrics::{IoBreakdown, MetricsCollector, ResponseBreakdown, RunReport, SpanBreakdown};
pub use presets::{
    buffering_study_base, clustering_study_base, figure_5_11_combos, workload_from_label,
};
pub use runner::{
    replication_config, run_replicated, run_replicated_observed, run_replicated_with_obs,
    ReplicatedResult,
};
pub use semcluster_faults::{CrashPoint, FaultConfig, FaultStats};
pub use sweep::{
    default_parallelism, SinkFactory, SweepError, SweepItem, SweepJob, SweepOutcome, SweepRunner,
    SweepSummary,
};
