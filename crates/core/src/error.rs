//! Typed errors on the engine's run path.
//!
//! The seed engine treated every I/O as infallible; with fault
//! injection a page read or write can exhaust its retry budget, and
//! placement can (in principle) find no feasible page. These are run
//! conditions, not programming errors, so they surface as
//! [`EngineError`] — the owning transaction aborts and the run
//! continues — while genuine invariant violations remain panics.

use semcluster_faults::IoError;

/// A recoverable failure on the run path. Aborts the owning
/// transaction; the run itself continues.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// A physical page I/O exhausted its retry budget.
    Io(IoError),
    /// No feasible placement could be found for an object.
    Placement {
        /// Object being placed.
        object: u32,
        /// What went wrong.
        detail: &'static str,
    },
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Io(e) => write!(f, "io: {e}"),
            EngineError::Placement { object, detail } => {
                write!(f, "placement of object {object} failed: {detail}")
            }
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Io(e) => Some(e),
            EngineError::Placement { .. } => None,
        }
    }
}

impl From<IoError> for EngineError {
    fn from(e: IoError) -> Self {
        EngineError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use semcluster_faults::IoOp;

    #[test]
    fn display_is_informative() {
        let e = EngineError::Io(IoError {
            op: IoOp::Read,
            page: 12,
            disk: 3,
            attempts: 4,
            at_us: 9000,
        });
        let s = e.to_string();
        assert!(s.contains("page 12"), "{s}");
        assert!(s.contains("disk 3"), "{s}");
        assert!(s.contains("4 attempts"), "{s}");
    }
}
