//! Property-based equivalence tests for the arena-backed hot paths.
//!
//! The data-oriented refactor replaced the map-based scoring pipeline
//! (`weighted_neighbors` / `extended_neighbors` / `candidate_pages`) with
//! dense-accumulator `_in` variants that reuse a caller-owned
//! [`ScoreScratch`]. The map-based functions are kept as the reference
//! implementations; these tests drive both over randomized databases,
//! placements, policies and residency views and require *identical*
//! results — not just the same winner, but the same scores, the same
//! order, the same examined lists and the same charged search I/O. Any
//! divergence is a golden-output break waiting to happen.

use proptest::prelude::*;
use semcluster_buffer::AccessHint;
use semcluster_clustering::{
    candidate_pages, candidate_pages_in, extended_neighbors, extended_neighbors_in, plan_placement,
    plan_placement_in, plan_recluster, plan_recluster_in, weighted_neighbors,
    weighted_neighbors_in, AllResident, ClusteringPolicy, ResidencyView, ScoreScratch, WeightModel,
};
use semcluster_storage::{PageId, StorageManager, DEFAULT_PAGE_BYTES};
use semcluster_vdm::{Database, ObjectId, SyntheticDbSpec};

/// Deterministic pseudo-random residency: a pure function of (salt,
/// page), so the reference and arena paths observe the same view without
/// sharing mutable state.
struct HashResident {
    salt: u64,
    density: u64,
}

impl ResidencyView for HashResident {
    fn is_resident(&self, page: PageId) -> bool {
        let mixed = (page.index() as u64 ^ self.salt).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        (mixed >> 33) % 4 < self.density
    }
}

fn policies() -> impl Strategy<Value = ClusteringPolicy> {
    prop_oneof![
        Just(ClusteringPolicy::NoCluster),
        Just(ClusteringPolicy::WithinBuffer),
        (0u32..4).prop_map(ClusteringPolicy::IoLimit),
        Just(ClusteringPolicy::NoLimit),
    ]
}

fn models() -> impl Strategy<Value = WeightModel> {
    prop_oneof![
        Just(WeightModel::no_hints()),
        Just(WeightModel::with_hint(AccessHint::None)),
        Just(WeightModel::with_hint(AccessHint::ByConfiguration)),
        Just(WeightModel::with_hint(AccessHint::ByVersionHistory)),
        Just(WeightModel::with_hint(AccessHint::ByCorrespondence)),
        Just(WeightModel::with_hint(AccessHint::ByInheritance)),
    ]
}

/// Build a random database and scatter its objects across pages: objects
/// load in creation order, then a salt-driven subset migrates to freshly
/// allocated pages so candidate pools span many partially-filled pages.
fn build_world(spec: &SyntheticDbSpec, scatter_salt: u64) -> (Database, StorageManager) {
    let (db, _) = spec.build();
    let mut store = StorageManager::new(DEFAULT_PAGE_BYTES);
    let ids: Vec<(ObjectId, u32)> = db.objects().map(|o| (o.id, o.size_bytes())).collect();
    for &(id, size) in &ids {
        store
            .append(id, size.min(DEFAULT_PAGE_BYTES / 2))
            .expect("synthetic object fits a page");
    }
    let mut state = scatter_salt | 1;
    let mut fresh: Option<PageId> = None;
    for &(id, _) in &ids {
        // xorshift64: cheap, deterministic, good enough to scatter.
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        match state % 4 {
            0 => {
                let page = *fresh.get_or_insert_with(|| store.allocate_page());
                if store.move_object(id, page).is_err() {
                    fresh = None;
                }
            }
            1 => fresh = None,
            _ => {}
        }
    }
    (db, store)
}

fn spec_strategy() -> impl Strategy<Value = SyntheticDbSpec> {
    (
        1usize..=3,
        1usize..=3,
        (1usize..=2, 2usize..=4),
        0.0f64..1.0,
        0.0f64..1.0,
        any::<u64>(),
    )
        .prop_map(
            |(modules, depth, fanout, corr, ver, seed)| SyntheticDbSpec {
                modules,
                depth,
                fanout,
                correspondence_prob: corr,
                version_prob: ver,
                seed,
                ..SyntheticDbSpec::default()
            },
        )
}

proptest! {
    /// The dense-accumulator scoring pipeline leaves exactly the
    /// reference results in scratch — same neighbours, same weights,
    /// same order — even when the scratch is reused dirty across
    /// objects of different degrees.
    #[test]
    fn scoring_pipeline_matches_reference(
        spec in spec_strategy(),
        scatter in any::<u64>(),
        model in models(),
    ) {
        let (db, store) = build_world(&spec, scatter);
        let mut scratch = ScoreScratch::new();
        for probe in (0..db.object_count()).step_by(3) {
            let object = ObjectId(probe as u32);
            let direct = weighted_neighbors(&db, &model, object);
            let extended = extended_neighbors(&db, &model, object);
            let pages = candidate_pages(&store, &extended);

            weighted_neighbors_in(&db, &model, object, &mut scratch);
            prop_assert_eq!(&scratch.direct, &direct, "direct neighbours diverge");
            extended_neighbors_in(&db, &model, object, &mut scratch);
            prop_assert_eq!(&scratch.extended, &extended, "extended neighbours diverge");
            candidate_pages_in(&store, &mut scratch);
            prop_assert_eq!(&scratch.pages, &pages, "candidate pages diverge");
        }
    }

    /// Placement planning through a reused scratch produces bit-identical
    /// plans (target, examined list, scores, search I/O) to the
    /// throwaway-scratch reference across policies, hints and residency.
    #[test]
    fn placement_plans_match_reference(
        spec in spec_strategy(),
        scatter in any::<u64>(),
        policy in policies(),
        model in models(),
        salt in any::<u64>(),
        density in 0u64..=4,
        size in 16u32..600,
    ) {
        let (db, store) = build_world(&spec, scatter);
        let residency = HashResident { salt, density };
        let mut scratch = ScoreScratch::new();
        for probe in (0..db.object_count()).step_by(4) {
            let object = ObjectId(probe as u32);
            let reference = plan_placement(&db, &store, &residency, policy, &model, object, size);
            let arena =
                plan_placement_in(&db, &store, &residency, policy, &model, object, size, &mut scratch);
            prop_assert_eq!(&arena, &reference, "placement plan diverges for {:?}", object);
            scratch.put_examined(arena.examined);

            // The always-resident view must never charge search I/O.
            let warm = plan_placement_in(
                &db, &store, &AllResident, policy, &model, object, size, &mut scratch,
            );
            prop_assert_eq!(warm.search_ios, 0, "AllResident charged I/O");
            scratch.put_examined(warm.examined);
        }
    }

    /// Recluster planning through a reused scratch matches the
    /// throwaway-scratch reference: same move-or-stay decision, same
    /// gain, same examined candidates, same search I/O.
    #[test]
    fn recluster_plans_match_reference(
        spec in spec_strategy(),
        scatter in any::<u64>(),
        policy in policies(),
        model in models(),
        salt in any::<u64>(),
        density in 0u64..=4,
        min_gain in 0.0f64..2.0,
    ) {
        let (db, store) = build_world(&spec, scatter);
        let residency = HashResident { salt, density };
        let mut scratch = ScoreScratch::new();
        for probe in (0..db.object_count()).step_by(4) {
            let object = ObjectId(probe as u32);
            let reference =
                plan_recluster(&db, &store, &residency, policy, &model, object, min_gain);
            let arena = plan_recluster_in(
                &db, &store, &residency, policy, &model, object, min_gain, &mut scratch,
            );
            prop_assert_eq!(&arena, &reference, "recluster plan diverges for {:?}", object);
            if let Some(plan) = arena {
                prop_assert!(plan.gain > min_gain, "sub-threshold move planned");
                scratch.put_examined(plan.examined);
            }
        }
    }
}
