//! Property-based tests for the clustering engine.

use proptest::prelude::*;
use semcluster_clustering::{linear_split, optimal_split, DependencyGraph, Partition};
use semcluster_vdm::ObjectId;

fn graph_strategy(max_nodes: usize) -> impl Strategy<Value = (DependencyGraph, u32)> {
    (2usize..=max_nodes)
        .prop_flat_map(move |n| {
            let sizes = proptest::collection::vec(10u32..400, n..=n);
            let arcs =
                proptest::collection::vec((0u32..n as u32, 0u32..n as u32, 0.1f64..10.0), 0..n * 2);
            (Just(n), sizes, arcs)
        })
        .prop_map(|(n, sizes, raw_arcs)| {
            let mut arcs: Vec<(u32, u32, f64)> = raw_arcs
                .into_iter()
                .filter(|&(a, b, _)| a != b)
                .map(|(a, b, w)| if a < b { (a, b, w) } else { (b, a, w) })
                .collect();
            arcs.sort_by(|x, y| y.2.partial_cmp(&x.2).unwrap());
            arcs.dedup_by_key(|&mut (a, b, _)| (a, b));
            let total: u32 = sizes.iter().sum();
            // Capacity that always admits some split: at least the largest
            // node and at least half the total.
            let capacity = sizes.iter().copied().max().unwrap().max(total / 2 + 400);
            (
                DependencyGraph {
                    objects: (0..n as u32).map(ObjectId).collect(),
                    sizes,
                    arcs,
                },
                capacity,
            )
        })
}

fn check_partition(g: &DependencyGraph, p: &Partition, capacity: u32) -> Result<(), TestCaseError> {
    // Every node exactly once.
    let mut seen = vec![false; g.len()];
    for &i in p.left.iter().chain(&p.right) {
        prop_assert!(!seen[i as usize], "node {i} assigned twice");
        seen[i as usize] = true;
    }
    prop_assert!(seen.iter().all(|&b| b), "some node unassigned");
    prop_assert!(
        !p.left.is_empty() && !p.right.is_empty(),
        "degenerate split"
    );
    // Sides fit.
    for side in [&p.left, &p.right] {
        let bytes: u64 = side.iter().map(|&i| g.sizes[i as usize] as u64).sum();
        prop_assert!(bytes <= capacity as u64, "side overflows capacity");
    }
    // Reported broken cost matches the assignment.
    let mut on_right = vec![false; g.len()];
    for &i in &p.right {
        on_right[i as usize] = true;
    }
    let actual: f64 = g
        .arcs
        .iter()
        .filter(|&&(a, b, _)| on_right[a as usize] != on_right[b as usize])
        .map(|&(_, _, w)| w)
        .sum();
    prop_assert!((actual - p.broken_cost).abs() < 1e-9, "cost mismatch");
    Ok(())
}

proptest! {
    /// Both partitioners always produce valid partitions, and the exact
    /// one is never worse than the greedy one.
    #[test]
    fn partitions_valid_and_optimal_dominates((g, capacity) in graph_strategy(12)) {
        let lin = linear_split(&g, capacity);
        let opt = optimal_split(&g, capacity);
        match (lin, opt) {
            (Ok(lin), Ok(opt)) => {
                check_partition(&g, &lin, capacity)?;
                check_partition(&g, &opt, capacity)?;
                prop_assert!(opt.exact);
                prop_assert!(
                    opt.broken_cost <= lin.broken_cost + 1e-9,
                    "optimal {} worse than greedy {}",
                    opt.broken_cost,
                    lin.broken_cost
                );
            }
            // If the exact enumerator can pack, the greedy fallback paths
            // might still fail, but not vice versa on these capacities.
            (Err(_), Ok(opt)) => {
                check_partition(&g, &opt, capacity)?;
            }
            (Ok(_), Err(_)) | (Err(_), Err(_)) => {}
        }
    }

    /// The heuristic fallback for large graphs is still a valid partition.
    #[test]
    fn large_graph_fallback_is_valid((g, capacity) in graph_strategy(30)) {
        if let Ok(p) = optimal_split(&g, capacity) {
            check_partition(&g, &p, capacity)?;
        }
        if let Ok(p) = linear_split(&g, capacity) {
            check_partition(&g, &p, capacity)?;
        }
    }

    /// Broken cost never exceeds the graph's total arc weight.
    #[test]
    fn broken_cost_bounded((g, capacity) in graph_strategy(10)) {
        let total = g.total_arc_weight();
        if let Ok(p) = linear_split(&g, capacity) {
            prop_assert!(p.broken_cost <= total + 1e-9);
        }
        if let Ok(p) = optimal_split(&g, capacity) {
            prop_assert!(p.broken_cost <= total + 1e-9);
        }
    }
}
