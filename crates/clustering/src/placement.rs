//! Initial placement and the candidate-page search.
//!
//! For each newly created instance the algorithm ranks candidate pages by
//! *affinity* — the summed arc weight of related objects resident on the
//! page — and walks them best-first until one with room is found. The
//! candidate-pool policy (§2.1a) bounds how many **non-resident** pages
//! the search may read:
//!
//! * `Cluster_within_Buffer` — only pages in the buffer pool; zero I/O;
//! * `k_IO_limit` — at most `k` candidate pages fetched from disk;
//! * `No_limit` — the entire database is fair game.
//!
//! The search result is a *plan*; the simulation engine executes it so the
//! candidate-page reads flow through the buffer manager and get charged to
//! the writer's response time.

use crate::arena::ScoreScratch;
use crate::config::ClusteringPolicy;
use crate::cost::{candidate_pages_in, extended_neighbors_in, weighted_neighbors_in, WeightModel};
use semcluster_buffer::BufferPool;
use semcluster_storage::{PageId, StorageError, StorageManager};
use semcluster_vdm::{Database, ObjectId};

/// Pages the candidate search can examine without I/O.
pub trait ResidencyView {
    /// Whether `page` is in memory.
    fn is_resident(&self, page: PageId) -> bool;
}

impl ResidencyView for BufferPool {
    fn is_resident(&self, page: PageId) -> bool {
        self.contains(page)
    }
}

/// A residency view that treats every page as in memory (useful for bulk
/// loading, where the search should not be residency-constrained).
#[derive(Debug, Clone, Copy, Default)]
pub struct AllResident;

impl ResidencyView for AllResident {
    fn is_resident(&self, _page: PageId) -> bool {
        true
    }
}

/// Where the plan wants the object.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacementTarget {
    /// Place on an existing candidate page.
    Existing(PageId),
    /// No viable candidate: append at the sequential cursor.
    Append,
}

/// One page the candidate search examined, with the facts the decision
/// was based on — the raw material for placement audit records.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExaminedCandidate {
    /// The candidate page.
    pub page: PageId,
    /// Its score at decision time: placement affinity for the create
    /// search, expected-cost gain (possibly negative) for reclustering.
    pub score: f64,
    /// Whether the object fit on the page.
    pub fits: bool,
}

/// Output of the candidate search.
#[derive(Debug, Clone, PartialEq)]
pub struct PlacementPlan {
    /// Chosen target.
    pub target: PlacementTarget,
    /// The highest-affinity candidate that was examined but full —
    /// the page-splitting decision (§2.1b) applies to this page.
    pub preferred_full: Option<PageId>,
    /// Affinity of the preferred-full page (0 if none).
    pub preferred_full_affinity: f64,
    /// Non-resident candidate pages read during the search (each is a
    /// physical I/O charged to the writing transaction).
    pub search_ios: u32,
    /// Every page the search examined, in examination order, with its
    /// affinity and whether it had room.
    pub examined: Vec<ExaminedCandidate>,
    /// Affinity of the chosen target (0 for append).
    pub chosen_affinity: f64,
}

/// Rank candidates and find a home for `object` of `size` bytes.
///
/// Convenience wrapper over [`plan_placement_in`] with throwaway scratch;
/// hot paths should own a [`ScoreScratch`] and call the `_in` variant.
pub fn plan_placement(
    db: &Database,
    store: &StorageManager,
    residency: &impl ResidencyView,
    policy: ClusteringPolicy,
    model: &WeightModel,
    object: ObjectId,
    size: u32,
) -> PlacementPlan {
    let mut scratch = ScoreScratch::new();
    plan_placement_in(
        db,
        store,
        residency,
        policy,
        model,
        object,
        size,
        &mut scratch,
    )
}

/// Rank candidates and find a home for `object` of `size` bytes, using
/// `scratch` for every intermediate — the only allocation-visible state
/// is the plan's `examined` list, which is recycled from `scratch` and
/// should be handed back with [`ScoreScratch::put_examined`] once the
/// plan has been consumed.
#[allow(clippy::too_many_arguments)]
pub fn plan_placement_in(
    db: &Database,
    store: &StorageManager,
    residency: &impl ResidencyView,
    policy: ClusteringPolicy,
    model: &WeightModel,
    object: ObjectId,
    size: u32,
    scratch: &mut ScoreScratch,
) -> PlacementPlan {
    let mut plan = PlacementPlan {
        target: PlacementTarget::Append,
        preferred_full: None,
        preferred_full_affinity: 0.0,
        search_ios: 0,
        examined: scratch.take_examined(),
        chosen_affinity: 0.0,
    };
    if !policy.clusters() {
        return plan;
    }
    weighted_neighbors_in(db, model, object, scratch);
    if scratch.direct.is_empty() {
        return plan;
    }
    // Candidates come from the extended (two-hop) cluster neighbourhood;
    // exploring it is what the I/O budget pays for.
    extended_neighbors_in(db, model, object, scratch);
    candidate_pages_in(store, scratch);
    // The search *examines* every candidate page it may touch — reading
    // each non-resident one (that is the cost the I/O limit bounds) — and
    // places on the best-affinity examined page with room. Examination is
    // capped at MAX_EXAMINED pages even under No_limit, mirroring a real
    // implementation's sanity bound.
    let mut io_budget = policy.io_budget();
    for i in 0..scratch.pages.len() {
        let (page, affinity) = scratch.pages[i];
        if plan.examined.len() >= MAX_EXAMINED {
            break;
        }
        if !residency.is_resident(page) {
            if io_budget == 0 {
                continue; // unexaminable under this policy
            }
            io_budget -= 1;
            plan.search_ios += 1;
        }
        let fits = store.page(page).map(|p| p.fits(size)).unwrap_or(false);
        plan.examined.push(ExaminedCandidate {
            page,
            score: affinity,
            fits,
        });
        if fits {
            if plan.target == PlacementTarget::Append {
                plan.target = PlacementTarget::Existing(page);
                plan.chosen_affinity = affinity;
            }
        } else if plan.preferred_full.is_none() {
            plan.preferred_full = Some(page);
            plan.preferred_full_affinity = affinity;
        }
    }
    plan
}

/// Upper bound on candidate pages one placement search examines, even
/// with an unbounded I/O budget.
pub const MAX_EXAMINED: usize = 16;

/// Execute a plan against the store. Returns the page the object landed
/// on.
pub fn execute_placement(
    store: &mut StorageManager,
    object: ObjectId,
    size: u32,
    plan: &PlacementPlan,
) -> Result<PageId, StorageError> {
    match plan.target {
        PlacementTarget::Existing(page) => {
            store.place(object, size, page)?;
            Ok(page)
        }
        PlacementTarget::Append => store.append(object, size),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use semcluster_storage::DEFAULT_PAGE_BYTES;
    use semcluster_vdm::{ObjectName, RelFrequencies, RelKind, TypeLattice};

    struct NoneResident;
    impl ResidencyView for NoneResident {
        fn is_resident(&self, _p: PageId) -> bool {
            false
        }
    }

    /// Three related anchors on three pages with descending affinity.
    fn fixture() -> (Database, StorageManager, ObjectId, [PageId; 3]) {
        let mut lattice = TypeLattice::new();
        let layout = lattice
            .define_simple(
                "layout",
                RelFrequencies {
                    config_down: 5.0,
                    config_up: 5.0,
                    version_up: 3.0,
                    version_down: 3.0,
                    correspondence: 1.0,
                    inheritance: 1.0,
                },
            )
            .unwrap();
        let mut db = Database::with_lattice(lattice);
        let new = db
            .create_object(ObjectName::new("NEW", 2, "layout"), layout, 100)
            .unwrap();
        let comp = db
            .create_object(ObjectName::new("COMP", 1, "layout"), layout, 100)
            .unwrap();
        let parent = db
            .create_object(ObjectName::new("NEW", 1, "layout"), layout, 100)
            .unwrap();
        let corr = db
            .create_object(ObjectName::new("CORR", 1, "layout"), layout, 100)
            .unwrap();
        db.relate(RelKind::Configuration, new, comp).unwrap();
        db.relate(RelKind::VersionHistory, parent, new).unwrap();
        db.relate(RelKind::Correspondence, new, corr).unwrap();
        let mut store = StorageManager::new(DEFAULT_PAGE_BYTES);
        let p0 = store.allocate_page();
        let p1 = store.allocate_page();
        let p2 = store.allocate_page();
        store.place(comp, 100, p0).unwrap(); // affinity 5
        store.place(parent, 100, p1).unwrap(); // affinity 3
        store.place(corr, 100, p2).unwrap(); // affinity 1
        (db, store, new, [p0, p1, p2])
    }

    #[test]
    fn no_cluster_always_appends() {
        let (db, store, new, _) = fixture();
        let plan = plan_placement(
            &db,
            &store,
            &AllResident,
            ClusteringPolicy::NoCluster,
            &WeightModel::no_hints(),
            new,
            100,
        );
        assert_eq!(plan.target, PlacementTarget::Append);
        assert_eq!(plan.search_ios, 0);
        assert!(plan.examined.is_empty());
    }

    #[test]
    fn best_affinity_candidate_wins() {
        let (db, store, new, [p0, ..]) = fixture();
        let plan = plan_placement(
            &db,
            &store,
            &AllResident,
            ClusteringPolicy::NoLimit,
            &WeightModel::no_hints(),
            new,
            100,
        );
        assert_eq!(plan.target, PlacementTarget::Existing(p0));
        assert_eq!(plan.chosen_affinity, 5.0); // the config_down arc to comp
    }

    #[test]
    fn within_buffer_skips_non_resident() {
        let (db, store, new, [_, p1, _]) = fixture();
        struct Only(PageId);
        impl ResidencyView for Only {
            fn is_resident(&self, p: PageId) -> bool {
                p == self.0
            }
        }
        let plan = plan_placement(
            &db,
            &store,
            &Only(p1),
            ClusteringPolicy::WithinBuffer,
            &WeightModel::no_hints(),
            new,
            100,
        );
        assert_eq!(plan.target, PlacementTarget::Existing(p1));
        assert_eq!(plan.search_ios, 0);
    }

    #[test]
    fn io_limit_bounds_search() {
        let (db, mut store, new, [p0, p1, _p2]) = fixture();
        // Fill the two best candidate pages so the search must go deeper.
        let filler_a = ObjectId(100);
        let filler_b = ObjectId(101);
        let cap = store.page(p0).unwrap().capacity();
        store.place(filler_a, cap - 100, p0).unwrap();
        store.place(filler_b, cap - 100, p1).unwrap();
        // With a 1-I/O limit and nothing resident, only p0 is examinable.
        let plan = plan_placement(
            &db,
            &store,
            &NoneResident,
            ClusteringPolicy::IoLimit(1),
            &WeightModel::no_hints(),
            new,
            100,
        );
        assert_eq!(plan.search_ios, 1);
        assert_eq!(plan.examined.len(), 1);
        assert_eq!(plan.target, PlacementTarget::Append);
        assert_eq!(plan.preferred_full, Some(p0));
        // With no limit the search reaches the third page.
        let plan = plan_placement(
            &db,
            &store,
            &NoneResident,
            ClusteringPolicy::NoLimit,
            &WeightModel::no_hints(),
            new,
            100,
        );
        assert_eq!(plan.search_ios, 3);
        assert!(matches!(plan.target, PlacementTarget::Existing(_)));
        assert_eq!(plan.preferred_full, Some(p0));
        assert!(plan.preferred_full_affinity > plan.chosen_affinity);
    }

    #[test]
    fn unrelated_objects_append() {
        let (mut db, store, _, _) = fixture();
        let layout = db.lattice().id_of("layout").unwrap();
        let loner = db
            .create_object(ObjectName::new("LONER", 1, "layout"), layout, 50)
            .unwrap();
        let plan = plan_placement(
            &db,
            &store,
            &AllResident,
            ClusteringPolicy::NoLimit,
            &WeightModel::no_hints(),
            loner,
            50,
        );
        assert_eq!(plan.target, PlacementTarget::Append);
    }

    #[test]
    fn execute_places_or_appends() {
        let (db, mut store, new, [p0, ..]) = fixture();
        let plan = plan_placement(
            &db,
            &store,
            &AllResident,
            ClusteringPolicy::NoLimit,
            &WeightModel::no_hints(),
            new,
            100,
        );
        let landed = execute_placement(&mut store, new, 100, &plan).unwrap();
        assert_eq!(landed, p0);
        assert_eq!(store.page_of(new), Some(p0));
    }
}
