//! Dense, reusable scratch arenas for the clustering hot path.
//!
//! The scoring functions in [`crate::cost`] historically accumulated arc
//! weights in `DetHashMap`s and returned freshly allocated `Vec`s — one
//! map and one vector per placement decision. At full paper scale
//! (≈1.6 M objects, thousands of placement decisions per run) that
//! allocation pressure dominated the hot phases. [`ScoreScratch`] replaces
//! the maps with *epoch-stamped dense arrays* indexed by `ObjectId` /
//! `PageId`: clearing between decisions is a single epoch bump, touched
//! keys are recorded in first-touch order, and every output list is a
//! reusable vector whose capacity persists across calls.
//!
//! ## Determinism contract
//!
//! The scratch-based accumulators are *bit-for-bit* equivalent to the
//! map-based reference implementations:
//!
//! * weights are accumulated per key in exactly the traversal order of
//!   [`StructureGraph::for_each_related`] (the same order the map-based
//!   code folded them in), so each key's `f64` sum sees the identical
//!   addition sequence;
//! * output lists are sorted with the same *total* comparator (weight
//!   descending, id ascending — keys are unique, so there are no ties),
//!   which makes `sort_unstable_by` produce the identical permutation the
//!   reference's stable sort does, without the stable sort's scratch
//!   allocation.
//!
//! Proptest equivalence suites in `crates/clustering/tests` hold the two
//! implementations against each other across randomized databases.
//!
//! [`StructureGraph::for_each_related`]: semcluster_vdm::StructureGraph::for_each_related

use crate::placement::ExaminedCandidate;
use crate::MAX_EXAMINED;
use semcluster_storage::PageId;
use semcluster_vdm::ObjectId;

/// Initial capacity of the reusable score/candidate output lists. Sized
/// far above any realistic cluster neighbourhood (high-density workloads
/// top out near a few hundred extended neighbours) so steady-state scoring
/// never grows them inside a profiled phase.
const SCORE_LIST_CAPACITY: usize = 4096;

/// An epoch-stamped dense accumulator: `stamp[i] == epoch` marks index
/// `i` as touched in the current round, `slot[i]` points at its entry in
/// the caller's output list. Resetting between rounds is one epoch bump —
/// no clearing, no rehashing, no allocation.
#[derive(Debug, Clone, Default)]
pub(crate) struct DenseAcc {
    stamp: Vec<u32>,
    slot: Vec<u32>,
    epoch: u32,
}

impl DenseAcc {
    /// Start a new accumulation round.
    pub(crate) fn begin(&mut self) {
        if self.epoch == u32::MAX {
            // Epoch wrap: physically clear the stamps once every 2^32
            // rounds so a stale stamp can never collide with a new epoch.
            self.stamp.fill(0);
            self.epoch = 0;
        }
        self.epoch += 1;
    }

    /// Grow the stamp arrays to cover `n` indices.
    pub(crate) fn ensure(&mut self, n: usize) {
        if self.stamp.len() < n {
            self.stamp.resize(n, 0);
            self.slot.resize(n, 0);
        }
    }

    /// Fold `w` into `key`'s entry in `out`, creating the entry in
    /// first-touch order. The per-key addition sequence is exactly the
    /// caller's call sequence, matching the map-based reference fold.
    #[inline]
    pub(crate) fn add<K: Copy>(&mut self, out: &mut Vec<(K, f64)>, index: usize, key: K, w: f64) {
        if index >= self.stamp.len() {
            self.ensure(index + 1);
        }
        if self.stamp[index] == self.epoch {
            out[self.slot[index] as usize].1 += w;
        } else {
            self.stamp[index] = self.epoch;
            self.slot[index] = out.len() as u32;
            out.push((key, w));
        }
    }
}

/// The canonical score ordering: weight descending, id ascending. Keys
/// are unique, so this is a strict total order and `sort_unstable_by`
/// (in-place, allocation-free) yields the identical permutation a stable
/// sort would.
#[inline]
pub(crate) fn sort_scored<K: Ord + Copy>(v: &mut [(K, f64)]) {
    v.sort_unstable_by(|a, b| b.1.partial_cmp(&a.1).expect("finite").then(a.0.cmp(&b.0)));
}

/// Reusable scratch space for one scoring pipeline: direct neighbours →
/// extended (two-hop) neighbourhood → candidate pages → examined
/// candidates. Own one per engine (or per load pass) and thread it
/// through the `_in` function variants; all capacity lives here and is
/// reused decision after decision.
#[derive(Debug, Clone)]
pub struct ScoreScratch {
    /// Object-indexed accumulator (direct and extended rounds).
    pub(crate) obj: DenseAcc,
    /// Page-indexed accumulator (candidate-page round).
    pub(crate) page: DenseAcc,
    /// Direct weighted neighbours, sorted weight-desc/id-asc.
    pub direct: Vec<(ObjectId, f64)>,
    /// Extended (two-hop) neighbourhood, sorted weight-desc/id-asc.
    pub extended: Vec<(ObjectId, f64)>,
    /// Candidate pages, sorted affinity-desc/id-asc.
    pub pages: Vec<(PageId, f64)>,
    /// Recyclable examined-candidates buffer handed to placement plans
    /// and returned by the caller once the plan is consumed.
    examined: Vec<ExaminedCandidate>,
}

impl Default for ScoreScratch {
    fn default() -> Self {
        Self::new()
    }
}

impl ScoreScratch {
    /// Empty scratch; arrays grow on demand.
    pub fn new() -> Self {
        ScoreScratch {
            obj: DenseAcc::default(),
            page: DenseAcc::default(),
            direct: Vec::new(),
            extended: Vec::new(),
            pages: Vec::new(),
            examined: Vec::with_capacity(MAX_EXAMINED),
        }
    }

    /// Scratch pre-sized for a database of `objects` objects on `pages`
    /// pages, with output lists at steady-state capacity — the engine
    /// builds one of these up front so the profiled scoring phases never
    /// allocate.
    pub fn with_capacity(objects: usize, pages: usize) -> Self {
        let mut s = ScoreScratch::new();
        s.ensure_capacity(objects, pages);
        s.direct.reserve(SCORE_LIST_CAPACITY);
        s.extended.reserve(SCORE_LIST_CAPACITY);
        s.pages.reserve(SCORE_LIST_CAPACITY);
        s
    }

    /// Grow the dense index arrays to cover `objects` / `pages`. Call
    /// from outside any profiled phase whenever ids may have grown; the
    /// accumulators also self-grow as a safety net, but that growth would
    /// be attributed to the phase it happens in.
    pub fn ensure_capacity(&mut self, objects: usize, pages: usize) {
        self.obj.ensure(objects);
        self.page.ensure(pages);
        if self.examined.capacity() < MAX_EXAMINED {
            self.examined.reserve(MAX_EXAMINED - self.examined.len());
        }
    }

    /// Hand out the recycled examined-candidates buffer (cleared, with
    /// capacity for a full search).
    pub(crate) fn take_examined(&mut self) -> Vec<ExaminedCandidate> {
        let mut v = std::mem::take(&mut self.examined);
        v.clear();
        v
    }

    /// Return an examined buffer (typically from a consumed
    /// [`crate::PlacementPlan`] or [`crate::ReclusterPlan`]) so the next
    /// search reuses its capacity instead of allocating.
    pub fn put_examined(&mut self, mut v: Vec<ExaminedCandidate>) {
        v.clear();
        if v.capacity() > self.examined.capacity() {
            self.examined = v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_acc_folds_in_first_touch_order() {
        let mut acc = DenseAcc::default();
        let mut out: Vec<(u32, f64)> = Vec::new();
        acc.begin();
        acc.add(&mut out, 5, 5u32, 1.0);
        acc.add(&mut out, 2, 2u32, 2.0);
        acc.add(&mut out, 5, 5u32, 0.5);
        assert_eq!(out, vec![(5, 1.5), (2, 2.0)]);
        // Next round: epoch bump, no clearing needed.
        out.clear();
        acc.begin();
        acc.add(&mut out, 2, 2u32, 4.0);
        assert_eq!(out, vec![(2, 4.0)]);
    }

    #[test]
    fn epoch_wrap_clears_stamps() {
        let mut acc = DenseAcc::default();
        let mut out: Vec<(u32, f64)> = Vec::new();
        acc.begin();
        acc.add(&mut out, 0, 0u32, 1.0);
        acc.epoch = u32::MAX; // force the wrap path
        out.clear();
        acc.begin();
        assert_eq!(acc.epoch, 1);
        acc.add(&mut out, 0, 0u32, 3.0);
        assert_eq!(out, vec![(0, 3.0)]);
    }

    #[test]
    fn sort_scored_is_weight_desc_id_asc() {
        let mut v = vec![(3u32, 1.0), (1, 2.0), (2, 1.0)];
        sort_scored(&mut v);
        assert_eq!(v, vec![(1, 2.0), (2, 1.0), (3, 1.0)]);
    }

    #[test]
    fn examined_buffer_recycles_capacity() {
        let mut s = ScoreScratch::new();
        let buf = s.take_examined();
        assert!(buf.capacity() >= MAX_EXAMINED);
        let cap = buf.capacity();
        s.put_examined(buf);
        assert_eq!(s.take_examined().capacity(), cap);
    }
}
