//! Clustering control parameters (Table 4.1, parameters H, I, J).

use std::fmt;

/// Candidate-page-pool policy (parameter H).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ClusteringPolicy {
    /// No clustering: new objects are appended sequentially.
    NoCluster,
    /// Only candidate pages already in the buffer pool are considered —
    /// the search never issues I/O.
    WithinBuffer,
    /// Candidate search may read up to this many non-resident pages.
    IoLimit(u32),
    /// The whole database is the candidate pool (unbounded search I/O).
    NoLimit,
    /// Run-time adaptive selection (§5.1: "If the clustering mechanism
    /// can be selected based on the read/write ratio at run time, we can
    /// get the best response time of both"): behaves like a small I/O
    /// limit while the observed read/write ratio is low and like
    /// `No_limit` when it is high. The engine resolves it per write from
    /// its observed ratio.
    Adaptive,
}

impl ClusteringPolicy {
    /// The search I/O budget this policy grants.
    pub fn io_budget(self) -> u32 {
        match self {
            ClusteringPolicy::NoCluster | ClusteringPolicy::WithinBuffer => 0,
            ClusteringPolicy::IoLimit(k) => k,
            // Adaptive must be resolved by the caller; unresolved it
            // spends like a small limit.
            ClusteringPolicy::Adaptive => ClusteringPolicy::ADAPTIVE_LOW_LIMIT,
            ClusteringPolicy::NoLimit => u32::MAX,
        }
    }

    /// The bounded-search side of the adaptive policy.
    pub const ADAPTIVE_LOW_LIMIT: u32 = 2;

    /// Read/write ratio above which the adaptive policy switches to an
    /// unbounded search.
    pub const ADAPTIVE_RW_THRESHOLD: f64 = 10.0;

    /// Resolve the adaptive policy against an observed read/write ratio;
    /// non-adaptive policies return themselves.
    pub fn resolve_adaptive(self, observed_rw: f64) -> ClusteringPolicy {
        match self {
            ClusteringPolicy::Adaptive => {
                if observed_rw >= Self::ADAPTIVE_RW_THRESHOLD {
                    ClusteringPolicy::NoLimit
                } else {
                    ClusteringPolicy::IoLimit(Self::ADAPTIVE_LOW_LIMIT)
                }
            }
            p => p,
        }
    }

    /// Whether any clustering happens at all.
    pub fn clusters(self) -> bool {
        !matches!(self, ClusteringPolicy::NoCluster)
    }

    /// The five operating levels evaluated in Figures 5.1–5.8.
    pub const PAPER_LEVELS: [ClusteringPolicy; 5] = [
        ClusteringPolicy::NoCluster,
        ClusteringPolicy::WithinBuffer,
        ClusteringPolicy::IoLimit(2),
        ClusteringPolicy::IoLimit(10),
        ClusteringPolicy::NoLimit,
    ];
}

impl fmt::Display for ClusteringPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusteringPolicy::NoCluster => f.write_str("No_Cluster"),
            ClusteringPolicy::WithinBuffer => f.write_str("Cluster_within_Buffer"),
            ClusteringPolicy::IoLimit(k) => write!(f, "{k}_IO_limit"),
            ClusteringPolicy::NoLimit => f.write_str("No_limit"),
            ClusteringPolicy::Adaptive => f.write_str("Adaptive"),
        }
    }
}

/// Page-splitting policy when the preferred candidate page is full
/// (parameter I).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SplitPolicy {
    /// Never split: fall through to the next-best candidate with room.
    NoSplit,
    /// The greedy single-pass partitioner (linear running time).
    Linear,
    /// The exact minimum-broken-arc partitioner ("NP split").
    Optimal,
}

impl fmt::Display for SplitPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SplitPolicy::NoSplit => "No_Splitting",
            SplitPolicy::Linear => "Linear_Split",
            SplitPolicy::Optimal => "NP_Split",
        };
        f.write_str(s)
    }
}

/// User-hint policy (parameter J).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HintPolicy {
    /// Ignore user hints; use type-inherited frequencies as-is.
    NoHints,
    /// Honour the session's declared primary access pattern by scaling the
    /// corresponding relationship weights.
    UserHints,
}

impl fmt::Display for HintPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            HintPolicy::NoHints => "No_hint",
            HintPolicy::UserHints => "User_hint",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn io_budgets() {
        assert_eq!(ClusteringPolicy::NoCluster.io_budget(), 0);
        assert_eq!(ClusteringPolicy::WithinBuffer.io_budget(), 0);
        assert_eq!(ClusteringPolicy::IoLimit(2).io_budget(), 2);
        assert_eq!(ClusteringPolicy::NoLimit.io_budget(), u32::MAX);
        assert!(!ClusteringPolicy::NoCluster.clusters());
        assert!(ClusteringPolicy::WithinBuffer.clusters());
    }

    #[test]
    fn display_matches_paper_vocabulary() {
        assert_eq!(ClusteringPolicy::IoLimit(2).to_string(), "2_IO_limit");
        assert_eq!(SplitPolicy::Optimal.to_string(), "NP_Split");
        assert_eq!(HintPolicy::UserHints.to_string(), "User_hint");
    }

    #[test]
    fn paper_levels_are_five() {
        assert_eq!(ClusteringPolicy::PAPER_LEVELS.len(), 5);
    }
}
