//! Run-time reclustering and the page-overflow (split) decision.
//!
//! Two pieces of §2.1 live here:
//!
//! * [`consider_split`] — when the preferred candidate page is full, split
//!   it if the expected access cost after splitting beats placing the new
//!   object on the next-best candidate; otherwise fall through.
//! * [`plan_recluster`] — when an existing object's structure changes, the
//!   run-time reclustering algorithm re-evaluates its placement and moves
//!   it if the expected-cost improvement clears a threshold.

use crate::arena::ScoreScratch;
use crate::config::{ClusteringPolicy, SplitPolicy};
use crate::cost::{
    candidate_pages_in, extended_neighbors_in, placement_cost, weighted_neighbors_in, WeightModel,
};
use crate::placement::{ExaminedCandidate, ResidencyView};
use crate::split::{build_dependency_graph, linear_split, optimal_split, Partition};
use semcluster_storage::{PageId, StorageError, StorageManager, PAGE_OVERHEAD_BYTES};
use semcluster_vdm::{Database, ObjectId};

/// Fixed cost (in arc-weight units) charged to a split for its extra
/// physical work: allocating and flushing the new page plus the extra log
/// record (§5.1.2).
pub const SPLIT_OVERHEAD_WEIGHT: f64 = 2.0;

/// A split the engine should carry out.
#[derive(Debug, Clone, PartialEq)]
pub struct SplitPlan {
    /// The page being split.
    pub page: PageId,
    /// The partition: `left` stays, `right` moves to a fresh page.
    pub partition: Partition,
    /// Objects in node-index order of the partition (page residents plus
    /// the incoming object as the last node).
    pub objects: Vec<ObjectId>,
    /// Sizes parallel to `objects`.
    pub sizes: Vec<u32>,
}

/// Decide whether to split `full_page` to make room for `incoming`.
///
/// `next_best_affinity` is the affinity the object would enjoy on the best
/// candidate that *does* have room (0 if none). Splitting wins when
/// `partition.broken_cost + SPLIT_OVERHEAD_WEIGHT` is below the affinity
/// forfeited by going elsewhere.
#[allow(clippy::too_many_arguments)]
pub fn consider_split(
    db: &Database,
    store: &StorageManager,
    model: &WeightModel,
    policy: SplitPolicy,
    full_page: PageId,
    full_page_affinity: f64,
    next_best_affinity: f64,
    incoming: (ObjectId, u32),
) -> Option<SplitPlan> {
    if policy == SplitPolicy::NoSplit {
        return None;
    }
    let capacity = store.page_bytes() - PAGE_OVERHEAD_BYTES;
    let graph = build_dependency_graph(db, store, model, full_page, Some(incoming));
    let partition = match policy {
        SplitPolicy::NoSplit => unreachable!("handled above"),
        SplitPolicy::Linear => linear_split(&graph, capacity).ok()?,
        SplitPolicy::Optimal => optimal_split(&graph, capacity).ok()?,
    };
    let cost_of_split = partition.broken_cost + SPLIT_OVERHEAD_WEIGHT;
    let cost_of_next_best = full_page_affinity - next_best_affinity;
    if cost_of_split < cost_of_next_best {
        Some(SplitPlan {
            page: full_page,
            partition,
            objects: graph.objects,
            sizes: graph.sizes,
        })
    } else {
        None
    }
}

/// What a split did, for I/O accounting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitOutcome {
    /// The freshly allocated page.
    pub new_page: PageId,
    /// Objects moved off the original page.
    pub moved: Vec<ObjectId>,
    /// Where the incoming object landed.
    pub incoming_page: PageId,
}

/// Execute a split plan: allocate the new page, move the `right` side
/// there, and place the incoming object (the last node) on its assigned
/// side.
pub fn execute_split(
    store: &mut StorageManager,
    plan: &SplitPlan,
) -> Result<SplitOutcome, StorageError> {
    let new_page = store.allocate_page();
    let incoming_idx = (plan.objects.len() - 1) as u32;
    let incoming = plan.objects[incoming_idx as usize];
    let incoming_size = plan.sizes[incoming_idx as usize];
    let mut moved = Vec::new();
    for &idx in &plan.partition.right {
        if idx == incoming_idx {
            continue;
        }
        let obj = plan.objects[idx as usize];
        store.move_object(obj, new_page)?;
        moved.push(obj);
    }
    let incoming_page = if plan.partition.right.contains(&incoming_idx) {
        new_page
    } else {
        plan.page
    };
    store.place(incoming, incoming_size, incoming_page)?;
    Ok(SplitOutcome {
        new_page,
        moved,
        incoming_page,
    })
}

/// A reclustering move the engine should carry out.
#[derive(Debug, Clone, PartialEq)]
pub struct ReclusterPlan {
    /// Page to move the object to.
    pub to: PageId,
    /// Expected-cost improvement of the move.
    pub gain: f64,
    /// Non-resident candidate pages read during the search.
    pub search_ios: u32,
    /// Pages examined, in order, with the expected-cost gain each
    /// offered and whether it had room.
    pub examined: Vec<ExaminedCandidate>,
}

/// Re-evaluate the placement of an existing object after its structure
/// changed. Returns a move when a candidate page (reachable under
/// `policy`'s I/O budget) improves expected access cost by more than
/// `min_gain` and has room.
///
/// Convenience wrapper over [`plan_recluster_in`] with throwaway scratch;
/// hot paths should own a [`ScoreScratch`] and call the `_in` variant.
pub fn plan_recluster(
    db: &Database,
    store: &StorageManager,
    residency: &impl ResidencyView,
    policy: ClusteringPolicy,
    model: &WeightModel,
    object: ObjectId,
    min_gain: f64,
) -> Option<ReclusterPlan> {
    let mut scratch = ScoreScratch::new();
    plan_recluster_in(
        db,
        store,
        residency,
        policy,
        model,
        object,
        min_gain,
        &mut scratch,
    )
}

/// [`plan_recluster`] with caller-owned scratch. A returned plan's
/// `examined` list is recycled from `scratch`; hand it back with
/// [`ScoreScratch::put_examined`] once the plan has been consumed.
#[allow(clippy::too_many_arguments)]
pub fn plan_recluster_in(
    db: &Database,
    store: &StorageManager,
    residency: &impl ResidencyView,
    policy: ClusteringPolicy,
    model: &WeightModel,
    object: ObjectId,
    min_gain: f64,
    scratch: &mut ScoreScratch,
) -> Option<ReclusterPlan> {
    if !policy.clusters() {
        return None;
    }
    let current = store.page_of(object)?;
    let size = store
        .objects_on(current)
        .ok()?
        .iter()
        .find(|&&(o, _)| o == object)
        .map(|&(_, s)| s)?;
    weighted_neighbors_in(db, model, object, scratch);
    if scratch.direct.is_empty() {
        return None;
    }
    let current_cost = placement_cost(store, &scratch.direct, current);
    // Examine every candidate the I/O budget allows (the paper's
    // "amount of I/O allowed to the clustering algorithm as it examines
    // candidate pages for reclustering") and move to the best one. The
    // pool is the extended (two-hop) cluster neighbourhood; the expected
    // access cost that decides the move uses the direct arcs only.
    extended_neighbors_in(db, model, object, scratch);
    candidate_pages_in(store, scratch);
    let mut io_budget = policy.io_budget();
    let mut search_ios = 0;
    let mut examined = scratch.take_examined();
    let mut best: Option<(PageId, f64)> = None;
    for i in 0..scratch.pages.len() {
        let (page, _aff) = scratch.pages[i];
        if page == current {
            continue;
        }
        if examined.len() >= crate::placement::MAX_EXAMINED {
            break;
        }
        if !residency.is_resident(page) {
            if io_budget == 0 {
                continue;
            }
            io_budget -= 1;
            search_ios += 1;
        }
        let fits = store.page(page).map(|p| p.fits(size)).unwrap_or(false);
        let gain = current_cost - placement_cost(store, &scratch.direct, page);
        examined.push(ExaminedCandidate {
            page,
            score: gain,
            fits,
        });
        if !fits {
            continue;
        }
        if gain > min_gain && best.map(|(_, g)| gain > g).unwrap_or(true) {
            best = Some((page, gain));
        }
    }
    match best {
        Some((to, gain)) => Some(ReclusterPlan {
            to,
            gain,
            search_ios,
            examined,
        }),
        None => {
            scratch.put_examined(examined);
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::AllResident;
    use semcluster_storage::DEFAULT_PAGE_BYTES;
    use semcluster_vdm::{ObjectName, RelFrequencies, RelKind, TypeLattice};

    fn mkdb() -> (Database, semcluster_vdm::TypeId) {
        let mut lattice = TypeLattice::new();
        let t = lattice
            .define_simple(
                "layout",
                RelFrequencies {
                    config_down: 4.0,
                    config_up: 4.0,
                    ..RelFrequencies::UNIFORM
                },
            )
            .unwrap();
        (Database::with_lattice(lattice), t)
    }

    #[test]
    fn split_chosen_when_affinity_is_high() {
        let (mut db, t) = mkdb();
        let mut store = StorageManager::new(DEFAULT_PAGE_BYTES);
        let page = store.allocate_page();
        let cap = store.page(page).unwrap().capacity();
        // Two tight sub-clusters filling the page.
        let mut ids = Vec::new();
        for i in 0..8 {
            let id = db
                .create_object(ObjectName::new(format!("O{i}"), 1, "layout"), t, 10)
                .unwrap();
            store.place(id, cap / 8, page).unwrap();
            ids.push(id);
        }
        for w in 0..3 {
            db.relate(RelKind::Configuration, ids[w], ids[w + 1])
                .unwrap();
            db.relate(RelKind::Configuration, ids[4 + w], ids[5 + w])
                .unwrap();
        }
        // Incoming object strongly tied to the first sub-cluster.
        let incoming = db
            .create_object(ObjectName::new("IN", 1, "layout"), t, 100)
            .unwrap();
        db.relate(RelKind::Configuration, ids[0], incoming).unwrap();
        db.relate(RelKind::Configuration, ids[1], incoming).unwrap();

        let model = WeightModel::no_hints();
        let plan = consider_split(
            &db,
            &store,
            &model,
            SplitPolicy::Linear,
            page,
            8.0, // affinity to the full page
            0.0, // nothing else has any affinity
            (incoming, 100),
        );
        let plan = plan.expect("high affinity forfeit should justify a split");
        let outcome = execute_split(&mut store, &plan).unwrap();
        assert_eq!(store.page_of(incoming), Some(outcome.incoming_page));
        // Every object is placed somewhere, and the original page now has
        // room to spare.
        assert!(store.page(page).unwrap().free() > 0);
    }

    #[test]
    fn no_split_policy_never_splits() {
        let (mut db, t) = mkdb();
        let mut store = StorageManager::new(DEFAULT_PAGE_BYTES);
        let page = store.allocate_page();
        let a = db
            .create_object(ObjectName::new("A", 1, "layout"), t, 10)
            .unwrap();
        store.place(a, 10, page).unwrap();
        let b = db
            .create_object(ObjectName::new("B", 1, "layout"), t, 10)
            .unwrap();
        assert_eq!(
            consider_split(
                &db,
                &store,
                &WeightModel::no_hints(),
                SplitPolicy::NoSplit,
                page,
                100.0,
                0.0,
                (b, 10)
            ),
            None
        );
    }

    #[test]
    fn cheap_alternative_beats_split() {
        let (mut db, t) = mkdb();
        let mut store = StorageManager::new(DEFAULT_PAGE_BYTES);
        let page = store.allocate_page();
        let a = db
            .create_object(ObjectName::new("A", 1, "layout"), t, 10)
            .unwrap();
        store.place(a, 10, page).unwrap();
        let b = db
            .create_object(ObjectName::new("B", 1, "layout"), t, 10)
            .unwrap();
        db.relate(RelKind::Configuration, a, b).unwrap();
        // Next-best candidate nearly as good: splitting cannot pay off its
        // overhead.
        let plan = consider_split(
            &db,
            &store,
            &WeightModel::no_hints(),
            SplitPolicy::Optimal,
            page,
            4.0,
            3.5,
            (b, 10),
        );
        assert_eq!(plan, None);
    }

    #[test]
    fn recluster_moves_toward_relatives() {
        let (mut db, t) = mkdb();
        let mut store = StorageManager::new(DEFAULT_PAGE_BYTES);
        let home = store.allocate_page();
        let far = store.allocate_page();
        let obj = db
            .create_object(ObjectName::new("X", 1, "layout"), t, 50)
            .unwrap();
        store.place(obj, 50, far).unwrap();
        let mut relatives = Vec::new();
        for i in 0..3 {
            let r = db
                .create_object(ObjectName::new(format!("R{i}"), 1, "layout"), t, 50)
                .unwrap();
            db.relate(RelKind::Configuration, r, obj).unwrap();
            store.place(r, 50, home).unwrap();
            relatives.push(r);
        }
        let plan = plan_recluster(
            &db,
            &store,
            &AllResident,
            ClusteringPolicy::NoLimit,
            &WeightModel::no_hints(),
            obj,
            0.0,
        )
        .expect("relatives all live on `home`");
        assert_eq!(plan.to, home);
        assert!(plan.gain > 0.0);
        store.move_object(obj, plan.to).unwrap();
        assert!(store.co_resident(obj, relatives[0]));
    }

    #[test]
    fn recluster_respects_threshold_and_policy() {
        let (mut db, t) = mkdb();
        let mut store = StorageManager::new(DEFAULT_PAGE_BYTES);
        let home = store.allocate_page();
        let far = store.allocate_page();
        let obj = db
            .create_object(ObjectName::new("X", 1, "layout"), t, 50)
            .unwrap();
        store.place(obj, 50, far).unwrap();
        let r = db
            .create_object(ObjectName::new("R", 1, "layout"), t, 50)
            .unwrap();
        db.relate(RelKind::Configuration, r, obj).unwrap();
        store.place(r, 50, home).unwrap();
        // Gain is 4.0 (config_up weight); a higher threshold blocks it.
        assert!(plan_recluster(
            &db,
            &store,
            &AllResident,
            ClusteringPolicy::NoLimit,
            &WeightModel::no_hints(),
            obj,
            10.0
        )
        .is_none());
        // NoCluster never reclusters.
        assert!(plan_recluster(
            &db,
            &store,
            &AllResident,
            ClusteringPolicy::NoCluster,
            &WeightModel::no_hints(),
            obj,
            0.0
        )
        .is_none());
        // Zero-I/O policy with nothing resident cannot see the candidate.
        struct NoneRes;
        impl ResidencyView for NoneRes {
            fn is_resident(&self, _p: PageId) -> bool {
                false
            }
        }
        assert!(plan_recluster(
            &db,
            &store,
            &NoneRes,
            ClusteringPolicy::WithinBuffer,
            &WeightModel::no_hints(),
            obj,
            0.0
        )
        .is_none());
    }
}
