//! Page splitting.
//!
//! When the preferred candidate page cannot hold a new object, the storage
//! manager may split it: partition the page's inheritance-dependency graph
//! into two subsets that each fit a page, minimising the total weight of
//! broken arcs. Exact minimisation is graph partitioning (NP-complete), so
//! the paper proposes a greedy single-pass alternative and shows the
//! response-time difference is negligible:
//!
//! * [`linear_split`] — the greedy algorithm: one scan over the arc list,
//!   merging endpoint groups when the merged group still fits a page;
//!   linear in the number of arcs.
//! * [`optimal_split`] — the "NP split": exhaustive minimum-broken-cost
//!   partition (exact up to [`MAX_EXACT_NODES`] nodes, after which it
//!   falls back to the greedy result refined by a local-improvement pass).

use crate::cost::WeightModel;
use semcluster_storage::{PageId, StorageManager};
use semcluster_vdm::DetHashMap;
use semcluster_vdm::{Database, ObjectId};
use std::fmt;

/// Largest node count for which [`optimal_split`] enumerates exhaustively.
pub const MAX_EXACT_NODES: usize = 20;

/// The inheritance-dependency graph of one page (plus, optionally, the
/// incoming object that caused the overflow).
#[derive(Debug, Clone)]
pub struct DependencyGraph {
    /// The objects, in node-index order.
    pub objects: Vec<ObjectId>,
    /// Object sizes in bytes, parallel to `objects`.
    pub sizes: Vec<u32>,
    /// Undirected weighted arcs `(node, node, weight)`, heaviest first.
    pub arcs: Vec<(u32, u32, f64)>,
}

impl DependencyGraph {
    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// Whether the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Sum of all arc weights.
    pub fn total_arc_weight(&self) -> f64 {
        self.arcs.iter().map(|&(_, _, w)| w).sum()
    }
}

/// Build the dependency graph of `page`'s residents, optionally including
/// the overflowing `incoming` object. Arc weights sum both endpoints'
/// directed traversal frequencies under `model`. Arcs are returned
/// heaviest-first so the single-scan greedy keeps the most valuable arcs.
pub fn build_dependency_graph(
    db: &Database,
    store: &StorageManager,
    model: &WeightModel,
    page: PageId,
    incoming: Option<(ObjectId, u32)>,
) -> DependencyGraph {
    let mut objects: Vec<ObjectId> = Vec::new();
    let mut sizes: Vec<u32> = Vec::new();
    if let Ok(residents) = store.objects_on(page) {
        for &(o, s) in residents {
            objects.push(o);
            sizes.push(s);
        }
    }
    if let Some((o, s)) = incoming {
        objects.push(o);
        sizes.push(s);
    }
    let index: DetHashMap<ObjectId, u32> = objects
        .iter()
        .enumerate()
        .map(|(i, &o)| (o, i as u32))
        .collect();

    let mut weights: DetHashMap<(u32, u32), f64> = DetHashMap::default();
    for (&obj, &i) in &index {
        let Ok(freqs) = db.frequencies_of(obj) else {
            continue;
        };
        for (kind, dir, other) in db.graph().related(obj) {
            if let Some(&j) = index.get(&other) {
                let key = if i < j { (i, j) } else { (j, i) };
                *weights.entry(key).or_insert(0.0) +=
                    model.arc_weight(kind, freqs.weight(kind, dir));
            }
        }
    }
    let mut arcs: Vec<(u32, u32, f64)> = weights.into_iter().map(|((a, b), w)| (a, b, w)).collect();
    arcs.sort_by(|x, y| {
        y.2.partial_cmp(&x.2)
            .expect("finite")
            .then((x.0, x.1).cmp(&(y.0, y.1)))
    });
    DependencyGraph {
        objects,
        sizes,
        arcs,
    }
}

/// A two-way partition of a dependency graph.
#[derive(Debug, Clone, PartialEq)]
pub struct Partition {
    /// Node indexes staying on the original page.
    pub left: Vec<u32>,
    /// Node indexes moving to the freshly allocated page.
    pub right: Vec<u32>,
    /// Total weight of arcs crossing the partition.
    pub broken_cost: f64,
    /// Whether the result is provably minimal.
    pub exact: bool,
}

/// Errors raised by partitioning.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SplitError {
    /// A single object exceeds the page capacity.
    NodeTooLarge(ObjectId, u32),
    /// No two-way packing of the nodes fits two pages.
    DoesNotFit,
    /// The graph has fewer than two nodes — nothing to split.
    TooSmall,
}

impl fmt::Display for SplitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SplitError::NodeTooLarge(o, s) => write!(f, "object {o} ({s} B) exceeds a page"),
            SplitError::DoesNotFit => f.write_str("no two-page packing exists"),
            SplitError::TooSmall => f.write_str("fewer than two nodes"),
        }
    }
}

impl std::error::Error for SplitError {}

fn check_inputs(g: &DependencyGraph, capacity: u32) -> Result<(), SplitError> {
    if g.len() < 2 {
        return Err(SplitError::TooSmall);
    }
    for (i, &s) in g.sizes.iter().enumerate() {
        if s > capacity {
            return Err(SplitError::NodeTooLarge(g.objects[i], s));
        }
    }
    Ok(())
}

fn crossing_cost(g: &DependencyGraph, side: &[bool]) -> f64 {
    g.arcs
        .iter()
        .filter(|&&(a, b, _)| side[a as usize] != side[b as usize])
        .map(|&(_, _, w)| w)
        .sum()
}

fn sides_from(side: &[bool]) -> (Vec<u32>, Vec<u32>) {
    let mut left = Vec::new();
    let mut right = Vec::new();
    for (i, &r) in side.iter().enumerate() {
        if r {
            right.push(i as u32);
        } else {
            left.push(i as u32);
        }
    }
    (left, right)
}

/// The greedy single-pass partitioner.
///
/// One scan over the (heaviest-first) arc list: merge the endpoint groups
/// whenever the merged group still fits one page, keeping heavy arcs
/// internal. The resulting groups are then packed into the two pages by
/// first-fit decreasing.
pub fn linear_split(g: &DependencyGraph, capacity: u32) -> Result<Partition, SplitError> {
    check_inputs(g, capacity)?;
    let n = g.len();

    // Union-find with group byte sizes.
    let mut parent: Vec<u32> = (0..n as u32).collect();
    let mut group_size: Vec<u64> = g.sizes.iter().map(|&s| s as u64).collect();
    fn find(parent: &mut [u32], x: u32) -> u32 {
        let mut root = x;
        while parent[root as usize] != root {
            root = parent[root as usize];
        }
        let mut cur = x;
        while parent[cur as usize] != root {
            let next = parent[cur as usize];
            parent[cur as usize] = root;
            cur = next;
        }
        root
    }
    for &(a, b, _) in &g.arcs {
        let ra = find(&mut parent, a);
        let rb = find(&mut parent, b);
        if ra != rb && group_size[ra as usize] + group_size[rb as usize] <= capacity as u64 {
            parent[rb as usize] = ra;
            group_size[ra as usize] += group_size[rb as usize];
        }
    }

    // Collect groups.
    let mut groups: DetHashMap<u32, Vec<u32>> = DetHashMap::default();
    for i in 0..n as u32 {
        groups.entry(find(&mut parent, i)).or_default().push(i);
    }
    let mut group_list: Vec<(u64, Vec<u32>)> = groups
        .into_values()
        .map(|members| {
            let size: u64 = members.iter().map(|&m| g.sizes[m as usize] as u64).sum();
            (size, members)
        })
        .collect();
    // First-fit decreasing into two bins; ties broken by member ids for
    // determinism.
    group_list.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    let mut bin_used = [0u64; 2];
    let mut side = vec![false; n];
    for (size, members) in group_list {
        let bin = if bin_used[0] + size <= capacity as u64 {
            0
        } else if bin_used[1] + size <= capacity as u64 {
            1
        } else {
            // Group itself fits a page (merge invariant), but the packing
            // failed: split this group member-by-member as a fallback.
            for m in members {
                let s = g.sizes[m as usize] as u64;
                let bin = if bin_used[0] + s <= capacity as u64 {
                    0
                } else if bin_used[1] + s <= capacity as u64 {
                    1
                } else {
                    return Err(SplitError::DoesNotFit);
                };
                bin_used[bin] += s;
                side[m as usize] = bin == 1;
            }
            continue;
        };
        bin_used[bin] += size;
        for m in members {
            side[m as usize] = bin == 1;
        }
    }
    // Degenerate packing (everything on one side) is useless as a split:
    // force the lightest-connected node across if it fits.
    if side.iter().all(|&s| !s) || side.iter().all(|&s| s) {
        let lonely = side.iter().all(|&s| !s);
        // Move the smallest node to the empty side.
        let (idx, _) = g
            .sizes
            .iter()
            .enumerate()
            .min_by_key(|&(_, &s)| s)
            .expect("non-empty");
        side[idx] = lonely;
    }

    let broken = crossing_cost(g, &side);
    let (left, right) = sides_from(&side);
    Ok(Partition {
        left,
        right,
        broken_cost: broken,
        exact: false,
    })
}

/// The exact minimum-broken-cost partition ("NP split").
///
/// Enumerates all `2^(n-1)` assignments for up to [`MAX_EXACT_NODES`]
/// nodes (node 0 pinned to the left side by symmetry); both sides must fit
/// `capacity` and be non-empty. Beyond the exact limit it refines the
/// greedy result with a single local-improvement pass, returning
/// `exact = false`.
pub fn optimal_split(g: &DependencyGraph, capacity: u32) -> Result<Partition, SplitError> {
    check_inputs(g, capacity)?;
    let n = g.len();
    if n > MAX_EXACT_NODES {
        return local_improve(g, capacity, linear_split(g, capacity)?);
    }
    let mut best: Option<(f64, Vec<bool>)> = None;
    let mut side = vec![false; n];
    // Node 0 stays left; enumerate assignments of nodes 1..n.
    #[allow(clippy::needless_range_loop)]
    // `i` simultaneously indexes `side`, `g.sizes` and the mask
    for mask in 0u64..(1u64 << (n - 1)) {
        let mut left_size = g.sizes[0] as u64;
        let mut right_size = 0u64;
        for i in 1..n {
            let right = (mask >> (i - 1)) & 1 == 1;
            side[i] = right;
            if right {
                right_size += g.sizes[i] as u64;
            } else {
                left_size += g.sizes[i] as u64;
            }
        }
        if right_size == 0 || left_size > capacity as u64 || right_size > capacity as u64 {
            continue;
        }
        let cost = crossing_cost(g, &side);
        if best.as_ref().map(|(c, _)| cost < *c).unwrap_or(true) {
            best = Some((cost, side.clone()));
        }
    }
    let (cost, side) = best.ok_or(SplitError::DoesNotFit)?;
    let (left, right) = sides_from(&side);
    Ok(Partition {
        left,
        right,
        broken_cost: cost,
        exact: true,
    })
}

/// One pass of single-node moves that reduce crossing cost while keeping
/// both sides within capacity.
fn local_improve(
    g: &DependencyGraph,
    capacity: u32,
    start: Partition,
) -> Result<Partition, SplitError> {
    let n = g.len();
    let mut side = vec![false; n];
    for &r in &start.right {
        side[r as usize] = true;
    }
    let mut used = [0u64; 2];
    for (i, &right) in side.iter().enumerate() {
        used[right as usize] += g.sizes[i] as u64;
    }
    let mut cost = start.broken_cost;
    #[allow(clippy::needless_range_loop)] // index used across three arrays
    for i in 0..n {
        let from = side[i] as usize;
        let to = 1 - from;
        let s = g.sizes[i] as u64;
        if used[to] + s > capacity as u64 || used[from] == s {
            continue;
        }
        // Delta: arcs to the other side become internal, internal arcs
        // become crossing.
        let mut delta = 0.0;
        for &(a, b, w) in &g.arcs {
            let (a, b) = (a as usize, b as usize);
            if a != i && b != i {
                continue;
            }
            let other = if a == i { b } else { a };
            if side[other] != side[i] {
                delta -= w;
            } else {
                delta += w;
            }
        }
        if delta < 0.0 {
            side[i] = !side[i];
            used[from] -= s;
            used[to] += s;
            cost += delta;
        }
    }
    let (left, right) = sides_from(&side);
    Ok(Partition {
        left,
        right,
        broken_cost: cost,
        exact: false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph(sizes: &[u32], arcs: &[(u32, u32, f64)]) -> DependencyGraph {
        let mut arcs = arcs.to_vec();
        arcs.sort_by(|x, y| y.2.partial_cmp(&x.2).unwrap());
        DependencyGraph {
            objects: (0..sizes.len() as u32).map(ObjectId).collect(),
            sizes: sizes.to_vec(),
            arcs,
        }
    }

    #[test]
    fn two_clusters_split_cleanly() {
        // 0-1 heavy, 2-3 heavy, light bridge 1-2.
        let g = graph(
            &[100, 100, 100, 100],
            &[(0, 1, 10.0), (2, 3, 10.0), (1, 2, 1.0)],
        );
        let lin = linear_split(&g, 250).unwrap();
        let opt = optimal_split(&g, 250).unwrap();
        assert_eq!(lin.broken_cost, 1.0);
        assert_eq!(opt.broken_cost, 1.0);
        assert!(opt.exact);
        assert_eq!(opt.left.len() + opt.right.len(), 4);
    }

    #[test]
    fn optimal_never_worse_than_linear() {
        // A ring where greedy can be tricked.
        let g = graph(
            &[60, 60, 60, 60, 60],
            &[
                (0, 1, 5.0),
                (1, 2, 4.0),
                (2, 3, 5.0),
                (3, 4, 4.0),
                (4, 0, 3.0),
            ],
        );
        let lin = linear_split(&g, 200).unwrap();
        let opt = optimal_split(&g, 200).unwrap();
        assert!(opt.broken_cost <= lin.broken_cost + 1e-12);
        assert!(opt.broken_cost > 0.0, "a ring always breaks somewhere");
    }

    #[test]
    fn capacity_constrains_sides() {
        let g = graph(&[100, 100, 100], &[(0, 1, 1.0), (1, 2, 1.0)]);
        let opt = optimal_split(&g, 200).unwrap();
        for side in [&opt.left, &opt.right] {
            let bytes: u32 = side.iter().map(|&i| g.sizes[i as usize]).sum();
            assert!(bytes <= 200);
        }
        let lin = linear_split(&g, 200).unwrap();
        for side in [&lin.left, &lin.right] {
            let bytes: u32 = side.iter().map(|&i| g.sizes[i as usize]).sum();
            assert!(bytes <= 200);
        }
    }

    #[test]
    fn impossible_packings_error() {
        let g = graph(&[150, 150, 150], &[(0, 1, 1.0)]);
        assert_eq!(optimal_split(&g, 200), Err(SplitError::DoesNotFit));
        assert!(linear_split(&g, 200).is_err());
        let g2 = graph(&[300, 10], &[(0, 1, 1.0)]);
        assert!(matches!(
            optimal_split(&g2, 200),
            Err(SplitError::NodeTooLarge(_, 300))
        ));
        let g3 = graph(&[10], &[]);
        assert_eq!(linear_split(&g3, 200), Err(SplitError::TooSmall));
    }

    #[test]
    fn both_sides_always_non_empty() {
        // No arcs at all: greedy must still produce a real split.
        let g = graph(&[50, 50, 50], &[]);
        let lin = linear_split(&g, 200).unwrap();
        assert!(!lin.left.is_empty() && !lin.right.is_empty());
        let opt = optimal_split(&g, 200).unwrap();
        assert!(!opt.left.is_empty() && !opt.right.is_empty());
        assert_eq!(opt.broken_cost, 0.0);
    }

    #[test]
    fn large_graphs_fall_back_to_heuristic() {
        let n = MAX_EXACT_NODES + 5;
        let sizes: Vec<u32> = vec![10; n];
        let arcs: Vec<(u32, u32, f64)> = (0..n as u32 - 1).map(|i| (i, i + 1, 1.0)).collect();
        let g = graph(&sizes, &arcs);
        let p = optimal_split(&g, 200).unwrap();
        assert!(!p.exact);
        assert!(p.broken_cost >= 1.0, "a chain split breaks ≥1 arc");
    }

    #[test]
    fn dependency_graph_totals() {
        let g = graph(&[10, 10], &[(0, 1, 2.5)]);
        assert_eq!(g.len(), 2);
        assert!(!g.is_empty());
        assert_eq!(g.total_arc_weight(), 2.5);
    }
}
