//! Offline (static) clustering.
//!
//! §2.1: "For static clustering, the system is quiesced, and the database
//! administrator decides on a partitioning of objects." This module is
//! that DBA tool: it rewrites the whole database's placement in structure
//! order with full visibility, and provides the layout-quality metric
//! (total broken arc weight) used to compare layouts and to watch a
//! static layout *drift* as structures keep changing — the reason the
//! paper argues for run-time reclustering.

use crate::config::ClusteringPolicy;
use crate::cost::WeightModel;
use crate::placement::{plan_placement, AllResident, PlacementTarget};
use semcluster_storage::{StorageManager, PAGE_OVERHEAD_BYTES};
use semcluster_vdm::Database;

/// Report of one offline reorganisation.
#[derive(Debug, Clone, PartialEq)]
pub struct ReorgReport {
    /// Objects placed.
    pub objects: usize,
    /// Pages in the new layout.
    pub pages: usize,
    /// Total arc weight crossing page boundaries before.
    pub broken_before: f64,
    /// Total arc weight crossing page boundaries after.
    pub broken_after: f64,
}

impl ReorgReport {
    /// Fraction of the previously broken weight the reorganisation
    /// repaired (0 when nothing was broken).
    pub fn improvement(&self) -> f64 {
        if self.broken_before == 0.0 {
            0.0
        } else {
            1.0 - self.broken_after / self.broken_before
        }
    }
}

/// Total weight of arcs whose endpoints live on different pages — the
/// layout-quality objective the clustering algorithms minimise. Unplaced
/// objects count as broken.
pub fn broken_arc_weight(db: &Database, store: &StorageManager, model: &WeightModel) -> f64 {
    let mut total = 0.0;
    for (kind, a, b) in db.graph().edges() {
        if !store.co_resident(a, b) {
            // Arc weight: sum of both endpoints' traversal frequencies
            // for this relationship (forward from a, so use a's profile).
            let w = db
                .frequencies_of(a)
                .map(|f| model.arc_weight(kind, f.weight(kind, semcluster_vdm::Direction::Forward)))
                .unwrap_or(1.0);
            total += w;
        }
    }
    total
}

/// Rebuild placement from scratch: every object is affinity-placed in id
/// (structure) order with full visibility, leaving `slack_fraction` free
/// per appended page. Returns the fresh store and a report comparing it
/// with `old`.
pub fn static_recluster(
    db: &Database,
    old: &StorageManager,
    model: &WeightModel,
    slack_fraction: f64,
) -> (StorageManager, ReorgReport) {
    assert!(
        (0.0..1.0).contains(&slack_fraction),
        "slack must be in [0,1)"
    );
    let mut fresh = StorageManager::new(old.page_bytes());
    let capacity = old.page_bytes() - PAGE_OVERHEAD_BYTES;
    let reserve = (capacity as f64 * slack_fraction) as u32;
    for obj in db.objects() {
        let size = obj.size_bytes();
        let plan = plan_placement(
            db,
            &fresh,
            &AllResident,
            ClusteringPolicy::NoLimit,
            model,
            obj.id,
            size,
        );
        match plan.target {
            PlacementTarget::Existing(page) => fresh
                .place(obj.id, size, page)
                .expect("plan checked capacity"),
            PlacementTarget::Append => {
                fresh
                    .append_reserving(obj.id, size, reserve)
                    .expect("append cannot fail");
            }
        }
    }
    let report = ReorgReport {
        objects: db.object_count(),
        pages: fresh.page_count(),
        broken_before: broken_arc_weight(db, old, model),
        broken_after: broken_arc_weight(db, &fresh, model),
    };
    (fresh, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use semcluster_vdm::{ObjectId, SyntheticDbSpec};

    fn scattered_store(db: &Database) -> StorageManager {
        let mut store = StorageManager::new(4096);
        let n = db.object_count();
        for k in 0..n {
            let idx = (k * 197) % n;
            let obj = db.get(ObjectId(idx as u32)).unwrap();
            store.append(obj.id, obj.size_bytes()).unwrap();
        }
        store
    }

    #[test]
    fn reorganisation_repairs_a_scattered_layout() {
        let (db, _) = SyntheticDbSpec {
            modules: 8,
            depth: 3,
            fanout: (2, 4),
            seed: 3,
            ..SyntheticDbSpec::default()
        }
        .build();
        let model = WeightModel::no_hints();
        let old = scattered_store(&db);
        let (fresh, report) = static_recluster(&db, &old, &model, 0.3);
        assert_eq!(report.objects, db.object_count());
        assert!(
            report.broken_after < report.broken_before * 0.75,
            "before {} after {}",
            report.broken_before,
            report.broken_after
        );
        assert!(report.improvement() > 0.25);
        // Every object is placed in the new store.
        for obj in db.objects() {
            assert!(fresh.page_of(obj.id).is_some());
        }
        assert_eq!(fresh.used_bytes(), old.used_bytes());
    }

    #[test]
    fn broken_weight_is_zero_when_everything_fits_one_page() {
        let (db, _) = SyntheticDbSpec {
            modules: 1,
            depth: 1,
            fanout: (2, 2),
            representations: vec!["layout".into()],
            correspondence_prob: 0.0,
            version_prob: 0.0,
            body_bytes: (32, 64),
            seed: 5,
        }
        .build();
        let model = WeightModel::no_hints();
        let mut store = StorageManager::new(4096);
        let page = store.allocate_page();
        for obj in db.objects() {
            store.place(obj.id, obj.size_bytes(), page).unwrap();
        }
        assert_eq!(broken_arc_weight(&db, &store, &model), 0.0);
    }

    #[test]
    fn static_layout_drifts_without_reclustering() {
        // The §2.1 argument: a statically clustered layout degrades as
        // structure keeps changing; run-time reclustering holds the line.
        let (mut db, _) = SyntheticDbSpec {
            modules: 6,
            depth: 3,
            fanout: (2, 4),
            seed: 8,
            ..SyntheticDbSpec::default()
        }
        .build();
        let model = WeightModel::no_hints();
        let old = scattered_store(&db);
        let (mut store, report) = static_recluster(&db, &old, &model, 0.3);
        let baseline = report.broken_after;
        // Design evolution: new components appended without clustering.
        let ty = db.lattice().id_of("layout").unwrap();
        let n0 = db.object_count() as u32;
        for i in 0..150u32 {
            let anchor = ObjectId((i * 53) % n0);
            let id = db
                .create_object(
                    semcluster_vdm::ObjectName::new(format!("drift{i}"), 1, "layout"),
                    ty,
                    128,
                )
                .unwrap();
            db.relate(semcluster_vdm::RelKind::Configuration, anchor, id)
                .unwrap();
            store.append(id, db.get(id).unwrap().size_bytes()).unwrap();
        }
        let drifted = broken_arc_weight(&db, &store, &model);
        assert!(
            drifted > baseline * 1.2,
            "layout should drift: baseline {baseline}, drifted {drifted}"
        );
        // A second offline pass with more slack repairs most of the
        // drift (the floor is the baseline plus whatever new arcs cannot
        // be co-located on full pages).
        let (_, repaired) = static_recluster(&db, &store, &model, 0.5);
        let drift_amount = drifted - baseline;
        let remaining = repaired.broken_after - baseline;
        assert!(
            remaining < drift_amount * 0.7,
            "baseline {baseline}, drifted {drifted}, repaired {}",
            repaired.broken_after
        );
    }
}
