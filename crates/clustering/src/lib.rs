//! # semcluster-clustering
//!
//! The paper's run-time clustering engine:
//!
//! * an arc-weight model turning type-inherited traversal frequencies and
//!   user hints into placement affinities ([`WeightModel`],
//!   [`weighted_neighbors`], [`candidate_pages`], [`placement_cost`]),
//! * the candidate-page search with buffer-only / k-I/O-limited /
//!   unbounded pools ([`plan_placement`]),
//! * page splitting when the preferred candidate overflows — greedy
//!   single-pass [`linear_split`] vs the exact [`optimal_split`] — gated
//!   by a cost comparison ([`consider_split`]), and
//! * run-time reclustering of existing objects when their structure
//!   changes ([`plan_recluster`]).
//!
//! Searches produce *plans*; the simulation engine executes them so every
//! candidate-page read is charged through the buffer manager to the
//! writing transaction — exactly the accounting the paper's Figures
//! 5.1–5.10 rest on.

#![warn(missing_docs)]

pub mod arena;
mod config;
mod cost;
mod locality;
mod offline;
mod placement;
mod recluster;
mod split;

pub use arena::ScoreScratch;
pub use config::{ClusteringPolicy, HintPolicy, SplitPolicy};
pub use cost::{
    candidate_pages, candidate_pages_in, extended_neighbors, extended_neighbors_in, placement_cost,
    weighted_neighbors, weighted_neighbors_in, WeightModel, HINT_MULTIPLIER, TWO_HOP_DECAY,
};
pub use locality::page_locality;
pub use offline::{broken_arc_weight, static_recluster, ReorgReport};
pub use placement::{
    execute_placement, plan_placement, plan_placement_in, AllResident, ExaminedCandidate,
    PlacementPlan, PlacementTarget, ResidencyView, MAX_EXAMINED,
};
pub use recluster::{
    consider_split, execute_split, plan_recluster, plan_recluster_in, ReclusterPlan, SplitOutcome,
    SplitPlan, SPLIT_OVERHEAD_WEIGHT,
};
pub use split::{
    build_dependency_graph, linear_split, optimal_split, DependencyGraph, Partition, SplitError,
    MAX_EXACT_NODES,
};
