//! The clustering-locality score: how well the current physical layout
//! honours the structure semantics.
//!
//! For a page, every structural arc leaving an object on that page is
//! one *co-reference*; it is *satisfied* when the related object lives
//! on the same page. The ratio `on_page / total` is the locality score
//! — 1.0 means every traversal from this page's objects stays on-page,
//! 0.0 means every traversal faults. The timeline sampler folds this
//! over the buffer-resident pages, which is exactly the set whose
//! locality determines the hit ratio the paper's figures track.
//!
//! This runs on every timeline sample, so it walks the graph's adjacency
//! slices directly instead of going through `weighted_neighbors` — no
//! allocation, no sort, and parallel arcs of different kinds each count
//! as their own co-reference (each is a distinct traversal the layout
//! can satisfy or fault). "No allocation" is not just an intention:
//! the fold is bracketed by the profiler's `page_locality` phase and
//! `golden --suite profile` pins its `alloc_bytes` at zero under the
//! counting allocator, so an allocation sneaking in here fails CI.

use semcluster_storage::{PageId, StorageManager};
use semcluster_vdm::{Database, Direction, RelKind};

/// Count `(on_page, total)` structural co-references for `page`.
///
/// Only placed neighbours count toward the total: an object that has no
/// page yet cannot be co-resident with anything, so including it would
/// punish layouts for objects that do not physically exist yet.
pub fn page_locality(db: &Database, store: &StorageManager, page: PageId) -> (u64, u64) {
    let Ok(objects) = store.objects_on(page) else {
        return (0, 0);
    };
    let graph = db.graph();
    let mut on_page = 0u64;
    let mut total = 0u64;
    let mut tally = |neighbors: &[semcluster_vdm::ObjectId]| {
        for &neighbor in neighbors {
            match store.page_of(neighbor) {
                Some(p) if p == page => {
                    on_page += 1;
                    total += 1;
                }
                Some(_) => total += 1,
                None => {}
            }
        }
    };
    for &(object, _size) in objects {
        for kind in RelKind::ALL {
            tally(graph.neighbors(object, kind, Direction::Forward));
            if !kind.is_symmetric() {
                tally(graph.neighbors(object, kind, Direction::Backward));
            }
        }
    }
    (on_page, total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use semcluster_storage::DEFAULT_PAGE_BYTES;
    use semcluster_vdm::{ObjectName, RelFrequencies, RelKind, TypeLattice};

    #[test]
    fn counts_on_page_and_off_page_references() {
        let mut lattice = TypeLattice::new();
        let t = lattice
            .define_simple(
                "layout",
                RelFrequencies {
                    config_down: 5.0,
                    config_up: 5.0,
                    ..RelFrequencies::UNIFORM
                },
            )
            .unwrap();
        let mut db = Database::with_lattice(lattice);
        let a = db
            .create_object(ObjectName::new("A", 1, "layout"), t, 100)
            .unwrap();
        let b = db
            .create_object(ObjectName::new("B", 1, "layout"), t, 100)
            .unwrap();
        let c = db
            .create_object(ObjectName::new("C", 1, "layout"), t, 100)
            .unwrap();
        db.relate(RelKind::Configuration, a, b).unwrap();
        db.relate(RelKind::Configuration, a, c).unwrap();
        let mut store = StorageManager::new(DEFAULT_PAGE_BYTES);
        let p0 = store.allocate_page();
        let p1 = store.allocate_page();
        store.place(a, 100, p0).unwrap();
        store.place(b, 100, p0).unwrap();
        store.place(c, 100, p1).unwrap();
        // a→b on-page, a→c off-page, plus the reverse arcs b→a (on-page)
        // and c's arcs live on p1.
        let (on, total) = page_locality(&db, &store, p0);
        assert!(total >= 3);
        assert!(on >= 2);
        assert!(on < total, "a→c crosses pages");
        let (on1, total1) = page_locality(&db, &store, p1);
        assert_eq!(on1, 0);
        assert!(total1 >= 1);
    }

    #[test]
    fn empty_or_unknown_page_scores_zero() {
        let db = Database::new();
        let mut store = StorageManager::new(DEFAULT_PAGE_BYTES);
        let p = store.allocate_page();
        assert_eq!(page_locality(&db, &store, p), (0, 0));
        assert_eq!(page_locality(&db, &store, PageId(999)), (0, 0));
    }
}
