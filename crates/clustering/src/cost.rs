//! The arc-weight / expected-access-cost model.
//!
//! Every structural or inheritance edge incident to an object is an *arc*
//! whose weight is the expected traversal frequency: the object's
//! type-inherited [`RelFrequencies`] profile, optionally scaled by the
//! session's user hint. The clustering algorithm wants co-referenced
//! (high-weight) objects on one page; the expected access cost of a
//! placement is the total weight of arcs it leaves crossing page
//! boundaries.

use crate::arena::{sort_scored, ScoreScratch};
use crate::config::HintPolicy;
use semcluster_buffer::AccessHint;
use semcluster_storage::{PageId, StorageManager};
use semcluster_vdm::DetHashMap;
use semcluster_vdm::{Database, ObjectId, RelKind};

/// How strongly a user hint amplifies its relationship's weights.
pub const HINT_MULTIPLIER: f64 = 4.0;

/// The weight model: hint policy + the session's declared access pattern.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WeightModel {
    /// Whether hints are honoured (Table 4.1 parameter J).
    pub hint_policy: HintPolicy,
    /// The session's declared primary access pattern.
    pub session_hint: AccessHint,
    /// Multiplier applied to the hinted relationship's weights.
    pub hint_multiplier: f64,
}

impl WeightModel {
    /// Weight model that ignores hints.
    pub fn no_hints() -> Self {
        WeightModel {
            hint_policy: HintPolicy::NoHints,
            session_hint: AccessHint::None,
            hint_multiplier: HINT_MULTIPLIER,
        }
    }

    /// Weight model honouring `hint`.
    pub fn with_hint(hint: AccessHint) -> Self {
        WeightModel {
            hint_policy: HintPolicy::UserHints,
            session_hint: hint,
            hint_multiplier: HINT_MULTIPLIER,
        }
    }

    /// Which relationship kind the active hint amplifies (None when hints
    /// are disabled or the session declared none).
    pub fn hinted_kind(&self) -> Option<RelKind> {
        if self.hint_policy == HintPolicy::NoHints {
            return None;
        }
        match self.session_hint {
            AccessHint::None => None,
            AccessHint::ByConfiguration => Some(RelKind::Configuration),
            AccessHint::ByVersionHistory => Some(RelKind::VersionHistory),
            AccessHint::ByCorrespondence => Some(RelKind::Correspondence),
            AccessHint::ByInheritance => Some(RelKind::Inheritance),
        }
    }

    /// Effective weight of one arc of `kind` incident to an object whose
    /// type profile gives it `base` weight.
    pub fn arc_weight(&self, kind: RelKind, base: f64) -> f64 {
        match self.hinted_kind() {
            Some(h) if h == kind => base * self.hint_multiplier,
            _ => base,
        }
    }
}

/// All objects related to `object`, with effective arc weights. Parallel
/// arcs (e.g. an object that is both a component and a correspondent) are
/// merged by summing weights.
pub fn weighted_neighbors(
    db: &Database,
    model: &WeightModel,
    object: ObjectId,
) -> Vec<(ObjectId, f64)> {
    let Ok(freqs) = db.frequencies_of(object) else {
        return Vec::new();
    };
    let mut acc: DetHashMap<ObjectId, f64> = DetHashMap::default();
    for (kind, dir, other) in db.graph().related(object) {
        let base = freqs.weight(kind, dir);
        let w = model.arc_weight(kind, base);
        *acc.entry(other).or_insert(0.0) += w;
    }
    let mut out: Vec<(ObjectId, f64)> = acc.into_iter().collect();
    // Deterministic order: weight descending, id ascending.
    out.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite").then(a.0.cmp(&b.0)));
    out
}

/// Weight discount applied to two-hop cluster-neighbourhood arcs.
pub const TWO_HOP_DECAY: f64 = 0.25;

/// The extended cluster neighbourhood of `object`: direct relatives plus
/// their relatives at decayed weight. The clustering algorithm explores
/// this wider pool when searching candidate pages — a cluster often has
/// room on a page adjacent (in graph terms) to the full preferred page —
/// and it is precisely this exploration whose I/O the candidate-pool
/// policy bounds.
pub fn extended_neighbors(
    db: &Database,
    model: &WeightModel,
    object: ObjectId,
) -> Vec<(ObjectId, f64)> {
    let direct = weighted_neighbors(db, model, object);
    let mut acc: DetHashMap<ObjectId, f64> = direct.iter().copied().collect();
    for &(hop, w1) in &direct {
        let Ok(freqs) = db.frequencies_of(hop) else {
            continue;
        };
        for (kind, dir, two) in db.graph().related(hop) {
            if two == object {
                continue;
            }
            let w2 = model.arc_weight(kind, freqs.weight(kind, dir));
            let w = TWO_HOP_DECAY * w1.min(w2);
            *acc.entry(two).or_insert(0.0) += w;
        }
    }
    let mut out: Vec<(ObjectId, f64)> = acc.into_iter().collect();
    out.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite").then(a.0.cmp(&b.0)));
    out
}

/// Candidate pages for placing `object`, scored by total affinity (sum of
/// arc weights of related objects resident on the page), best first.
/// Unplaced related objects contribute nothing.
pub fn candidate_pages(
    store: &StorageManager,
    neighbors: &[(ObjectId, f64)],
) -> Vec<(PageId, f64)> {
    let mut affinity: DetHashMap<PageId, f64> = DetHashMap::default();
    for &(obj, w) in neighbors {
        if let Some(page) = store.page_of(obj) {
            *affinity.entry(page).or_insert(0.0) += w;
        }
    }
    let mut out: Vec<(PageId, f64)> = affinity.into_iter().collect();
    out.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite").then(a.0.cmp(&b.0)));
    out
}

/// Allocation-free [`weighted_neighbors`]: folds arc weights through the
/// dense accumulator in `scratch` and leaves the sorted result in
/// `scratch.direct`. Bit-for-bit equivalent to the map-based reference
/// (see the determinism contract in [`crate::arena`]).
pub fn weighted_neighbors_in(
    db: &Database,
    model: &WeightModel,
    object: ObjectId,
    scratch: &mut ScoreScratch,
) {
    scratch.direct.clear();
    let Ok(freqs) = db.frequencies_of(object) else {
        return;
    };
    scratch.obj.begin();
    let ScoreScratch { obj, direct, .. } = scratch;
    db.graph().for_each_related(object, |kind, dir, other| {
        let base = freqs.weight(kind, dir);
        let w = model.arc_weight(kind, base);
        obj.add(direct, other.index(), other, w);
        true
    });
    sort_scored(&mut scratch.direct);
}

/// Allocation-free [`extended_neighbors`]: reads the direct neighbours
/// already in `scratch.direct` (fill with [`weighted_neighbors_in`]
/// first) and leaves the sorted two-hop neighbourhood in
/// `scratch.extended`.
pub fn extended_neighbors_in(
    db: &Database,
    model: &WeightModel,
    object: ObjectId,
    scratch: &mut ScoreScratch,
) {
    scratch.extended.clear();
    scratch.obj.begin();
    let ScoreScratch {
        obj,
        direct,
        extended,
        ..
    } = scratch;
    // Seed with the direct neighbours (sorted order — the same insertion
    // order the reference's `collect()` sees).
    for &(id, w) in direct.iter() {
        obj.add(extended, id.index(), id, w);
    }
    for &(hop, w1) in direct.iter() {
        let Ok(freqs) = db.frequencies_of(hop) else {
            continue;
        };
        db.graph().for_each_related(hop, |kind, dir, two| {
            if two == object {
                return true;
            }
            let w2 = model.arc_weight(kind, freqs.weight(kind, dir));
            obj.add(extended, two.index(), two, TWO_HOP_DECAY * w1.min(w2));
            true
        });
    }
    sort_scored(extended);
}

/// Allocation-free [`candidate_pages`]: scores the pages holding the
/// extended neighbourhood already in `scratch.extended` and leaves the
/// sorted candidates in `scratch.pages`.
pub fn candidate_pages_in(store: &StorageManager, scratch: &mut ScoreScratch) {
    scratch.pages.clear();
    scratch.page.begin();
    let ScoreScratch {
        page: acc,
        extended,
        pages,
        ..
    } = scratch;
    for &(obj, w) in extended.iter() {
        if let Some(page) = store.page_of(obj) {
            acc.add(pages, page.index(), page, w);
        }
    }
    sort_scored(pages);
}

/// Expected access cost of having `object` on `page`: total arc weight to
/// related objects *not* co-resident on `page`. Lower is better.
pub fn placement_cost(store: &StorageManager, neighbors: &[(ObjectId, f64)], page: PageId) -> f64 {
    neighbors
        .iter()
        .filter(|&&(o, _)| store.page_of(o) != Some(page))
        .map(|&(_, w)| w)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use semcluster_storage::DEFAULT_PAGE_BYTES;
    use semcluster_vdm::{ObjectName, RelFrequencies, TypeLattice};

    fn fixture() -> (Database, StorageManager, ObjectId, [ObjectId; 3]) {
        let mut lattice = TypeLattice::new();
        let layout = lattice
            .define_simple(
                "layout",
                RelFrequencies {
                    config_down: 3.0,
                    config_up: 1.0,
                    version_up: 2.0,
                    version_down: 0.5,
                    correspondence: 1.0,
                    inheritance: 1.0,
                },
            )
            .unwrap();
        let netlist = lattice
            .define_simple("netlist", RelFrequencies::UNIFORM)
            .unwrap();
        let mut db = Database::with_lattice(lattice);
        let x = db
            .create_object(ObjectName::new("X", 2, "layout"), layout, 100)
            .unwrap();
        let comp = db
            .create_object(ObjectName::new("C", 1, "layout"), layout, 100)
            .unwrap();
        let parent = db
            .create_object(ObjectName::new("X", 1, "layout"), layout, 100)
            .unwrap();
        let corr = db
            .create_object(ObjectName::new("X", 2, "netlist"), netlist, 100)
            .unwrap();
        db.relate(RelKind::Configuration, x, comp).unwrap();
        db.relate(RelKind::VersionHistory, parent, x).unwrap();
        db.relate(RelKind::Correspondence, x, corr).unwrap();

        let mut store = StorageManager::new(DEFAULT_PAGE_BYTES);
        for o in [x, comp, parent, corr] {
            store.append(o, 100).unwrap();
        }
        (db, store, x, [comp, parent, corr])
    }

    #[test]
    fn neighbors_weighted_by_type_profile() {
        let (db, _, x, [comp, parent, corr]) = fixture();
        let n = weighted_neighbors(&db, &WeightModel::no_hints(), x);
        let get = |o| n.iter().find(|&&(id, _)| id == o).map(|&(_, w)| w);
        assert_eq!(get(comp), Some(3.0)); // config_down
        assert_eq!(get(parent), Some(2.0)); // version_up (x → ancestor)
        assert_eq!(get(corr), Some(1.0)); // correspondence
        assert_eq!(n[0].0, comp, "sorted by weight descending");
    }

    #[test]
    fn hints_amplify_their_relationship() {
        let (db, _, x, [comp, _, corr]) = fixture();
        let model = WeightModel::with_hint(AccessHint::ByCorrespondence);
        let n = weighted_neighbors(&db, &model, x);
        let get = |o| n.iter().find(|&&(id, _)| id == o).map(|&(_, w)| w);
        assert_eq!(get(corr), Some(4.0)); // 1.0 × HINT_MULTIPLIER
        assert_eq!(get(comp), Some(3.0)); // untouched
    }

    #[test]
    fn hint_policy_no_hints_ignores_session_hint() {
        let model = WeightModel {
            hint_policy: HintPolicy::NoHints,
            session_hint: AccessHint::ByConfiguration,
            hint_multiplier: 10.0,
        };
        assert_eq!(model.hinted_kind(), None);
        assert_eq!(model.arc_weight(RelKind::Configuration, 2.0), 2.0);
    }

    #[test]
    fn candidate_pages_aggregate_affinity() {
        let (db, mut store, x, [comp, parent, corr]) = fixture();
        // Put comp and parent on one page, corr elsewhere.
        let shared = store.allocate_page();
        store.move_object(comp, shared).unwrap();
        store.move_object(parent, shared).unwrap();
        let n = weighted_neighbors(&db, &WeightModel::no_hints(), x);
        let cands = candidate_pages(&store, &n);
        assert_eq!(cands[0].0, shared);
        assert!((cands[0].1 - 5.0).abs() < 1e-12); // 3 + 2
        assert_eq!(cands.len(), 2);
        let _ = corr;
    }

    #[test]
    fn scratch_scoring_matches_reference() {
        let (db, mut store, x, [comp, parent, _]) = fixture();
        let shared = store.allocate_page();
        store.move_object(comp, shared).unwrap();
        store.move_object(parent, shared).unwrap();
        let model = WeightModel::with_hint(AccessHint::ByConfiguration);
        let mut scratch = ScoreScratch::new();
        for probe in [x, comp, parent] {
            weighted_neighbors_in(&db, &model, probe, &mut scratch);
            assert_eq!(scratch.direct, weighted_neighbors(&db, &model, probe));
            extended_neighbors_in(&db, &model, probe, &mut scratch);
            assert_eq!(scratch.extended, extended_neighbors(&db, &model, probe));
            candidate_pages_in(&store, &mut scratch);
            assert_eq!(
                scratch.pages,
                candidate_pages(&store, &extended_neighbors(&db, &model, probe))
            );
        }
    }

    #[test]
    fn placement_cost_counts_broken_arcs() {
        let (db, mut store, x, [comp, parent, corr]) = fixture();
        let shared = store.allocate_page();
        store.move_object(comp, shared).unwrap();
        store.move_object(parent, shared).unwrap();
        let n = weighted_neighbors(&db, &WeightModel::no_hints(), x);
        // Placing x on `shared` breaks only the corr arc (1.0).
        assert!((placement_cost(&store, &n, shared) - 1.0).abs() < 1e-12);
        // Placing x on corr's page breaks comp+parent arcs (5.0).
        let corr_page = store.page_of(corr).unwrap();
        assert!((placement_cost(&store, &n, corr_page) - 5.0).abs() < 1e-12);
    }
}
