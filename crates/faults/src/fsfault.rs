//! Filesystem fault layer: real files with injectable failure semantics.
//!
//! [`FaultedDir`] manages a directory of real files and interposes on
//! every write/fsync with *write-buffering* semantics that model an OS
//! page cache under an adversarial power cut:
//!
//! * `write_at`/`append` buffer data in memory ("the page cache") and
//!   only count as durable once an `fsync` applies them to the real
//!   file and calls `sync_all`. A crash drops every unsynced write.
//! * **Short writes** — a raw write syscall may accept only a prefix,
//!   forcing callers to loop, exactly like a real `write(2)`.
//! * **Torn writes** — a crash during a write persists only a partial
//!   (sub-sector) prefix of the in-flight data onto the real file; a
//!   crash during an fsync persists a prefix of the pending writes and
//!   tears the next one.
//! * **Fsync failures with "fsyncgate" semantics** — an injected fsync
//!   failure *drops the pending dirty data* and poisons the handle.
//!   Retrying the fsync cannot resurrect the lost writes: correct
//!   callers must treat the commit as failed and never ack it.
//! * **Crash-at-syscall points** — the k-th filesystem syscall kills
//!   the process image: all later operations fail with
//!   [`FsError::Crashed`] and only synced data (plus the torn in-flight
//!   prefix) survives on disk for recovery to read.
//!
//! Every injection decision is a pure function of `(seed, counter)`
//! via the same keyed splitmix64 hash as [`crate::FaultPlan`], so a
//! given [`FsFaultConfig`] yields one schedule, byte-identical at any
//! thread count.

use crate::plan::splitmix64;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};

/// Salt separating fs-fault draws from the I/O fault plan.
const FS_SALT: u64 = 0xD15C_F417_CAFE_1989;
/// Draw stream for short-write decisions.
const STREAM_SHORT: u64 = 0x51;
/// Draw stream for torn-prefix lengths.
const STREAM_TEAR: u64 = 0x52;

/// Configuration of the filesystem fault schedule. The default is
/// inert: no short writes, no fsync failures, no crash point.
#[derive(Debug, Clone, PartialEq)]
pub struct FsFaultConfig {
    /// Seed keying the deterministic draw schedule.
    pub seed: u64,
    /// Probability a raw write syscall accepts only a prefix.
    pub short_write_rate: f64,
    /// 1-based fsync indices that fail with fsyncgate semantics.
    pub fsync_fail_at: Vec<u64>,
    /// Crash (kill the process image) at this 1-based syscall index.
    pub crash_at_syscall: Option<u64>,
    /// Sector granularity used when tearing an in-flight write.
    pub torn_sector_bytes: u32,
    /// Skip the physical `sync_all` call (keeps the durability
    /// *semantics* — pending writes still only reach the file at
    /// fsync — while sparing tests thousands of real disk syncs).
    pub skip_physical_sync: bool,
}

impl Default for FsFaultConfig {
    fn default() -> Self {
        FsFaultConfig {
            seed: 0,
            short_write_rate: 0.0,
            fsync_fail_at: Vec::new(),
            crash_at_syscall: None,
            torn_sector_bytes: 512,
            skip_physical_sync: false,
        }
    }
}

/// Typed filesystem error. Every variant that concerns a file carries
/// its path so messages are actionable without a debugger.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FsError {
    /// A real I/O operation failed.
    Io {
        /// Operation that failed (`open`, `write`, `fsync`, ...).
        op: &'static str,
        /// Path of the file involved.
        path: String,
        /// OS error detail.
        detail: String,
    },
    /// An injected fsync failure: the pending dirty data was dropped
    /// and the handle poisoned ("fsyncgate"). The caller must treat
    /// everything since the last successful fsync as lost and must NOT
    /// retry-and-ack.
    SyncFailed {
        /// Path of the poisoned file.
        path: String,
    },
    /// Operation on a handle poisoned by an earlier fsync failure.
    Poisoned {
        /// Path of the poisoned file.
        path: String,
    },
    /// The simulated process image is dead (crash point reached); no
    /// further filesystem work is possible.
    Crashed,
}

impl std::fmt::Display for FsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FsError::Io { op, path, detail } => write!(f, "fs {op} failed on {path}: {detail}"),
            FsError::SyncFailed { path } => write!(
                f,
                "fsync failed on {path}: pending writes dropped, handle poisoned"
            ),
            FsError::Poisoned { path } => {
                write!(f, "operation on {path} after a failed fsync (poisoned)")
            }
            FsError::Crashed => write!(f, "filesystem crashed (injected crash point)"),
        }
    }
}

impl std::error::Error for FsError {}

/// Counters of everything the fault layer saw and injected.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FsStats {
    /// Total interposed syscalls (writes + fsyncs).
    pub syscalls: u64,
    /// Raw write syscalls.
    pub writes: u64,
    /// Fsync syscalls.
    pub fsyncs: u64,
    /// Injected short writes.
    pub short_writes: u64,
    /// Injected fsync failures.
    pub fsync_failures: u64,
    /// Bytes accepted by write syscalls (buffered).
    pub bytes_written: u64,
    /// Bytes made durable by successful fsyncs.
    pub bytes_synced: u64,
    /// Pending writes dropped by crashes and failed fsyncs.
    pub dropped_writes: u64,
    /// Writes torn (partially persisted) at a crash.
    pub torn_writes: u64,
}

/// A write that was mid-flight at the crash and persisted only a
/// prefix onto the real file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TornWrite {
    /// File the torn write targeted.
    pub file: String,
    /// Offset of the write.
    pub offset: u64,
    /// Bytes of the prefix that reached the platter.
    pub kept: u32,
    /// Bytes of the suffix that were lost.
    pub lost: u32,
}

/// What a crash left behind, for the recovery harness to reason about.
#[derive(Debug, Clone, PartialEq)]
pub struct FsCrashReport {
    /// Syscall/injection counters at the instant of the crash.
    pub stats: FsStats,
    /// The in-flight write that tore, if any.
    pub torn: Option<TornWrite>,
}

/// Opaque handle to a file managed by a [`FaultedDir`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FsFile(usize);

#[derive(Debug)]
struct FaultedFile {
    path: PathBuf,
    file: File,
    /// Buffered writes not yet applied to the real file (offset, data).
    pending: Vec<(u64, Vec<u8>)>,
    /// Logical length including pending writes.
    logical_len: u64,
    poisoned: bool,
}

impl FaultedFile {
    fn path_str(&self) -> String {
        self.path.display().to_string()
    }
}

/// A directory of real files behind the fault schedule. See the module
/// docs for the semantics of each injected failure.
#[derive(Debug)]
pub struct FaultedDir {
    root: PathBuf,
    cfg: FsFaultConfig,
    files: Vec<FaultedFile>,
    stats: FsStats,
    crashed: bool,
    crash_report: Option<FsCrashReport>,
    /// (file index, pending index) of the most recent buffered write,
    /// used by `crash(tear_last_write = true)`.
    last_pending: Option<(usize, usize)>,
    draw_key: u64,
}

impl FaultedDir {
    /// Create (or reuse) `root` and manage files inside it.
    pub fn create(root: &Path, cfg: FsFaultConfig) -> Result<Self, FsError> {
        std::fs::create_dir_all(root).map_err(|e| FsError::Io {
            op: "create_dir_all",
            path: root.display().to_string(),
            detail: e.to_string(),
        })?;
        Ok(FaultedDir {
            root: root.to_path_buf(),
            draw_key: splitmix64(cfg.seed ^ FS_SALT),
            cfg,
            files: Vec::new(),
            stats: FsStats::default(),
            crashed: false,
            crash_report: None,
            last_pending: None,
        })
    }

    /// Directory root.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Open (creating if absent) a file under the root.
    pub fn open(&mut self, name: &str) -> Result<FsFile, FsError> {
        let path = self.root.join(name);
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)
            .map_err(|e| FsError::Io {
                op: "open",
                path: path.display().to_string(),
                detail: e.to_string(),
            })?;
        let logical_len = file
            .metadata()
            .map_err(|e| FsError::Io {
                op: "metadata",
                path: path.display().to_string(),
                detail: e.to_string(),
            })?
            .len();
        self.files.push(FaultedFile {
            path,
            file,
            pending: Vec::new(),
            logical_len,
            poisoned: false,
        });
        Ok(FsFile(self.files.len() - 1))
    }

    /// Path of a managed file.
    pub fn path_of(&self, id: FsFile) -> &Path {
        &self.files[id.0].path
    }

    /// Injection/syscall counters so far.
    pub fn stats(&self) -> FsStats {
        self.stats
    }

    /// Whether a crash point has fired.
    pub fn is_crashed(&self) -> bool {
        self.crashed
    }

    /// The crash report, once crashed.
    pub fn crash_report(&self) -> Option<&FsCrashReport> {
        self.crash_report.as_ref()
    }

    /// Logical file length (pending writes included).
    pub fn logical_len(&self, id: FsFile) -> u64 {
        self.files[id.0].logical_len
    }

    fn unit_draw(&self, stream: u64, counter: u64) -> f64 {
        let bits = splitmix64(
            self.draw_key
                ^ stream.wrapping_mul(0xA24B_AED4_963E_E407)
                ^ counter.wrapping_mul(0x9FB2_1C65_1E98_DF25),
        );
        (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    fn int_draw(&self, stream: u64, counter: u64, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        splitmix64(
            self.draw_key
                ^ stream.wrapping_mul(0xA24B_AED4_963E_E407)
                ^ counter.wrapping_mul(0x9FB2_1C65_1E98_DF25),
        ) % bound
    }

    /// Buffer `data` at `offset`, looping over short writes like a real
    /// `pwrite` caller must.
    pub fn write_at(&mut self, id: FsFile, offset: u64, data: &[u8]) -> Result<(), FsError> {
        let mut offset = offset;
        let mut rest = data;
        while !rest.is_empty() {
            let wrote = self.raw_write(id, offset, rest)?;
            offset += wrote as u64;
            rest = &rest[wrote..];
        }
        Ok(())
    }

    /// Buffer `data` at the logical end of the file; returns the offset
    /// it landed at.
    pub fn append(&mut self, id: FsFile, data: &[u8]) -> Result<u64, FsError> {
        let offset = self.files[id.0].logical_len;
        self.write_at(id, offset, data)?;
        Ok(offset)
    }

    /// One raw write syscall: may crash, may accept only a prefix.
    fn raw_write(&mut self, id: FsFile, offset: u64, data: &[u8]) -> Result<usize, FsError> {
        if self.crashed {
            return Err(FsError::Crashed);
        }
        if self.files[id.0].poisoned {
            return Err(FsError::Poisoned {
                path: self.files[id.0].path_str(),
            });
        }
        self.stats.syscalls += 1;
        self.stats.writes += 1;
        if Some(self.stats.syscalls) == self.cfg.crash_at_syscall {
            return Err(self.crash_tearing_write(id, offset, data));
        }
        let take = if data.len() > 1
            && self.cfg.short_write_rate > 0.0
            && self.unit_draw(STREAM_SHORT, self.stats.writes) < self.cfg.short_write_rate
        {
            self.stats.short_writes += 1;
            (data.len() / 2).max(1)
        } else {
            data.len()
        };
        let f = &mut self.files[id.0];
        f.pending.push((offset, data[..take].to_vec()));
        f.logical_len = f.logical_len.max(offset + take as u64);
        self.stats.bytes_written += take as u64;
        self.last_pending = Some((id.0, f.pending.len() - 1));
        Ok(take)
    }

    /// Make pending writes durable. An injected failure here follows
    /// fsyncgate semantics: the pending data is dropped, the handle is
    /// poisoned, and a retry cannot bring the data back.
    pub fn fsync(&mut self, id: FsFile) -> Result<(), FsError> {
        if self.crashed {
            return Err(FsError::Crashed);
        }
        if self.files[id.0].poisoned {
            return Err(FsError::Poisoned {
                path: self.files[id.0].path_str(),
            });
        }
        self.stats.syscalls += 1;
        self.stats.fsyncs += 1;
        if Some(self.stats.syscalls) == self.cfg.crash_at_syscall {
            return Err(self.crash_during_fsync(id));
        }
        if self.cfg.fsync_fail_at.contains(&self.stats.fsyncs) {
            self.stats.fsync_failures += 1;
            let f = &mut self.files[id.0];
            self.stats.dropped_writes += f.pending.len() as u64;
            f.pending.clear();
            f.logical_len = file_len(f);
            f.poisoned = true;
            return Err(FsError::SyncFailed { path: f.path_str() });
        }
        let skip_sync = self.cfg.skip_physical_sync;
        let f = &mut self.files[id.0];
        let pending: Vec<(u64, Vec<u8>)> = f.pending.drain(..).collect();
        for (off, data) in pending {
            f.file.write_all_at(&data, off).map_err(|e| FsError::Io {
                op: "write",
                path: f.path.display().to_string(),
                detail: e.to_string(),
            })?;
            self.stats.bytes_synced += data.len() as u64;
        }
        if !skip_sync {
            f.file.sync_all().map_err(|e| FsError::Io {
                op: "fsync",
                path: f.path.display().to_string(),
                detail: e.to_string(),
            })?;
        } else {
            f.file.flush().map_err(|e| FsError::Io {
                op: "flush",
                path: f.path.display().to_string(),
                detail: e.to_string(),
            })?;
        }
        self.last_pending = None;
        Ok(())
    }

    /// Read the *logical* view: the real file contents with pending
    /// writes overlaid, which is what the running process would see.
    pub fn read_at(&self, id: FsFile, offset: u64, len: usize) -> Result<Vec<u8>, FsError> {
        if self.crashed {
            return Err(FsError::Crashed);
        }
        let f = &self.files[id.0];
        let mut buf = vec![0u8; len];
        let end = (offset + len as u64).min(file_len(f));
        if end > offset {
            let want = (end - offset) as usize;
            f.file
                .read_exact_at(&mut buf[..want], offset)
                .map_err(|e| FsError::Io {
                    op: "read",
                    path: f.path.display().to_string(),
                    detail: e.to_string(),
                })?;
        }
        for (off, data) in &f.pending {
            overlay(&mut buf, offset, *off, data);
        }
        Ok(buf)
    }

    /// Kill the process image at a non-syscall boundary: every pending
    /// (unsynced) write is lost; with `tear_last_write` the most recent
    /// pending write persists a partial prefix onto the real file (the
    /// analogue of a power cut mid page-cache writeback).
    pub fn crash(&mut self, tear_last_write: bool) -> FsCrashReport {
        if self.crashed {
            return self
                .crash_report
                .clone()
                .expect("crashed dir always has a report");
        }
        let mut torn = None;
        if tear_last_write {
            if let Some((fi, pi)) = self.last_pending {
                if pi < self.files[fi].pending.len() {
                    let (off, data) = self.files[fi].pending[pi].clone();
                    torn = self.persist_torn_prefix(fi, off, &data);
                }
            }
        }
        self.finish_crash(torn)
    }

    /// Crash fired by the k-th syscall being a write: tear the
    /// in-flight data at an arbitrary byte boundary.
    fn crash_tearing_write(&mut self, id: FsFile, offset: u64, data: &[u8]) -> FsError {
        let torn = self.persist_torn_prefix(id.0, offset, data);
        self.finish_crash(torn);
        FsError::Crashed
    }

    /// Crash fired by the k-th syscall being an fsync: a deterministic
    /// prefix of the pending writes reached the platter in full, the
    /// next one tore, the rest are lost.
    fn crash_during_fsync(&mut self, id: FsFile) -> FsError {
        let f = &mut self.files[id.0];
        let pending: Vec<(u64, Vec<u8>)> = f.pending.drain(..).collect();
        let survive = self.int_draw(STREAM_TEAR, self.stats.syscalls, pending.len() as u64 + 1);
        let mut torn = None;
        for (i, (off, data)) in pending.iter().enumerate() {
            if (i as u64) < survive {
                let f = &mut self.files[id.0];
                let _ = f.file.write_all_at(data, *off);
                self.stats.bytes_synced += data.len() as u64;
            } else {
                torn = self.persist_torn_prefix(id.0, *off, data);
                break;
            }
        }
        self.finish_crash(torn);
        FsError::Crashed
    }

    /// Persist a sector-torn prefix of `data` at `offset` onto the real
    /// file. Returns the torn-write record (None if nothing survived).
    fn persist_torn_prefix(&mut self, fi: usize, offset: u64, data: &[u8]) -> Option<TornWrite> {
        let kept = {
            // Keep whole sectors, then a partial tail of the next one.
            let sector = self.cfg.torn_sector_bytes.max(1) as u64;
            let draw = self.int_draw(STREAM_TEAR, self.stats.syscalls, data.len() as u64);
            let full = (draw / sector) * sector;
            let partial = draw % sector;
            (full + partial).min(data.len() as u64 - 1) as usize
        };
        self.stats.torn_writes += 1;
        let f = &mut self.files[fi];
        if kept > 0 {
            let _ = f.file.write_all_at(&data[..kept], offset);
        }
        Some(TornWrite {
            file: f.path.display().to_string(),
            offset,
            kept: kept as u32,
            lost: (data.len() - kept) as u32,
        })
    }

    fn finish_crash(&mut self, torn: Option<TornWrite>) -> FsCrashReport {
        for f in &mut self.files {
            self.stats.dropped_writes += f.pending.len() as u64;
            f.pending.clear();
            let _ = f.file.flush();
        }
        self.crashed = true;
        let report = FsCrashReport {
            stats: self.stats,
            torn,
        };
        self.crash_report = Some(report.clone());
        report
    }
}

/// Real on-disk length of a managed file.
fn file_len(f: &FaultedFile) -> u64 {
    f.file.metadata().map(|m| m.len()).unwrap_or(0)
}

/// Overlay `data@data_off` onto `buf` which represents `[buf_off,
/// buf_off + buf.len())` of the file.
fn overlay(buf: &mut [u8], buf_off: u64, data_off: u64, data: &[u8]) {
    let buf_end = buf_off + buf.len() as u64;
    let data_end = data_off + data.len() as u64;
    let start = buf_off.max(data_off);
    let end = buf_end.min(data_end);
    if start >= end {
        return;
    }
    let dst = (start - buf_off) as usize;
    let src = (start - data_off) as usize;
    let n = (end - start) as usize;
    buf[dst..dst + n].copy_from_slice(&data[src..src + n]);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("semcluster-fsfault-{name}"));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn unsynced_writes_are_lost_at_crash() {
        let root = scratch("lost");
        let mut dir = FaultedDir::create(&root, FsFaultConfig::default()).unwrap();
        let f = dir.open("data").unwrap();
        dir.write_at(f, 0, b"durable").unwrap();
        dir.fsync(f).unwrap();
        dir.write_at(f, 7, b" volatile").unwrap();
        let report = dir.crash(false);
        assert_eq!(report.stats.dropped_writes, 1);
        assert_eq!(std::fs::read(root.join("data")).unwrap(), b"durable");
        assert_eq!(dir.fsync(f), Err(FsError::Crashed));
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn short_writes_force_caller_loops_but_lose_nothing() {
        let root = scratch("short");
        let cfg = FsFaultConfig {
            seed: 7,
            short_write_rate: 0.9,
            ..FsFaultConfig::default()
        };
        let mut dir = FaultedDir::create(&root, cfg).unwrap();
        let f = dir.open("data").unwrap();
        let mut payload = Vec::new();
        for i in 0..20u8 {
            let chunk = [i; 64];
            dir.append(f, &chunk).unwrap();
            payload.extend_from_slice(&chunk);
        }
        dir.fsync(f).unwrap();
        assert!(dir.stats().short_writes > 0, "rate 0.9 must inject");
        assert!(dir.stats().writes > 20, "short writes force extra syscalls");
        assert_eq!(std::fs::read(root.join("data")).unwrap(), payload);
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn fsyncgate_drops_pending_and_poisons_the_handle() {
        let root = scratch("fsyncgate");
        let cfg = FsFaultConfig {
            fsync_fail_at: vec![2],
            ..FsFaultConfig::default()
        };
        let mut dir = FaultedDir::create(&root, cfg).unwrap();
        let f = dir.open("wal").unwrap();
        dir.write_at(f, 0, b"first").unwrap();
        dir.fsync(f).unwrap();
        dir.write_at(f, 5, b"second").unwrap();
        let err = dir.fsync(f).unwrap_err();
        assert!(matches!(err, FsError::SyncFailed { .. }), "{err}");
        // The dirty data is gone; a retry must NOT make it durable.
        let retry = dir.fsync(f).unwrap_err();
        assert!(matches!(retry, FsError::Poisoned { .. }), "{retry}");
        assert_eq!(std::fs::read(root.join("wal")).unwrap(), b"first");
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn crash_at_write_syscall_tears_the_in_flight_data() {
        let root = scratch("torn");
        let cfg = FsFaultConfig {
            seed: 3,
            crash_at_syscall: Some(2),
            ..FsFaultConfig::default()
        };
        let mut dir = FaultedDir::create(&root, cfg).unwrap();
        let f = dir.open("pages").unwrap();
        dir.write_at(f, 0, &[0xAA; 1024]).unwrap();
        let err = dir.fsync(f).unwrap_err(); // syscall 2 crashes mid-fsync
        assert_eq!(err, FsError::Crashed);
        assert!(dir.is_crashed());
        // The pending write either persisted in full, tore, or was
        // dropped — never anything else, and never any suffix-only data.
        let on_disk = std::fs::read(root.join("pages")).unwrap();
        assert!(on_disk.len() <= 1024);
        assert!(on_disk.iter().all(|&b| b == 0xAA));
        let report = dir.crash_report().unwrap();
        if let Some(t) = &report.torn {
            assert_eq!(on_disk.len(), t.kept as usize);
        }
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn torn_write_keeps_a_strict_prefix() {
        let root = scratch("prefix");
        let cfg = FsFaultConfig {
            seed: 11,
            crash_at_syscall: Some(1),
            torn_sector_bytes: 16,
            ..FsFaultConfig::default()
        };
        let mut dir = FaultedDir::create(&root, cfg).unwrap();
        let f = dir.open("pages").unwrap();
        let payload: Vec<u8> = (0..200u32).map(|i| (i % 251) as u8).collect();
        let err = dir.write_at(f, 0, &payload).unwrap_err();
        assert_eq!(err, FsError::Crashed);
        let torn = dir.crash_report().unwrap().torn.clone().unwrap();
        assert!((torn.kept as usize) < payload.len());
        let on_disk = std::fs::read(root.join("pages")).unwrap();
        assert_eq!(on_disk, payload[..torn.kept as usize]);
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn reads_see_the_logical_overlay() {
        let root = scratch("overlay");
        let mut dir = FaultedDir::create(&root, FsFaultConfig::default()).unwrap();
        let f = dir.open("data").unwrap();
        dir.write_at(f, 0, b"aaaa").unwrap();
        dir.fsync(f).unwrap();
        dir.write_at(f, 2, b"BB").unwrap();
        assert_eq!(dir.read_at(f, 0, 4).unwrap(), b"aaBB");
        // The real file still has the synced view only.
        assert_eq!(std::fs::read(root.join("data")).unwrap(), b"aaaa");
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn schedule_is_deterministic() {
        let mk = |name: &str| {
            let root = scratch(name);
            let cfg = FsFaultConfig {
                seed: 42,
                short_write_rate: 0.5,
                ..FsFaultConfig::default()
            };
            let mut dir = FaultedDir::create(&root, cfg).unwrap();
            let f = dir.open("data").unwrap();
            for i in 0..50u64 {
                dir.append(f, &[i as u8; 100]).unwrap();
            }
            dir.fsync(f).unwrap();
            let stats = dir.stats();
            std::fs::remove_dir_all(&root).unwrap();
            stats
        };
        assert_eq!(mk("det-a"), mk("det-b"));
    }
}
