//! Deterministic network-chaos schedules for the wire-protocol server.
//!
//! Mirrors the disk-fault layer ([`crate::FaultPlan`]): every chaos
//! decision is a pure function of `(seed, connection, frame)` — a
//! splitmix64 keyed hash, no mutable RNG — so a chaos run is exactly
//! reproducible from its seed and preset, at any thread count and on
//! any machine. The load generator asks [`NetChaosPlan::action`] what
//! to do with each outbound frame; the plan never sees wall-clock time
//! or socket state.

use crate::plan::splitmix64;

/// Distinct salt so network-chaos draws never collide with the disk
/// fault plan's streams for the same seed.
const NET_SALT: u64 = 0x0C4A_0517_89AB_5EED;

/// What the chaos layer does to one outbound request frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetAction {
    /// Send the frame normally.
    Deliver,
    /// Abruptly close the connection before sending (in-flight replies
    /// are lost; the client reconnects).
    Drop,
    /// Sleep this many milliseconds before sending (a stalled client).
    Stall(u32),
    /// Half-close: send the frame, then shut down the write half and
    /// drain replies before reconnecting.
    HalfClose,
    /// Slow-loris: trickle the frame byte-by-byte with small pauses.
    Trickle,
    /// Corrupt the frame (unknown opcode) — the server must reject it
    /// as malformed and close the connection.
    Corrupt,
}

impl NetAction {
    /// One-letter code used by the chaos golden rendering.
    pub fn code(self) -> char {
        match self {
            NetAction::Deliver => '.',
            NetAction::Drop => 'X',
            NetAction::Stall(_) => 'S',
            NetAction::HalfClose => 'H',
            NetAction::Trickle => 'T',
            NetAction::Corrupt => 'C',
        }
    }
}

/// Probabilities (per mille) of each chaos action, applied per frame.
/// The checks are ordered (drop, stall, half-close, trickle, corrupt)
/// against disjoint probability bands of a single uniform draw, so the
/// per-frame action is one hash regardless of configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetChaosConfig {
    /// Preset name (for labels and logs).
    pub name: &'static str,
    /// Probability of an abrupt connection drop, per mille.
    pub drop_pm: u32,
    /// Probability of a send stall, per mille.
    pub stall_pm: u32,
    /// Stall duration in milliseconds.
    pub stall_ms: u32,
    /// Probability of a half-close, per mille.
    pub half_close_pm: u32,
    /// Probability of a slow-loris trickle send, per mille.
    pub trickle_pm: u32,
    /// Probability of a corrupted (malformed) frame, per mille.
    pub corrupt_pm: u32,
}

impl NetChaosConfig {
    /// Inert configuration: every frame is delivered untouched.
    pub fn none() -> Self {
        NetChaosConfig {
            name: "none",
            drop_pm: 0,
            stall_pm: 0,
            stall_ms: 0,
            half_close_pm: 0,
            trickle_pm: 0,
            corrupt_pm: 0,
        }
    }

    /// The network-chaos preset CI runs the load generator under:
    /// occasional abrupt drops, stalls, half-closes, slow-loris sends
    /// and malformed frames — frequent enough to exercise every
    /// hardening path in a short run, rare enough that the load still
    /// completes.
    pub fn chaos() -> Self {
        NetChaosConfig {
            name: "chaos",
            drop_pm: 8,
            stall_pm: 15,
            stall_ms: 20,
            half_close_pm: 6,
            trickle_pm: 10,
            corrupt_pm: 6,
        }
    }

    /// Preset by name.
    pub fn preset(name: &str) -> Option<Self> {
        match name {
            "none" => Some(Self::none()),
            "chaos" => Some(Self::chaos()),
            _ => None,
        }
    }

    /// Names [`NetChaosConfig::preset`] accepts.
    pub const PRESETS: [&'static str; 2] = ["none", "chaos"];

    /// Whether any action has non-zero probability.
    pub fn enabled(&self) -> bool {
        self.drop_pm + self.stall_pm + self.half_close_pm + self.trickle_pm + self.corrupt_pm > 0
    }
}

/// The keyed chaos schedule: `(seed, config)` fully determine the
/// action taken on every `(connection, frame)` pair.
#[derive(Debug, Clone, Copy)]
pub struct NetChaosPlan {
    key: u64,
    cfg: NetChaosConfig,
}

impl NetChaosPlan {
    /// Build the plan for `seed` under `cfg`.
    pub fn new(seed: u64, cfg: NetChaosConfig) -> Self {
        NetChaosPlan {
            key: splitmix64(seed ^ NET_SALT),
            cfg,
        }
    }

    /// Configuration the plan was built from.
    pub fn config(&self) -> NetChaosConfig {
        self.cfg
    }

    /// Uniform draw in `[0, 1)` for `(conn, frame)` — pure, stateless.
    fn unit(&self, conn: u64, frame: u64) -> f64 {
        let bits = splitmix64(
            self.key
                .wrapping_add(splitmix64(conn.wrapping_mul(0x9E37_79B9_7F4A_7C15)))
                .wrapping_add(frame),
        );
        (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// The action for the `frame`-th outbound frame on connection
    /// `conn`. Disjoint probability bands over one uniform draw.
    pub fn action(&self, conn: u64, frame: u64) -> NetAction {
        if !self.cfg.enabled() {
            return NetAction::Deliver;
        }
        let u = self.unit(conn, frame) * 1000.0;
        let mut band = self.cfg.drop_pm as f64;
        if u < band {
            return NetAction::Drop;
        }
        band += self.cfg.stall_pm as f64;
        if u < band {
            return NetAction::Stall(self.cfg.stall_ms);
        }
        band += self.cfg.half_close_pm as f64;
        if u < band {
            return NetAction::HalfClose;
        }
        band += self.cfg.trickle_pm as f64;
        if u < band {
            return NetAction::Trickle;
        }
        band += self.cfg.corrupt_pm as f64;
        if u < band {
            return NetAction::Corrupt;
        }
        NetAction::Deliver
    }

    /// Render the first `frames` decisions of `conns` connections as a
    /// compact schedule table (one JSON line per connection plus an
    /// action histogram) — the byte-exact body of the chaos golden.
    pub fn render_schedule(&self, conns: u64, frames: u64) -> String {
        let mut out = String::new();
        let mut counts = [0u64; 6];
        for conn in 0..conns {
            let mut codes = String::with_capacity(frames as usize);
            for frame in 0..frames {
                let action = self.action(conn, frame);
                codes.push(action.code());
                let slot = match action {
                    NetAction::Deliver => 0,
                    NetAction::Drop => 1,
                    NetAction::Stall(_) => 2,
                    NetAction::HalfClose => 3,
                    NetAction::Trickle => 4,
                    NetAction::Corrupt => 5,
                };
                counts[slot] += 1;
            }
            out.push_str(&format!(
                "{{\"preset\":{:?},\"conn\":{conn},\"plan\":\"{codes}\"}}\n",
                self.cfg.name
            ));
        }
        out.push_str(&format!(
            concat!(
                "{{\"deliver\":{},\"drop\":{},\"stall\":{},",
                "\"half_close\":{},\"trickle\":{},\"corrupt\":{}}}\n"
            ),
            counts[0], counts[1], counts[2], counts[3], counts[4], counts[5]
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_is_pure_and_seed_keyed() {
        let cfg = NetChaosConfig::chaos();
        let a = NetChaosPlan::new(7, cfg);
        let b = NetChaosPlan::new(7, cfg);
        for conn in 0..8 {
            for frame in 0..64 {
                assert_eq!(a.action(conn, frame), b.action(conn, frame));
            }
        }
        // A different seed produces a different schedule somewhere.
        let c = NetChaosPlan::new(8, cfg);
        let differs = (0..8)
            .flat_map(|conn| (0..64).map(move |frame| (conn, frame)))
            .any(|(conn, frame)| a.action(conn, frame) != c.action(conn, frame));
        assert!(differs, "seed must key the schedule");
    }

    #[test]
    fn inert_preset_always_delivers() {
        let plan = NetChaosPlan::new(42, NetChaosConfig::none());
        for conn in 0..4 {
            for frame in 0..256 {
                assert_eq!(plan.action(conn, frame), NetAction::Deliver);
            }
        }
    }

    #[test]
    fn chaos_preset_exercises_every_action() {
        let plan = NetChaosPlan::new(11, NetChaosConfig::chaos());
        let mut seen = [false; 6];
        for conn in 0..64 {
            for frame in 0..256 {
                let slot = match plan.action(conn, frame) {
                    NetAction::Deliver => 0,
                    NetAction::Drop => 1,
                    NetAction::Stall(_) => 2,
                    NetAction::HalfClose => 3,
                    NetAction::Trickle => 4,
                    NetAction::Corrupt => 5,
                };
                seen[slot] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "all actions fire: {seen:?}");
    }

    #[test]
    fn chaos_rate_tracks_configuration() {
        let cfg = NetChaosConfig::chaos();
        let plan = NetChaosPlan::new(3, cfg);
        let total = 64 * 512;
        let mut chaotic = 0u64;
        for conn in 0..64 {
            for frame in 0..512 {
                if plan.action(conn, frame) != NetAction::Deliver {
                    chaotic += 1;
                }
            }
        }
        let expect =
            (cfg.drop_pm + cfg.stall_pm + cfg.half_close_pm + cfg.trickle_pm + cfg.corrupt_pm)
                as f64
                / 1000.0;
        let got = chaotic as f64 / total as f64;
        assert!(
            (got - expect).abs() < expect * 0.35,
            "chaos rate {got:.4} far from configured {expect:.4}"
        );
    }

    #[test]
    fn schedule_render_is_stable() {
        let plan = NetChaosPlan::new(11, NetChaosConfig::chaos());
        let a = plan.render_schedule(4, 48);
        assert_eq!(a, plan.render_schedule(4, 48));
        assert_eq!(a.lines().count(), 5, "4 connection lines + histogram");
        assert!(a.contains("\"preset\":\"chaos\""));
    }
}
