//! Fault-injection configuration: rates, retry/backoff policy,
//! degradation thresholds, crash points, and named presets.

/// Bounded retry with deterministic exponential backoff. Attempt `i`
/// (1-based) that fails waits `backoff_us * backoff_mult^(i-1)`
/// simulated microseconds before the next attempt; after
/// `max_attempts` failures the I/O errors out and the owning
/// transaction aborts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per I/O (>= 1; 1 means no retry).
    pub max_attempts: u32,
    /// Base backoff before the second attempt, in simulated µs.
    pub backoff_us: u64,
    /// Multiplier applied to the backoff per further attempt.
    pub backoff_mult: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            backoff_us: 2_000,
            backoff_mult: 2,
        }
    }
}

impl RetryPolicy {
    /// Backoff charged after failed attempt `attempt` (1-based), in
    /// simulated µs.
    pub fn backoff_after(&self, attempt: u32) -> u64 {
        let mut b = self.backoff_us;
        for _ in 1..attempt {
            b = b.saturating_mul(self.backoff_mult as u64);
        }
        b
    }
}

/// Graceful-degradation thresholds: when the sliding-window sum of
/// per-transaction cluster-search time exceeds `search_budget_us`, the
/// engine falls back from candidate-search placement to
/// append-placement and narrows prefetch to within-buffer; it recovers
/// once the window drops below `exit_pct` percent of the budget.
///
/// A zero budget disables degradation entirely.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DegradationPolicy {
    /// Transactions in the sliding window.
    pub window_txns: usize,
    /// Cluster-search budget over the window, in simulated µs
    /// (0 = degradation disabled).
    pub search_budget_us: u64,
    /// Re-enter normal operation when the window sum falls below this
    /// percentage of the budget (hysteresis).
    pub exit_pct: u32,
}

impl Default for DegradationPolicy {
    fn default() -> Self {
        DegradationPolicy {
            window_txns: 16,
            search_budget_us: 0,
            exit_pct: 50,
        }
    }
}

/// Full fault-injection configuration. The default is **inert**: every
/// rate zero, no degraded disks, no degradation budget — the engine
/// behaves byte-identically to a fault-free build.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultConfig {
    /// Probability a physical page read attempt fails transiently.
    pub read_error_rate: f64,
    /// Probability a physical page write attempt fails transiently.
    pub write_error_rate: f64,
    /// Probability a data-disk I/O suffers a latency spike.
    pub spike_rate: f64,
    /// Service-time multiplier of a spiked I/O.
    pub spike_mult: u32,
    /// Persistently degraded ("hot") disk indices.
    pub degraded_disks: Vec<u32>,
    /// Service-time multiplier on degraded disks.
    pub degraded_mult: u32,
    /// Transient-error multiplier on degraded disks.
    pub degraded_error_mult: u32,
    /// Probability a physical log I/O stalls.
    pub log_stall_rate: f64,
    /// Duration of a log-device stall, in simulated µs.
    pub log_stall_us: u64,
    /// Retry/backoff policy for failed page I/Os.
    pub retry: RetryPolicy,
    /// Graceful clustering degradation thresholds.
    pub degradation: DegradationPolicy,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            read_error_rate: 0.0,
            write_error_rate: 0.0,
            spike_rate: 0.0,
            spike_mult: 8,
            degraded_disks: Vec::new(),
            degraded_mult: 4,
            degraded_error_mult: 2,
            log_stall_rate: 0.0,
            log_stall_us: 50_000,
            retry: RetryPolicy::default(),
            degradation: DegradationPolicy::default(),
        }
    }
}

impl FaultConfig {
    /// Whether this configuration injects nothing at all (the engine's
    /// fault hooks short-circuit and the run is byte-identical to a
    /// fault-free build).
    pub fn is_inert(&self) -> bool {
        self.read_error_rate <= 0.0
            && self.write_error_rate <= 0.0
            && self.spike_rate <= 0.0
            && self.degraded_disks.is_empty()
            && self.log_stall_rate <= 0.0
            && self.degradation.search_budget_us == 0
    }

    /// Opposite of [`FaultConfig::is_inert`].
    pub fn enabled(&self) -> bool {
        !self.is_inert()
    }

    /// Named presets: `none`, `smoke`, `degraded`, `stress`.
    pub fn preset(name: &str) -> Option<FaultConfig> {
        Some(match name {
            "none" => FaultConfig::default(),
            // Light transient faults: enough to exercise retries
            // without aborting much.
            "smoke" => FaultConfig {
                read_error_rate: 0.02,
                write_error_rate: 0.01,
                spike_rate: 0.02,
                spike_mult: 6,
                log_stall_rate: 0.01,
                log_stall_us: 30_000,
                ..FaultConfig::default()
            },
            // Two hot disks plus mild transients; degradation armed.
            "degraded" => FaultConfig {
                read_error_rate: 0.01,
                spike_rate: 0.01,
                degraded_disks: vec![0, 1],
                degraded_mult: 4,
                degradation: DegradationPolicy {
                    window_txns: 16,
                    search_budget_us: 1_200_000,
                    exit_pct: 50,
                },
                ..FaultConfig::default()
            },
            // Heavy transients and stalls; retries exhaust and
            // transactions abort; degradation engages quickly.
            "stress" => FaultConfig {
                read_error_rate: 0.10,
                write_error_rate: 0.05,
                spike_rate: 0.08,
                spike_mult: 10,
                degraded_disks: vec![0],
                degraded_mult: 6,
                log_stall_rate: 0.05,
                log_stall_us: 80_000,
                retry: RetryPolicy {
                    max_attempts: 3,
                    backoff_us: 2_000,
                    backoff_mult: 2,
                },
                degradation: DegradationPolicy {
                    window_txns: 12,
                    search_budget_us: 600_000,
                    exit_pct: 50,
                },
                ..FaultConfig::default()
            },
            _ => return None,
        })
    }

    /// All preset names accepted by [`FaultConfig::preset`].
    pub const PRESETS: [&'static str; 4] = ["none", "smoke", "degraded", "stress"];
}

/// Where a crash-and-recover run pulls the plug. Counters are counted
/// from the start of the run (warmup included).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CrashPoint {
    /// Crash after the full run completes (the legacy
    /// `run_and_crash` behaviour).
    #[default]
    End,
    /// Crash after the k-th simulation event is processed (1-based).
    Event(u64),
    /// Crash after the k-th write-transaction commit (1-based).
    Commit(u64),
    /// Crash once the log sequence number reaches k.
    Lsn(u64),
    /// Crash during the k-th physical log flush (1-based); the tail
    /// record being written is torn and recovery must truncate it.
    MidFlush(u64),
    /// Kill the process image at the file backend's k-th filesystem
    /// syscall (1-based). The simulated backend ignores this point and
    /// runs to completion; the file backend's fault layer fires it.
    Syscall(u64),
    /// Inject an fsync failure at the file backend's k-th fsync
    /// (1-based) and run to completion, exercising fsyncgate handling.
    /// Ignored by the simulated backend.
    FsyncFail(u64),
}

impl CrashPoint {
    /// Parse `end`, `event:K`, `commit:K`, `lsn:K`, `midflush:K`,
    /// `syscall:K` or `fsyncfail:K`.
    pub fn parse(s: &str) -> Option<CrashPoint> {
        if s == "end" {
            return Some(CrashPoint::End);
        }
        let (kind, k) = s.split_once(':')?;
        let k: u64 = k.parse().ok()?;
        Some(match kind {
            "event" => CrashPoint::Event(k),
            "commit" => CrashPoint::Commit(k),
            "lsn" => CrashPoint::Lsn(k),
            "midflush" => CrashPoint::MidFlush(k),
            "syscall" => CrashPoint::Syscall(k),
            "fsyncfail" => CrashPoint::FsyncFail(k),
            _ => return None,
        })
    }

    /// Canonical textual form (inverse of [`CrashPoint::parse`]).
    pub fn label(&self) -> String {
        match *self {
            CrashPoint::End => "end".to_string(),
            CrashPoint::Event(k) => format!("event:{k}"),
            CrashPoint::Commit(k) => format!("commit:{k}"),
            CrashPoint::Lsn(k) => format!("lsn:{k}"),
            CrashPoint::MidFlush(k) => format!("midflush:{k}"),
            CrashPoint::Syscall(k) => format!("syscall:{k}"),
            CrashPoint::FsyncFail(k) => format!("fsyncfail:{k}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_inert() {
        let cfg = FaultConfig::default();
        assert!(cfg.is_inert());
        assert!(!cfg.enabled());
    }

    #[test]
    fn presets_resolve() {
        for name in FaultConfig::PRESETS {
            let cfg = FaultConfig::preset(name).unwrap();
            if name == "none" {
                assert!(cfg.is_inert());
            } else {
                assert!(cfg.enabled(), "{name} must inject something");
            }
        }
        assert!(FaultConfig::preset("bogus").is_none());
    }

    #[test]
    fn backoff_grows_geometrically() {
        let r = RetryPolicy {
            max_attempts: 4,
            backoff_us: 100,
            backoff_mult: 3,
        };
        assert_eq!(r.backoff_after(1), 100);
        assert_eq!(r.backoff_after(2), 300);
        assert_eq!(r.backoff_after(3), 900);
    }

    #[test]
    fn crash_point_parse_roundtrip() {
        for s in [
            "end",
            "event:500",
            "commit:12",
            "lsn:99",
            "midflush:3",
            "syscall:777",
            "fsyncfail:2",
        ] {
            let p = CrashPoint::parse(s).unwrap();
            assert_eq!(p.label(), s);
        }
        assert!(CrashPoint::parse("commit").is_none());
        assert!(CrashPoint::parse("bogus:1").is_none());
        assert_eq!(CrashPoint::default(), CrashPoint::End);
    }
}
