//! # semcluster-faults
//!
//! Deterministic, seed-scheduled fault injection for the semcluster
//! engine. The paper's evaluation assumes a fault-free file server;
//! this crate supplies the adversary: transient page read/write errors
//! with per-disk rates, latency spikes, persistently degraded ("hot")
//! disks, log-device stalls, and crash points expressible as "at event
//! #k" / "at commit #k" / "mid-flush".
//!
//! ## Determinism contract
//!
//! Every injection decision is a pure hash of `(seed, stream,
//! counter)` — see [`FaultPlan`] — and never touches the engine's main
//! RNG stream. Consequences:
//!
//! * same seed + same [`FaultConfig`] → the same fault schedule,
//!   byte-identical reports/metrics/traces at any `--jobs N`;
//! * with every rate at zero ([`FaultConfig::is_inert`]) the layer
//!   draws nothing and charges nothing, so the engine's output is
//!   byte-identical to a build without the layer (the committed golden
//!   run proves this in CI).
//!
//! Backoff and stall delays are charged in *simulated* time by the
//! engine, so fault handling shows up in response-time attribution
//! exactly like any other wait.

#![warn(missing_docs)]

mod config;
mod fsfault;
mod netchaos;
mod plan;

pub use config::{CrashPoint, DegradationPolicy, FaultConfig, RetryPolicy};
pub use fsfault::{FaultedDir, FsCrashReport, FsError, FsFaultConfig, FsFile, FsStats, TornWrite};
pub use netchaos::{NetAction, NetChaosConfig, NetChaosPlan};
pub use plan::{splitmix64, FaultPlan, FaultState, FaultStats, IoError, IoOp};
