//! The deterministic fault schedule and its runtime state.
//!
//! [`FaultPlan`] answers "does the n-th draw of stream S fault?" as a
//! pure function of `(seed, S, n)` — a splitmix64 hash, no mutable RNG.
//! [`FaultState`] owns the per-stream draw counters, the fault
//! statistics, and the sliding window behind graceful degradation; the
//! engine holds one per run. Nothing here touches the engine's main
//! RNG stream, so an inert configuration leaves the simulation's
//! stochastic choices untouched.

use crate::config::{DegradationPolicy, FaultConfig};
use std::collections::VecDeque;

/// Which kind of physical I/O a fault hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoOp {
    /// A page read from a data disk.
    Read,
    /// A page write to a data disk.
    Write,
    /// A physical log-device I/O.
    Log,
}

impl IoOp {
    /// Machine name (trace/JSON field value).
    pub fn as_str(self) -> &'static str {
        match self {
            IoOp::Read => "read",
            IoOp::Write => "write",
            IoOp::Log => "log",
        }
    }
}

/// A page I/O that exhausted its retry budget. Times are simulated µs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IoError {
    /// Read or write.
    pub op: IoOp,
    /// Page involved (raw id).
    pub page: u32,
    /// Disk that served the attempts.
    pub disk: u32,
    /// Attempts made before giving up.
    pub attempts: u32,
    /// Simulated time the final attempt failed, in µs.
    pub at_us: u64,
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} of page {} on disk {} failed after {} attempts (t={}us)",
            self.op.as_str(),
            self.page,
            self.disk,
            self.attempts,
            self.at_us
        )
    }
}

impl std::error::Error for IoError {}

/// Counters of everything the fault layer injected (and the engine's
/// responses). Reset at measurement start so reports cover the
/// measured interval like every other counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Transient page-read failures injected.
    pub read_errors: u64,
    /// Transient page-write failures injected.
    pub write_errors: u64,
    /// Retries the engine performed (successful or not).
    pub retries: u64,
    /// Latency spikes injected on data-disk I/Os.
    pub spikes: u64,
    /// Log-device stalls injected.
    pub log_stalls: u64,
    /// Total simulated µs of injected log stall.
    pub stall_us: u64,
    /// Transactions aborted after retry exhaustion.
    pub txn_aborts: u64,
    /// Transitions into degraded (append-placement) mode.
    pub degrade_enters: u64,
    /// Transitions back to normal clustering.
    pub degrade_exits: u64,
}

const SALT: u64 = 0xFA17_5EED_0DB5_1989;

/// The splitmix64 mixing function behind every keyed-hash schedule in
/// this crate (disk faults, network chaos) and the load generator's
/// deterministic workload draws: a stateless bijection of `u64`, so a
/// "draw" is a pure function of its key — no mutable RNG anywhere.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Independent decision streams (each with its own draw counter, so a
/// decision never shifts another stream's schedule).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Stream {
    ReadError = 1,
    WriteError = 2,
    Spike = 3,
    LogStall = 4,
}

/// The pure fault schedule: a keyed hash from `(stream, counter)` to a
/// uniform value in `[0, 1)`.
#[derive(Debug, Clone, Copy)]
pub struct FaultPlan {
    key: u64,
}

impl FaultPlan {
    /// Derive the plan for a run seed. Same seed → same plan.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            key: splitmix64(seed ^ SALT),
        }
    }

    fn unit(&self, stream: u64, counter: u64) -> f64 {
        let bits = splitmix64(
            self.key
                ^ stream.wrapping_mul(0xA24B_AED4_963E_E407)
                ^ counter.wrapping_mul(0x9FB2_1C65_1E98_DF25),
        );
        (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Runtime fault state the engine owns for one run: the plan, the
/// per-stream draw counters, statistics, and the degradation window.
#[derive(Debug, Clone)]
pub struct FaultState {
    cfg: FaultConfig,
    plan: FaultPlan,
    enabled: bool,
    counters: [u64; 4],
    /// Injection/response counters (reset at measurement start).
    pub stats: FaultStats,
    window: VecDeque<u64>,
    window_sum: u64,
    degraded: bool,
}

impl FaultState {
    /// Build the state for one run.
    pub fn new(seed: u64, cfg: FaultConfig) -> Self {
        let enabled = cfg.enabled();
        FaultState {
            plan: FaultPlan::new(seed),
            enabled,
            counters: [0; 4],
            stats: FaultStats::default(),
            window: VecDeque::with_capacity(cfg.degradation.window_txns),
            window_sum: 0,
            degraded: false,
            cfg,
        }
    }

    /// Whether any injection is configured. When false every hook
    /// below short-circuits without drawing.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Configuration in force.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// Reset statistics (measurement start). Draw counters and the
    /// degradation window carry on — the fault *schedule* is a
    /// property of the whole run, not of the measured interval.
    pub fn reset_stats(&mut self) {
        self.stats = FaultStats::default();
    }

    fn draw(&mut self, stream: Stream) -> f64 {
        let idx = stream as usize - 1;
        let n = self.counters[idx];
        self.counters[idx] += 1;
        self.plan.unit(stream as u64, n)
    }

    fn is_degraded_disk(&self, disk: u32) -> bool {
        self.cfg.degraded_disks.contains(&disk)
    }

    /// Static service-time multiplier of `disk` (degraded-disk factor
    /// only, no spike draw — safe for asynchronous I/O like prefetch
    /// whose schedule must not consume fault draws).
    pub fn disk_mult(&self, disk: u32) -> u64 {
        if self.enabled && self.is_degraded_disk(disk) {
            self.cfg.degraded_mult.max(1) as u64
        } else {
            1
        }
    }

    /// Service-time multiplier for one data-disk I/O attempt: the
    /// static degraded-disk multiplier times any latency spike drawn
    /// for this attempt.
    pub fn service_mult(&mut self, disk: u32) -> u64 {
        if !self.enabled {
            return 1;
        }
        let mut mult = self.disk_mult(disk);
        if self.cfg.spike_rate > 0.0 && self.draw(Stream::Spike) < self.cfg.spike_rate {
            self.stats.spikes += 1;
            mult = mult.saturating_mul(self.cfg.spike_mult.max(1) as u64);
        }
        mult
    }

    fn io_fails(&mut self, stream: Stream, rate: f64, disk: u32) -> bool {
        if !self.enabled || rate <= 0.0 {
            return false;
        }
        let rate = if self.is_degraded_disk(disk) {
            (rate * self.cfg.degraded_error_mult.max(1) as f64).min(1.0)
        } else {
            rate
        };
        self.draw(stream) < rate
    }

    /// Whether the next page-read attempt on `disk` fails transiently.
    pub fn read_fails(&mut self, disk: u32) -> bool {
        let failed = self.io_fails(Stream::ReadError, self.cfg.read_error_rate, disk);
        if failed {
            self.stats.read_errors += 1;
        }
        failed
    }

    /// Whether the next page-write attempt on `disk` fails transiently.
    pub fn write_fails(&mut self, disk: u32) -> bool {
        let failed = self.io_fails(Stream::WriteError, self.cfg.write_error_rate, disk);
        if failed {
            self.stats.write_errors += 1;
        }
        failed
    }

    /// Stall injected before the next physical log I/O, in simulated
    /// µs (0 = none).
    pub fn log_stall_us(&mut self) -> u64 {
        if !self.enabled || self.cfg.log_stall_rate <= 0.0 {
            return 0;
        }
        if self.draw(Stream::LogStall) < self.cfg.log_stall_rate {
            self.stats.log_stalls += 1;
            self.stats.stall_us += self.cfg.log_stall_us;
            self.cfg.log_stall_us
        } else {
            0
        }
    }

    /// Retry policy in force.
    pub fn retry(&self) -> crate::RetryPolicy {
        self.cfg.retry
    }

    // ------------------------------------------------------ degradation

    /// Whether the engine is currently in degraded (append-placement,
    /// narrowed-prefetch) mode.
    pub fn degraded(&self) -> bool {
        self.degraded
    }

    /// Feed one finished transaction's cluster-search time into the
    /// sliding window; returns `Some(entered)` on a mode transition.
    pub fn observe_txn_search(&mut self, search_us: u64) -> Option<bool> {
        let DegradationPolicy {
            window_txns,
            search_budget_us,
            exit_pct,
        } = self.cfg.degradation;
        if !self.enabled || search_budget_us == 0 || window_txns == 0 {
            return None;
        }
        self.window.push_back(search_us);
        self.window_sum += search_us;
        while self.window.len() > window_txns {
            let old = self.window.pop_front().expect("window non-empty");
            self.window_sum -= old;
        }
        if !self.degraded && self.window_sum > search_budget_us {
            self.degraded = true;
            self.stats.degrade_enters += 1;
            Some(true)
        } else if self.degraded
            && self.window_sum < search_budget_us.saturating_mul(exit_pct as u64) / 100
        {
            self.degraded = false;
            self.stats.degrade_exits += 1;
            Some(false)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RetryPolicy;

    fn faulty() -> FaultConfig {
        FaultConfig {
            read_error_rate: 0.2,
            write_error_rate: 0.1,
            spike_rate: 0.15,
            spike_mult: 8,
            degraded_disks: vec![2],
            degraded_mult: 4,
            log_stall_rate: 0.1,
            log_stall_us: 1000,
            ..FaultConfig::default()
        }
    }

    #[test]
    fn plan_is_a_pure_function_of_seed() {
        let a = FaultPlan::new(7);
        let b = FaultPlan::new(7);
        let c = FaultPlan::new(8);
        let mut diff = 0;
        for n in 0..256 {
            assert_eq!(a.unit(1, n).to_bits(), b.unit(1, n).to_bits());
            if a.unit(1, n) != c.unit(1, n) {
                diff += 1;
            }
        }
        assert!(diff > 200, "different seeds must differ ({diff}/256)");
    }

    #[test]
    fn unit_values_are_uniformish() {
        let plan = FaultPlan::new(42);
        let n = 4096;
        let hits = (0..n).filter(|&i| plan.unit(1, i) < 0.25).count();
        let frac = hits as f64 / n as f64;
        assert!((0.20..0.30).contains(&frac), "got {frac}");
        for i in 0..n {
            let v = plan.unit(3, i);
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn state_replays_identically() {
        let run = || {
            let mut s = FaultState::new(11, faulty());
            let mut trace = Vec::new();
            for i in 0..512u32 {
                let disk = i % 4;
                trace.push((
                    s.read_fails(disk),
                    s.write_fails(disk),
                    s.service_mult(disk),
                    s.log_stall_us(),
                ));
            }
            (trace, s.stats)
        };
        let (ta, sa) = run();
        let (tb, sb) = run();
        assert_eq!(ta, tb);
        assert_eq!(sa, sb);
        assert!(sa.read_errors > 0 && sa.write_errors > 0);
        assert!(sa.spikes > 0 && sa.log_stalls > 0);
    }

    #[test]
    fn streams_are_independent() {
        // Drawing from one stream must not shift another's schedule.
        let mut interleaved = FaultState::new(5, faulty());
        let mut solo = FaultState::new(5, faulty());
        let mut a = Vec::new();
        let mut b = Vec::new();
        for _ in 0..128u32 {
            a.push(interleaved.read_fails(0));
            let _ = interleaved.write_fails(0); // extra draws on other streams
            let _ = interleaved.log_stall_us();
            b.push(solo.read_fails(0));
        }
        assert_eq!(a, b);
    }

    #[test]
    fn inert_config_draws_nothing() {
        let mut s = FaultState::new(3, FaultConfig::default());
        assert!(!s.enabled());
        for d in 0..4 {
            assert!(!s.read_fails(d));
            assert!(!s.write_fails(d));
            assert_eq!(s.service_mult(d), 1);
        }
        assert_eq!(s.log_stall_us(), 0);
        assert_eq!(s.counters, [0; 4], "inert state must not consume draws");
        assert_eq!(s.stats, FaultStats::default());
        assert!(s.observe_txn_search(1_000_000).is_none());
        assert!(!s.degraded());
    }

    #[test]
    fn degraded_disk_is_slower_and_flakier() {
        let cfg = FaultConfig {
            read_error_rate: 0.1,
            degraded_disks: vec![1],
            degraded_mult: 4,
            degraded_error_mult: 3,
            ..FaultConfig::default()
        };
        let mut s = FaultState::new(9, cfg);
        assert_eq!(s.service_mult(0), 1);
        assert_eq!(s.service_mult(1), 4);
        let mut hot = 0;
        let mut cold = 0;
        for _ in 0..2000 {
            if s.read_fails(1) {
                hot += 1;
            }
            if s.read_fails(0) {
                cold += 1;
            }
        }
        assert!(hot > cold, "degraded disk must fail more ({hot} vs {cold})");
    }

    #[test]
    fn degradation_enters_and_exits_with_hysteresis() {
        let cfg = FaultConfig {
            read_error_rate: 0.01, // non-inert so degradation is armed
            degradation: DegradationPolicy {
                window_txns: 4,
                search_budget_us: 1000,
                exit_pct: 50,
            },
            ..FaultConfig::default()
        };
        let mut s = FaultState::new(1, cfg);
        assert_eq!(s.observe_txn_search(400), None);
        assert_eq!(s.observe_txn_search(400), None);
        assert_eq!(s.observe_txn_search(400), Some(true), "1200 > 1000");
        assert!(s.degraded());
        // Needs to fall below 500 (50 %): window [400,400,400,0]=1200,
        // then [400,400,0,0]=800, then [400,0,0,0]=400 → exit.
        assert_eq!(s.observe_txn_search(0), None);
        assert_eq!(s.observe_txn_search(0), None);
        assert_eq!(s.observe_txn_search(0), Some(false));
        assert!(!s.degraded());
        assert_eq!(s.stats.degrade_enters, 1);
        assert_eq!(s.stats.degrade_exits, 1);
    }

    #[test]
    fn retry_policy_passthrough() {
        let cfg = FaultConfig {
            retry: RetryPolicy {
                max_attempts: 7,
                backoff_us: 10,
                backoff_mult: 2,
            },
            ..FaultConfig::default()
        };
        let s = FaultState::new(0, cfg);
        assert_eq!(s.retry().max_attempts, 7);
    }
}
