//! ASCII table rendering shared by the figure-regeneration binaries.

use std::fmt::Write as _;

/// A simple right-padded ASCII table.
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row. Extra cells are dropped; missing cells are blank.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.truncate(self.headers.len());
        while row.len() < self.headers.len() {
            row.push(String::new());
        }
        self.rows.push(row);
        self
    }

    /// Render to a string (trailing newline included).
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(row[c].len());
            }
        }
        let mut out = String::new();
        let line = |out: &mut String, cells: &[String], widths: &[usize]| {
            for (c, cell) in cells.iter().enumerate() {
                if c > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{cell:<width$}", width = widths[c]);
            }
            // Trim the padding of the last column.
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        line(&mut out, &self.headers, &widths);
        let rule: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(rule));
        out.push('\n');
        for row in &self.rows {
            line(&mut out, row, &widths);
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Format a float with 3 decimal places (the figure binaries' standard).
pub fn fmt3(v: f64) -> String {
    format!("{v:.3}")
}

/// Format a ratio as `x.xx×`.
pub fn fmt_ratio(v: f64) -> String {
    format!("{v:.2}×")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["name", "value"]);
        t.row(vec!["alpha", "1"]);
        t.row(vec!["b", "23456"]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines[0], "name   value");
        assert!(lines[1].starts_with("-----"));
        assert_eq!(lines[2], "alpha  1");
        assert_eq!(lines[3], "b      23456");
    }

    #[test]
    fn pads_and_truncates_rows() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only-one"]);
        t.row(vec!["x", "y", "dropped"]);
        let r = t.render();
        assert!(!r.contains("dropped"));
        assert_eq!(r.lines().count(), 4);
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt3(1.23456), "1.235");
        assert_eq!(fmt_ratio(2.5), "2.50×");
    }
}
