//! Interaction-plot classification (§6, Figure 6.2).
//!
//! Two control parameters "interact" when the effect of one differs
//! across the levels of the other. Plotted as two lines (one per level of
//! the second factor) over the first factor's levels: parallel lines mean
//! no interaction, non-parallel but non-crossing lines a *minor*
//! interaction, crossing lines a *major* interaction.

use std::fmt;

/// The corner responses of a 2×2 interaction plot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Corners {
    /// Response at (A low, B low).
    pub ll: f64,
    /// Response at (A low, B high).
    pub lh: f64,
    /// Response at (A high, B low).
    pub hl: f64,
    /// Response at (A high, B high).
    pub hh: f64,
}

/// Interaction strength classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InteractionClass {
    /// Lines are (nearly) parallel: no interaction.
    None,
    /// Lines converge/diverge but do not cross in the observed range.
    Minor,
    /// Lines cross: strong interaction.
    Major,
}

impl fmt::Display for InteractionClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            InteractionClass::None => "no interaction",
            InteractionClass::Minor => "minor interaction",
            InteractionClass::Major => "major interaction",
        };
        f.write_str(s)
    }
}

impl Corners {
    /// The two lines of the plot: B-low runs from `ll` to `hl`; B-high
    /// from `lh` to `hh` (X axis = factor A's level).
    pub fn lines(&self) -> ((f64, f64), (f64, f64)) {
        ((self.ll, self.hl), (self.lh, self.hh))
    }

    /// Classify the interaction. `tolerance` is the relative slope
    /// difference (w.r.t. the response scale) below which lines count as
    /// parallel.
    pub fn classify(&self, tolerance: f64) -> InteractionClass {
        let scale = [self.ll, self.lh, self.hl, self.hh]
            .iter()
            .fold(0.0f64, |m, v| m.max(v.abs()))
            .max(f64::EPSILON);
        let slope_low = self.hl - self.ll; // B low
        let slope_high = self.hh - self.lh; // B high
        if (slope_low - slope_high).abs() / scale <= tolerance {
            return InteractionClass::None;
        }
        // Lines cross inside the observed range iff the sign of the gap
        // between them flips between the two ends.
        let gap_left = self.lh - self.ll;
        let gap_right = self.hh - self.hl;
        if gap_left * gap_right < 0.0 {
            InteractionClass::Major
        } else {
            InteractionClass::Minor
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_lines_do_not_interact() {
        let c = Corners {
            ll: 1.0,
            lh: 2.0,
            hl: 3.0,
            hh: 4.0,
        };
        assert_eq!(c.classify(0.05), InteractionClass::None);
    }

    #[test]
    fn diverging_lines_are_minor() {
        let c = Corners {
            ll: 1.0,
            lh: 1.5,
            hl: 2.0,
            hh: 4.0,
        };
        assert_eq!(c.classify(0.05), InteractionClass::Minor);
    }

    #[test]
    fn crossing_lines_are_major() {
        let c = Corners {
            ll: 1.0,
            lh: 3.0,
            hl: 3.0,
            hh: 1.0,
        };
        assert_eq!(c.classify(0.05), InteractionClass::Major);
    }

    #[test]
    fn tolerance_absorbs_noise() {
        let c = Corners {
            ll: 10.0,
            lh: 20.0,
            hl: 10.4,
            hh: 20.1,
        };
        assert_eq!(c.classify(0.05), InteractionClass::None);
        assert_ne!(c.classify(0.001), InteractionClass::None);
    }

    #[test]
    fn lines_accessor() {
        let c = Corners {
            ll: 1.0,
            lh: 2.0,
            hl: 3.0,
            hh: 4.0,
        };
        assert_eq!(c.lines(), ((1.0, 3.0), (2.0, 4.0)));
    }
}
