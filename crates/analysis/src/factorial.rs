//! Two-level factorial effect analysis (§6, Figure 6.1).
//!
//! Each of `k` control parameters is assigned a *low* and a *high*
//! operating level. The full design runs all `2^k` combinations; the
//! effect of a factor subset `S` is the average change in response when
//! the product of `S`'s levels flips sign — the standard contrast
//! estimate of a 2^k design. Figure 6.1 plots the absolute values of
//! these effects; we reproduce the ranking (structure density and
//! buffering policy dominate, page splitting is negligible).

/// A full 2^k two-level design.
#[derive(Debug, Clone)]
pub struct FactorialDesign {
    factors: Vec<String>,
}

/// Why a design could not be constructed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DesignError {
    /// No factors were given.
    NoFactors,
    /// More than [`FactorialDesign::MAX_FACTORS`] factors: the full
    /// `2^k` design would be too large to enumerate.
    TooManyFactors {
        /// Factors requested.
        requested: usize,
    },
}

impl std::fmt::Display for DesignError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DesignError::NoFactors => write!(f, "need at least one factor"),
            DesignError::TooManyFactors { requested } => write!(
                f,
                "2^{requested} design too large (max {} factors)",
                FactorialDesign::MAX_FACTORS
            ),
        }
    }
}

impl std::error::Error for DesignError {}

/// One estimated effect: a factor subset and its contrast.
#[derive(Debug, Clone, PartialEq)]
pub struct Effect {
    /// Indices of the factors in the subset (singletons are main
    /// effects, pairs are two-factor interactions, …).
    pub factors: Vec<usize>,
    /// Human-readable label, e.g. `density` or `density×buffering`.
    pub label: String,
    /// The signed effect estimate.
    pub effect: f64,
}

impl Effect {
    /// Interaction order (1 = main effect).
    pub fn order(&self) -> usize {
        self.factors.len()
    }
}

impl FactorialDesign {
    /// Most factors a full design will enumerate (`2^16` = 65536 runs).
    pub const MAX_FACTORS: usize = 16;

    /// Define a design over the named factors, rejecting empty or
    /// oversized factor sets instead of panicking.
    pub fn try_new<S: Into<String>>(factors: Vec<S>) -> Result<Self, DesignError> {
        let factors: Vec<String> = factors.into_iter().map(Into::into).collect();
        if factors.is_empty() {
            return Err(DesignError::NoFactors);
        }
        if factors.len() > Self::MAX_FACTORS {
            return Err(DesignError::TooManyFactors {
                requested: factors.len(),
            });
        }
        Ok(FactorialDesign { factors })
    }

    /// Define a design over the named factors.
    ///
    /// # Panics
    /// Panics on more than [`Self::MAX_FACTORS`] factors (the full
    /// design would not fit in memory) or on zero factors; use
    /// [`Self::try_new`] to handle those cases as values.
    pub fn new<S: Into<String>>(factors: Vec<S>) -> Self {
        Self::try_new(factors).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Factor names.
    pub fn factors(&self) -> &[String] {
        &self.factors
    }

    /// Number of runs (`2^k`).
    pub fn runs(&self) -> usize {
        1 << self.factors.len()
    }

    /// Level vector of run `i`: `true` = high. Bit `j` of `i` is factor
    /// `j`'s level.
    pub fn levels(&self, run: usize) -> Vec<bool> {
        (0..self.factors.len())
            .map(|j| (run >> j) & 1 == 1)
            .collect()
    }

    /// Estimate every effect (all non-empty factor subsets) from the
    /// `2^k` responses, ordered by subset mask.
    ///
    /// # Panics
    /// Panics if `responses.len() != self.runs()`.
    pub fn effects(&self, responses: &[f64]) -> Vec<Effect> {
        assert_eq!(responses.len(), self.runs(), "one response per run");
        let k = self.factors.len();
        let half = (self.runs() / 2) as f64;
        let mut out = Vec::with_capacity(self.runs() - 1);
        for mask in 1..self.runs() {
            let mut contrast = 0.0;
            for (run, &y) in responses.iter().enumerate() {
                // Sign = product over the subset's factors of (+1 high,
                // -1 low): -1 raised to the number of *low* factors in
                // the subset.
                let low_count = mask.count_ones() - (run & mask).count_ones();
                let sign = if low_count & 1 == 0 { 1.0 } else { -1.0 };
                contrast += sign * y;
            }
            let factors: Vec<usize> = (0..k).filter(|j| (mask >> j) & 1 == 1).collect();
            let label = factors
                .iter()
                .map(|&j| self.factors[j].as_str())
                .collect::<Vec<_>>()
                .join("×");
            out.push(Effect {
                factors,
                label,
                effect: contrast / half,
            });
        }
        out
    }

    /// Effects ranked by absolute magnitude, largest first, optionally
    /// restricted to interaction order ≤ `max_order`.
    pub fn ranked_effects(&self, responses: &[f64], max_order: usize) -> Vec<Effect> {
        let mut effects: Vec<Effect> = self
            .effects(responses)
            .into_iter()
            .filter(|e| e.order() <= max_order)
            .collect();
        effects.sort_by(|a, b| {
            b.effect
                .abs()
                .partial_cmp(&a.effect.abs())
                .expect("finite effects")
        });
        effects
    }
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)]
mod tests {
    use super::*;

    #[test]
    fn additive_model_has_no_interactions() {
        // y = 10 + 3*A + 1*B (A,B coded -1/+1).
        let design = FactorialDesign::new(vec!["A", "B"]);
        let mut responses = vec![0.0; 4];
        for run in 0..4 {
            let a = if run & 1 == 1 { 1.0 } else { -1.0 };
            let b = if run & 2 == 2 { 1.0 } else { -1.0 };
            responses[run] = 10.0 + 3.0 * a + 1.0 * b;
        }
        let effects = design.effects(&responses);
        let get = |label: &str| {
            effects
                .iter()
                .find(|e| e.label == label)
                .map(|e| e.effect)
                .unwrap()
        };
        // Effect = 2 × coefficient in the coded model.
        assert!((get("A") - 6.0).abs() < 1e-12);
        assert!((get("B") - 2.0).abs() < 1e-12);
        assert!(get("A×B").abs() < 1e-12);
    }

    #[test]
    fn pure_interaction_detected() {
        // y = 5 * A * B.
        let design = FactorialDesign::new(vec!["A", "B"]);
        let mut responses = vec![0.0; 4];
        for run in 0..4 {
            let a = if run & 1 == 1 { 1.0 } else { -1.0 };
            let b = if run & 2 == 2 { 1.0 } else { -1.0 };
            responses[run] = 5.0 * a * b;
        }
        let effects = design.effects(&responses);
        let ab = effects.iter().find(|e| e.label == "A×B").unwrap();
        assert!((ab.effect - 10.0).abs() < 1e-12);
        assert!(
            effects
                .iter()
                .find(|e| e.label == "A")
                .unwrap()
                .effect
                .abs()
                < 1e-12
        );
    }

    #[test]
    fn ranking_orders_by_magnitude() {
        let design = FactorialDesign::new(vec!["A", "B", "C"]);
        let mut responses = vec![0.0; 8];
        for run in 0..8 {
            let a = if run & 1 == 1 { 1.0 } else { -1.0 };
            let c = if run & 4 == 4 { 1.0 } else { -1.0 };
            responses[run] = a + 10.0 * c;
        }
        let ranked = design.ranked_effects(&responses, 2);
        assert_eq!(ranked[0].label, "C");
        assert_eq!(ranked[1].label, "A");
        // max_order 2 excludes the three-factor interaction.
        assert!(ranked.iter().all(|e| e.order() <= 2));
    }

    #[test]
    fn run_enumeration_covers_all_levels() {
        let design = FactorialDesign::new(vec!["x", "y"]);
        assert_eq!(design.runs(), 4);
        let all: Vec<Vec<bool>> = (0..4).map(|i| design.levels(i)).collect();
        assert!(all.contains(&vec![false, false]));
        assert!(all.contains(&vec![true, true]));
        assert!(all.contains(&vec![true, false]));
        assert!(all.contains(&vec![false, true]));
    }

    #[test]
    #[should_panic(expected = "one response per run")]
    fn wrong_response_count_panics() {
        FactorialDesign::new(vec!["A"]).effects(&[1.0, 2.0, 3.0]);
    }

    #[test]
    fn try_new_boundaries() {
        // Exactly MAX_FACTORS is accepted (2^16 runs enumerate fine).
        let names: Vec<String> = (0..FactorialDesign::MAX_FACTORS)
            .map(|i| format!("f{i}"))
            .collect();
        let design = FactorialDesign::try_new(names.clone()).unwrap();
        assert_eq!(design.runs(), 1 << FactorialDesign::MAX_FACTORS);

        // One more is rejected with the requested count, not a panic.
        let mut over = names;
        over.push("f16".into());
        assert_eq!(
            FactorialDesign::try_new(over).unwrap_err(),
            DesignError::TooManyFactors { requested: 17 }
        );

        let empty: Vec<String> = Vec::new();
        assert_eq!(
            FactorialDesign::try_new(empty).unwrap_err(),
            DesignError::NoFactors
        );
    }

    #[test]
    fn design_error_messages() {
        assert_eq!(
            DesignError::NoFactors.to_string(),
            "need at least one factor"
        );
        let e = DesignError::TooManyFactors { requested: 20 };
        assert!(e.to_string().contains("2^20"));
        assert!(e.to_string().contains("max 16"));
    }

    #[test]
    #[should_panic(expected = "design too large")]
    fn new_panics_past_boundary() {
        let names: Vec<String> = (0..17).map(|i| format!("f{i}")).collect();
        FactorialDesign::new(names);
    }
}
