//! # semcluster-analysis
//!
//! Output analysis for the semcluster experiments:
//!
//! * [`FactorialDesign`] — the §6 two-level factorial effect analysis
//!   (main effects and interactions of the eight control parameters,
//!   Figure 6.1),
//! * [`Corners`] — interaction-plot classification (parallel / minor /
//!   crossing, Figure 6.2),
//! * [`find_break_even`] — the Table 5.1 read/write-ratio break-even
//!   search, and
//! * [`Table`] — ASCII rendering shared by the figure binaries.

#![warn(missing_docs)]

mod breakeven;
mod factorial;
mod interaction;
mod table;

pub use breakeven::{find_break_even, BreakEven};
pub use factorial::{DesignError, Effect, FactorialDesign};
pub use interaction::{Corners, InteractionClass};
pub use table::{fmt3, fmt_ratio, Table};
