//! Break-even search (Table 5.1).
//!
//! Finds the read/write ratio at which two policies' response times
//! cross, by bisection over a user-supplied difference function
//! `f(rw) = response_A(rw) − response_B(rw)`. Simulation output is noisy
//! and only piecewise monotone, so the search brackets a sign change on a
//! coarse grid first and then bisects.

/// Result of a break-even search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BreakEven {
    /// The difference changes sign near this ratio.
    At(f64),
    /// `f` is negative over the whole range (A always wins).
    AlwaysNegative,
    /// `f` is positive over the whole range (B always wins).
    AlwaysPositive,
}

/// Locate the break-even point of `f` over `[lo, hi]` using `grid`
/// initial samples and `iterations` bisection steps.
///
/// # Panics
/// Panics if `lo >= hi`, `grid < 2` or `iterations == 0`.
pub fn find_break_even<F>(mut f: F, lo: f64, hi: f64, grid: usize, iterations: usize) -> BreakEven
where
    F: FnMut(f64) -> f64,
{
    assert!(lo < hi, "empty search range");
    assert!(grid >= 2, "need at least two grid points");
    assert!(iterations > 0, "need at least one bisection step");

    // Coarse grid to bracket the first sign change.
    let mut prev_x = lo;
    let mut prev_y = f(lo);
    let mut bracket = None;
    for i in 1..grid {
        let x = lo + (hi - lo) * i as f64 / (grid - 1) as f64;
        let y = f(x);
        if prev_y == 0.0 {
            return BreakEven::At(prev_x);
        }
        if prev_y * y < 0.0 {
            bracket = Some((prev_x, prev_y, x));
            break;
        }
        prev_x = x;
        prev_y = y;
    }
    let Some((mut a, ya, mut b)) = bracket else {
        return if prev_y < 0.0 {
            BreakEven::AlwaysNegative
        } else if prev_y > 0.0 {
            BreakEven::AlwaysPositive
        } else {
            BreakEven::At(prev_x)
        };
    };

    // Bisect.
    let mut ya = ya;
    for _ in 0..iterations {
        let mid = 0.5 * (a + b);
        let ym = f(mid);
        if ym == 0.0 {
            return BreakEven::At(mid);
        }
        if ya * ym < 0.0 {
            b = mid;
        } else {
            a = mid;
            ya = ym;
        }
    }
    BreakEven::At(0.5 * (a + b))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_linear_root() {
        let r = find_break_even(|x| x - 3.6, 1.0, 10.0, 10, 30);
        match r {
            BreakEven::At(x) => assert!((x - 3.6).abs() < 1e-6, "{x}"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn reports_one_sided_functions() {
        assert_eq!(
            find_break_even(|_| -1.0, 1.0, 10.0, 5, 5),
            BreakEven::AlwaysNegative
        );
        assert_eq!(
            find_break_even(|_| 2.0, 1.0, 10.0, 5, 5),
            BreakEven::AlwaysPositive
        );
    }

    #[test]
    fn handles_nonlinear_crossing() {
        // Crosses at x = 4 (like clustering overhead amortised by reads).
        let r = find_break_even(|x| 8.0 / x - 2.0, 1.0, 10.0, 12, 40);
        match r {
            BreakEven::At(x) => assert!((x - 4.0).abs() < 1e-4, "{x}"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn counts_function_calls_frugally() {
        let mut calls = 0;
        find_break_even(
            |x| {
                calls += 1;
                x - 5.0
            },
            1.0,
            10.0,
            8,
            10,
        );
        assert!(calls <= 8 + 10, "calls {calls}");
    }
}
