//! Property-based tests for the analysis toolkit.

use proptest::prelude::*;
use semcluster_analysis::{find_break_even, BreakEven, Corners, FactorialDesign, InteractionClass};

proptest! {
    /// Factorial effects exactly recover the coefficients of a coded
    /// linear-plus-interaction model (effect = 2 × coefficient).
    #[test]
    fn factorial_recovers_coded_model(
        c0 in -10.0f64..10.0,
        ca in -10.0f64..10.0,
        cb in -10.0f64..10.0,
        cc in -10.0f64..10.0,
        cab in -10.0f64..10.0,
    ) {
        let design = FactorialDesign::new(vec!["A", "B", "C"]);
        let coded = |bit: bool| if bit { 1.0 } else { -1.0 };
        let responses: Vec<f64> = (0..design.runs())
            .map(|run| {
                let l = design.levels(run);
                let (a, b, c) = (coded(l[0]), coded(l[1]), coded(l[2]));
                c0 + ca * a + cb * b + cc * c + cab * a * b
            })
            .collect();
        let effects = design.effects(&responses);
        let get = |label: &str| {
            effects.iter().find(|e| e.label == label).unwrap().effect
        };
        prop_assert!((get("A") - 2.0 * ca).abs() < 1e-9);
        prop_assert!((get("B") - 2.0 * cb).abs() < 1e-9);
        prop_assert!((get("C") - 2.0 * cc).abs() < 1e-9);
        prop_assert!((get("A×B") - 2.0 * cab).abs() < 1e-9);
        prop_assert!(get("A×C").abs() < 1e-9);
        prop_assert!(get("A×B×C").abs() < 1e-9);
    }

    /// Effect ranking is a permutation sorted by |effect|.
    #[test]
    fn ranking_is_sorted_permutation(
        responses in proptest::collection::vec(-100.0f64..100.0, 8..=8),
    ) {
        let design = FactorialDesign::new(vec!["A", "B", "C"]);
        let ranked = design.ranked_effects(&responses, 3);
        prop_assert_eq!(ranked.len(), 7);
        for w in ranked.windows(2) {
            prop_assert!(w[0].effect.abs() >= w[1].effect.abs() - 1e-12);
        }
    }

    /// The break-even search finds the root of any monotone affine
    /// function to grid+bisection precision, or reports one-sidedness.
    #[test]
    fn break_even_affine(slope in 0.01f64..50.0, root in -5.0f64..15.0) {
        let result = find_break_even(|x| slope * (x - root), 1.0, 10.0, 12, 40);
        if root <= 1.0 {
            prop_assert_eq!(result, BreakEven::AlwaysPositive);
        } else if root >= 10.0 {
            prop_assert_eq!(result, BreakEven::AlwaysNegative);
        } else {
            match result {
                BreakEven::At(x) => prop_assert!((x - root).abs() < 1e-3, "{x} vs {root}"),
                other => prop_assert!(false, "expected root, got {:?}", other),
            }
        }
    }

    /// Interaction classification: scaling all four corners by a positive
    /// constant never changes the class.
    #[test]
    fn interaction_class_scale_invariant(
        ll in -10.0f64..10.0,
        lh in -10.0f64..10.0,
        hl in -10.0f64..10.0,
        hh in -10.0f64..10.0,
        scale in 0.1f64..100.0,
    ) {
        let c1 = Corners { ll, lh, hl, hh };
        let c2 = Corners {
            ll: ll * scale,
            lh: lh * scale,
            hl: hl * scale,
            hh: hh * scale,
        };
        prop_assert_eq!(c1.classify(0.05), c2.classify(0.05));
    }

    /// Exactly parallel lines always classify as no interaction.
    #[test]
    fn parallel_lines_classify_none(
        ll in -10.0f64..10.0,
        slope in -10.0f64..10.0,
        gap in -10.0f64..10.0,
    ) {
        let c = Corners {
            ll,
            lh: ll + gap,
            hl: ll + slope,
            hh: ll + gap + slope,
        };
        prop_assert_eq!(c.classify(0.01), InteractionClass::None);
    }
}
