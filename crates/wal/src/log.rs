//! The transaction log manager.
//!
//! Faithful to §4's description of the simulation model:
//!
//! * log records are sized by the created/modified object,
//! * records accumulate in a **circular in-memory log buffer** shared by
//!   all transactions and are flushed (one physical I/O) when the buffer
//!   fills,
//! * commits force the buffered tail, and
//! * the *original page* of an updated object is flushed **once per
//!   transaction** even when several objects on it are updated — the
//!   before-image coalescing behind Figure 5.5's result that clustering
//!   reduces logging I/O.
//!
//! Multiple transactions (one per user of the closed network) may be open
//! concurrently; each holds its own page set.

use crate::recovery::{DurableLog, LogRecord, RecordKind};
use semcluster_storage::PageId;
use semcluster_vdm::{DetHashMap, DetHashSet};

/// Handle of an open transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TxnToken(u64);

impl TxnToken {
    /// Raw transaction id, for backends keyed on plain integers (the
    /// durable file store logs `u64` transaction ids).
    pub fn raw(self) -> u64 {
        self.0
    }
}

/// Log-manager configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LogConfig {
    /// Capacity of the circular in-memory log buffer in bytes.
    pub buffer_bytes: u32,
    /// Fixed header per log record in bytes.
    pub record_header_bytes: u32,
    /// Whether commit forces the buffered tail to disk.
    pub force_on_commit: bool,
}

impl Default for LogConfig {
    fn default() -> Self {
        LogConfig {
            buffer_bytes: 16 * 1024,
            record_header_bytes: 24,
            force_on_commit: true,
        }
    }
}

/// Counters the experiments report.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LogStats {
    /// Records appended.
    pub records: u64,
    /// Bytes appended (records + headers).
    pub bytes: u64,
    /// Physical I/Os from the circular buffer wrapping.
    pub buffer_flushes: u64,
    /// Physical I/Os from before-images of updated pages.
    pub before_image_ios: u64,
    /// Physical I/Os from commit forces.
    pub commit_forces: u64,
    /// Transactions committed.
    pub commits: u64,
}

impl LogStats {
    /// All physical logging I/Os.
    pub fn total_ios(&self) -> u64 {
        self.buffer_flushes + self.before_image_ios + self.commit_forces
    }
}

/// Physical log I/Os triggered by one [`LogManager::log_update`],
/// broken down by kind.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UpdateLogIo {
    /// Whether this update's page needed a first-touch before-image.
    pub before_image: bool,
    /// Circular-buffer wrap flushes (a huge record can wrap repeatedly).
    pub wrap_flushes: u32,
}

impl UpdateLogIo {
    /// Total physical I/Os.
    pub fn total(&self) -> u32 {
        self.wrap_flushes + self.before_image as u32
    }
}

/// The log manager. One instance per simulated server.
#[derive(Debug, Clone)]
pub struct LogManager {
    cfg: LogConfig,
    buffered: u32,
    next_token: u64,
    // Fixed-seed hashing: the open-transaction map is mutated inside
    // the engine's profiled WAL-append phase, so its allocation pattern
    // must not depend on the thread's random hash seed (DESIGN.md §13).
    open: DetHashMap<TxnToken, DetHashSet<PageId>>,
    stats: LogStats,
    /// Record retention for recovery testing (None = count-only mode).
    retain: Option<Retention>,
}

#[derive(Debug, Clone, Default)]
struct Retention {
    next_lsn: u64,
    /// Records still in the in-memory circular buffer (lost on crash).
    tail: Vec<LogRecord>,
    /// Records that reached stable storage.
    durable: Vec<LogRecord>,
}

impl LogManager {
    /// New log manager with an empty buffer.
    pub fn new(cfg: LogConfig) -> Self {
        assert!(cfg.buffer_bytes > 0, "log buffer must be non-empty");
        LogManager {
            cfg,
            buffered: 0,
            next_token: 0,
            open: DetHashMap::default(),
            stats: LogStats::default(),
            retain: None,
        }
    }

    /// Like [`LogManager::new`] but retaining log records so a crash can
    /// be simulated and recovered from (see [`crate::recover`]).
    pub fn with_retention(cfg: LogConfig) -> Self {
        let mut mgr = Self::new(cfg);
        mgr.retain = Some(Retention::default());
        mgr
    }

    fn record(&mut self, txn: TxnToken, kind: RecordKind) {
        if let Some(r) = self.retain.as_mut() {
            let lsn = r.next_lsn;
            r.next_lsn += 1;
            r.tail.push(LogRecord { lsn, txn, kind });
        }
    }

    fn flush_tail(&mut self) {
        if let Some(r) = self.retain.as_mut() {
            r.durable.append(&mut r.tail);
        }
    }

    /// Simulate a crash: the in-memory tail is lost; what reached stable
    /// storage is returned for recovery. The manager itself is left in
    /// its post-crash (empty) state.
    pub fn crash(&mut self) -> DurableLog {
        self.buffered = 0;
        self.open.clear();
        match self.retain.as_mut() {
            Some(r) => {
                r.tail.clear();
                DurableLog {
                    records: std::mem::take(&mut r.durable),
                    torn_tail: 0,
                }
            }
            None => DurableLog::default(),
        }
    }

    /// Simulate a crash *during* a physical log flush: the tail was
    /// being written when power cut, so its records reach the durable
    /// image but the last one is torn (partially written) and must be
    /// truncated by recovery. With an empty tail this degenerates to
    /// [`LogManager::crash`].
    pub fn crash_torn(&mut self) -> DurableLog {
        self.buffered = 0;
        self.open.clear();
        match self.retain.as_mut() {
            Some(r) => {
                let torn = if r.tail.is_empty() { 0 } else { 1 };
                let mut records = std::mem::take(&mut r.durable);
                records.append(&mut r.tail);
                DurableLog {
                    records,
                    torn_tail: torn,
                }
            }
            None => DurableLog::default(),
        }
    }

    /// Next log sequence number to be assigned (0 until the first
    /// record; always 0 without retention).
    pub fn current_lsn(&self) -> u64 {
        self.retain.as_ref().map_or(0, |r| r.next_lsn)
    }

    /// Configuration in use.
    pub fn config(&self) -> LogConfig {
        self.cfg
    }

    /// Bytes currently buffered (not yet flushed).
    pub fn buffered_bytes(&self) -> u32 {
        self.buffered
    }

    /// Number of transactions currently open.
    pub fn open_transactions(&self) -> usize {
        self.open.len()
    }

    /// Statistics so far.
    pub fn stats(&self) -> LogStats {
        self.stats
    }

    /// Reset statistics (after warmup) without touching buffer state.
    pub fn reset_stats(&mut self) {
        self.stats = LogStats::default();
    }

    /// Open a transaction.
    pub fn begin(&mut self) -> TxnToken {
        let token = TxnToken(self.next_token);
        self.next_token += 1;
        self.open.insert(token, DetHashSet::default());
        token
    }

    /// Log a create/update of an object of `object_bytes` living on
    /// `page`, inside transaction `txn`. Returns the number of physical
    /// I/Os this action triggered (buffer-full flushes plus a first-touch
    /// before-image).
    ///
    /// # Panics
    /// Panics if `txn` is not open.
    pub fn log_update(&mut self, txn: TxnToken, page: PageId, object_bytes: u32) -> u32 {
        self.log_update_detail(txn, page, object_bytes).total()
    }

    /// Like [`LogManager::log_update`], but reporting the physical I/Os
    /// by kind, so callers can attribute before-images separately from
    /// buffer-wrap flushes.
    ///
    /// # Panics
    /// Panics if `txn` is not open.
    pub fn log_update_detail(
        &mut self,
        txn: TxnToken,
        page: PageId,
        object_bytes: u32,
    ) -> UpdateLogIo {
        let pages = self.open.get_mut(&txn).expect("transaction is open");
        let mut io = UpdateLogIo::default();
        let record = self.cfg.record_header_bytes + object_bytes;
        self.stats.records += 1;
        self.stats.bytes += record as u64;
        self.buffered += record;
        // Before-image of the original page, once per transaction.
        if pages.insert(page) {
            self.stats.before_image_ios += 1;
            io.before_image = true;
        }
        self.record(txn, RecordKind::Update { page, object_bytes });
        // The circular buffer wraps: flush whole buffers as needed. A
        // single huge record can wrap more than once.
        while self.buffered >= self.cfg.buffer_bytes {
            self.buffered -= self.cfg.buffer_bytes;
            self.stats.buffer_flushes += 1;
            io.wrap_flushes += 1;
        }
        if io.wrap_flushes > 0 {
            self.flush_tail();
        }
        io
    }

    /// Commit `txn`. Returns the physical I/Os triggered (the commit
    /// force, if configured and anything is buffered).
    ///
    /// # Panics
    /// Panics if `txn` is not open.
    pub fn commit(&mut self, txn: TxnToken) -> u32 {
        self.open.remove(&txn).expect("transaction is open");
        self.stats.commits += 1;
        self.record(txn, RecordKind::Commit);
        if self.cfg.force_on_commit {
            self.flush_tail();
        }
        if self.cfg.force_on_commit && self.buffered > 0 {
            self.buffered = 0;
            self.stats.commit_forces += 1;
            1
        } else {
            0
        }
    }

    /// Commit a whole group of transactions with a **single** force:
    /// every member's commit record is appended, then one flush makes
    /// the entire batch durable together. This is the group-commit
    /// primitive the concurrent server uses — under contention, N
    /// transactions committing in the same window pay one physical log
    /// force instead of N. Returns the physical I/Os triggered (0 or 1).
    ///
    /// Durability contract is identical to calling [`LogManager::commit`]
    /// per member: no member may be acknowledged before this call
    /// returns, and after it returns every member's commit record has
    /// reached stable storage (when `force_on_commit` is set).
    ///
    /// # Panics
    /// Panics if any member of `txns` is not open.
    pub fn commit_group(&mut self, txns: &[TxnToken]) -> u32 {
        for &txn in txns {
            self.open.remove(&txn).expect("transaction is open");
            self.stats.commits += 1;
            self.record(txn, RecordKind::Commit);
        }
        if txns.is_empty() {
            return 0;
        }
        if self.cfg.force_on_commit {
            self.flush_tail();
        }
        if self.cfg.force_on_commit && self.buffered > 0 {
            self.buffered = 0;
            self.stats.commit_forces += 1;
            1
        } else {
            0
        }
    }

    /// Abort `txn` (buffered records stay — they will be superseded by
    /// compensation in a real system; the simulation only needs the I/O
    /// accounting to stop).
    ///
    /// # Panics
    /// Panics if `txn` is not open.
    pub fn abort(&mut self, txn: TxnToken) {
        self.open.remove(&txn).expect("transaction is open");
        self.record(txn, RecordKind::Abort);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: u32) -> PageId {
        PageId(i)
    }

    fn mgr(buffer: u32) -> LogManager {
        LogManager::new(LogConfig {
            buffer_bytes: buffer,
            record_header_bytes: 24,
            force_on_commit: true,
        })
    }

    #[test]
    fn small_txn_is_one_image_plus_force() {
        let mut log = mgr(16 * 1024);
        let t = log.begin();
        let ios = log.log_update(t, p(1), 100);
        assert_eq!(ios, 1, "first touch of the page logs a before-image");
        let ios = log.commit(t);
        assert_eq!(ios, 1, "commit forces the tail");
        assert_eq!(log.stats().total_ios(), 2);
        assert_eq!(log.buffered_bytes(), 0);
    }

    #[test]
    fn same_page_updates_coalesce() {
        let mut log = mgr(16 * 1024);
        let t = log.begin();
        let mut ios = 0;
        for _ in 0..5 {
            ios += log.log_update(t, p(7), 100);
        }
        assert_eq!(ios, 1, "one before-image for five same-page updates");
        ios += log.commit(t);
        assert_eq!(ios, 2);

        // Scattered updates: five pages, five images. This is exactly why
        // clustering reduces log I/O (Figure 5.5).
        let mut scattered = mgr(16 * 1024);
        let t = scattered.begin();
        let mut ios2 = 0;
        for i in 0..5 {
            ios2 += scattered.log_update(t, p(i), 100);
        }
        ios2 += scattered.commit(t);
        assert_eq!(ios2, 6);
    }

    #[test]
    fn group_commit_forces_once_for_the_whole_batch() {
        let mut log = mgr(16 * 1024);
        let group: Vec<TxnToken> = (0..4)
            .map(|i| {
                let t = log.begin();
                log.log_update(t, p(i), 100);
                t
            })
            .collect();
        let ios = log.commit_group(&group);
        assert_eq!(ios, 1, "one force covers four commits");
        assert_eq!(log.stats().commits, 4);
        assert_eq!(log.stats().commit_forces, 1);
        assert_eq!(log.open_transactions(), 0);
        assert_eq!(log.buffered_bytes(), 0);
        // Empty batch is a no-op.
        assert_eq!(log.commit_group(&[]), 0);
        assert_eq!(log.stats().commit_forces, 1);
    }

    #[test]
    fn group_commit_records_are_durable_for_recovery() {
        let mut log = LogManager::with_retention(LogConfig::default());
        let a = log.begin();
        let b = log.begin();
        let c = log.begin();
        log.log_update(a, p(1), 10);
        log.log_update(b, p(2), 10);
        log.log_update(c, p(3), 10);
        log.commit_group(&[a, b]);
        // c is still in flight when the server crashes: its update
        // record reached disk with the group's force, but no commit —
        // recovery must roll it back.
        let durable = log.crash();
        let outcome = crate::recover(&durable);
        assert_eq!(outcome.winners, vec![a, b]);
        assert_eq!(outcome.losers, vec![c]);
    }

    #[test]
    fn concurrent_transactions_have_independent_page_sets() {
        let mut log = mgr(16 * 1024);
        let a = log.begin();
        let b = log.begin();
        assert_eq!(log.open_transactions(), 2);
        assert_eq!(log.log_update(a, p(1), 10), 1);
        // Same page, different transaction: its own before-image.
        assert_eq!(log.log_update(b, p(1), 10), 1);
        assert_eq!(log.log_update(a, p(1), 10), 0);
        log.commit(a);
        log.commit(b);
        assert_eq!(log.stats().before_image_ios, 2);
        assert_eq!(log.stats().commits, 2);
    }

    #[test]
    fn buffer_wrap_flushes() {
        let mut log = mgr(1000);
        let t = log.begin();
        // 24 + 476 = 500 bytes per record: second record wraps.
        let io1 = log.log_update(t, p(1), 476);
        let io2 = log.log_update(t, p(1), 476);
        let io3 = log.log_update(t, p(1), 476);
        assert_eq!(io1, 1); // before-image only
        assert_eq!(io2, 1); // buffer reaches exactly 1000 → flush
        assert_eq!(io3, 0); // 500 buffered, same page
        assert_eq!(log.stats().buffer_flushes, 1);
        assert_eq!(log.buffered_bytes(), 500);
    }

    #[test]
    fn oversized_record_wraps_multiple_times() {
        let mut log = mgr(100);
        let t = log.begin();
        let ios = log.log_update(t, p(1), 276); // 300 bytes vs 100-byte buffer
        assert_eq!(log.stats().buffer_flushes, 3);
        assert_eq!(ios, 4); // 3 wraps + 1 before-image
        assert_eq!(log.buffered_bytes(), 0);
    }

    #[test]
    fn page_set_resets_per_transaction() {
        let mut log = mgr(16 * 1024);
        let t1 = log.begin();
        assert_eq!(log.log_update(t1, p(1), 10), 1);
        log.commit(t1);
        let t2 = log.begin();
        assert_eq!(log.log_update(t2, p(1), 10), 1, "new txn, new image");
        log.commit(t2);
        assert_eq!(log.stats().before_image_ios, 2);
    }

    #[test]
    fn no_force_config_skips_commit_io() {
        let mut log = LogManager::new(LogConfig {
            force_on_commit: false,
            ..LogConfig::default()
        });
        let t = log.begin();
        log.log_update(t, p(1), 100);
        assert_eq!(log.commit(t), 0);
        assert!(log.buffered_bytes() > 0, "tail stays buffered");
    }

    #[test]
    fn abort_clears_transaction_state() {
        let mut log = mgr(16 * 1024);
        let t = log.begin();
        log.log_update(t, p(1), 10);
        log.abort(t);
        assert_eq!(log.open_transactions(), 0);
        let t2 = log.begin();
        assert_eq!(log.log_update(t2, p(1), 10), 1);
    }

    #[test]
    #[should_panic(expected = "transaction is open")]
    fn update_on_committed_txn_panics() {
        let mut log = mgr(1024);
        let t = log.begin();
        log.commit(t);
        log.log_update(t, p(1), 10);
    }
}
