//! Crash recovery over the transaction log.
//!
//! The simulation counts I/Os, but a credible log manager must also get
//! the *semantics* right: with `force_on_commit`, every committed
//! transaction's records are durable at commit, and recovery after a
//! crash must (a) identify winners and losers from the durable log alone
//! and (b) redo winners' updates and undo losers'. This module implements
//! that analysis/redo/undo pass over the retained log records.

use crate::log::TxnToken;
use semcluster_storage::PageId;
use std::collections::{HashMap, HashSet};

/// What one durable log record describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordKind {
    /// An object create/update of `object_bytes` on `page`.
    Update {
        /// Page holding the object.
        page: PageId,
        /// Logged object size.
        object_bytes: u32,
    },
    /// Transaction committed.
    Commit,
    /// Transaction aborted.
    Abort,
}

/// One log record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LogRecord {
    /// Log sequence number (monotone).
    pub lsn: u64,
    /// Owning transaction.
    pub txn: TxnToken,
    /// Payload.
    pub kind: RecordKind,
}

/// The durable portion of the log that survives a crash.
#[derive(Debug, Clone, Default)]
pub struct DurableLog {
    /// Records in LSN order.
    pub records: Vec<LogRecord>,
    /// Trailing records that were mid-write when the crash hit (torn):
    /// their payload cannot be trusted and recovery must truncate them
    /// before analysis. Produced by [`crate::LogManager::crash_torn`].
    pub torn_tail: u32,
}

impl DurableLog {
    /// The records recovery may trust: everything before the torn tail.
    pub fn trusted(&self) -> &[LogRecord] {
        let n = self.records.len().saturating_sub(self.torn_tail as usize);
        &self.records[..n]
    }
}

/// Result of recovery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryOutcome {
    /// Transactions whose commit record is durable (effects redone).
    pub winners: Vec<TxnToken>,
    /// Transactions with durable updates but no durable commit/abort
    /// (effects undone).
    pub losers: Vec<TxnToken>,
    /// Updates redone, in LSN order, `(txn, page)`.
    pub redone: Vec<(TxnToken, PageId)>,
    /// Updates undone, in *reverse* LSN order, `(txn, page)`.
    pub undone: Vec<(TxnToken, PageId)>,
    /// Pages touched by redo (must be re-read and patched).
    pub dirty_pages: Vec<PageId>,
    /// Torn trailing records truncated before analysis.
    pub truncated: u32,
}

/// Run the analysis / redo / undo passes over a durable log. A torn
/// tail (see [`DurableLog::torn_tail`]) is truncated first: a record
/// that was mid-write when the crash hit never takes effect, which is
/// safe because commit is only acknowledged after its force completes.
pub fn recover(log: &DurableLog) -> RecoveryOutcome {
    let records = log.trusted();
    // Analysis: find terminal status per transaction.
    let mut committed: HashSet<TxnToken> = HashSet::new();
    let mut aborted: HashSet<TxnToken> = HashSet::new();
    let mut saw_update: Vec<TxnToken> = Vec::new();
    let mut seen: HashSet<TxnToken> = HashSet::new();
    for rec in records {
        match rec.kind {
            RecordKind::Commit => {
                committed.insert(rec.txn);
            }
            RecordKind::Abort => {
                aborted.insert(rec.txn);
            }
            RecordKind::Update { .. } => {
                if seen.insert(rec.txn) {
                    saw_update.push(rec.txn);
                }
            }
        }
    }
    let mut winners: Vec<TxnToken> = Vec::new();
    let mut losers: Vec<TxnToken> = Vec::new();
    for txn in &saw_update {
        if committed.contains(txn) {
            winners.push(*txn);
        } else if !aborted.contains(txn) {
            losers.push(*txn);
        } // durable aborts were already undone at abort time
    }

    // Redo (forward) and undo (backward).
    let mut redone = Vec::new();
    let mut dirty: Vec<PageId> = Vec::new();
    let mut dirty_set: HashMap<PageId, ()> = HashMap::new();
    for rec in records {
        if let RecordKind::Update { page, .. } = rec.kind {
            if committed.contains(&rec.txn) {
                redone.push((rec.txn, page));
                if dirty_set.insert(page, ()).is_none() {
                    dirty.push(page);
                }
            }
        }
    }
    let mut undone = Vec::new();
    for rec in records.iter().rev() {
        if let RecordKind::Update { page, .. } = rec.kind {
            if losers.contains(&rec.txn) {
                undone.push((rec.txn, page));
            }
        }
    }
    RecoveryOutcome {
        winners,
        losers,
        redone,
        undone,
        dirty_pages: dirty,
        truncated: log.torn_tail.min(log.records.len() as u32),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::{LogConfig, LogManager};

    fn p(i: u32) -> PageId {
        PageId(i)
    }

    #[test]
    fn committed_transactions_survive_a_crash() {
        let mut log = LogManager::with_retention(LogConfig::default());
        let a = log.begin();
        log.log_update(a, p(1), 100);
        log.log_update(a, p(2), 100);
        log.commit(a); // forces the tail → durable
        let b = log.begin();
        log.log_update(b, p(3), 100); // still buffered when we crash
        let durable = log.crash();
        let outcome = recover(&durable);
        assert_eq!(outcome.winners, vec![a]);
        assert!(outcome.losers.is_empty(), "b's updates never got durable");
        assert_eq!(
            outcome.redone,
            vec![(a, p(1)), (a, p(2))],
            "redo in LSN order"
        );
        assert_eq!(outcome.dirty_pages, vec![p(1), p(2)]);
    }

    #[test]
    fn durable_but_uncommitted_updates_are_undone_in_reverse() {
        // Tiny buffer: updates spill to the durable log before commit.
        let mut log = LogManager::with_retention(LogConfig {
            buffer_bytes: 64,
            record_header_bytes: 24,
            force_on_commit: true,
        });
        let a = log.begin();
        log.log_update(a, p(1), 100); // wraps → durable
        log.log_update(a, p(2), 100); // wraps → durable
        let durable = log.crash(); // no commit record
        let outcome = recover(&durable);
        assert_eq!(outcome.losers, vec![a]);
        assert!(outcome.winners.is_empty());
        assert_eq!(
            outcome.undone,
            vec![(a, p(2)), (a, p(1))],
            "undo walks the log backwards"
        );
    }

    #[test]
    fn aborted_transactions_are_neither_redone_nor_undone() {
        let mut log = LogManager::with_retention(LogConfig {
            buffer_bytes: 64,
            record_header_bytes: 24,
            force_on_commit: true,
        });
        let a = log.begin();
        log.log_update(a, p(1), 100);
        log.abort(a); // abort record spills with the rest
        let b = log.begin();
        log.log_update(b, p(2), 200);
        log.commit(b);
        let outcome = recover(&log.crash());
        assert_eq!(outcome.winners, vec![b]);
        assert!(outcome.losers.is_empty());
        assert!(outcome.undone.is_empty());
        assert_eq!(outcome.redone, vec![(b, p(2))]);
    }

    #[test]
    fn interleaved_transactions_recover_independently() {
        let mut log = LogManager::with_retention(LogConfig {
            buffer_bytes: 32,
            record_header_bytes: 8,
            force_on_commit: true,
        });
        let a = log.begin();
        let b = log.begin();
        log.log_update(a, p(1), 50);
        log.log_update(b, p(2), 50);
        log.log_update(a, p(3), 50);
        log.commit(a);
        log.log_update(b, p(4), 50);
        let outcome = recover(&log.crash());
        assert_eq!(outcome.winners, vec![a]);
        assert_eq!(outcome.losers, vec![b]);
        assert_eq!(outcome.redone, vec![(a, p(1)), (a, p(3))]);
        // b's durable updates (p2 at least) undone in reverse order.
        assert!(outcome.undone.starts_with(&[(b, p(4))]) || outcome.undone.contains(&(b, p(2))));
    }

    #[test]
    fn without_retention_crash_yields_empty_log() {
        let mut log = LogManager::new(LogConfig::default());
        let a = log.begin();
        log.log_update(a, p(1), 100);
        log.commit(a);
        assert!(log.crash().records.is_empty());
    }

    #[test]
    fn empty_log_recovers_to_nothing() {
        let mut log = LogManager::with_retention(LogConfig::default());
        let outcome = recover(&log.crash());
        assert!(outcome.winners.is_empty());
        assert!(outcome.losers.is_empty());
        assert!(outcome.redone.is_empty());
        assert!(outcome.undone.is_empty());
        assert!(outcome.dirty_pages.is_empty());
        assert_eq!(outcome.truncated, 0);
        // And a torn crash of an empty log is equally empty.
        let mut log = LogManager::with_retention(LogConfig::default());
        let durable = log.crash_torn();
        assert!(durable.records.is_empty());
        assert_eq!(durable.torn_tail, 0);
    }

    #[test]
    fn torn_last_record_is_truncated_before_analysis() {
        // Commit a first txn (forced → durable, trusted), then leave a
        // second txn's update in the tail and tear it mid-flush.
        let mut log = LogManager::with_retention(LogConfig::default());
        let a = log.begin();
        log.log_update(a, p(1), 100);
        log.commit(a);
        let b = log.begin();
        log.log_update(b, p(2), 100); // tail only
        let durable = log.crash_torn();
        assert_eq!(durable.torn_tail, 1);
        assert_eq!(
            durable.records.len(),
            durable.trusted().len() + 1,
            "exactly the torn record is untrusted"
        );
        let outcome = recover(&durable);
        assert_eq!(outcome.truncated, 1);
        assert_eq!(outcome.winners, vec![a], "a's force predates the tear");
        assert!(
            outcome.losers.is_empty(),
            "b's only durable record is torn, so b has no trusted effects to undo"
        );
        assert!(outcome.undone.is_empty());
    }

    #[test]
    fn torn_commit_record_loses_the_unforced_transaction() {
        // force_on_commit=false leaves the commit record in the tail;
        // a torn flush then tears that very record, so the txn must be
        // treated as a loser for its durable updates.
        let mut log = LogManager::with_retention(LogConfig {
            buffer_bytes: 64,
            record_header_bytes: 24,
            force_on_commit: false,
        });
        let a = log.begin();
        log.log_update(a, p(1), 100); // wraps → durable
        log.commit(a); // commit record stays in the tail
        let durable = log.crash_torn();
        let outcome = recover(&durable);
        assert_eq!(outcome.truncated, 1);
        assert_eq!(outcome.winners, Vec::<TxnToken>::new());
        assert_eq!(outcome.losers, vec![a]);
        assert_eq!(outcome.undone, vec![(a, p(1))]);
    }

    #[test]
    fn abort_after_update_ordering_is_respected() {
        // Update → abort → (same txn id space) later winner: the abort
        // record must suppress undo even though updates precede it.
        let mut log = LogManager::with_retention(LogConfig {
            buffer_bytes: 32,
            record_header_bytes: 8,
            force_on_commit: true,
        });
        let a = log.begin();
        log.log_update(a, p(1), 40); // wraps → durable
        log.log_update(a, p(2), 40); // wraps → durable
        log.abort(a); // abort record appended after the updates
        let b = log.begin();
        log.log_update(b, p(3), 40);
        log.commit(b); // forces everything, abort record included
        let durable = log.crash();
        // The abort's LSN is after every one of a's updates.
        let abort_lsn = durable
            .records
            .iter()
            .find(|r| r.kind == RecordKind::Abort)
            .expect("abort record is durable")
            .lsn;
        for r in &durable.records {
            if let RecordKind::Update { .. } = r.kind {
                if r.txn == a {
                    assert!(r.lsn < abort_lsn, "updates precede the abort");
                }
            }
        }
        let outcome = recover(&durable);
        assert_eq!(outcome.winners, vec![b]);
        assert!(outcome.losers.is_empty(), "aborted txn is not a loser");
        assert!(outcome.undone.is_empty(), "abort already compensated");
        assert_eq!(outcome.redone, vec![(b, p(3))]);
    }

    #[test]
    fn loser_updates_on_winner_pages_are_undone_without_clobbering_redo() {
        // Winner a and loser b both touch page 5: recovery must redo
        // a's update and undo b's on the same page, with the page
        // appearing in dirty_pages exactly once.
        let mut log = LogManager::with_retention(LogConfig {
            buffer_bytes: 16,
            record_header_bytes: 8,
            force_on_commit: true,
        });
        let a = log.begin();
        let b = log.begin();
        log.log_update(a, p(5), 20); // shared page, winner
        log.log_update(b, p(5), 20); // shared page, loser
        log.log_update(b, p(9), 20); // loser-only page
        log.commit(a);
        let outcome = recover(&log.crash());
        assert_eq!(outcome.winners, vec![a]);
        assert_eq!(outcome.losers, vec![b]);
        assert_eq!(outcome.redone, vec![(a, p(5))]);
        assert_eq!(
            outcome.undone,
            vec![(b, p(9)), (b, p(5))],
            "undo in reverse LSN order covers the shared page"
        );
        assert_eq!(
            outcome.dirty_pages.iter().filter(|&&pg| pg == p(5)).count(),
            1
        );
    }

    #[test]
    fn lsns_are_monotone() {
        let mut log = LogManager::with_retention(LogConfig {
            buffer_bytes: 16,
            record_header_bytes: 8,
            force_on_commit: true,
        });
        for _ in 0..5 {
            let t = log.begin();
            log.log_update(t, p(1), 20);
            log.commit(t);
        }
        let durable = log.crash();
        for w in durable.records.windows(2) {
            assert!(w[0].lsn < w[1].lsn);
        }
    }
}
