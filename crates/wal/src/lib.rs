//! # semcluster-wal
//!
//! Transaction logging for the simulated engineering DBMS: object-sized
//! log records, a circular in-memory log buffer that flushes when full,
//! commit forcing, and per-transaction page-level before-image coalescing
//! (the mechanism behind the paper's Figure 5.5 — clustering related
//! objects onto one page reduces physical logging I/O).
//!
//! ```
//! use semcluster_wal::{LogConfig, LogManager};
//! use semcluster_storage::PageId;
//!
//! let mut log = LogManager::new(LogConfig::default());
//! let txn = log.begin();
//! let io_a = log.log_update(txn, PageId(3), 200); // first touch: image
//! let io_b = log.log_update(txn, PageId(3), 150); // same page: coalesced
//! assert_eq!((io_a, io_b), (1, 0));
//! let commit_io = log.commit(txn);
//! assert_eq!(commit_io, 1);
//! ```

#![warn(missing_docs)]

mod log;
mod recovery;

pub use crate::log::{LogConfig, LogManager, LogStats, TxnToken, UpdateLogIo};
pub use crate::recovery::{recover, DurableLog, LogRecord, RecordKind, RecoveryOutcome};
