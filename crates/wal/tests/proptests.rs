//! Property-based tests for the log manager.

use proptest::prelude::*;
use semcluster_storage::PageId;
use semcluster_wal::{LogConfig, LogManager};
use std::collections::HashSet;

proptest! {
    /// For any update stream inside one transaction: before-image I/Os
    /// equal the number of *distinct* pages touched, buffer flushes equal
    /// the byte arithmetic, and commit forces exactly once when anything
    /// is buffered.
    #[test]
    fn accounting_matches_model(
        buffer_kb in 1u32..64,
        updates in proptest::collection::vec((0u32..20, 1u32..2000), 1..100),
    ) {
        let cfg = LogConfig {
            buffer_bytes: buffer_kb * 1024,
            record_header_bytes: 24,
            force_on_commit: true,
        };
        let mut log = LogManager::new(cfg);
        let txn = log.begin();
        let mut distinct = HashSet::new();
        let mut total_bytes = 0u64;
        let mut ios = 0u32;
        for &(page, size) in &updates {
            distinct.insert(page);
            total_bytes += (size + 24) as u64;
            ios += log.log_update(txn, PageId(page), size);
        }
        let expected_flushes = total_bytes / cfg.buffer_bytes as u64;
        prop_assert_eq!(log.stats().buffer_flushes, expected_flushes);
        prop_assert_eq!(log.stats().before_image_ios, distinct.len() as u64);
        prop_assert_eq!(
            ios as u64,
            expected_flushes + distinct.len() as u64,
            "per-call I/Os must sum to the totals"
        );
        let commit_io = log.commit(txn);
        let leftover = total_bytes % cfg.buffer_bytes as u64;
        prop_assert_eq!(commit_io, u32::from(leftover > 0));
        prop_assert_eq!(log.buffered_bytes(), 0);
    }

    /// Concurrent transactions: each sees its own page set; interleaving
    /// never loses or double-counts before-images.
    #[test]
    fn interleaved_transactions_isolate_page_sets(
        script in proptest::collection::vec((0usize..3, 0u32..6), 1..120),
    ) {
        let mut log = LogManager::new(LogConfig {
            buffer_bytes: 1 << 20, // large: isolate the before-image logic
            record_header_bytes: 0,
            force_on_commit: false,
        });
        let mut txns = [log.begin(), log.begin(), log.begin()];
        let mut sets: [HashSet<u32>; 3] =
            [HashSet::new(), HashSet::new(), HashSet::new()];
        let mut expected_images = 0u64;
        for &(t, page) in &script {
            let ios = log.log_update(txns[t], PageId(page), 8);
            let first = sets[t].insert(page);
            prop_assert_eq!(ios, u32::from(first));
            if first {
                expected_images += 1;
            }
        }
        prop_assert_eq!(log.stats().before_image_ios, expected_images);
        for (t, txn) in txns.iter().enumerate() {
            prop_assert_eq!(log.commit(*txn), 0, "no force configured");
            let _ = t;
        }
        // Fresh transactions start with empty page sets.
        txns = [log.begin(), log.begin(), log.begin()];
        prop_assert_eq!(log.log_update(txns[0], PageId(0), 8), 1);
        for txn in txns {
            let _ = log.commit(txn);
        }
    }
}
