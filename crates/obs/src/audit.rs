//! Placement audit records: why the cluster manager put an object where
//! it did.
//!
//! Every create placement and update-time recluster decision can emit
//! one [`PlacementAudit`] carrying the candidate pages examined, each
//! candidate's affinity and whether it had room, the chosen page, and
//! the split verdict. A bounded [`AuditSink`] retains the last N records
//! (flight-recorder style, mirroring `RingBufferSink`) so audit memory
//! stays O(capacity) on arbitrarily long runs.
//!
//! Affinities are fixed-point **milli-units** (`affinity × 1000`,
//! rounded) so the JSON stays integer-only and byte-stable.

use crate::json::ObjWriter;
use semcluster_sim::SimTime;
use semcluster_storage::PageId;
use std::collections::VecDeque;

/// Convert an affinity/gain value to integer milli-units for export.
/// Negative values clamp to zero (audit scores are magnitudes).
pub fn milli(v: f64) -> u64 {
    if v <= 0.0 {
        0
    } else {
        (v * 1000.0).round() as u64
    }
}

/// Which placement decision produced an audit record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AuditKind {
    /// Initial placement of a newly created object.
    Create,
    /// Update-time reclustering of an existing object.
    Recluster,
}

impl AuditKind {
    /// The label used in JSON and table renderings.
    pub fn as_str(self) -> &'static str {
        match self {
            AuditKind::Create => "create",
            AuditKind::Recluster => "recluster",
        }
    }
}

/// Outcome of the split check attached to a placement decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SplitVerdict {
    /// No full preferred page, so a split was never on the table.
    NotConsidered,
    /// A full preferred page existed but the split policy declined.
    Declined,
    /// The preferred page was split and this new page allocated.
    Executed {
        /// The freshly allocated page.
        new_page: PageId,
    },
}

/// One candidate page the placement search examined.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CandidateAudit {
    /// The candidate page.
    pub page: PageId,
    /// Its affinity (create) or expected gain (recluster), milli-units.
    pub score_milli: u64,
    /// Whether the object fit on the page at decision time.
    pub fits: bool,
}

/// A complete record of one placement or recluster decision.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlacementAudit {
    /// Decision time (simulated).
    pub at: SimTime,
    /// Create placement or update-time recluster.
    pub kind: AuditKind,
    /// The object being placed or moved.
    pub object: u32,
    /// Candidate pages in examination order, with per-candidate scores.
    pub candidates: Vec<CandidateAudit>,
    /// The page the search selected, or `None` when no candidate won
    /// (create falls back to appending; recluster leaves it in place).
    pub chosen: Option<PageId>,
    /// The page the object actually ended up on.
    pub landed: PageId,
    /// Score of the winning candidate in milli-units (affinity for
    /// create, expected gain for recluster); 0 when none won.
    pub score_milli: u64,
    /// Full preferred page that could not take the object, if any.
    pub preferred_full: Option<PageId>,
    /// What the split check decided.
    pub split: SplitVerdict,
    /// Candidate-page reads the search charged to the transaction.
    pub search_ios: u32,
}

impl PlacementAudit {
    /// Render as one deterministic JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut cands = String::from("[");
        for (i, c) in self.candidates.iter().enumerate() {
            if i > 0 {
                cands.push(',');
            }
            let mut w = ObjWriter::begin(&mut cands);
            w.u64("page", c.page.0 as u64)
                .u64("score_milli", c.score_milli)
                .bool("fits", c.fits);
            w.end();
        }
        cands.push(']');
        let mut s = String::new();
        let mut w = ObjWriter::begin(&mut s);
        w.u64("t", self.at.as_micros())
            .str("kind", self.kind.as_str())
            .u64("object", self.object as u64)
            .raw("candidates", &cands);
        match self.chosen {
            Some(p) => w.u64("chosen", p.0 as u64),
            None => w.raw("chosen", "null"),
        };
        w.u64("landed", self.landed.0 as u64)
            .u64("score_milli", self.score_milli);
        match self.preferred_full {
            Some(p) => w.u64("preferred_full", p.0 as u64),
            None => w.raw("preferred_full", "null"),
        };
        match self.split {
            SplitVerdict::NotConsidered => w.str("split", "not_considered"),
            SplitVerdict::Declined => w.str("split", "declined"),
            SplitVerdict::Executed { new_page } => w
                .str("split", "executed")
                .u64("split_new_page", new_page.0 as u64),
        };
        w.u64("search_ios", self.search_ios as u64);
        w.end();
        s
    }
}

/// Bounded retention of the most recent placement audits.
#[derive(Debug, Clone)]
pub struct AuditSink {
    capacity: usize,
    records: VecDeque<PlacementAudit>,
    seen: u64,
}

impl AuditSink {
    /// Sink retaining at most `capacity` records.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "audit capacity must be positive");
        AuditSink {
            capacity,
            records: VecDeque::with_capacity(capacity),
            seen: 0,
        }
    }

    /// Record one decision, evicting the oldest record when full.
    pub fn push(&mut self, audit: PlacementAudit) {
        if self.records.len() == self.capacity {
            self.records.pop_front();
        }
        self.records.push_back(audit);
        self.seen += 1;
    }

    /// Retained records, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &PlacementAudit> {
        self.records.iter()
    }

    /// Retained record count (≤ capacity).
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Total records ever pushed (including evicted ones).
    pub fn total_seen(&self) -> u64 {
        self.seen
    }

    /// Consume the sink, yielding retained records oldest first.
    pub fn into_records(self) -> Vec<PlacementAudit> {
        self.records.into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn audit(t: u64) -> PlacementAudit {
        PlacementAudit {
            at: SimTime::from_micros(t),
            kind: AuditKind::Create,
            object: 42,
            candidates: vec![
                CandidateAudit {
                    page: PageId(3),
                    score_milli: 2500,
                    fits: true,
                },
                CandidateAudit {
                    page: PageId(9),
                    score_milli: 1000,
                    fits: false,
                },
            ],
            chosen: Some(PageId(3)),
            landed: PageId(3),
            score_milli: 2500,
            preferred_full: None,
            split: SplitVerdict::NotConsidered,
            search_ios: 1,
        }
    }

    #[test]
    fn milli_rounds_and_clamps() {
        assert_eq!(milli(2.5), 2500);
        assert_eq!(milli(0.0004), 0);
        assert_eq!(milli(0.0006), 1);
        assert_eq!(milli(-1.0), 0);
    }

    #[test]
    fn audit_json_shape() {
        let j = audit(100).to_json();
        assert_eq!(
            j,
            "{\"t\":100,\"kind\":\"create\",\"object\":42,\
             \"candidates\":[{\"page\":3,\"score_milli\":2500,\"fits\":true},\
             {\"page\":9,\"score_milli\":1000,\"fits\":false}],\
             \"chosen\":3,\"landed\":3,\"score_milli\":2500,\
             \"preferred_full\":null,\"split\":\"not_considered\",\
             \"search_ios\":1}"
        );
    }

    #[test]
    fn split_verdict_variants_render() {
        let mut a = audit(1);
        a.split = SplitVerdict::Executed {
            new_page: PageId(17),
        };
        assert!(a
            .to_json()
            .contains("\"split\":\"executed\",\"split_new_page\":17"));
        a.split = SplitVerdict::Declined;
        assert!(a.to_json().contains("\"split\":\"declined\""));
    }

    #[test]
    fn sink_bounds_retention() {
        let mut sink = AuditSink::with_capacity(2);
        for t in 0..5 {
            sink.push(audit(t));
        }
        assert_eq!(sink.len(), 2);
        assert_eq!(sink.total_seen(), 5);
        let ts: Vec<u64> = sink.records().map(|a| a.at.as_micros()).collect();
        assert_eq!(ts, vec![3, 4]);
        assert_eq!(sink.into_records().len(), 2);
    }
}
