//! Fixed-interval timeline sampling of engine health signals.
//!
//! End-of-run aggregates hide *when* clustering degrades or the buffer
//! warms up. The timeline sampler records a small set of signals at
//! fixed simulated-time boundaries (multiples of the interval): buffer
//! hit ratio, per-disk queue depth, log-buffer occupancy, abort rate and
//! the clustering-locality score (fraction of structural co-references
//! satisfied on the same page, over buffer-resident pages).
//!
//! Every point stores raw **mergeable sums** — hit/miss deltas, on-page
//! and total reference counts, queue microseconds — never ratios, so
//! [`Timeline::merge`] is commutative and associative exactly like
//! `MetricsSnapshot::merge`. Sample timestamps are interval multiples,
//! so points from different runs of a sweep line up and merge
//! order-independently regardless of job scheduling.

use crate::json::ObjWriter;
use std::collections::BTreeMap;

/// Mergeable signal sums for one sample boundary. All fields are sums
/// over the runs that contributed a sample at this timestamp; consumers
/// derive ratios (hit ratio, locality score, abort rate) at render time.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TimelinePoint {
    /// Number of runs that contributed a sample at this boundary.
    pub runs: u64,
    /// Buffer hits since the previous boundary (delta, summed over runs).
    pub hits: u64,
    /// Buffer misses since the previous boundary (delta, summed).
    pub misses: u64,
    /// Transactions committed since the previous boundary (delta, summed).
    pub commits: u64,
    /// Transactions aborted since the previous boundary (delta, summed).
    pub aborts: u64,
    /// Per-disk pending-work proxy at the boundary: how far the FCFS
    /// server's `free_at` lies beyond the sample time, in simulated µs
    /// (summed element-wise over runs).
    pub queue_us: Vec<u64>,
    /// Bytes buffered in the write-ahead log at the boundary (summed).
    pub log_buffered: u64,
    /// Structural co-references from buffer-resident objects satisfied
    /// on the same page (summed).
    pub loc_on_page: u64,
    /// Total structural co-references from buffer-resident objects
    /// (summed). Locality score = `loc_on_page / loc_refs`.
    pub loc_refs: u64,
}

impl TimelinePoint {
    fn absorb(&mut self, other: &TimelinePoint) {
        self.runs += other.runs;
        self.hits += other.hits;
        self.misses += other.misses;
        self.commits += other.commits;
        self.aborts += other.aborts;
        if self.queue_us.len() < other.queue_us.len() {
            self.queue_us.resize(other.queue_us.len(), 0);
        }
        for (i, q) in other.queue_us.iter().enumerate() {
            self.queue_us[i] += q;
        }
        self.log_buffered += other.log_buffered;
        self.loc_on_page += other.loc_on_page;
        self.loc_refs += other.loc_refs;
    }

    fn to_json(&self, t_us: u64) -> String {
        let mut s = String::new();
        let mut w = ObjWriter::begin(&mut s);
        w.u64("t_us", t_us)
            .u64("runs", self.runs)
            .u64("hits", self.hits)
            .u64("misses", self.misses)
            .u64("commits", self.commits)
            .u64("aborts", self.aborts);
        let mut queue = String::from("[");
        for (i, q) in self.queue_us.iter().enumerate() {
            if i > 0 {
                queue.push(',');
            }
            queue.push_str(&q.to_string());
        }
        queue.push(']');
        w.raw("queue_us", &queue)
            .u64("log_buffered", self.log_buffered)
            .u64("loc_on_page", self.loc_on_page)
            .u64("loc_refs", self.loc_refs);
        w.end();
        s
    }
}

/// An ordered series of [`TimelinePoint`]s keyed by their simulated-time
/// boundary. Merging is order-independent (point-wise sums keyed by
/// timestamp), so a sweep can merge per-run timelines in any order and
/// still render byte-identical JSON.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Timeline {
    interval_us: u64,
    points: BTreeMap<u64, TimelinePoint>,
}

impl Timeline {
    /// Empty timeline with the given sampling interval (simulated µs).
    pub fn new(interval_us: u64) -> Self {
        assert!(interval_us > 0, "timeline interval must be positive");
        Timeline {
            interval_us,
            points: BTreeMap::new(),
        }
    }

    /// The sampling interval in simulated microseconds.
    pub fn interval_us(&self) -> u64 {
        self.interval_us
    }

    /// Number of sample boundaries recorded.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Iterate points in timestamp order.
    pub fn points(&self) -> impl Iterator<Item = (u64, &TimelinePoint)> {
        self.points.iter().map(|(t, p)| (*t, p))
    }

    /// The point at an exact boundary timestamp, if sampled.
    pub fn point(&self, t_us: u64) -> Option<&TimelinePoint> {
        self.points.get(&t_us)
    }

    /// Insert or accumulate a point at `t_us`. Panics unless `t_us` is a
    /// positive multiple of the interval — boundaries must line up or
    /// merging across runs would silently misalign.
    pub fn record(&mut self, t_us: u64, point: TimelinePoint) {
        assert!(
            t_us > 0 && t_us.is_multiple_of(self.interval_us),
            "sample time must be a positive interval multiple"
        );
        self.points.entry(t_us).or_default().absorb(&point);
    }

    /// Merge another timeline into this one. Commutative and
    /// associative: points at the same boundary sum field-wise, other
    /// boundaries are inserted. Both timelines must share an interval.
    pub fn merge(&mut self, other: &Timeline) {
        assert_eq!(
            self.interval_us, other.interval_us,
            "cannot merge timelines with different intervals"
        );
        for (t, p) in &other.points {
            self.points.entry(*t).or_default().absorb(p);
        }
    }

    /// Render as one deterministic JSON object:
    /// `{"interval_us":N,"points":[{"t_us":...,...},...]}`.
    pub fn to_json(&self) -> String {
        let mut points = String::from("[");
        for (i, (t, p)) in self.points.iter().enumerate() {
            if i > 0 {
                points.push(',');
            }
            points.push_str(&p.to_json(*t));
        }
        points.push(']');
        let mut s = String::new();
        let mut w = ObjWriter::begin(&mut s);
        w.u64("interval_us", self.interval_us)
            .raw("points", &points);
        w.end();
        s
    }
}

/// One raw sample handed to [`TimelineSampler::record`]. The counter
/// fields are **cumulative** run totals at the sample time; the sampler
/// converts them to per-interval deltas itself.
#[derive(Debug, Clone, Default)]
pub struct TimelineSample {
    /// Cumulative buffer hits at the sample time.
    pub hits: u64,
    /// Cumulative buffer misses at the sample time.
    pub misses: u64,
    /// Cumulative transaction commits at the sample time.
    pub commits: u64,
    /// Cumulative transaction aborts at the sample time.
    pub aborts: u64,
    /// Per-disk pending work beyond the sample time, in simulated µs.
    pub queue_us: Vec<u64>,
    /// Bytes currently buffered in the write-ahead log.
    pub log_buffered: u64,
    /// On-page structural co-references over buffer-resident objects.
    pub loc_on_page: u64,
    /// Total structural co-references over buffer-resident objects.
    pub loc_refs: u64,
}

/// Drives sampling for a single run: tracks the next due boundary and
/// the previous cumulative counters so each recorded point carries
/// per-interval deltas. The engine polls [`TimelineSampler::due`] from
/// its event loop and records one point per crossed boundary.
#[derive(Debug, Clone)]
pub struct TimelineSampler {
    interval_us: u64,
    next_us: u64,
    last: (u64, u64, u64, u64),
    timeline: Timeline,
}

impl TimelineSampler {
    /// Sampler recording at multiples of `interval_us` simulated µs.
    pub fn new(interval_us: u64) -> Self {
        let timeline = Timeline::new(interval_us);
        TimelineSampler {
            interval_us,
            next_us: interval_us,
            last: (0, 0, 0, 0),
            timeline,
        }
    }

    /// Whether simulated time `now_us` has reached the next boundary.
    pub fn due(&self, now_us: u64) -> bool {
        now_us >= self.next_us
    }

    /// The next boundary that will be stamped, in simulated µs.
    pub fn next_due_us(&self) -> u64 {
        self.next_us
    }

    /// Record a sample at the current boundary and advance to the next.
    /// Cumulative counters are converted to deltas against the previous
    /// boundary (saturating, so a caller that resets counters mid-run
    /// cannot underflow).
    pub fn record(&mut self, sample: TimelineSample) {
        let (h, m, c, a) = self.last;
        let point = TimelinePoint {
            runs: 1,
            hits: sample.hits.saturating_sub(h),
            misses: sample.misses.saturating_sub(m),
            commits: sample.commits.saturating_sub(c),
            aborts: sample.aborts.saturating_sub(a),
            queue_us: sample.queue_us,
            log_buffered: sample.log_buffered,
            loc_on_page: sample.loc_on_page,
            loc_refs: sample.loc_refs,
        };
        self.last = (sample.hits, sample.misses, sample.commits, sample.aborts);
        self.timeline.record(self.next_us, point);
        self.next_us += self.interval_us;
    }

    /// Finish sampling and return the accumulated timeline.
    pub fn into_timeline(self) -> Timeline {
        self.timeline
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(hits: u64, commits: u64) -> TimelineSample {
        TimelineSample {
            hits,
            misses: hits / 2,
            commits,
            queue_us: vec![10, 0],
            log_buffered: 64,
            loc_on_page: 3,
            loc_refs: 4,
            ..TimelineSample::default()
        }
    }

    #[test]
    fn sampler_emits_deltas_at_boundaries() {
        let mut s = TimelineSampler::new(1000);
        assert!(!s.due(999));
        assert!(s.due(1000));
        s.record(sample(10, 2));
        s.record(sample(25, 7));
        let tl = s.into_timeline();
        assert_eq!(tl.len(), 2);
        assert_eq!(tl.point(1000).unwrap().hits, 10);
        assert_eq!(tl.point(2000).unwrap().hits, 15);
        assert_eq!(tl.point(2000).unwrap().commits, 5);
    }

    #[test]
    fn merge_is_order_independent() {
        let mk = |hits: u64| {
            let mut s = TimelineSampler::new(500);
            s.record(sample(hits, 1));
            s.record(sample(hits * 2, 3));
            s.into_timeline()
        };
        let (a, b, c) = (mk(4), mk(9), mk(16));
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut right = c.clone();
        right.merge(&a);
        right.merge(&b);
        assert_eq!(left, right);
        assert_eq!(left.to_json(), right.to_json());
        assert_eq!(left.point(500).unwrap().runs, 3);
    }

    #[test]
    fn merge_handles_uneven_lengths_and_disk_counts() {
        let mut a = Timeline::new(100);
        a.record(
            100,
            TimelinePoint {
                runs: 1,
                queue_us: vec![5],
                ..TimelinePoint::default()
            },
        );
        let mut b = Timeline::new(100);
        b.record(
            100,
            TimelinePoint {
                runs: 1,
                queue_us: vec![1, 2, 3],
                ..TimelinePoint::default()
            },
        );
        b.record(
            200,
            TimelinePoint {
                runs: 1,
                ..TimelinePoint::default()
            },
        );
        a.merge(&b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.point(100).unwrap().queue_us, vec![6, 2, 3]);
        assert_eq!(a.point(200).unwrap().runs, 1);
    }

    #[test]
    fn json_shape_is_stable() {
        let mut s = TimelineSampler::new(1000);
        s.record(sample(10, 2));
        let j = s.into_timeline().to_json();
        assert_eq!(
            j,
            "{\"interval_us\":1000,\"points\":[{\"t_us\":1000,\"runs\":1,\
             \"hits\":10,\"misses\":5,\"commits\":2,\"aborts\":0,\
             \"queue_us\":[10,0],\"log_buffered\":64,\"loc_on_page\":3,\
             \"loc_refs\":4}]}"
        );
    }

    #[test]
    #[should_panic(expected = "different intervals")]
    fn merge_rejects_mismatched_intervals() {
        let mut a = Timeline::new(100);
        a.merge(&Timeline::new(200));
    }
}
