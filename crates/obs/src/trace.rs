//! Typed trace events and sinks.
//!
//! Every event is stamped in **simulated time** (integer microseconds),
//! so a trace is a pure function of the configuration and seed: two
//! same-seed runs emit byte-identical JSONL. Sinks must not perturb the
//! simulation — they observe completed scheduling decisions and never
//! feed anything back.

use crate::json::ObjWriter;
use semcluster_sim::SimTime;
use semcluster_storage::PageId;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::io::Write;
use std::rc::Rc;

/// Why a physical page read was issued.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadCause {
    /// Demand fault on the transaction's critical path.
    Demand,
    /// Candidate-page read during a clustering placement search.
    ClusterSearch,
}

impl ReadCause {
    fn as_str(self) -> &'static str {
        match self {
            ReadCause::Demand => "demand",
            ReadCause::ClusterSearch => "cluster_search",
        }
    }
}

/// Why a physical page write was issued.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlushCause {
    /// Dirty victim written back at eviction.
    Evict,
    /// Freshly split page forced to disk.
    Split,
    /// Dirty victim displaced by an asynchronous prefetch.
    Prefetch,
}

impl FlushCause {
    fn as_str(self) -> &'static str {
        match self {
            FlushCause::Evict => "evict",
            FlushCause::Split => "split",
            FlushCause::Prefetch => "prefetch",
        }
    }
}

/// Which logging action forced a physical log I/O.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LogFlushKind {
    /// First-touch before-image of an updated page.
    BeforeImage,
    /// The circular log buffer wrapped (filled completely).
    Full,
    /// Commit forced the buffered tail.
    Commit,
}

impl LogFlushKind {
    fn as_str(self) -> &'static str {
        match self {
            LogFlushKind::BeforeImage => "before_image",
            LogFlushKind::Full => "full",
            LogFlushKind::Commit => "commit",
        }
    }
}

/// Which kind of physical I/O a fault event concerns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultOp {
    /// A data-page read.
    Read,
    /// A data-page write.
    Write,
    /// A physical log I/O.
    Log,
}

impl FaultOp {
    fn as_str(self) -> &'static str {
        match self {
            FaultOp::Read => "read",
            FaultOp::Write => "write",
            FaultOp::Log => "log",
        }
    }
}

/// One observable moment of the simulation. All `at` fields are
/// simulated time; `done` fields are the completion times the FCFS
/// servers computed for the corresponding physical I/O.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// A transaction left its think phase and acquired its locks.
    TxnBegin {
        /// Start of execution.
        at: SimTime,
        /// Submitting user (workstation).
        user: u32,
        /// Global transaction sequence number.
        txn: u64,
        /// Whether every operation is a read.
        is_read: bool,
        /// Number of operations in the transaction.
        ops: u32,
    },
    /// A transaction committed; its response time is fully attributed.
    TxnCommit {
        /// Commit completion time.
        at: SimTime,
        /// Submitting user.
        user: u32,
        /// Global transaction sequence number.
        txn: u64,
        /// End-to-end response in microseconds (includes lock wait).
        response_us: u64,
        /// CPU component (service + queueing beyond the I/O chain).
        cpu_us: u64,
        /// Demand page-read component.
        data_read_us: u64,
        /// Dirty-eviction write-back component.
        dirty_flush_us: u64,
        /// Clustering candidate-search read component.
        cluster_search_us: u64,
        /// Log-device component (before-images, wraps, commit force).
        log_us: u64,
        /// Time parked waiting for locks.
        lock_wait_us: u64,
    },
    /// A logical page access missed and expanded into physical I/Os.
    IoExpand {
        /// When the access was issued.
        at: SimTime,
        /// The faulted page.
        page: PageId,
        /// Physical I/Os the miss expanded into (read + optional
        /// write-back).
        ios: u32,
    },
    /// Physical page read.
    PageRead {
        /// Issue time.
        at: SimTime,
        /// Page read.
        page: PageId,
        /// Disk that served it.
        disk: u32,
        /// Why it was read.
        cause: ReadCause,
        /// Completion time (after disk queueing + service).
        done: SimTime,
    },
    /// Physical page write.
    PageFlush {
        /// Issue time.
        at: SimTime,
        /// Page written.
        page: PageId,
        /// Disk that served it.
        disk: u32,
        /// Why it was written.
        cause: FlushCause,
        /// Completion time.
        done: SimTime,
    },
    /// A prefetch batch was issued for one object's related group.
    PrefetchIssue {
        /// Issue time.
        at: SimTime,
        /// Pages fetched asynchronously.
        fetched: u32,
        /// Dirty victims written back to make room.
        write_backs: u32,
    },
    /// One asynchronous prefetch I/O (read or displaced write-back).
    PrefetchIo {
        /// Issue time.
        at: SimTime,
        /// Page involved.
        page: PageId,
        /// Disk that served it.
        disk: u32,
        /// True for a displaced dirty write-back, false for the fetch.
        write_back: bool,
        /// Completion time.
        done: SimTime,
    },
    /// The cluster manager moved an object at update time.
    ReclusterMove {
        /// Decision time.
        at: SimTime,
        /// Object moved.
        object: u32,
        /// Source page.
        from: PageId,
        /// Destination page.
        to: PageId,
    },
    /// A full preferred page was split.
    Split {
        /// Split time.
        at: SimTime,
        /// Overflowing page.
        from: PageId,
        /// Newly allocated page.
        new: PageId,
    },
    /// A transaction could not acquire its pre-declared locks and parked.
    LockWait {
        /// Park time.
        at: SimTime,
        /// Parked user.
        user: u32,
    },
    /// A parked transaction finally acquired its locks.
    LockGrant {
        /// Grant time.
        at: SimTime,
        /// Woken user.
        user: u32,
        /// How long it waited, in microseconds.
        wait_us: u64,
    },
    /// A physical log I/O.
    LogFlush {
        /// Issue time.
        at: SimTime,
        /// What forced it.
        kind: LogFlushKind,
        /// Completion time on the log disk.
        done: SimTime,
    },
    /// An injected transient I/O fault (the attempt failed).
    IoFault {
        /// Time the failed attempt completed.
        at: SimTime,
        /// Read or write.
        op: FaultOp,
        /// Page involved.
        page: PageId,
        /// Disk that served the attempt.
        disk: u32,
        /// Attempt number (1-based).
        attempt: u32,
    },
    /// A retry after an injected fault, with its deterministic backoff.
    IoRetry {
        /// Time the retry was scheduled (post-backoff).
        at: SimTime,
        /// Read or write.
        op: FaultOp,
        /// Page involved.
        page: PageId,
        /// Disk being retried.
        disk: u32,
        /// Attempt number about to run (2-based).
        attempt: u32,
        /// Backoff charged before this attempt, in simulated µs.
        backoff_us: u64,
    },
    /// An injected log-device stall delayed a physical log I/O.
    LogStall {
        /// Time the stall began.
        at: SimTime,
        /// Stall length in simulated µs.
        stall_us: u64,
    },
    /// A transaction aborted after exhausting its I/O retry budget.
    TxnAbort {
        /// Abort time.
        at: SimTime,
        /// Owning user (workstation).
        user: u32,
        /// Global transaction sequence number.
        txn: u64,
        /// The I/O kind that exhausted its retries.
        op: FaultOp,
        /// Page whose I/O failed.
        page: PageId,
        /// Disk that failed.
        disk: u32,
    },
    /// The engine crossed a graceful-degradation boundary.
    Degrade {
        /// Transition time.
        at: SimTime,
        /// True entering degraded (append-placement) mode, false
        /// recovering to normal clustering.
        entered: bool,
    },
    /// End-of-run profiler counters for one phase stack (emitted once
    /// per stack when `--profile` is on and a sink is attached; renders
    /// as a Chrome counter event). Wall clock is deliberately absent —
    /// trace output stays deterministic.
    ProfilePhase {
        /// End-of-run simulated time.
        at: SimTime,
        /// `;`-joined phase stack (e.g. `run;wal_append;wal_flush`).
        path: String,
        /// Times the stack was entered.
        calls: u64,
        /// Simulated microseconds of self cost.
        sim_us: u64,
        /// Heap bytes requested while the stack was innermost.
        alloc_bytes: u64,
        /// Heap allocations while the stack was innermost.
        allocs: u64,
    },
}

impl TraceEvent {
    /// Event timestamp (simulated).
    pub fn at(&self) -> SimTime {
        match *self {
            TraceEvent::TxnBegin { at, .. }
            | TraceEvent::TxnCommit { at, .. }
            | TraceEvent::IoExpand { at, .. }
            | TraceEvent::PageRead { at, .. }
            | TraceEvent::PageFlush { at, .. }
            | TraceEvent::PrefetchIssue { at, .. }
            | TraceEvent::PrefetchIo { at, .. }
            | TraceEvent::ReclusterMove { at, .. }
            | TraceEvent::Split { at, .. }
            | TraceEvent::LockWait { at, .. }
            | TraceEvent::LockGrant { at, .. }
            | TraceEvent::LogFlush { at, .. }
            | TraceEvent::IoFault { at, .. }
            | TraceEvent::IoRetry { at, .. }
            | TraceEvent::LogStall { at, .. }
            | TraceEvent::TxnAbort { at, .. }
            | TraceEvent::Degrade { at, .. }
            | TraceEvent::ProfilePhase { at, .. } => at,
        }
    }

    /// Machine name of the event type (the JSONL `ev` field).
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::TxnBegin { .. } => "txn_begin",
            TraceEvent::TxnCommit { .. } => "txn_commit",
            TraceEvent::IoExpand { .. } => "io_expand",
            TraceEvent::PageRead { .. } => "page_read",
            TraceEvent::PageFlush { .. } => "page_flush",
            TraceEvent::PrefetchIssue { .. } => "prefetch_issue",
            TraceEvent::PrefetchIo { .. } => "prefetch_io",
            TraceEvent::ReclusterMove { .. } => "recluster_move",
            TraceEvent::Split { .. } => "split",
            TraceEvent::LockWait { .. } => "lock_wait",
            TraceEvent::LockGrant { .. } => "lock_grant",
            TraceEvent::LogFlush { .. } => "log_flush",
            TraceEvent::IoFault { .. } => "io_fault",
            TraceEvent::IoRetry { .. } => "io_retry",
            TraceEvent::LogStall { .. } => "log_stall",
            TraceEvent::TxnAbort { .. } => "txn_abort",
            TraceEvent::Degrade { .. } => "degrade",
            TraceEvent::ProfilePhase { .. } => "profile_phase",
        }
    }

    /// Render as one deterministic JSON object (no trailing newline).
    /// Field order is fixed: `t`, `ev`, then event-specific fields.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        let mut w = ObjWriter::begin(&mut s);
        w.u64("t", self.at().as_micros()).str("ev", self.kind());
        match *self {
            TraceEvent::TxnBegin {
                user,
                txn,
                is_read,
                ops,
                ..
            } => {
                w.u64("user", user as u64)
                    .u64("txn", txn)
                    .bool("read", is_read)
                    .u64("ops", ops as u64);
            }
            TraceEvent::TxnCommit {
                user,
                txn,
                response_us,
                cpu_us,
                data_read_us,
                dirty_flush_us,
                cluster_search_us,
                log_us,
                lock_wait_us,
                ..
            } => {
                w.u64("user", user as u64)
                    .u64("txn", txn)
                    .u64("response_us", response_us)
                    .u64("cpu_us", cpu_us)
                    .u64("data_read_us", data_read_us)
                    .u64("dirty_flush_us", dirty_flush_us)
                    .u64("cluster_search_us", cluster_search_us)
                    .u64("log_us", log_us)
                    .u64("lock_wait_us", lock_wait_us);
            }
            TraceEvent::IoExpand { page, ios, .. } => {
                w.u64("page", page.0 as u64).u64("ios", ios as u64);
            }
            TraceEvent::PageRead {
                page,
                disk,
                cause,
                done,
                ..
            } => {
                w.u64("page", page.0 as u64)
                    .u64("disk", disk as u64)
                    .str("cause", cause.as_str())
                    .u64("done", done.as_micros());
            }
            TraceEvent::PageFlush {
                page,
                disk,
                cause,
                done,
                ..
            } => {
                w.u64("page", page.0 as u64)
                    .u64("disk", disk as u64)
                    .str("cause", cause.as_str())
                    .u64("done", done.as_micros());
            }
            TraceEvent::PrefetchIssue {
                fetched,
                write_backs,
                ..
            } => {
                w.u64("fetched", fetched as u64)
                    .u64("write_backs", write_backs as u64);
            }
            TraceEvent::PrefetchIo {
                page,
                disk,
                write_back,
                done,
                ..
            } => {
                w.u64("page", page.0 as u64)
                    .u64("disk", disk as u64)
                    .bool("write_back", write_back)
                    .u64("done", done.as_micros());
            }
            TraceEvent::ReclusterMove {
                object, from, to, ..
            } => {
                w.u64("object", object as u64)
                    .u64("from", from.0 as u64)
                    .u64("to", to.0 as u64);
            }
            TraceEvent::Split { from, new, .. } => {
                w.u64("from", from.0 as u64).u64("new", new.0 as u64);
            }
            TraceEvent::LockWait { user, .. } => {
                w.u64("user", user as u64);
            }
            TraceEvent::LockGrant { user, wait_us, .. } => {
                w.u64("user", user as u64).u64("wait_us", wait_us);
            }
            TraceEvent::LogFlush { kind, done, .. } => {
                w.str("kind", kind.as_str()).u64("done", done.as_micros());
            }
            TraceEvent::IoFault {
                op,
                page,
                disk,
                attempt,
                ..
            } => {
                w.str("op", op.as_str())
                    .u64("page", page.0 as u64)
                    .u64("disk", disk as u64)
                    .u64("attempt", attempt as u64);
            }
            TraceEvent::IoRetry {
                op,
                page,
                disk,
                attempt,
                backoff_us,
                ..
            } => {
                w.str("op", op.as_str())
                    .u64("page", page.0 as u64)
                    .u64("disk", disk as u64)
                    .u64("attempt", attempt as u64)
                    .u64("backoff_us", backoff_us);
            }
            TraceEvent::LogStall { stall_us, .. } => {
                w.u64("stall_us", stall_us);
            }
            TraceEvent::TxnAbort {
                user,
                txn,
                op,
                page,
                disk,
                ..
            } => {
                w.u64("user", user as u64)
                    .u64("txn", txn)
                    .str("op", op.as_str())
                    .u64("page", page.0 as u64)
                    .u64("disk", disk as u64);
            }
            TraceEvent::Degrade { entered, .. } => {
                w.bool("entered", entered);
            }
            TraceEvent::ProfilePhase {
                ref path,
                calls,
                sim_us,
                alloc_bytes,
                allocs,
                ..
            } => {
                w.str("path", path)
                    .u64("calls", calls)
                    .u64("sim_us", sim_us)
                    .u64("alloc_bytes", alloc_bytes)
                    .u64("allocs", allocs);
            }
        }
        w.end();
        s
    }
}

/// Receiver of trace events. Implementations must be observation-only:
/// emitting an event must not influence the simulation in any way.
pub trait TraceSink {
    /// Whether events should be constructed and delivered at all. The
    /// engine skips event construction when this is false, so the
    /// default sink costs nothing on the hot path.
    fn enabled(&self) -> bool {
        true
    }

    /// Deliver one event.
    fn emit(&mut self, event: &TraceEvent);

    /// Flush any buffered output (end of run).
    fn flush(&mut self) {}
}

/// The default sink: drops everything, reports itself disabled.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopSink;

impl TraceSink for NoopSink {
    fn enabled(&self) -> bool {
        false
    }

    fn emit(&mut self, _event: &TraceEvent) {}
}

/// Streams events as JSON Lines to any writer.
pub struct JsonlSink<W: Write> {
    writer: W,
    events: u64,
}

impl<W: Write> JsonlSink<W> {
    /// Wrap `writer`; one JSON object per line.
    pub fn new(writer: W) -> Self {
        JsonlSink { writer, events: 0 }
    }

    /// Events written so far.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Unwrap the inner writer (flushing first).
    pub fn into_inner(mut self) -> W {
        let _ = self.writer.flush();
        self.writer
    }
}

impl<W: Write> TraceSink for JsonlSink<W> {
    fn emit(&mut self, event: &TraceEvent) {
        let mut line = event.to_json();
        line.push('\n');
        self.writer
            .write_all(line.as_bytes())
            .expect("trace sink write failed");
        self.events += 1;
    }

    fn flush(&mut self) {
        self.writer.flush().expect("trace sink flush failed");
    }
}

/// Keeps the last `capacity` events in memory — a flight recorder for
/// tests and post-mortem inspection without unbounded growth.
#[derive(Debug, Clone)]
pub struct RingBufferSink {
    capacity: usize,
    events: VecDeque<TraceEvent>,
    seen: u64,
}

impl RingBufferSink {
    /// Ring holding at most `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "ring capacity must be positive");
        RingBufferSink {
            capacity,
            events: VecDeque::with_capacity(capacity),
            seen: 0,
        }
    }

    /// Retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Retained event count (≤ capacity).
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Total events ever emitted (including evicted ones).
    pub fn total_seen(&self) -> u64 {
        self.seen
    }
}

impl TraceSink for RingBufferSink {
    fn emit(&mut self, event: &TraceEvent) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
        }
        self.events.push_back(event.clone());
        self.seen += 1;
    }
}

/// Shared handle to a sink, so a caller can hand a sink to the engine
/// and still inspect it after the run.
pub type SharedSink<T> = Rc<RefCell<T>>;

/// Wrap a sink for shared ownership (see [`SharedSink`]).
pub fn shared<T: TraceSink>(sink: T) -> SharedSink<T> {
    Rc::new(RefCell::new(sink))
}

impl<T: TraceSink> TraceSink for SharedSink<T> {
    fn enabled(&self) -> bool {
        self.borrow().enabled()
    }

    fn emit(&mut self, event: &TraceEvent) {
        self.borrow_mut().emit(event);
    }

    fn flush(&mut self) {
        self.borrow_mut().flush();
    }
}

/// A growable in-memory byte buffer with shared ownership, usable as the
/// writer of a [`JsonlSink`] while the caller keeps a handle to read the
/// bytes back after the run (byte-identity tests, CLI capture).
#[derive(Debug, Clone, Default)]
pub struct SharedBuf(Rc<RefCell<Vec<u8>>>);

impl SharedBuf {
    /// New empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Copy of the bytes written so far.
    pub fn bytes(&self) -> Vec<u8> {
        self.0.borrow().clone()
    }
}

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.borrow_mut().extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// The cross-thread counterpart of [`SharedBuf`]: a growable in-memory
/// byte buffer with shared ownership that is `Send + Sync`, so a sink
/// created on one thread (e.g. by a sweep executor's sink factory) can
/// be read back from another after the run completes.
#[derive(Debug, Clone, Default)]
pub struct SyncBuf(std::sync::Arc<std::sync::Mutex<Vec<u8>>>);

impl SyncBuf {
    /// New empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Copy of the bytes written so far.
    pub fn bytes(&self) -> Vec<u8> {
        self.0.lock().expect("buffer lock").clone()
    }
}

impl Write for SyncBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().expect("buffer lock").extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t: u64) -> TraceEvent {
        TraceEvent::PageRead {
            at: SimTime::from_micros(t),
            page: PageId(7),
            disk: 2,
            cause: ReadCause::Demand,
            done: SimTime::from_micros(t + 30),
        }
    }

    #[test]
    fn event_json_shape() {
        let j = ev(100).to_json();
        assert_eq!(
            j,
            r#"{"t":100,"ev":"page_read","page":7,"disk":2,"cause":"demand","done":130}"#
        );
    }

    #[test]
    fn jsonl_sink_writes_lines() {
        let buf = SharedBuf::new();
        let mut sink = JsonlSink::new(buf.clone());
        sink.emit(&ev(1));
        sink.emit(&ev(2));
        sink.flush();
        let text = String::from_utf8(buf.bytes()).unwrap();
        assert_eq!(text.lines().count(), 2);
        assert!(text.ends_with('\n'));
        assert_eq!(sink.events(), 2);
    }

    #[test]
    fn ring_keeps_last_n() {
        let mut ring = RingBufferSink::with_capacity(3);
        for t in 0..10 {
            ring.emit(&ev(t));
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.total_seen(), 10);
        let ts: Vec<u64> = ring.events().map(|e| e.at().as_micros()).collect();
        assert_eq!(ts, vec![7, 8, 9]);
    }

    #[test]
    fn noop_reports_disabled() {
        assert!(!NoopSink.enabled());
        assert!(RingBufferSink::with_capacity(1).enabled());
    }

    #[test]
    fn shared_sink_observable_after_handoff() {
        let ring = shared(RingBufferSink::with_capacity(8));
        let mut handle: Box<dyn TraceSink> = Box::new(ring.clone());
        handle.emit(&ev(5));
        assert_eq!(ring.borrow().len(), 1);
    }

    #[test]
    fn sync_buf_readable_across_threads() {
        let buf = SyncBuf::new();
        let writer = buf.clone();
        std::thread::spawn(move || {
            let mut sink = JsonlSink::new(writer);
            sink.emit(&ev(3));
            sink.flush();
        })
        .join()
        .unwrap();
        let text = String::from_utf8(buf.bytes()).unwrap();
        assert_eq!(text.lines().count(), 1);
        assert!(text.contains("\"ev\":"));
    }
}
