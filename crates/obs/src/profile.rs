//! Deterministic hierarchical phase profiling with allocation accounting.
//!
//! The engine's hot paths — placement scoring, buffer lookups, WAL
//! appends and flushes, prefetch, lock acquisition, event-queue pops and
//! the timeline's `page_locality` fold — are bracketed with
//! [`PhaseProfiler::enter`] / [`PhaseProfiler::exit`] pairs. Each
//! distinct *stack* of phases (e.g. `run;placement_score;buffer_lookup`)
//! accumulates four self-cost counters:
//!
//! * **calls** — times the phase was entered on this stack;
//! * **sim_us** — simulated microseconds the caller attributes to the
//!   phase (I/O waits, log-flush chains); deterministic;
//! * **alloc_bytes / allocs** — heap bytes and allocation count requested
//!   while the phase was the innermost open phase, measured by
//!   [`CountingAlloc`]; deterministic for a deterministic run;
//! * **wall_ns** — host wall-clock nanoseconds, the only
//!   non-deterministic column.
//!
//! ## Determinism contract (DESIGN.md §13)
//!
//! [`ProfileReport`] merges are commutative and associative sums keyed by
//! stack path, so a sweep's merged profile is byte-identical at any
//! `--jobs N`. [`ProfileReport::to_json`] **excludes** `wall_ns`; wall
//! clock only leaves through [`ProfileReport::render_table`] (stderr
//! material) and the [`ProfileReport::folded`] sidecar when the wall
//! metric is selected. Because allocation self-costs are exact and
//! deterministic, a golden can *pin* them — the profile suite asserts the
//! `page_locality` fold allocates exactly zero bytes.
//!
//! Costs are **self** (exclusive): entering a nested phase closes the
//! parent's accounting window and reopens it on exit, so a stack's value
//! never double-counts its children — exactly the convention folded
//! flamegraph stacks expect.

use crate::json::{push_json_str, ObjWriter};
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::collections::BTreeMap;
use std::time::Instant;

// ------------------------------------------------------------ accounting

thread_local! {
    static ALLOC_BYTES: Cell<u64> = const { Cell::new(0) };
    static ALLOC_COUNT: Cell<u64> = const { Cell::new(0) };
}

/// Counting wrapper around the system allocator.
///
/// Register it in a *binary* (the CLI, the benches, the profile test
/// harness) with
///
/// ```ignore
/// #[global_allocator]
/// static ALLOC: semcluster_obs::CountingAlloc = semcluster_obs::CountingAlloc;
/// ```
///
/// and every heap request on the thread is tallied into monotonic
/// thread-local counters ([`allocation_counts`]). The counters are
/// per-thread, so a run profiled on one worker thread observes exactly
/// its own allocations. In binaries that do not register the wrapper the
/// counters simply stay zero and profiles report zero allocation —
/// never wrong data, just absent data.
///
/// Only the requested size is counted (`alloc`, `alloc_zeroed`, and the
/// new size of `realloc`); frees are not tracked — the profiler measures
/// allocation *pressure*, not live heap.
pub struct CountingAlloc;

#[inline]
fn note_alloc(bytes: usize) {
    // `try_with` so a stray allocation during TLS teardown cannot panic
    // inside the allocator.
    let _ = ALLOC_BYTES.try_with(|c| c.set(c.get() + bytes as u64));
    let _ = ALLOC_COUNT.try_with(|c| c.set(c.get() + 1));
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        note_alloc(layout.size());
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        note_alloc(layout.size());
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        note_alloc(new_size);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

/// This thread's monotonic `(bytes_requested, allocation_count)` tally.
/// Zero forever unless the binary registered [`CountingAlloc`].
pub fn allocation_counts() -> (u64, u64) {
    let bytes = ALLOC_BYTES.try_with(Cell::get).unwrap_or(0);
    let count = ALLOC_COUNT.try_with(Cell::get).unwrap_or(0);
    (bytes, count)
}

// -------------------------------------------------------------- phases

/// The engine hot paths the profiler distinguishes. A fixed enum (not
/// free-form strings) keeps `enter` allocation-free on the steady state
/// and the golden's key set closed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Root scope: the whole drive loop plus anything not bracketed more
    /// precisely.
    Run,
    /// Event-queue pop in the drive loop.
    EventPop,
    /// Conservative hierarchical lock acquisition.
    LockAcquire,
    /// Placement / recluster candidate scoring (plus the candidate-page
    /// reads it charges, which nest as `buffer_lookup` below it).
    PlacementScore,
    /// Buffer-pool access: hit bookkeeping or the full miss path
    /// (eviction write-back + demand read).
    BufferLookup,
    /// Asynchronous prefetch group computation and issue.
    Prefetch,
    /// WAL logical append (`charge_log`); physical flushes nest below.
    WalAppend,
    /// One physical log-device I/O.
    WalFlush,
    /// Timeline sampling (queue depths, locality fold).
    TimelineSample,
    /// The `page_locality` fold over the resident set — pinned
    /// allocation-free by the profile golden.
    PageLocality,
}

impl Phase {
    /// Stable snake_case name used in stack paths and goldens.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Run => "run",
            Phase::EventPop => "event_pop",
            Phase::LockAcquire => "lock_acquire",
            Phase::PlacementScore => "placement_score",
            Phase::BufferLookup => "buffer_lookup",
            Phase::Prefetch => "prefetch",
            Phase::WalAppend => "wal_append",
            Phase::WalFlush => "wal_flush",
            Phase::TimelineSample => "timeline_sample",
            Phase::PageLocality => "page_locality",
        }
    }
}

/// Proof of an open phase; must be passed back to [`PhaseProfiler::exit`].
#[must_use = "an unclosed phase corrupts the profile tree"]
#[derive(Debug)]
pub struct PhaseToken {
    node: usize,
}

struct Node {
    phase: Phase,
    children: Vec<usize>,
    stats: PhaseStats,
}

struct Frame {
    node: usize,
    wall_mark: Instant,
    bytes_mark: u64,
    allocs_mark: u64,
}

/// Hierarchical self-cost profiler for one engine run.
///
/// Single-threaded by construction (a run owns its engine and its
/// profiler on one worker thread). `enter`/`exit` are explicit rather
/// than RAII guards because the instrumented call sites hold `&mut`
/// engine borrows a guard would alias.
pub struct PhaseProfiler {
    nodes: Vec<Node>,
    stack: Vec<Frame>,
}

impl Default for PhaseProfiler {
    fn default() -> Self {
        Self::new()
    }
}

impl PhaseProfiler {
    /// A profiler with the root `run` phase open.
    pub fn new() -> Self {
        let mut nodes = Vec::with_capacity(32);
        nodes.push(Node {
            phase: Phase::Run,
            children: Vec::new(),
            stats: PhaseStats {
                calls: 1,
                ..PhaseStats::default()
            },
        });
        // Deep enough for any real nesting; pre-reserved so frame pushes
        // never allocate inside a measured window.
        let mut stack = Vec::with_capacity(16);
        let (bytes, allocs) = allocation_counts();
        stack.push(Frame {
            node: 0,
            wall_mark: Instant::now(),
            bytes_mark: bytes,
            allocs_mark: allocs,
        });
        PhaseProfiler { nodes, stack }
    }

    /// Close the current accounting window, attributing it to the frame's
    /// node, and return a fresh wall mark for the next window.
    fn flush_top(&mut self) -> Instant {
        let now = Instant::now();
        let (bytes, allocs) = allocation_counts();
        let top = self.stack.last_mut().expect("root frame always present");
        let stats = &mut self.nodes[top.node].stats;
        stats.wall_ns += now.duration_since(top.wall_mark).as_nanos() as u64;
        stats.alloc_bytes += bytes - top.bytes_mark;
        stats.allocs += allocs - top.allocs_mark;
        top.wall_mark = now;
        top.bytes_mark = bytes;
        top.allocs_mark = allocs;
        now
    }

    /// Open `phase` nested under the current phase.
    pub fn enter(&mut self, phase: Phase) -> PhaseToken {
        self.flush_top();
        let parent = self.stack.last().expect("root frame always present").node;
        // Linear scan: a node has at most a handful of distinct children.
        let node = match self.nodes[parent]
            .children
            .iter()
            .find(|&&c| self.nodes[c].phase == phase)
        {
            Some(&c) => c,
            None => {
                let id = self.nodes.len();
                self.nodes.push(Node {
                    phase,
                    children: Vec::new(),
                    stats: PhaseStats::default(),
                });
                self.nodes[parent].children.push(id);
                id
            }
        };
        self.nodes[node].stats.calls += 1;
        // Marks are read *after* any node bookkeeping above, so the
        // profiler's own allocations are attributed to no phase at all
        // rather than polluting the one being opened.
        let (bytes, allocs) = allocation_counts();
        self.stack.push(Frame {
            node,
            wall_mark: Instant::now(),
            bytes_mark: bytes,
            allocs_mark: allocs,
        });
        PhaseToken { node }
    }

    /// Close the phase `token` opened, attributing `sim_us` simulated
    /// microseconds of self cost to it (alongside the measured wall and
    /// allocation windows).
    pub fn exit(&mut self, token: PhaseToken, sim_us: u64) {
        debug_assert_eq!(
            self.stack.last().map(|f| f.node),
            Some(token.node),
            "phase exit out of order"
        );
        self.flush_top();
        self.nodes[token.node].stats.sim_us += sim_us;
        self.stack.pop();
        // Reopen the parent's window from now.
        let now = Instant::now();
        let (bytes, allocs) = allocation_counts();
        let top = self.stack.last_mut().expect("root frame always present");
        top.wall_mark = now;
        top.bytes_mark = bytes;
        top.allocs_mark = allocs;
    }

    /// Attribute `sim_us` to the root `run` phase (end-of-run simulated
    /// span).
    pub fn add_root_sim_us(&mut self, sim_us: u64) {
        self.nodes[0].stats.sim_us += sim_us;
    }

    /// Snapshot the accumulated tree as a mergeable [`ProfileReport`].
    /// Flushes the open window first, so calling at end of run loses
    /// nothing.
    pub fn report(&mut self) -> ProfileReport {
        debug_assert_eq!(self.stack.len(), 1, "phases still open at report time");
        self.flush_top();
        let mut phases = BTreeMap::new();
        let mut pending: Vec<(usize, String)> = vec![(0, Phase::Run.name().to_string())];
        while let Some((id, path)) = pending.pop() {
            for &child in &self.nodes[id].children {
                let mut p = path.clone();
                p.push(';');
                p.push_str(self.nodes[child].phase.name());
                pending.push((child, p));
            }
            phases.insert(path, self.nodes[id].stats);
        }
        ProfileReport { phases }
    }
}

// -------------------------------------------------------------- report

/// Self-cost counters for one phase stack.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseStats {
    /// Times the stack was entered.
    pub calls: u64,
    /// Simulated microseconds attributed by the instrumented call sites.
    pub sim_us: u64,
    /// Host wall-clock nanoseconds (non-deterministic; excluded from
    /// [`ProfileReport::to_json`]).
    pub wall_ns: u64,
    /// Heap bytes requested while the stack was innermost.
    pub alloc_bytes: u64,
    /// Heap allocations requested while the stack was innermost.
    pub allocs: u64,
}

impl PhaseStats {
    fn add(&mut self, other: &PhaseStats) {
        self.calls += other.calls;
        self.sim_us += other.sim_us;
        self.wall_ns += other.wall_ns;
        self.alloc_bytes += other.alloc_bytes;
        self.allocs += other.allocs;
    }
}

/// The metric a folded-stack export carries per line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FoldedMetric {
    /// Host wall-clock nanoseconds (the classic flamegraph input;
    /// non-deterministic, sidecar only).
    WallNs,
    /// Simulated microseconds.
    SimUs,
    /// Allocated bytes.
    AllocBytes,
    /// Allocation count.
    Allocs,
    /// Call count.
    Calls,
}

impl FoldedMetric {
    /// Parse a CLI metric name.
    pub fn parse(s: &str) -> Option<FoldedMetric> {
        Some(match s {
            "wall_ns" => FoldedMetric::WallNs,
            "sim_us" => FoldedMetric::SimUs,
            "alloc_bytes" => FoldedMetric::AllocBytes,
            "allocs" => FoldedMetric::Allocs,
            "calls" => FoldedMetric::Calls,
            _ => return None,
        })
    }

    fn pick(self, s: &PhaseStats) -> u64 {
        match self {
            FoldedMetric::WallNs => s.wall_ns,
            FoldedMetric::SimUs => s.sim_us,
            FoldedMetric::AllocBytes => s.alloc_bytes,
            FoldedMetric::Allocs => s.allocs,
            FoldedMetric::Calls => s.calls,
        }
    }
}

/// Merged per-stack self costs of one run (or, after [`merge`], of many).
///
/// Keys are `;`-joined phase stacks rooted at `run`
/// (`run;wal_append;wal_flush`). Values are *self* costs — summing a
/// subtree reconstructs inclusive cost, which is exactly what flamegraph
/// tooling does with [`folded`] output.
///
/// [`merge`]: ProfileReport::merge
/// [`folded`]: ProfileReport::folded
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProfileReport {
    phases: BTreeMap<String, PhaseStats>,
}

impl ProfileReport {
    /// Merge another report in: per-stack sums, commutative and
    /// associative, so any merge order (and any `--jobs N` partition)
    /// yields the same report.
    pub fn merge(&mut self, other: &ProfileReport) {
        for (path, stats) in &other.phases {
            self.phases.entry(path.clone()).or_default().add(stats);
        }
    }

    /// The stacks and their stats, in sorted path order.
    pub fn phases(&self) -> impl Iterator<Item = (&str, &PhaseStats)> {
        self.phases.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Stats for one exact stack path.
    pub fn get(&self, path: &str) -> Option<&PhaseStats> {
        self.phases.get(path)
    }

    /// True when no run contributed any phases.
    pub fn is_empty(&self) -> bool {
        self.phases.is_empty()
    }

    /// Deterministic JSON: sorted stacks, integer fields, **no
    /// `wall_ns`** — this is the golden-comparable form.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"profile_schema\":1,\"phases\":{");
        let mut first = true;
        for (path, s) in &self.phases {
            if !first {
                out.push(',');
            }
            first = false;
            push_json_str(&mut out, path);
            out.push(':');
            let mut w = ObjWriter::begin(&mut out);
            w.u64("calls", s.calls)
                .u64("sim_us", s.sim_us)
                .u64("alloc_bytes", s.alloc_bytes)
                .u64("allocs", s.allocs);
            w.end();
        }
        out.push_str("}}");
        out
    }

    /// Folded-stack export (`stack value` per line, `;`-separated
    /// frames): feed straight to `flamegraph.pl` / `inferno-flamegraph`.
    /// Zero-valued stacks are kept so the stack set itself is stable
    /// across metrics.
    pub fn folded(&self, metric: FoldedMetric) -> String {
        let mut out = String::new();
        for (path, s) in &self.phases {
            out.push_str(path);
            out.push(' ');
            out.push_str(&metric.pick(s).to_string());
            out.push('\n');
        }
        out
    }

    /// Human-readable table *including wall clock* — stderr material,
    /// never canonical output.
    pub fn render_table(&self) -> String {
        let width = self
            .phases
            .keys()
            .map(|k| k.len())
            .max()
            .unwrap_or(5)
            .max(5);
        let mut out = format!(
            "{:<width$}  {:>10}  {:>12}  {:>12}  {:>10}  {:>12}\n",
            "phase", "calls", "sim_us", "alloc_bytes", "allocs", "wall_us"
        );
        for (path, s) in &self.phases {
            out.push_str(&format!(
                "{:<width$}  {:>10}  {:>12}  {:>12}  {:>10}  {:>12}\n",
                path,
                s.calls,
                s.sim_us,
                s.alloc_bytes,
                s.allocs,
                s.wall_ns / 1_000,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_alloc_tallies_requests() {
        let (b0, c0) = allocation_counts();
        unsafe {
            let layout = Layout::from_size_align(64, 8).unwrap();
            let p = CountingAlloc.alloc(layout);
            assert!(!p.is_null());
            let p = CountingAlloc.realloc(p, layout, 96);
            assert!(!p.is_null());
            let layout = Layout::from_size_align(96, 8).unwrap();
            CountingAlloc.dealloc(p, layout);
            let z = CountingAlloc.alloc_zeroed(Layout::from_size_align(16, 8).unwrap());
            assert!(!z.is_null());
            CountingAlloc.dealloc(z, Layout::from_size_align(16, 8).unwrap());
        }
        let (b1, c1) = allocation_counts();
        assert_eq!(b1 - b0, 64 + 96 + 16);
        assert_eq!(c1 - c0, 3, "dealloc is not an allocation");
    }

    #[test]
    fn nesting_builds_stack_paths_with_self_costs() {
        let mut p = PhaseProfiler::new();
        let outer = p.enter(Phase::PlacementScore);
        let inner = p.enter(Phase::BufferLookup);
        p.exit(inner, 40);
        let inner = p.enter(Phase::BufferLookup);
        p.exit(inner, 2);
        p.exit(outer, 0);
        let top = p.enter(Phase::BufferLookup);
        p.exit(top, 7);
        p.add_root_sim_us(1000);
        let report = p.report();
        let nested = report.get("run;placement_score;buffer_lookup").unwrap();
        assert_eq!(nested.calls, 2);
        assert_eq!(nested.sim_us, 42);
        let flat = report.get("run;buffer_lookup").unwrap();
        assert_eq!(flat.calls, 1);
        assert_eq!(flat.sim_us, 7);
        assert_eq!(report.get("run;placement_score").unwrap().sim_us, 0);
        assert_eq!(report.get("run").unwrap().sim_us, 1000);
        assert_eq!(report.get("run").unwrap().calls, 1);
    }

    #[test]
    fn merge_is_order_independent() {
        let mk = |n: u64| {
            let mut p = PhaseProfiler::new();
            for _ in 0..n {
                let t = p.enter(Phase::WalFlush);
                p.exit(t, 10);
            }
            p.report()
        };
        let (a, b, c) = (mk(1), mk(2), mk(3));
        let mut left = ProfileReport::default();
        left.merge(&a);
        left.merge(&b);
        left.merge(&c);
        let mut right = ProfileReport::default();
        right.merge(&c);
        right.merge(&a);
        right.merge(&b);
        assert_eq!(left.to_json(), right.to_json());
        assert_eq!(left.get("run;wal_flush").unwrap().calls, 6);
        assert_eq!(left.get("run;wal_flush").unwrap().sim_us, 60);
    }

    #[test]
    fn json_excludes_wall_and_folded_selects_metric() {
        let mut p = PhaseProfiler::new();
        let t = p.enter(Phase::EventPop);
        p.exit(t, 5);
        let report = p.report();
        let json = report.to_json();
        assert!(json.starts_with("{\"profile_schema\":1,"));
        assert!(json.contains("\"run;event_pop\":{\"calls\":1,\"sim_us\":5,"));
        assert!(
            !json.contains("wall_ns"),
            "wall clock must not leak: {json}"
        );
        let folded = report.folded(FoldedMetric::SimUs);
        assert!(folded.contains("run;event_pop 5\n"), "{folded}");
        let calls = report.folded(FoldedMetric::Calls);
        assert!(calls.contains("run;event_pop 1\n"));
        let table = report.render_table();
        assert!(table.contains("wall_us"));
    }

    #[test]
    fn folded_metric_parse_roundtrip() {
        for (name, metric) in [
            ("wall_ns", FoldedMetric::WallNs),
            ("sim_us", FoldedMetric::SimUs),
            ("alloc_bytes", FoldedMetric::AllocBytes),
            ("allocs", FoldedMetric::Allocs),
            ("calls", FoldedMetric::Calls),
        ] {
            assert_eq!(FoldedMetric::parse(name), Some(metric));
        }
        assert_eq!(FoldedMetric::parse("bogus"), None);
    }
}
