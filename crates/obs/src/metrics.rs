//! The metrics registry: named counters, gauges and histograms with
//! hierarchical dotted scopes (`buffer.hit`, `wal.flush.commit`,
//! `disk.3.busy_us`), snapshot/diff support and JSON + ASCII-table
//! export.
//!
//! Everything is integer-valued and stored in `BTreeMap`s, so snapshots
//! are deterministic: same run → same snapshot, byte for byte.

use crate::json::{push_json_str, ObjWriter};
use std::collections::BTreeMap;

/// Power-of-two-bucket histogram of `u64` observations. Bucket `i`
/// counts values `v` with `2^(i-1) < v <= 2^i` (bucket 0 counts zeros
/// and ones), which is plenty of resolution for latency-style data
/// while staying integer-exact.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    max: u64,
}

impl Histogram {
    fn bucket_of(v: u64) -> usize {
        (64 - v.leading_zeros() as usize).saturating_sub(1)
    }

    /// Record one observation.
    pub fn observe(&mut self, v: u64) {
        let b = Self::bucket_of(v);
        if self.buckets.len() <= b {
            self.buckets.resize(b + 1, 0);
        }
        self.buckets[b] += 1;
        self.count += 1;
        self.sum += v;
        self.max = self.max.max(v);
    }

    /// Observations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest observation (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean observation (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Merge another histogram into this one. Buckets are power-of-two
    /// aligned by construction, so the merge is exact: the result equals
    /// the histogram of the concatenated observation streams regardless
    /// of how the observations were partitioned.
    pub fn merge(&mut self, other: &Histogram) {
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (i, &c) in other.buckets.iter().enumerate() {
            self.buckets[i] += c;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// Upper bound of the bucket holding the q-quantile observation.
    ///
    /// This is **not** an exact quantile: the histogram only keeps
    /// power-of-two bucket counts, so the returned value is the *upper
    /// bound* `2^i` of the bucket the q-quantile observation fell into.
    /// The true quantile lies somewhere in `(2^(i-1), 2^i]` — up to 2×
    /// smaller than the reported bound. The estimate is coarse but
    /// deterministic and merge-stable, which is what the golden gate
    /// needs.
    pub fn quantile_bound(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((self.count as f64) * q).ceil() as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return 1u64 << i;
            }
        }
        1u64 << (self.buckets.len().saturating_sub(1))
    }

    fn to_json(&self) -> String {
        let mut s = String::new();
        let mut w = ObjWriter::begin(&mut s);
        w.u64("count", self.count)
            .u64("sum", self.sum)
            .u64("max", self.max);
        let buckets = self
            .buckets
            .iter()
            .map(|c| c.to_string())
            .collect::<Vec<_>>()
            .join(",");
        w.raw("buckets_pow2", &format!("[{buckets}]"));
        w.end();
        s
    }
}

/// Registry of named metrics. Dotted names form the hierarchy; the
/// registry itself is flat (a scope is just a name prefix).
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, i64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Increment counter `name` by one.
    pub fn inc(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Increment counter `name` by `n`. Creates the counter on first use.
    pub fn add(&mut self, name: &str, n: u64) {
        if let Some(c) = self.counters.get_mut(name) {
            *c += n;
        } else {
            self.counters.insert(name.to_string(), n);
        }
    }

    /// Pre-create counter `name` at zero if absent. Declaring every
    /// counter up front (outside the engine's profiled hot phases)
    /// makes the first [`MetricsRegistry::inc`] of each name a pure
    /// `BTreeMap` lookup — no `String` or tree-node allocation inside
    /// a profiled phase. Zero-valued counters never appear in
    /// [`MetricsRegistry::snapshot`], so declaring is observationally
    /// free.
    pub fn declare(&mut self, name: &str) {
        if !self.counters.contains_key(name) {
            self.counters.insert(name.to_string(), 0);
        }
    }

    /// Current value of counter `name` (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Set gauge `name` to `v`.
    pub fn set_gauge(&mut self, name: &str, v: i64) {
        if let Some(g) = self.gauges.get_mut(name) {
            *g = v;
        } else {
            self.gauges.insert(name.to_string(), v);
        }
    }

    /// Current value of gauge `name` (0 if never set).
    pub fn gauge(&self, name: &str) -> i64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// Record `v` into histogram `name`. Creates it on first use.
    pub fn observe(&mut self, name: &str, v: u64) {
        if let Some(h) = self.histograms.get_mut(name) {
            h.observe(v);
        } else {
            let mut h = Histogram::default();
            h.observe(v);
            self.histograms.insert(name.to_string(), h);
        }
    }

    /// Histogram `name`, if any observation was recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Clear every metric (used when the measured interval begins, so
    /// counters reconcile with per-run report totals).
    ///
    /// Counter *keys* are retained and their values zeroed in place:
    /// counters are bumped inside the engine's profiled hot phases, and
    /// keeping the keys makes every post-warmup [`MetricsRegistry::inc`]
    /// a pure `BTreeMap` lookup — no `String` allocation inside a
    /// profiled phase. Zero-valued counters are filtered out of
    /// [`MetricsRegistry::snapshot`], so the observable state is
    /// byte-identical to a full clear.
    pub fn reset(&mut self) {
        for v in self.counters.values_mut() {
            *v = 0;
        }
        self.gauges.clear();
        self.histograms.clear();
    }

    /// Deterministic point-in-time copy of every metric. Zero-valued
    /// counters (keys retained by [`MetricsRegistry::reset`] purely as
    /// an allocation optimisation) are omitted — a counter that never
    /// fired is indistinguishable from one that was never created.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .iter()
                .filter(|&(_, &v)| v > 0)
                .map(|(k, &v)| (k.clone(), v))
                .collect(),
            gauges: self.gauges.clone(),
            histograms: self.histograms.clone(),
        }
    }
}

/// Immutable copy of a registry's state; supports diff and export.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histograms by name.
    pub histograms: BTreeMap<String, Histogram>,
}

impl MetricsSnapshot {
    /// Counter value (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Gauge value (0 if absent).
    pub fn gauge(&self, name: &str) -> i64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// Counter and gauge deltas since `earlier` (histograms are omitted
    /// from diffs — they don't subtract meaningfully bucket-wise once
    /// reset semantics differ). Counters absent earlier count from zero.
    pub fn diff(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        let mut counters = BTreeMap::new();
        for (k, &v) in &self.counters {
            let delta = v.saturating_sub(earlier.counter(k));
            if delta > 0 {
                counters.insert(k.clone(), delta);
            }
        }
        let mut gauges = BTreeMap::new();
        for (k, &v) in &self.gauges {
            let delta = v - earlier.gauge(k);
            if delta != 0 {
                gauges.insert(k.clone(), delta);
            }
        }
        MetricsSnapshot {
            counters,
            gauges,
            histograms: BTreeMap::new(),
        }
    }

    /// Merge another snapshot into this one: counters and gauges add,
    /// histograms merge bucket-wise. Because every container is a
    /// `BTreeMap` and addition is commutative and associative, folding
    /// any permutation of per-run snapshots yields the same bytes —
    /// the property the parallel sweep executor relies on when it joins
    /// per-run registries in submission order.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (k, &v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, &v) in &other.gauges {
            *self.gauges.entry(k.clone()).or_insert(0) += v;
        }
        for (k, h) in &other.histograms {
            self.histograms.entry(k.clone()).or_default().merge(h);
        }
    }

    /// Fold an iterator of snapshots into one merged snapshot.
    pub fn merged<'a, I: IntoIterator<Item = &'a MetricsSnapshot>>(snaps: I) -> MetricsSnapshot {
        let mut out = MetricsSnapshot::default();
        for s in snaps {
            out.merge(s);
        }
        out
    }

    /// Render as a deterministic JSON object:
    /// `{"counters":{...},"gauges":{...},"histograms":{...}}`.
    pub fn to_json(&self) -> String {
        let mut counters = String::from("{");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                counters.push(',');
            }
            push_json_str(&mut counters, k);
            counters.push(':');
            counters.push_str(&v.to_string());
        }
        counters.push('}');

        let mut gauges = String::from("{");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                gauges.push(',');
            }
            push_json_str(&mut gauges, k);
            gauges.push(':');
            gauges.push_str(&v.to_string());
        }
        gauges.push('}');

        let mut hists = String::from("{");
        for (i, (k, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                hists.push(',');
            }
            push_json_str(&mut hists, k);
            hists.push(':');
            hists.push_str(&h.to_json());
        }
        hists.push('}');

        let mut s = String::new();
        let mut w = ObjWriter::begin(&mut s);
        w.raw("counters", &counters)
            .raw("gauges", &gauges)
            .raw("histograms", &hists);
        w.end();
        s
    }

    /// Render as a boxed ASCII table, one row per metric, sorted by name.
    pub fn to_ascii_table(&self) -> String {
        let mut rows: Vec<(String, String, String)> = Vec::new();
        for (k, v) in &self.counters {
            rows.push((k.clone(), "counter".into(), v.to_string()));
        }
        for (k, v) in &self.gauges {
            rows.push((k.clone(), "gauge".into(), v.to_string()));
        }
        for (k, h) in &self.histograms {
            rows.push((
                k.clone(),
                "histogram".into(),
                format!(
                    "n={} mean={:.1} p50<={} p95<={} p99<={} max={}",
                    h.count(),
                    h.mean(),
                    h.quantile_bound(0.50),
                    h.quantile_bound(0.95),
                    h.quantile_bound(0.99),
                    h.max()
                ),
            ));
        }
        rows.sort();
        let name_w = rows.iter().map(|r| r.0.len()).max().unwrap_or(4).max(6);
        let kind_w = 9;
        let val_w = rows.iter().map(|r| r.2.len()).max().unwrap_or(5).max(5);
        let sep = format!(
            "+-{}-+-{}-+-{}-+",
            "-".repeat(name_w),
            "-".repeat(kind_w),
            "-".repeat(val_w)
        );
        let mut out = String::new();
        out.push_str(&sep);
        out.push('\n');
        out.push_str(&format!(
            "| {:<name_w$} | {:<kind_w$} | {:>val_w$} |\n",
            "metric", "kind", "value"
        ));
        out.push_str(&sep);
        out.push('\n');
        for (name, kind, value) in &rows {
            out.push_str(&format!(
                "| {name:<name_w$} | {kind:<kind_w$} | {value:>val_w$} |\n"
            ));
        }
        out.push_str(&sep);
        out.push('\n');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot() {
        let mut r = MetricsRegistry::new();
        r.inc("buffer.hit");
        r.add("buffer.hit", 2);
        r.inc("buffer.miss");
        r.set_gauge("disk.0.busy_us", 1234);
        assert_eq!(r.counter("buffer.hit"), 3);
        assert_eq!(r.counter("absent"), 0);
        let snap = r.snapshot();
        assert_eq!(snap.counter("buffer.hit"), 3);
        assert_eq!(snap.gauge("disk.0.busy_us"), 1234);
    }

    #[test]
    fn diff_subtracts_counters() {
        let mut r = MetricsRegistry::new();
        r.add("a", 5);
        let early = r.snapshot();
        r.add("a", 3);
        r.inc("b");
        let late = r.snapshot();
        let d = late.diff(&early);
        assert_eq!(d.counter("a"), 3);
        assert_eq!(d.counter("b"), 1);
    }

    #[test]
    fn histogram_buckets_and_stats() {
        let mut h = Histogram::default();
        for v in [0, 1, 2, 3, 900, 1100] {
            h.observe(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 2006);
        assert_eq!(h.max(), 1100);
        assert!(h.quantile_bound(0.5) <= 4);
        assert!(h.quantile_bound(1.0) >= 1024);
    }

    #[test]
    fn snapshot_json_is_deterministic_and_sorted() {
        let mut r = MetricsRegistry::new();
        r.inc("z.last");
        r.inc("a.first");
        r.observe("lat", 7);
        let a = r.snapshot().to_json();
        let b = r.snapshot().to_json();
        assert_eq!(a, b);
        let za = a.find("z.last").unwrap();
        let aa = a.find("a.first").unwrap();
        assert!(aa < za, "keys must be sorted");
        assert!(a.starts_with("{\"counters\":{"));
    }

    #[test]
    fn ascii_table_renders_all_kinds() {
        let mut r = MetricsRegistry::new();
        r.inc("c");
        r.set_gauge("g", -4);
        r.observe("h", 10);
        let t = r.snapshot().to_ascii_table();
        assert!(t.contains("| c"));
        assert!(t.contains("gauge"));
        assert!(t.contains("histogram"));
        assert!(t.contains("p50<="));
        assert!(t.contains("p99<="));
        assert!(t.lines().all(|l| l.starts_with('|') || l.starts_with('+')));
    }

    #[test]
    fn histogram_merge_equals_concatenated_stream() {
        let all = [0u64, 1, 2, 3, 900, 1100, 5, 64, 65];
        let mut whole = Histogram::default();
        for &v in &all {
            whole.observe(v);
        }
        for split in 0..all.len() {
            let (a, b) = all.split_at(split);
            let mut left = Histogram::default();
            let mut right = Histogram::default();
            for &v in a {
                left.observe(v);
            }
            for &v in b {
                right.observe(v);
            }
            left.merge(&right);
            assert_eq!(left, whole, "split at {split}");
        }
    }

    #[test]
    fn snapshot_merge_is_order_independent() {
        let mut r1 = MetricsRegistry::new();
        r1.add("io.read", 5);
        r1.set_gauge("disk.busy_us", 100);
        r1.observe("lat", 7);
        let mut r2 = MetricsRegistry::new();
        r2.add("io.read", 2);
        r2.add("io.write", 1);
        r2.set_gauge("disk.busy_us", 30);
        r2.observe("lat", 900);
        let (a, b) = (r1.snapshot(), r2.snapshot());
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.to_json(), ba.to_json());
        assert_eq!(ab.counter("io.read"), 7);
        assert_eq!(ab.counter("io.write"), 1);
        assert_eq!(ab.gauge("disk.busy_us"), 130);
        assert_eq!(ab.histograms["lat"].count(), 2);
        let folded = MetricsSnapshot::merged([&a, &b]);
        assert_eq!(folded, ab);
    }

    #[test]
    fn reset_clears_everything() {
        let mut r = MetricsRegistry::new();
        r.inc("x");
        r.set_gauge("y", 1);
        r.observe("z", 1);
        r.reset();
        let s = r.snapshot();
        assert!(s.counters.is_empty() && s.gauges.is_empty() && s.histograms.is_empty());
    }
}
