//! Deterministic observability for the semcluster engine.
//!
//! The paper's whole argument is an *attribution* argument — response
//! time decomposed into candidate-search reads (§2.1a), log flushes
//! (Fig 5.5), prefetch traffic (§5.2) and buffer misses (Fig 5.11). This
//! crate provides the measurement substrate for that:
//!
//! * [`MetricsRegistry`] — named counters/gauges/histograms with
//!   hierarchical dotted scopes (`buffer.hit`, `wal.flush.commit`,
//!   `disk.3.busy_us`), snapshot/diff and JSON + ASCII-table export;
//! * [`TraceSink`] + [`TraceEvent`] — typed events stamped in simulated
//!   time, with a JSONL emitter ([`JsonlSink`]), a flight-recorder ring
//!   ([`RingBufferSink`]) and a free [`NoopSink`] default;
//! * [`PhaseProfiler`] + [`ProfileReport`] — hierarchical self-cost
//!   profiles of the engine's hot paths (calls, simulated time, heap
//!   allocation via [`CountingAlloc`], wall clock), with deterministic
//!   JSON and folded-stack (flamegraph) export.
//!
//! ## Determinism contract
//!
//! Everything here is a pure observer: no clocks, no RNG, no feedback
//! into the simulation. Timestamps are integer simulated microseconds
//! and all exports iterate sorted maps, so two runs of the same
//! configuration and seed produce **byte-identical** traces and
//! snapshots, and enabling any sink changes no simulation result.

#![warn(missing_docs)]

mod audit;
mod chrome;
mod json;
mod metrics;
mod profile;
mod serve_timeline;
mod timeline;
mod trace;

pub use audit::{milli, AuditKind, AuditSink, CandidateAudit, PlacementAudit, SplitVerdict};
pub use chrome::ChromeTraceSink;
pub use metrics::{Histogram, MetricsRegistry, MetricsSnapshot};
pub use profile::{
    allocation_counts, CountingAlloc, FoldedMetric, Phase, PhaseProfiler, PhaseStats, PhaseToken,
    ProfileReport,
};
pub use serve_timeline::{ServePoint, ServeTimeline};
pub use timeline::{Timeline, TimelinePoint, TimelineSample, TimelineSampler};
pub use trace::{
    shared, FaultOp, FlushCause, JsonlSink, LogFlushKind, NoopSink, ReadCause, RingBufferSink,
    SharedBuf, SharedSink, SyncBuf, TraceEvent, TraceSink,
};
