//! Chrome Trace Event (Perfetto) exporter.
//!
//! [`ChromeTraceSink`] renders the engine's [`TraceEvent`] stream in the
//! Chrome `trace_event` JSON-array format, so any run can be opened
//! directly in `chrome://tracing` or <https://ui.perfetto.dev> with no
//! conversion step. Simulated microseconds map 1:1 onto the format's
//! `ts`/`dur` microsecond fields.
//!
//! Lane layout (process/thread rows in the viewer):
//!
//! * pid 1 `transactions` — one thread per user; transactions render as
//!   nested `B`/`E` spans (commit or abort closes the span), lock
//!   wait/grant as instants on the owning user's row;
//! * pid 2 `data-disks` — one thread per disk; page reads, flushes and
//!   prefetch I/Os render as `X` complete events with their queueing +
//!   service duration, faults and retries as instants;
//! * pid 3 `log-device` — physical log flushes and injected stalls;
//! * pid 4 `engine` — global instants (I/O expansion, prefetch issue,
//!   recluster moves, splits, degradation transitions);
//! * pid 5 `profiler` — end-of-run `C` counter events, one per phase
//!   stack, carrying the deterministic profile columns (calls,
//!   simulated µs, allocated bytes/count);
//! * pid 6 `serve-requests` — live-server per-request attribution: one
//!   row per logical session, each request rendered as five
//!   consecutive `X` slices (admission wait, lock wait, engine exec,
//!   commit wait, reply write) that tile the measured service time
//!   exactly. Emitted via [`ChromeTraceSink::emit_serve_request`] from
//!   the server's retained trace records; timestamps are wall-clock µs
//!   since server start rather than simulated time.
//!
//! Output is deterministic: same run, byte-identical trace file.

use crate::json::ObjWriter;
use crate::trace::{TraceEvent, TraceSink};
use std::io::Write;

const PID_TXNS: u64 = 1;
const PID_DISKS: u64 = 2;
const PID_LOG: u64 = 3;
const PID_ENGINE: u64 = 4;
const PID_PROFILE: u64 = 5;
const PID_SERVER: u64 = 6;

/// Streams [`TraceEvent`]s as a Chrome `trace_event` JSON array.
pub struct ChromeTraceSink<W: Write> {
    writer: W,
    events: u64,
    closed: bool,
}

struct Record<'a> {
    name: &'a str,
    ph: &'a str,
    ts: u64,
    dur: Option<u64>,
    pid: u64,
    tid: u64,
    args: String,
}

impl<'a> Record<'a> {
    fn render(&self) -> String {
        let mut s = String::new();
        let mut w = ObjWriter::begin(&mut s);
        w.str("name", self.name)
            .str("ph", self.ph)
            .u64("ts", self.ts);
        if let Some(d) = self.dur {
            w.u64("dur", d);
        }
        w.u64("pid", self.pid).u64("tid", self.tid);
        if self.ph == "i" {
            w.str("s", "t");
        }
        if !self.args.is_empty() {
            w.raw("args", &self.args);
        }
        w.end();
        s
    }
}

fn args<F: FnOnce(&mut ObjWriter)>(f: F) -> String {
    let mut s = String::new();
    let mut w = ObjWriter::begin(&mut s);
    f(&mut w);
    w.end();
    s
}

impl<W: Write> ChromeTraceSink<W> {
    /// Wrap `writer`; the JSON array opens immediately with process
    /// metadata so the lane names appear even for empty traces.
    pub fn new(writer: W) -> Self {
        let mut sink = ChromeTraceSink {
            writer,
            events: 0,
            closed: false,
        };
        sink.writer
            .write_all(b"[\n")
            .expect("chrome trace write failed");
        for (pid, name) in [
            (PID_TXNS, "transactions"),
            (PID_DISKS, "data-disks"),
            (PID_LOG, "log-device"),
            (PID_ENGINE, "engine"),
            (PID_PROFILE, "profiler"),
            (PID_SERVER, "serve-requests"),
        ] {
            sink.write_record(&Record {
                name: "process_name",
                ph: "M",
                ts: 0,
                dur: None,
                pid,
                tid: 0,
                args: args(|w| {
                    w.str("name", name);
                }),
            });
        }
        sink
    }

    /// Events written so far (excluding metadata).
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Emit one served request on the `serve-requests` lane: the spans
    /// render as consecutive `X` slices on the session's row, tiling
    /// `[start_us, start_us + Σ span)` with no gaps — a visual proof of
    /// the zero-residual attribution invariant. `spans` is `(phase
    /// name, µs)` in service order; zero-length spans are skipped (the
    /// viewer would drop them anyway).
    pub fn emit_serve_request(
        &mut self,
        session: u32,
        client_txn: u64,
        start_us: u64,
        spans: &[(&str, u64)],
    ) {
        let mut at = start_us;
        for (phase, dur) in spans {
            if *dur > 0 {
                self.write_record(&Record {
                    name: phase,
                    ph: "X",
                    ts: at,
                    dur: Some(*dur),
                    pid: PID_SERVER,
                    tid: u64::from(session),
                    args: args(|w| {
                        w.u64("client_txn", client_txn);
                    }),
                });
                self.events += 1;
            }
            at += dur;
        }
    }

    fn write_record(&mut self, rec: &Record) {
        let mut line = rec.render();
        line.push_str(",\n");
        self.writer
            .write_all(line.as_bytes())
            .expect("chrome trace write failed");
    }

    fn map(event: &TraceEvent) -> Record<'_> {
        let ts = event.at().as_micros();
        match *event {
            TraceEvent::TxnBegin {
                user,
                txn,
                is_read,
                ops,
                ..
            } => Record {
                name: "txn",
                ph: "B",
                ts,
                dur: None,
                pid: PID_TXNS,
                tid: user as u64,
                args: args(|w| {
                    w.u64("txn", txn)
                        .bool("read", is_read)
                        .u64("ops", ops as u64);
                }),
            },
            TraceEvent::TxnCommit {
                user,
                txn,
                response_us,
                cpu_us,
                data_read_us,
                dirty_flush_us,
                cluster_search_us,
                log_us,
                lock_wait_us,
                ..
            } => Record {
                name: "txn",
                ph: "E",
                ts,
                dur: None,
                pid: PID_TXNS,
                tid: user as u64,
                args: args(|w| {
                    w.u64("txn", txn)
                        .u64("response_us", response_us)
                        .u64("cpu_us", cpu_us)
                        .u64("data_read_us", data_read_us)
                        .u64("dirty_flush_us", dirty_flush_us)
                        .u64("cluster_search_us", cluster_search_us)
                        .u64("log_us", log_us)
                        .u64("lock_wait_us", lock_wait_us);
                }),
            },
            TraceEvent::TxnAbort {
                user,
                txn,
                page,
                disk,
                ..
            } => Record {
                name: "txn",
                ph: "E",
                ts,
                dur: None,
                pid: PID_TXNS,
                tid: user as u64,
                args: args(|w| {
                    w.u64("txn", txn)
                        .bool("aborted", true)
                        .u64("page", page.0 as u64)
                        .u64("disk", disk as u64);
                }),
            },
            TraceEvent::PageRead {
                page,
                disk,
                cause,
                done,
                ..
            } => Record {
                name: match cause {
                    crate::trace::ReadCause::Demand => "page_read",
                    crate::trace::ReadCause::ClusterSearch => "cluster_search_read",
                },
                ph: "X",
                ts,
                dur: Some(done.as_micros().saturating_sub(ts)),
                pid: PID_DISKS,
                tid: disk as u64,
                args: args(|w| {
                    w.u64("page", page.0 as u64);
                }),
            },
            TraceEvent::PageFlush {
                page, disk, done, ..
            } => Record {
                name: "page_flush",
                ph: "X",
                ts,
                dur: Some(done.as_micros().saturating_sub(ts)),
                pid: PID_DISKS,
                tid: disk as u64,
                args: args(|w| {
                    w.u64("page", page.0 as u64);
                }),
            },
            TraceEvent::PrefetchIo {
                page,
                disk,
                write_back,
                done,
                ..
            } => Record {
                name: "prefetch_io",
                ph: "X",
                ts,
                dur: Some(done.as_micros().saturating_sub(ts)),
                pid: PID_DISKS,
                tid: disk as u64,
                args: args(|w| {
                    w.u64("page", page.0 as u64).bool("write_back", write_back);
                }),
            },
            TraceEvent::LogFlush { done, .. } => Record {
                name: "log_flush",
                ph: "X",
                ts,
                dur: Some(done.as_micros().saturating_sub(ts)),
                pid: PID_LOG,
                tid: 0,
                args: String::new(),
            },
            TraceEvent::LockWait { user, .. } => Record {
                name: "lock_wait",
                ph: "i",
                ts,
                dur: None,
                pid: PID_TXNS,
                tid: user as u64,
                args: String::new(),
            },
            TraceEvent::LockGrant { user, wait_us, .. } => Record {
                name: "lock_grant",
                ph: "i",
                ts,
                dur: None,
                pid: PID_TXNS,
                tid: user as u64,
                args: args(|w| {
                    w.u64("wait_us", wait_us);
                }),
            },
            TraceEvent::IoFault {
                page,
                disk,
                attempt,
                ..
            } => Record {
                name: "io_fault",
                ph: "i",
                ts,
                dur: None,
                pid: PID_DISKS,
                tid: disk as u64,
                args: args(|w| {
                    w.u64("page", page.0 as u64).u64("attempt", attempt as u64);
                }),
            },
            TraceEvent::IoRetry {
                page,
                disk,
                attempt,
                backoff_us,
                ..
            } => Record {
                name: "io_retry",
                ph: "i",
                ts,
                dur: None,
                pid: PID_DISKS,
                tid: disk as u64,
                args: args(|w| {
                    w.u64("page", page.0 as u64)
                        .u64("attempt", attempt as u64)
                        .u64("backoff_us", backoff_us);
                }),
            },
            TraceEvent::LogStall { stall_us, .. } => Record {
                name: "log_stall",
                ph: "i",
                ts,
                dur: None,
                pid: PID_LOG,
                tid: 0,
                args: args(|w| {
                    w.u64("stall_us", stall_us);
                }),
            },
            TraceEvent::IoExpand { page, ios, .. } => Record {
                name: "io_expand",
                ph: "i",
                ts,
                dur: None,
                pid: PID_ENGINE,
                tid: 0,
                args: args(|w| {
                    w.u64("page", page.0 as u64).u64("ios", ios as u64);
                }),
            },
            TraceEvent::PrefetchIssue {
                fetched,
                write_backs,
                ..
            } => Record {
                name: "prefetch_issue",
                ph: "i",
                ts,
                dur: None,
                pid: PID_ENGINE,
                tid: 0,
                args: args(|w| {
                    w.u64("fetched", fetched as u64)
                        .u64("write_backs", write_backs as u64);
                }),
            },
            TraceEvent::ReclusterMove {
                object, from, to, ..
            } => Record {
                name: "recluster_move",
                ph: "i",
                ts,
                dur: None,
                pid: PID_ENGINE,
                tid: 0,
                args: args(|w| {
                    w.u64("object", object as u64)
                        .u64("from", from.0 as u64)
                        .u64("to", to.0 as u64);
                }),
            },
            TraceEvent::Split { from, new, .. } => Record {
                name: "split",
                ph: "i",
                ts,
                dur: None,
                pid: PID_ENGINE,
                tid: 0,
                args: args(|w| {
                    w.u64("from", from.0 as u64).u64("new", new.0 as u64);
                }),
            },
            TraceEvent::Degrade { entered, .. } => Record {
                name: "degrade",
                ph: "i",
                ts,
                dur: None,
                pid: PID_ENGINE,
                tid: 0,
                args: args(|w| {
                    w.bool("entered", entered);
                }),
            },
            TraceEvent::ProfilePhase {
                ref path,
                calls,
                sim_us,
                alloc_bytes,
                allocs,
                ..
            } => Record {
                name: path,
                ph: "C",
                ts,
                dur: None,
                pid: PID_PROFILE,
                tid: 0,
                args: args(|w| {
                    w.u64("calls", calls)
                        .u64("sim_us", sim_us)
                        .u64("alloc_bytes", alloc_bytes)
                        .u64("allocs", allocs);
                }),
            },
        }
    }
}

impl<W: Write> TraceSink for ChromeTraceSink<W> {
    fn emit(&mut self, event: &TraceEvent) {
        let rec = Self::map(event);
        self.write_record(&rec);
        self.events += 1;
    }

    fn flush(&mut self) {
        if !self.closed {
            // A trailing "{}" absorbs the final comma; the trace_event
            // format explicitly tolerates (and Perfetto emits) it.
            self.writer
                .write_all(b"{}\n]\n")
                .expect("chrome trace write failed");
            self.closed = true;
        }
        self.writer.flush().expect("chrome trace flush failed");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{ReadCause, SharedBuf};
    use semcluster_sim::SimTime;
    use semcluster_storage::PageId;

    #[test]
    fn emits_valid_array_with_metadata_and_durations() {
        let buf = SharedBuf::new();
        let mut sink = ChromeTraceSink::new(buf.clone());
        sink.emit(&TraceEvent::TxnBegin {
            at: SimTime::from_micros(10),
            user: 2,
            txn: 5,
            is_read: true,
            ops: 3,
        });
        sink.emit(&TraceEvent::PageRead {
            at: SimTime::from_micros(20),
            page: PageId(7),
            disk: 1,
            cause: ReadCause::Demand,
            done: SimTime::from_micros(50),
        });
        sink.flush();
        let text = String::from_utf8(buf.bytes()).unwrap();
        assert!(text.starts_with("[\n"));
        assert!(text.ends_with("{}\n]\n"));
        assert!(text.contains(r#""name":"process_name","ph":"M""#));
        assert!(text.contains(r#""name":"txn","ph":"B","ts":10"#));
        assert!(text.contains(r#""name":"page_read","ph":"X","ts":20,"dur":30"#));
        assert_eq!(sink.events(), 2);
        // Structural sanity: balanced brackets and braces.
        let opens = text.matches('{').count();
        let closes = text.matches('}').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn serve_request_spans_tile_the_service_time() {
        let buf = SharedBuf::new();
        let mut sink = ChromeTraceSink::new(buf.clone());
        sink.emit_serve_request(
            3,
            42,
            1_000,
            &[
                ("admission_wait", 10),
                ("lock_wait", 0), // zero-length: skipped
                ("engine_exec", 25),
                ("commit_wait", 100),
                ("reply_write", 5),
            ],
        );
        sink.flush();
        let text = String::from_utf8(buf.bytes()).unwrap();
        assert!(text.contains(r#""name":"process_name","ph":"M","ts":0,"pid":6"#));
        // Consecutive slices: each starts where the previous ended,
        // including the slot of the skipped zero-length span.
        assert!(
            text.contains(r#""name":"admission_wait","ph":"X","ts":1000,"dur":10,"pid":6,"tid":3"#)
        );
        assert!(text.contains(r#""name":"engine_exec","ph":"X","ts":1010,"dur":25"#));
        assert!(text.contains(r#""name":"commit_wait","ph":"X","ts":1035,"dur":100"#));
        assert!(text.contains(r#""name":"reply_write","ph":"X","ts":1135,"dur":5"#));
        assert!(!text.contains(r#""name":"lock_wait""#));
        assert_eq!(sink.events(), 4);
    }

    #[test]
    fn flush_is_idempotent() {
        let buf = SharedBuf::new();
        let mut sink = ChromeTraceSink::new(buf.clone());
        sink.flush();
        sink.flush();
        let text = String::from_utf8(buf.bytes()).unwrap();
        assert_eq!(text.matches(']').count(), 1);
    }
}
