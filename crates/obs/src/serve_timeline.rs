//! Wall-clock timeline for the serve path.
//!
//! The simulation timeline ([`crate::Timeline`]) samples *simulated*
//! time; the serve path runs real threads against real sockets, so its
//! health signal is a wall-clock series: queue depth, live connections
//! and sessions, acked transactions, admission sheds and deadline
//! misses sampled at a fixed interval. The server's sampler thread
//! pushes points; this module only holds and serializes them, keeping
//! the observer pure (export order is insertion order, no clocks here).

/// One sampled point of server health.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServePoint {
    /// Milliseconds since the server started.
    pub t_ms: u64,
    /// Jobs waiting in the execution queue.
    pub queue_depth: u64,
    /// Open connections.
    pub connections: u64,
    /// Live logical sessions across all connections.
    pub sessions: u64,
    /// Transactions acknowledged to clients so far.
    pub acked: u64,
    /// Requests shed by admission control so far.
    pub sheds: u64,
    /// Deadline-expiry replies sent so far.
    pub deadline_misses: u64,
}

/// A wall-clock series of [`ServePoint`]s.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServeTimeline {
    /// Sampling interval the server aimed for, in milliseconds.
    pub interval_ms: u64,
    /// Samples in capture order.
    pub points: Vec<ServePoint>,
}

impl ServeTimeline {
    /// Empty timeline with the configured sampling interval.
    pub fn new(interval_ms: u64) -> Self {
        ServeTimeline {
            interval_ms,
            points: Vec::new(),
        }
    }

    /// Append one sample.
    pub fn push(&mut self, point: ServePoint) {
        self.points.push(point);
    }

    /// Canonical JSON: one object with the interval and a `points`
    /// array in capture order.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"interval_ms\": {},\n", self.interval_ms));
        out.push_str("  \"points\": [\n");
        for (i, p) in self.points.iter().enumerate() {
            let comma = if i + 1 < self.points.len() { "," } else { "" };
            out.push_str(&format!(
                "    {{\"t_ms\": {}, \"queue_depth\": {}, \"connections\": {}, \"sessions\": {}, \"acked\": {}, \"sheds\": {}, \"deadline_misses\": {}}}{}\n",
                p.t_ms, p.queue_depth, p.connections, p.sessions, p.acked, p.sheds, p.deadline_misses, comma
            ));
        }
        out.push_str("  ]\n");
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_is_stable_and_ordered() {
        let mut t = ServeTimeline::new(50);
        t.push(ServePoint {
            t_ms: 0,
            queue_depth: 0,
            connections: 1,
            sessions: 200,
            acked: 0,
            sheds: 0,
            deadline_misses: 0,
        });
        t.push(ServePoint {
            t_ms: 50,
            queue_depth: 12,
            connections: 4,
            sessions: 800,
            acked: 310,
            sheds: 2,
            deadline_misses: 1,
        });
        let a = t.to_json();
        let b = t.to_json();
        assert_eq!(a, b);
        assert!(a.contains("\"interval_ms\": 50"));
        assert!(a.contains("\"sessions\": 800"));
        let first = a.find("\"t_ms\": 0").unwrap();
        let second = a.find("\"t_ms\": 50").unwrap();
        assert!(first < second, "points serialize in capture order");
    }

    #[test]
    fn empty_timeline_serializes() {
        let t = ServeTimeline::new(100);
        let json = t.to_json();
        assert!(json.contains("\"points\": ["));
    }
}
