//! Minimal deterministic JSON emission.
//!
//! The observability layer hand-rolls its JSON so that output is
//! byte-stable across runs and platforms: keys are written in the order
//! the caller provides them, numbers are integers (simulated time is
//! integer microseconds end to end), and strings are escaped per RFC
//! 8259. No external serialisation crate is needed or available offline.

/// Append a JSON string literal (with escaping) to `out`.
pub fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Incremental writer for one JSON object: `{"k":v,...}`.
pub struct ObjWriter<'a> {
    out: &'a mut String,
    first: bool,
}

impl<'a> ObjWriter<'a> {
    /// Open an object on `out`.
    pub fn begin(out: &'a mut String) -> Self {
        out.push('{');
        ObjWriter { out, first: true }
    }

    fn key(&mut self, k: &str) {
        if !self.first {
            self.out.push(',');
        }
        self.first = false;
        push_json_str(self.out, k);
        self.out.push(':');
    }

    /// Write an unsigned integer field.
    pub fn u64(&mut self, k: &str, v: u64) -> &mut Self {
        self.key(k);
        self.out.push_str(&v.to_string());
        self
    }

    /// Write a boolean field.
    pub fn bool(&mut self, k: &str, v: bool) -> &mut Self {
        self.key(k);
        self.out.push_str(if v { "true" } else { "false" });
        self
    }

    /// Write a string field.
    pub fn str(&mut self, k: &str, v: &str) -> &mut Self {
        self.key(k);
        push_json_str(self.out, v);
        self
    }

    /// Write a field whose value is a pre-rendered JSON fragment.
    pub fn raw(&mut self, k: &str, v: &str) -> &mut Self {
        self.key(k);
        self.out.push_str(v);
        self
    }

    /// Close the object.
    pub fn end(self) {
        self.out.push('}');
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_and_orders_fields() {
        let mut s = String::new();
        let mut w = ObjWriter::begin(&mut s);
        w.str("a", "he said \"hi\"\n").u64("b", 7).bool("c", false);
        w.end();
        assert_eq!(s, r#"{"a":"he said \"hi\"\n","b":7,"c":false}"#);
    }

    #[test]
    fn control_chars_use_unicode_escapes() {
        let mut s = String::new();
        push_json_str(&mut s, "\u{1}x");
        assert_eq!(s, "\"\\u0001x\"");
    }
}
